// Dense row-major matrix used by the neural-network substrate.
//
// Sized for HeteroG's policy networks (thousands of rows, tens of columns);
// plain loops are ample at this scale, so no BLAS dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace heterog::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  /// Glorot-uniform initialisation.
  static Matrix glorot(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }

  double& at(int r, int c);
  double at(int r, int c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  Matrix transpose() const;

  void fill(double value);
  void add_in_place(const Matrix& other);        // this += other
  void add_scaled_in_place(const Matrix& other, double scale);
  void scale_in_place(double factor);

  double sum() const;
  double max_abs() const;

  std::string shape_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (avoids materialising the transpose).
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

Matrix add(const Matrix& a, const Matrix& b);
Matrix subtract(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double factor);

}  // namespace heterog::nn
