// Reverse-mode automatic differentiation over Matrix.
//
// A Tape records operations as they execute; Tape::backward replays them in
// reverse, accumulating gradients into every Var with requires_grad. The op
// set is exactly what HeteroG's policy networks need: dense algebra,
// activations, row softmaxes, layer norm, concat/slice, and the
// gather/segment ops that realise sparse graph attention over edge lists.
//
// Every op's gradient is exercised by numerical-difference property tests in
// tests/nn_test.cpp.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace heterog::nn {

class Tape;

struct VarData {
  Matrix value;
  Matrix grad;  // lazily allocated, same shape as value
  bool requires_grad = false;

  /// Propagates this node's grad into its inputs' grads. Null for leaves.
  std::function<void()> backward;

  /// Keeps input nodes alive and reachable for the reverse sweep.
  std::vector<std::shared_ptr<VarData>> inputs;

  Matrix& ensure_grad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Matrix::zeros(value.rows(), value.cols());
    }
    return grad;
  }
};

/// Value handle. Cheap to copy; all state lives in the shared VarData.
class Var {
 public:
  Var() = default;
  explicit Var(std::shared_ptr<VarData> data) : data_(std::move(data)) {}

  bool defined() const { return data_ != nullptr; }
  const Matrix& value() const { return data_->value; }
  Matrix& mutable_value() { return data_->value; }
  const Matrix& grad() const { return data_->grad; }
  Matrix& ensure_grad() { return data_->ensure_grad(); }
  bool requires_grad() const { return data_->requires_grad; }
  std::shared_ptr<VarData> data() const { return data_; }

  int rows() const { return data_->value.rows(); }
  int cols() const { return data_->value.cols(); }
  double scalar() const;  // requires 1x1

 private:
  std::shared_ptr<VarData> data_;
};

class Tape {
 public:
  /// Creates a leaf. Parameters pass requires_grad = true.
  Var leaf(Matrix value, bool requires_grad = false);

  // --- dense algebra -----------------------------------------------------
  Var matmul(const Var& a, const Var& b);
  Var add(const Var& a, const Var& b);
  Var subtract(const Var& a, const Var& b);
  /// a [n x d] + row [1 x d] broadcast over rows.
  Var add_row_broadcast(const Var& a, const Var& row);
  Var hadamard(const Var& a, const Var& b);
  Var scale(const Var& a, double factor);
  /// a [n x d] * col [n x 1] broadcast over columns.
  Var mul_col_broadcast(const Var& a, const Var& col);

  // --- activations -------------------------------------------------------
  Var relu(const Var& a);
  Var leaky_relu(const Var& a, double slope = 0.2);
  Var elu(const Var& a);
  Var tanh_act(const Var& a);

  // --- normalisation / softmax -------------------------------------------
  Var softmax_rows(const Var& a);
  Var log_softmax_rows(const Var& a);
  Var layer_norm_rows(const Var& a, const Var& gain, const Var& bias,
                      double epsilon = 1e-5);

  // --- shape ops ----------------------------------------------------------
  Var transpose(const Var& a);
  Var concat_cols(const std::vector<Var>& parts);
  Var slice_cols(const Var& a, int start, int count);

  // --- graph / segment ops ------------------------------------------------
  /// out[i] = a[indices[i]].
  Var gather_rows(const Var& a, const std::vector<int>& indices);
  /// out[s] = sum over rows e with segments[e] == s. segments values in
  /// [0, segment_count).
  Var segment_sum_rows(const Var& a, const std::vector<int>& segments,
                       int segment_count);
  /// out[s] = mean over rows e with segments[e] == s (empty segments -> 0).
  Var segment_mean_rows(const Var& a, const std::vector<int>& segments,
                        int segment_count);
  /// Column-wise softmax within each segment: for every column h and segment
  /// s, out[e,h] = exp(a[e,h]) / sum over e' in s of exp(a[e',h]).
  Var segment_softmax(const Var& a, const std::vector<int>& segments,
                      int segment_count);

  // --- reductions / selections ---------------------------------------------
  Var sum_all(const Var& a);   // 1x1
  Var mean_all(const Var& a);  // 1x1
  /// out[i] = a[i, columns[i]] as an [n x 1] matrix.
  Var pick_per_row(const Var& a, const std::vector<int>& columns);

  /// Back-propagates from a 1x1 loss through every recorded op.
  void backward(const Var& loss);

  /// Number of recorded non-leaf ops (diagnostics).
  size_t op_count() const { return order_.size(); }

 private:
  Var record(Matrix value, std::vector<Var> inputs,
             std::function<void(VarData&)> backward_body);

  std::vector<std::shared_ptr<VarData>> order_;
};

}  // namespace heterog::nn
