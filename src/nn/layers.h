// Trainable layers for HeteroG's policy networks: Linear, LayerNorm, full
// multi-head self-attention / Transformer encoder blocks (the strategy
// network), and graph attention layers over edge lists (the GAT encoder,
// paper Sec. 4.1.1).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"

namespace heterog::nn {

/// Owns the trainable parameter leaves of a model. Parameters persist across
/// episodes (a fresh Tape is built per forward pass; leaves are not recorded
/// on tapes).
class ParameterSet {
 public:
  /// Registers a parameter initialised to `init`; returns its Var.
  Var add(Matrix init);

  const std::vector<Var>& all() const { return params_; }
  int64_t scalar_count() const;
  void zero_grads();

 private:
  std::vector<Var> params_;
};

/// Adam with global-norm gradient clipping.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double clip_global_norm = 5.0;  // <= 0 disables clipping
  };

  explicit AdamOptimizer(ParameterSet& params) : AdamOptimizer(params, Options{}) {}
  AdamOptimizer(ParameterSet& params, Options options);

  /// Applies one update from the accumulated grads, then zeroes them.
  void step();

  int64_t steps_taken() const { return step_count_; }

 private:
  ParameterSet* params_;
  Options options_;
  std::vector<Matrix> m_, v_;
  int64_t step_count_ = 0;
};

class Linear {
 public:
  Linear(ParameterSet& params, int in_dim, int out_dim, Rng& rng, bool bias = true);
  Var forward(Tape& tape, const Var& x) const;
  int out_dim() const { return weight_.cols(); }

 private:
  Var weight_;  // [in x out]
  Var bias_;    // [1 x out] (undefined when bias == false)
};

class LayerNormLayer {
 public:
  LayerNormLayer(ParameterSet& params, int dim);
  Var forward(Tape& tape, const Var& x) const;

 private:
  Var gain_, bias_;
};

/// Full (dense) multi-head self-attention over a sequence of N rows.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(ParameterSet& params, int model_dim, int heads, Rng& rng);
  Var forward(Tape& tape, const Var& x) const;

 private:
  int heads_;
  int head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

/// Post-LN Transformer encoder block (attention + FFN with residuals).
class TransformerBlock {
 public:
  TransformerBlock(ParameterSet& params, int model_dim, int heads, int ffn_dim,
                   Rng& rng);
  Var forward(Tape& tape, const Var& x) const;

 private:
  MultiHeadSelfAttention attention_;
  LayerNormLayer ln1_, ln2_;
  Linear ffn1_, ffn2_;
};

/// Graph attention layer (Velickovic et al.) over an explicit edge list.
///
///   e_ij = LeakyReLU(a_src . (W h_i) + a_dst . (W h_j))
///   alpha = softmax over incoming edges of j
///   h'_j  = ELU( concat_k  sum_i alpha_ij (W_k h_i) )
///
/// Callers supply the edge list (src, dst); self-loops should be included
/// (the paper's neighbourhood "includes o itself").
class GatLayer {
 public:
  GatLayer(ParameterSet& params, int in_dim, int out_dim_per_head, int heads, Rng& rng,
           bool average_heads = false);

  Var forward(Tape& tape, const Var& x, const std::vector<int>& edge_src,
              const std::vector<int>& edge_dst, int node_count) const;

  int out_dim() const {
    return average_heads_ ? head_dim_ : head_dim_ * heads_;
  }

 private:
  int heads_;
  int head_dim_;
  bool average_heads_;
  std::vector<Var> w_;      // per head [in x F]
  std::vector<Var> a_src_;  // per head [F x 1]
  std::vector<Var> a_dst_;  // per head [F x 1]
};

}  // namespace heterog::nn
