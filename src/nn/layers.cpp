#include "nn/layers.h"

#include <cmath>

namespace heterog::nn {

Var ParameterSet::add(Matrix init) {
  Tape scratch;  // leaves are not recorded; any tape works
  Var v = scratch.leaf(std::move(init), /*requires_grad=*/true);
  params_.push_back(v);
  return v;
}

int64_t ParameterSet::scalar_count() const {
  int64_t total = 0;
  for (const Var& p : params_) total += p.value().size();
  return total;
}

void ParameterSet::zero_grads() {
  for (const Var& p : params_) {
    Matrix& g = p.data()->ensure_grad();
    g.fill(0.0);
  }
}

AdamOptimizer::AdamOptimizer(ParameterSet& params, Options options)
    : params_(&params), options_(options) {
  for (const Var& p : params_->all()) {
    m_.push_back(Matrix::zeros(p.rows(), p.cols()));
    v_.push_back(Matrix::zeros(p.rows(), p.cols()));
  }
}

void AdamOptimizer::step() {
  check(m_.size() == params_->all().size(),
        "AdamOptimizer: parameters added after construction");
  ++step_count_;

  // Global-norm clipping.
  double scale_factor = 1.0;
  if (options_.clip_global_norm > 0.0) {
    double sq = 0.0;
    for (const Var& p : params_->all()) {
      const Matrix& g = p.data()->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) sq += g.data()[i] * g.data()[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_global_norm) {
      scale_factor = options_.clip_global_norm / norm;
    }
  }

  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));

  for (size_t i = 0; i < params_->all().size(); ++i) {
    const Var& p = params_->all()[i];
    Matrix& value = p.data()->value;
    Matrix& grad = p.data()->ensure_grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int64_t k = 0; k < value.size(); ++k) {
      const double g = grad.data()[k] * scale_factor;
      m.data()[k] = options_.beta1 * m.data()[k] + (1.0 - options_.beta1) * g;
      v.data()[k] = options_.beta2 * v.data()[k] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m.data()[k] / bias1;
      const double v_hat = v.data()[k] / bias2;
      value.data()[k] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
    grad.fill(0.0);
  }
}

Linear::Linear(ParameterSet& params, int in_dim, int out_dim, Rng& rng, bool bias) {
  weight_ = params.add(Matrix::glorot(in_dim, out_dim, rng));
  if (bias) bias_ = params.add(Matrix::zeros(1, out_dim));
}

Var Linear::forward(Tape& tape, const Var& x) const {
  Var out = tape.matmul(x, weight_);
  if (bias_.defined()) out = tape.add_row_broadcast(out, bias_);
  return out;
}

LayerNormLayer::LayerNormLayer(ParameterSet& params, int dim) {
  gain_ = params.add(Matrix(1, dim, 1.0));
  bias_ = params.add(Matrix::zeros(1, dim));
}

Var LayerNormLayer::forward(Tape& tape, const Var& x) const {
  return tape.layer_norm_rows(x, gain_, bias_);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(ParameterSet& params, int model_dim,
                                               int heads, Rng& rng)
    : heads_(heads),
      head_dim_(model_dim / heads),
      wq_(params, model_dim, model_dim, rng, false),
      wk_(params, model_dim, model_dim, rng, false),
      wv_(params, model_dim, model_dim, rng, false),
      wo_(params, model_dim, model_dim, rng) {
  check(model_dim % heads == 0, "MultiHeadSelfAttention: dim not divisible by heads");
}

Var MultiHeadSelfAttention::forward(Tape& tape, const Var& x) const {
  const Var q = wq_.forward(tape, x);
  const Var k = wk_.forward(tape, x);
  const Var v = wv_.forward(tape, x);
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(head_dim_));

  std::vector<Var> contexts;
  contexts.reserve(static_cast<size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const int start = h * head_dim_;
    const Var qh = tape.slice_cols(q, start, head_dim_);
    const Var kh = tape.slice_cols(k, start, head_dim_);
    const Var vh = tape.slice_cols(v, start, head_dim_);
    const Var scores =
        tape.scale(tape.matmul(qh, tape.transpose(kh)), inv_sqrt_dk);
    const Var probs = tape.softmax_rows(scores);
    contexts.push_back(tape.matmul(probs, vh));
  }
  return wo_.forward(tape, tape.concat_cols(contexts));
}

TransformerBlock::TransformerBlock(ParameterSet& params, int model_dim, int heads,
                                   int ffn_dim, Rng& rng)
    : attention_(params, model_dim, heads, rng),
      ln1_(params, model_dim),
      ln2_(params, model_dim),
      ffn1_(params, model_dim, ffn_dim, rng),
      ffn2_(params, ffn_dim, model_dim, rng) {}

Var TransformerBlock::forward(Tape& tape, const Var& x) const {
  const Var attended = ln1_.forward(tape, tape.add(x, attention_.forward(tape, x)));
  const Var ffn = ffn2_.forward(tape, tape.relu(ffn1_.forward(tape, attended)));
  return ln2_.forward(tape, tape.add(attended, ffn));
}

GatLayer::GatLayer(ParameterSet& params, int in_dim, int out_dim_per_head, int heads,
                   Rng& rng, bool average_heads)
    : heads_(heads), head_dim_(out_dim_per_head), average_heads_(average_heads) {
  for (int h = 0; h < heads; ++h) {
    Rng head_rng = rng.fork(static_cast<uint64_t>(h) + 1);
    w_.push_back(params.add(Matrix::glorot(in_dim, out_dim_per_head, head_rng)));
    a_src_.push_back(params.add(Matrix::glorot(out_dim_per_head, 1, head_rng)));
    a_dst_.push_back(params.add(Matrix::glorot(out_dim_per_head, 1, head_rng)));
  }
}

Var GatLayer::forward(Tape& tape, const Var& x, const std::vector<int>& edge_src,
                      const std::vector<int>& edge_dst, int node_count) const {
  check(edge_src.size() == edge_dst.size(), "GatLayer: edge list mismatch");
  std::vector<Var> head_outputs;
  head_outputs.reserve(static_cast<size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const Var hidden = tape.matmul(x, w_[static_cast<size_t>(h)]);  // [O x F]
    const Var src_feat = tape.gather_rows(hidden, edge_src);        // [E x F]
    const Var dst_feat = tape.gather_rows(hidden, edge_dst);
    const Var score_src = tape.matmul(src_feat, a_src_[static_cast<size_t>(h)]);
    const Var score_dst = tape.matmul(dst_feat, a_dst_[static_cast<size_t>(h)]);
    const Var scores = tape.leaky_relu(tape.add(score_src, score_dst));  // [E x 1]
    const Var alpha = tape.segment_softmax(scores, edge_dst, node_count);
    const Var messages = tape.mul_col_broadcast(src_feat, alpha);
    head_outputs.push_back(tape.segment_sum_rows(messages, edge_dst, node_count));
  }

  Var combined;
  if (average_heads_) {
    combined = head_outputs.front();
    for (size_t h = 1; h < head_outputs.size(); ++h) {
      combined = tape.add(combined, head_outputs[h]);
    }
    combined = tape.scale(combined, 1.0 / static_cast<double>(heads_));
  } else {
    combined = tape.concat_cols(head_outputs);
  }
  return tape.elu(combined);
}

}  // namespace heterog::nn
