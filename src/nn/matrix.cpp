#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace heterog::nn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  check(rows >= 0 && cols >= 0, "Matrix: negative shape");
}

Matrix Matrix::glorot(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-limit, limit);
  return m;
}

double& Matrix::at(int r, int c) {
  check(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at: out of range");
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Matrix::at(int r, int c) const {
  check(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at: out of range");
  return data_[static_cast<size_t>(r) * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.data()[static_cast<size_t>(c) * rows_ + r] = at(r, c);
  }
  return t;
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::add_in_place(const Matrix& other) {
  check(same_shape(other), "add_in_place: shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled_in_place(const Matrix& other, double factor) {
  check(same_shape(other), "add_scaled_in_place: shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

void Matrix::scale_in_place(double factor) {
  for (double& v : data_) v *= factor;
}

double Matrix::sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  check(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.data()[static_cast<size_t>(i) * a.cols() + k];
      if (aik == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(k) * b.cols();
      double* crow = c.data() + static_cast<size_t>(i) * c.cols();
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows(), "matmul_tn: dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    const double* arow = a.data() + static_cast<size_t>(k) * a.cols();
    const double* brow = b.data() + static_cast<size_t>(k) * b.cols();
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.data() + static_cast<size_t>(i) * c.cols();
      for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  check(a.cols() == b.cols(), "matmul_nt: dimension mismatch");
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * a.cols();
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.data() + static_cast<size_t>(j) * b.cols();
      double dot = 0.0;
      for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      c.data()[static_cast<size_t>(i) * b.rows() + j] = dot;
    }
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_in_place(b);
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_scaled_in_place(b, -1.0);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  check(a.same_shape(b), "hadamard: shape mismatch");
  Matrix c = a;
  for (int64_t i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

Matrix scale(const Matrix& a, double factor) {
  Matrix c = a;
  c.scale_in_place(factor);
  return c;
}

}  // namespace heterog::nn
