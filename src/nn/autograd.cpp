#include "nn/autograd.h"

#include <algorithm>
#include <cmath>

namespace heterog::nn {

double Var::scalar() const {
  check(rows() == 1 && cols() == 1, "Var::scalar: not 1x1");
  return value().at(0, 0);
}

Var Tape::leaf(Matrix value, bool requires_grad) {
  auto data = std::make_shared<VarData>();
  data->value = std::move(value);
  data->requires_grad = requires_grad;
  return Var(std::move(data));
}

Var Tape::record(Matrix value, std::vector<Var> inputs,
                 std::function<void(VarData&)> backward_body) {
  auto data = std::make_shared<VarData>();
  data->value = std::move(value);
  data->requires_grad = false;
  for (const Var& v : inputs) {
    check(v.defined(), "record: undefined input");
    data->inputs.push_back(v.data());
    data->requires_grad = data->requires_grad || v.data()->requires_grad;
  }
  if (data->requires_grad) {
    VarData* raw = data.get();
    data->backward = [raw, body = std::move(backward_body)]() { body(*raw); };
    order_.push_back(data);
  }
  return Var(std::move(data));
}

Var Tape::matmul(const Var& a, const Var& b) {
  Matrix out = nn::matmul(a.value(), b.value());
  return record(std::move(out), {a, b}, [a, b](VarData& node) {
    if (a.data()->requires_grad) {
      a.data()->ensure_grad().add_in_place(matmul_nt(node.grad, b.value()));
    }
    if (b.data()->requires_grad) {
      b.data()->ensure_grad().add_in_place(matmul_tn(a.value(), node.grad));
    }
  });
}

Var Tape::add(const Var& a, const Var& b) {
  return record(nn::add(a.value(), b.value()), {a, b}, [a, b](VarData& node) {
    if (a.data()->requires_grad) a.data()->ensure_grad().add_in_place(node.grad);
    if (b.data()->requires_grad) b.data()->ensure_grad().add_in_place(node.grad);
  });
}

Var Tape::subtract(const Var& a, const Var& b) {
  return record(nn::subtract(a.value(), b.value()), {a, b}, [a, b](VarData& node) {
    if (a.data()->requires_grad) a.data()->ensure_grad().add_in_place(node.grad);
    if (b.data()->requires_grad) {
      b.data()->ensure_grad().add_scaled_in_place(node.grad, -1.0);
    }
  });
}

Var Tape::add_row_broadcast(const Var& a, const Var& row) {
  check(row.rows() == 1 && row.cols() == a.cols(), "add_row_broadcast: bad row shape");
  Matrix out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) += row.value().at(0, c);
  }
  return record(std::move(out), {a, row}, [a, row](VarData& node) {
    if (a.data()->requires_grad) a.data()->ensure_grad().add_in_place(node.grad);
    if (row.data()->requires_grad) {
      Matrix& g = row.data()->ensure_grad();
      for (int r = 0; r < node.grad.rows(); ++r) {
        for (int c = 0; c < node.grad.cols(); ++c) g.at(0, c) += node.grad.at(r, c);
      }
    }
  });
}

Var Tape::hadamard(const Var& a, const Var& b) {
  return record(nn::hadamard(a.value(), b.value()), {a, b}, [a, b](VarData& node) {
    if (a.data()->requires_grad) {
      a.data()->ensure_grad().add_in_place(nn::hadamard(node.grad, b.value()));
    }
    if (b.data()->requires_grad) {
      b.data()->ensure_grad().add_in_place(nn::hadamard(node.grad, a.value()));
    }
  });
}

Var Tape::scale(const Var& a, double factor) {
  return record(nn::scale(a.value(), factor), {a}, [a, factor](VarData& node) {
    if (a.data()->requires_grad) {
      a.data()->ensure_grad().add_scaled_in_place(node.grad, factor);
    }
  });
}

Var Tape::mul_col_broadcast(const Var& a, const Var& col) {
  check(col.cols() == 1 && col.rows() == a.rows(), "mul_col_broadcast: bad col shape");
  Matrix out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    const double w = col.value().at(r, 0);
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) *= w;
  }
  return record(std::move(out), {a, col}, [a, col](VarData& node) {
    if (a.data()->requires_grad) {
      Matrix& g = a.data()->ensure_grad();
      for (int r = 0; r < node.grad.rows(); ++r) {
        const double w = col.value().at(r, 0);
        for (int c = 0; c < node.grad.cols(); ++c) g.at(r, c) += node.grad.at(r, c) * w;
      }
    }
    if (col.data()->requires_grad) {
      Matrix& g = col.data()->ensure_grad();
      for (int r = 0; r < node.grad.rows(); ++r) {
        double dot = 0.0;
        for (int c = 0; c < node.grad.cols(); ++c) {
          dot += node.grad.at(r, c) * a.value().at(r, c);
        }
        g.at(r, 0) += dot;
      }
    }
  });
}

Var Tape::relu(const Var& a) {
  Matrix out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = std::max(out.data()[i], 0.0);
  return record(std::move(out), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (a.data()->value.data()[i] > 0.0) g.data()[i] += node.grad.data()[i];
    }
  });
}

Var Tape::leaky_relu(const Var& a, double slope) {
  Matrix out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] *= slope;
  }
  return record(std::move(out), {a}, [a, slope](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      const double factor = a.data()->value.data()[i] > 0.0 ? 1.0 : slope;
      g.data()[i] += factor * node.grad.data()[i];
    }
  });
}

Var Tape::elu(const Var& a) {
  Matrix out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) {
    const double x = out.data()[i];
    if (x < 0.0) out.data()[i] = std::exp(x) - 1.0;
  }
  return record(std::move(out), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      const double x = a.data()->value.data()[i];
      const double factor = x > 0.0 ? 1.0 : std::exp(x);
      g.data()[i] += factor * node.grad.data()[i];
    }
  });
}

Var Tape::tanh_act(const Var& a) {
  Matrix out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
  return record(std::move(out), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      const double y = node.value.data()[i];
      g.data()[i] += (1.0 - y * y) * node.grad.data()[i];
    }
  });
}

namespace {

Matrix softmax_rows_value(const Matrix& a) {
  Matrix out = a;
  for (int r = 0; r < out.rows(); ++r) {
    double row_max = -1e300;
    for (int c = 0; c < out.cols(); ++c) row_max = std::max(row_max, out.at(r, c));
    double total = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      out.at(r, c) = std::exp(out.at(r, c) - row_max);
      total += out.at(r, c);
    }
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) /= total;
  }
  return out;
}

}  // namespace

Var Tape::softmax_rows(const Var& a) {
  return record(softmax_rows_value(a.value()), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    const Matrix& p = node.value;
    for (int r = 0; r < p.rows(); ++r) {
      double dot = 0.0;
      for (int c = 0; c < p.cols(); ++c) dot += node.grad.at(r, c) * p.at(r, c);
      for (int c = 0; c < p.cols(); ++c) {
        g.at(r, c) += p.at(r, c) * (node.grad.at(r, c) - dot);
      }
    }
  });
}

Var Tape::log_softmax_rows(const Var& a) {
  Matrix out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    double row_max = -1e300;
    for (int c = 0; c < out.cols(); ++c) row_max = std::max(row_max, out.at(r, c));
    double total = 0.0;
    for (int c = 0; c < out.cols(); ++c) total += std::exp(out.at(r, c) - row_max);
    const double log_z = row_max + std::log(total);
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) -= log_z;
  }
  return record(std::move(out), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int r = 0; r < node.value.rows(); ++r) {
      double grad_sum = 0.0;
      for (int c = 0; c < node.value.cols(); ++c) grad_sum += node.grad.at(r, c);
      for (int c = 0; c < node.value.cols(); ++c) {
        g.at(r, c) += node.grad.at(r, c) - std::exp(node.value.at(r, c)) * grad_sum;
      }
    }
  });
}

Var Tape::layer_norm_rows(const Var& a, const Var& gain, const Var& bias,
                          double epsilon) {
  const int n = a.rows(), d = a.cols();
  check(gain.rows() == 1 && gain.cols() == d, "layer_norm: bad gain shape");
  check(bias.rows() == 1 && bias.cols() == d, "layer_norm: bad bias shape");

  // Cache normalised activations and inverse stddevs for the backward pass.
  auto xhat = std::make_shared<Matrix>(n, d);
  auto inv_std = std::make_shared<std::vector<double>>(static_cast<size_t>(n));
  Matrix out(n, d);
  for (int r = 0; r < n; ++r) {
    double mean = 0.0;
    for (int c = 0; c < d; ++c) mean += a.value().at(r, c);
    mean /= d;
    double var = 0.0;
    for (int c = 0; c < d; ++c) {
      const double diff = a.value().at(r, c) - mean;
      var += diff * diff;
    }
    var /= d;
    const double istd = 1.0 / std::sqrt(var + epsilon);
    (*inv_std)[static_cast<size_t>(r)] = istd;
    for (int c = 0; c < d; ++c) {
      const double norm = (a.value().at(r, c) - mean) * istd;
      xhat->at(r, c) = norm;
      out.at(r, c) = gain.value().at(0, c) * norm + bias.value().at(0, c);
    }
  }

  return record(std::move(out), {a, gain, bias},
                [a, gain, bias, xhat, inv_std](VarData& node) {
                  const int n2 = node.value.rows(), d2 = node.value.cols();
                  if (gain.data()->requires_grad) {
                    Matrix& gg = gain.data()->ensure_grad();
                    for (int r = 0; r < n2; ++r) {
                      for (int c = 0; c < d2; ++c) {
                        gg.at(0, c) += node.grad.at(r, c) * xhat->at(r, c);
                      }
                    }
                  }
                  if (bias.data()->requires_grad) {
                    Matrix& bg = bias.data()->ensure_grad();
                    for (int r = 0; r < n2; ++r) {
                      for (int c = 0; c < d2; ++c) bg.at(0, c) += node.grad.at(r, c);
                    }
                  }
                  if (a.data()->requires_grad) {
                    Matrix& ag = a.data()->ensure_grad();
                    for (int r = 0; r < n2; ++r) {
                      // dxhat = dy * gain
                      double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
                      for (int c = 0; c < d2; ++c) {
                        const double dxh = node.grad.at(r, c) * gain.value().at(0, c);
                        sum_dxhat += dxh;
                        sum_dxhat_xhat += dxh * xhat->at(r, c);
                      }
                      const double istd = (*inv_std)[static_cast<size_t>(r)];
                      for (int c = 0; c < d2; ++c) {
                        const double dxh = node.grad.at(r, c) * gain.value().at(0, c);
                        ag.at(r, c) += istd * (dxh - sum_dxhat / d2 -
                                               xhat->at(r, c) * sum_dxhat_xhat / d2);
                      }
                    }
                  }
                });
}

Var Tape::transpose(const Var& a) {
  return record(a.value().transpose(), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    a.data()->ensure_grad().add_in_place(node.grad.transpose());
  });
}

Var Tape::concat_cols(const std::vector<Var>& parts) {
  check(!parts.empty(), "concat_cols: empty");
  const int n = parts.front().rows();
  int total_cols = 0;
  for (const Var& p : parts) {
    check(p.rows() == n, "concat_cols: row mismatch");
    total_cols += p.cols();
  }
  Matrix out(n, total_cols);
  int offset = 0;
  for (const Var& p : parts) {
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < p.cols(); ++c) out.at(r, offset + c) = p.value().at(r, c);
    }
    offset += p.cols();
  }
  return record(std::move(out), parts, [parts](VarData& node) {
    int off = 0;
    for (const Var& p : parts) {
      if (p.data()->requires_grad) {
        Matrix& g = p.data()->ensure_grad();
        for (int r = 0; r < g.rows(); ++r) {
          for (int c = 0; c < g.cols(); ++c) g.at(r, c) += node.grad.at(r, off + c);
        }
      }
      off += p.cols();
    }
  });
}

Var Tape::slice_cols(const Var& a, int start, int count) {
  check(start >= 0 && count > 0 && start + count <= a.cols(), "slice_cols: bad range");
  Matrix out(a.rows(), count);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < count; ++c) out.at(r, c) = a.value().at(r, start + c);
  }
  return record(std::move(out), {a}, [a, start](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int r = 0; r < node.grad.rows(); ++r) {
      for (int c = 0; c < node.grad.cols(); ++c) g.at(r, start + c) += node.grad.at(r, c);
    }
  });
}

Var Tape::gather_rows(const Var& a, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    check(src >= 0 && src < a.rows(), "gather_rows: index out of range");
    for (int c = 0; c < a.cols(); ++c) {
      out.at(static_cast<int>(i), c) = a.value().at(src, c);
    }
  }
  return record(std::move(out), {a}, [a, indices](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (size_t i = 0; i < indices.size(); ++i) {
      for (int c = 0; c < g.cols(); ++c) {
        g.at(indices[i], c) += node.grad.at(static_cast<int>(i), c);
      }
    }
  });
}

Var Tape::segment_sum_rows(const Var& a, const std::vector<int>& segments,
                           int segment_count) {
  check(static_cast<int>(segments.size()) == a.rows(), "segment_sum_rows: size mismatch");
  Matrix out(segment_count, a.cols());
  for (size_t e = 0; e < segments.size(); ++e) {
    const int s = segments[e];
    check(s >= 0 && s < segment_count, "segment_sum_rows: bad segment");
    for (int c = 0; c < a.cols(); ++c) {
      out.at(s, c) += a.value().at(static_cast<int>(e), c);
    }
  }
  return record(std::move(out), {a}, [a, segments](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (size_t e = 0; e < segments.size(); ++e) {
      for (int c = 0; c < g.cols(); ++c) {
        g.at(static_cast<int>(e), c) += node.grad.at(segments[e], c);
      }
    }
  });
}

Var Tape::segment_mean_rows(const Var& a, const std::vector<int>& segments,
                            int segment_count) {
  std::vector<double> counts(static_cast<size_t>(segment_count), 0.0);
  for (int s : segments) {
    check(s >= 0 && s < segment_count, "segment_mean_rows: bad segment");
    counts[static_cast<size_t>(s)] += 1.0;
  }
  const Var sums = segment_sum_rows(a, segments, segment_count);
  // Scale each row by 1/count using mul_col_broadcast with a constant column.
  Matrix inv(segment_count, 1);
  for (int s = 0; s < segment_count; ++s) {
    inv.at(s, 0) = counts[static_cast<size_t>(s)] > 0.0
                       ? 1.0 / counts[static_cast<size_t>(s)]
                       : 0.0;
  }
  return mul_col_broadcast(sums, leaf(std::move(inv), false));
}

Var Tape::segment_softmax(const Var& a, const std::vector<int>& segments,
                          int segment_count) {
  check(static_cast<int>(segments.size()) == a.rows(), "segment_softmax: size mismatch");
  const int h = a.cols();
  Matrix out = a.value();
  // Max per (segment, column) for numerical stability.
  Matrix seg_max(segment_count, h, -1e300);
  for (size_t e = 0; e < segments.size(); ++e) {
    const int s = segments[e];
    check(s >= 0 && s < segment_count, "segment_softmax: bad segment");
    for (int c = 0; c < h; ++c) {
      seg_max.at(s, c) = std::max(seg_max.at(s, c), out.at(static_cast<int>(e), c));
    }
  }
  Matrix seg_sum(segment_count, h);
  for (size_t e = 0; e < segments.size(); ++e) {
    for (int c = 0; c < h; ++c) {
      double& v = out.at(static_cast<int>(e), c);
      v = std::exp(v - seg_max.at(segments[e], c));
      seg_sum.at(segments[e], c) += v;
    }
  }
  for (size_t e = 0; e < segments.size(); ++e) {
    for (int c = 0; c < h; ++c) {
      out.at(static_cast<int>(e), c) /= seg_sum.at(segments[e], c);
    }
  }
  return record(std::move(out), {a}, [a, segments, segment_count](VarData& node) {
    if (!a.data()->requires_grad) return;
    const Matrix& p = node.value;
    const int cols = p.cols();
    // dot[s, c] = sum over e in s of grad * p
    Matrix dot(segment_count, cols);
    for (size_t e = 0; e < segments.size(); ++e) {
      for (int c = 0; c < cols; ++c) {
        dot.at(segments[e], c) += node.grad.at(static_cast<int>(e), c) *
                                  p.at(static_cast<int>(e), c);
      }
    }
    Matrix& g = a.data()->ensure_grad();
    for (size_t e = 0; e < segments.size(); ++e) {
      for (int c = 0; c < cols; ++c) {
        g.at(static_cast<int>(e), c) +=
            p.at(static_cast<int>(e), c) *
            (node.grad.at(static_cast<int>(e), c) - dot.at(segments[e], c));
      }
    }
  });
}

Var Tape::sum_all(const Var& a) {
  Matrix out(1, 1);
  out.at(0, 0) = a.value().sum();
  return record(std::move(out), {a}, [a](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    const double d = node.grad.at(0, 0);
    for (int64_t i = 0; i < g.size(); ++i) g.data()[i] += d;
  });
}

Var Tape::mean_all(const Var& a) {
  const double inv = 1.0 / static_cast<double>(a.value().size());
  return scale(sum_all(a), inv);
}

Var Tape::pick_per_row(const Var& a, const std::vector<int>& columns) {
  check(static_cast<int>(columns.size()) == a.rows(), "pick_per_row: size mismatch");
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const int c = columns[static_cast<size_t>(r)];
    check(c >= 0 && c < a.cols(), "pick_per_row: column out of range");
    out.at(r, 0) = a.value().at(r, c);
  }
  return record(std::move(out), {a}, [a, columns](VarData& node) {
    if (!a.data()->requires_grad) return;
    Matrix& g = a.data()->ensure_grad();
    for (int r = 0; r < g.rows(); ++r) {
      g.at(r, columns[static_cast<size_t>(r)]) += node.grad.at(r, 0);
    }
  });
}

void Tape::backward(const Var& loss) {
  check(loss.defined(), "backward: undefined loss");
  check(loss.rows() == 1 && loss.cols() == 1, "backward: loss must be 1x1");
  loss.data()->ensure_grad().at(0, 0) = 1.0;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    VarData& node = **it;
    if (node.backward && node.grad.rows() == node.value.rows() &&
        node.grad.cols() == node.value.cols()) {
      node.backward();
    }
  }
}

}  // namespace heterog::nn
