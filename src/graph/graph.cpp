#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/check.h"

namespace heterog::graph {

OpId GraphDef::add_op(OpDef op) {
  op.id = static_cast<OpId>(ops_.size());
  ops_.push_back(std::move(op));
  succ_.emplace_back();
  pred_.emplace_back();
  return ops_.back().id;
}

void GraphDef::add_edge(OpId producer, OpId consumer) {
  check(producer >= 0 && producer < op_count(), "add_edge: bad producer");
  check(consumer >= 0 && consumer < op_count(), "add_edge: bad consumer");
  check(producer != consumer, "add_edge: self loop");
  auto& out = succ_[static_cast<size_t>(producer)];
  if (std::find(out.begin(), out.end(), consumer) != out.end()) return;
  out.push_back(consumer);
  pred_[static_cast<size_t>(consumer)].push_back(producer);
  ++edge_count_;
}

const OpDef& GraphDef::op(OpId id) const {
  check(id >= 0 && id < op_count(), "op: bad id");
  return ops_[static_cast<size_t>(id)];
}

OpDef& GraphDef::mutable_op(OpId id) {
  check(id >= 0 && id < op_count(), "mutable_op: bad id");
  return ops_[static_cast<size_t>(id)];
}

const std::vector<OpId>& GraphDef::successors(OpId id) const {
  check(id >= 0 && id < op_count(), "successors: bad id");
  return succ_[static_cast<size_t>(id)];
}

const std::vector<OpId>& GraphDef::predecessors(OpId id) const {
  check(id >= 0 && id < op_count(), "predecessors: bad id");
  return pred_[static_cast<size_t>(id)];
}

bool GraphDef::has_edge(OpId producer, OpId consumer) const {
  const auto& out = successors(producer);
  return std::find(out.begin(), out.end(), consumer) != out.end();
}

std::vector<OpId> GraphDef::topological_order() const {
  std::vector<int> in_degree(static_cast<size_t>(op_count()), 0);
  for (OpId id = 0; id < op_count(); ++id) {
    in_degree[static_cast<size_t>(id)] = static_cast<int>(pred_[static_cast<size_t>(id)].size());
  }
  std::deque<OpId> ready;
  for (OpId id = 0; id < op_count(); ++id) {
    if (in_degree[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<OpId> order;
  order.reserve(static_cast<size_t>(op_count()));
  while (!ready.empty()) {
    OpId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (OpId s : succ_[static_cast<size_t>(id)]) {
      if (--in_degree[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  check(static_cast<int>(order.size()) == op_count(), "topological_order: graph has a cycle");
  return order;
}

bool GraphDef::validate(std::string* error) const {
  for (OpId id = 0; id < op_count(); ++id) {
    const OpDef& o = op(id);
    if (o.id != id) {
      if (error) *error = "op id mismatch at index " + std::to_string(id);
      return false;
    }
    if (o.flops_per_sample < 0 || o.flops_fixed < 0 || o.param_bytes < 0 ||
        o.out_bytes_per_sample < 0 || o.out_bytes_fixed < 0) {
      if (error) *error = "negative cost on op " + o.name;
      return false;
    }
  }
  // Cycle detection via Kahn count.
  std::vector<int> in_degree(static_cast<size_t>(op_count()), 0);
  for (OpId id = 0; id < op_count(); ++id) {
    in_degree[static_cast<size_t>(id)] = static_cast<int>(pred_[static_cast<size_t>(id)].size());
  }
  std::deque<OpId> ready;
  for (OpId id = 0; id < op_count(); ++id) {
    if (in_degree[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  int visited = 0;
  while (!ready.empty()) {
    OpId id = ready.front();
    ready.pop_front();
    ++visited;
    for (OpId s : succ_[static_cast<size_t>(id)]) {
      if (--in_degree[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (visited != op_count()) {
    if (error) *error = "graph has a cycle";
    return false;
  }
  return true;
}

int64_t GraphDef::total_param_bytes() const {
  int64_t total = 0;
  for (const OpDef& o : ops_) total += o.param_bytes;
  return total;
}

double GraphDef::total_flops() const {
  double total = 0.0;
  for (const OpDef& o : ops_) total += o.flops(global_batch_);
  return total;
}

std::vector<GraphDef::NearestSource> GraphDef::nearest_sources(
    const std::vector<OpId>& sources) const {
  std::vector<NearestSource> result(static_cast<size_t>(op_count()));
  std::deque<OpId> frontier;
  for (size_t i = 0; i < sources.size(); ++i) {
    OpId s = sources[i];
    check(s >= 0 && s < op_count(), "nearest_sources: bad source");
    auto& ns = result[static_cast<size_t>(s)];
    if (ns.source_index == -1) {
      ns.source_index = static_cast<int>(i);
      ns.hops = 0;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    OpId id = frontier.front();
    frontier.pop_front();
    const auto& here = result[static_cast<size_t>(id)];
    auto relax = [&](OpId nb) {
      auto& entry = result[static_cast<size_t>(nb)];
      if (entry.source_index == -1) {
        entry.source_index = here.source_index;
        entry.hops = here.hops + 1;
        frontier.push_back(nb);
      }
    };
    for (OpId s : succ_[static_cast<size_t>(id)]) relax(s);
    for (OpId p : pred_[static_cast<size_t>(id)]) relax(p);
  }
  return result;
}

}  // namespace heterog::graph
