// Expands a forward-only model DAG into a full training DAG (forward +
// backward + apply), the form the paper's Graph Analyzer hands to the
// Strategy Maker.
//
// Backward generation follows standard reverse-mode structure:
//   * every forward op o gets an input-gradient op bp(o) that depends on
//     fw(o) (activations) and on bp(s) for every forward successor s
//     (incoming gradient);
//   * every parameter-owning op additionally gets a parameter-gradient op
//     (Conv2DBpFilter for convolutions, GenericBackward otherwise) whose
//     `grad_of` field names the forward op — the Graph Compiler inserts
//     gradient aggregation after these when the op is replicated;
//   * every parameter-owning op gets an ApplyGradient op consuming the
//     parameter gradient.
//
// Cost conventions: backward work totals ~2x forward flops (split evenly
// between input- and parameter-gradients when both exist), input-gradient
// tensors are sized like the forward inputs, parameter-gradient tensors are
// sized like the parameters (batch-independent).
#pragma once

#include "graph/graph.h"

namespace heterog::graph {

/// Builds the training DAG for a forward graph. The input must be a valid
/// DAG containing only forward-role ops.
GraphDef build_training_graph(const GraphDef& forward);

/// Counts ops per role; convenience for tests and reporting.
struct RoleCounts {
  int forward = 0;
  int backward = 0;
  int apply = 0;
};
RoleCounts count_roles(const GraphDef& graph);

/// Unrolls a training graph over `iterations` consecutive steps for
/// steady-state timing: op i of iteration k is op `k * op_count + i`, and a
/// parameter op's forward copy in iteration k+1 depends on its apply op in
/// iteration k (synchronous SGD: the next step reads updated parameters).
/// Everything else is independent across iterations, so communication tails
/// (pulls, collectives) overlap the next iteration's forward pass exactly as
/// they do in a real training loop.
GraphDef unroll_iterations(const GraphDef& training_graph, int iterations);

}  // namespace heterog::graph
