// Micro-batch pipelining (the integration sketched in the paper's Sec. 7:
// "split a mini-batch into micro-batches, carry out pipelined training
// across operations deployed on different devices").
//
// pipeline_microbatches() rewrites a training graph into m micro-batch
// copies of the forward/backward portion, each processing 1/m of the global
// batch, with per-parameter gradient accumulation feeding a single apply:
//
//   fw_i / bw_i copies (i = 0..m-1, costs scaled by 1/m)
//   grad_i(o)  ->  accumulate(o)  ->  apply(o)
//
// Parameters stay shared: only the first micro-batch's copy of a parameter
// op carries param_bytes (variable residency) and the accumulation op takes
// over the `grad_of` marker, so the Graph Compiler's gradient-aggregation
// pass (PS / AllReduce) applies unchanged to the accumulated gradients —
// synchronous-SGD semantics are preserved exactly (gradients of the full
// mini-batch are summed before the update), unlike asynchronous pipeline
// schemes.
//
// Micro-batches carry no artificial cross-copy dependencies; the simulator's
// resource model serialises same-device work, so stages on different devices
// pipeline naturally — which is precisely the benefit for the mostly-MP
// plans HeteroG produces for large models.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace heterog::graph {

struct PipelineResult {
  GraphDef graph;
  /// For every op of `graph`, the op of the base training graph it realises.
  std::vector<OpId> origin;
  int micro_batches = 1;
};

/// Requires a training graph (build_training_graph output) and m >= 1.
/// m == 1 returns a structural copy.
PipelineResult pipeline_microbatches(const GraphDef& training_graph, int micro_batches);

}  // namespace heterog::graph
