#include "graph/op.h"

namespace heterog::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2D:
      return "Conv2D";
    case OpKind::kDepthwiseConv2D:
      return "DepthwiseConv2D";
    case OpKind::kConv1D:
      return "Conv1D";
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kBatchNorm:
      return "BatchNorm";
    case OpKind::kLayerNorm:
      return "LayerNorm";
    case OpKind::kRelu:
      return "Relu";
    case OpKind::kPool:
      return "Pool";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kEmbeddingLookup:
      return "EmbeddingLookup";
    case OpKind::kAttentionScore:
      return "AttentionScore";
    case OpKind::kAttentionContext:
      return "AttentionContext";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kLoss:
      return "Loss";
    case OpKind::kConv2DBpFilter:
      return "Conv2DBpFilter";
    case OpKind::kConv2DBpInput:
      return "Conv2DBpInput";
    case OpKind::kGenericBackward:
      return "GenericBackward";
    case OpKind::kApplyGradient:
      return "ApplyGradient";
    case OpKind::kSplit:
      return "Split";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kIdentity:
      return "Identity";
  }
  return "Unknown";
}

bool is_compute_intensive(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2D:
    case OpKind::kDepthwiseConv2D:
    case OpKind::kConv1D:
    case OpKind::kMatMul:
    case OpKind::kAttentionScore:
    case OpKind::kAttentionContext:
    case OpKind::kConv2DBpFilter:
    case OpKind::kConv2DBpInput:
      return true;
    default:
      return false;
  }
}

const char* op_role_name(OpRole role) {
  switch (role) {
    case OpRole::kForward:
      return "forward";
    case OpRole::kBackward:
      return "backward";
    case OpRole::kApply:
      return "apply";
  }
  return "unknown";
}

}  // namespace heterog::graph
