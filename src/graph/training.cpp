#include "graph/training.h"

#include <algorithm>

#include "common/check.h"

namespace heterog::graph {

namespace {

/// Sums the output bytes (per-sample, fixed) of the predecessors of `id`,
/// used to size input-gradient tensors.
struct BytesPair {
  int64_t per_sample = 0;
  int64_t fixed = 0;
};

BytesPair input_bytes(const GraphDef& g, OpId id) {
  BytesPair total;
  const bool aliased = g.op(id).kind == OpKind::kAdd;
  for (OpId p : g.predecessors(id)) {
    if (aliased) {
      // The gradient of an elementwise Add is the incoming gradient itself,
      // aliased to every input — one tensor, not one per input.
      total.per_sample = std::max(total.per_sample, g.op(p).out_bytes_per_sample);
      total.fixed = std::max(total.fixed, g.op(p).out_bytes_fixed);
    } else {
      total.per_sample += g.op(p).out_bytes_per_sample;
      total.fixed += g.op(p).out_bytes_fixed;
    }
  }
  return total;
}

OpKind input_grad_kind(OpKind forward_kind) {
  switch (forward_kind) {
    case OpKind::kConv2D:
    case OpKind::kDepthwiseConv2D:
      return OpKind::kConv2DBpInput;
    case OpKind::kMatMul:
    case OpKind::kConv1D:
    case OpKind::kAttentionScore:
    case OpKind::kAttentionContext:
      return OpKind::kMatMul;  // gradients of dense math are dense math
    default:
      return OpKind::kGenericBackward;
  }
}

OpKind param_grad_kind(OpKind forward_kind) {
  switch (forward_kind) {
    case OpKind::kConv2D:
    case OpKind::kDepthwiseConv2D:
      return OpKind::kConv2DBpFilter;
    case OpKind::kMatMul:
    case OpKind::kConv1D:
      return OpKind::kMatMul;
    default:
      return OpKind::kGenericBackward;
  }
}

}  // namespace

GraphDef build_training_graph(const GraphDef& forward) {
  std::string error;
  check_lazy(forward.validate(&error), [&] { return "build_training_graph: " + error; });
  for (const OpDef& o : forward.ops()) {
    check(o.role == OpRole::kForward, "build_training_graph: input has non-forward ops");
  }

  GraphDef g(forward.name(), forward.global_batch());

  // 1. Copy forward ops and edges (ids are preserved because we copy in id
  //    order into an empty graph).
  for (const OpDef& o : forward.ops()) {
    OpDef copy = o;
    copy.id = kInvalidOp;
    OpId nid = g.add_op(std::move(copy));
    check(nid == o.id, "forward id not preserved");
  }
  for (OpId id = 0; id < forward.op_count(); ++id) {
    for (OpId s : forward.successors(id)) g.add_edge(id, s);
  }

  // 2. Backward ops, generated in reverse topological order so that bp(succ)
  //    already exists when bp(op) is created.
  std::vector<OpId> order = forward.topological_order();
  std::vector<OpId> input_grad_op(static_cast<size_t>(forward.op_count()), kInvalidOp);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId fid = *it;
    const OpDef& fwd = forward.op(fid);
    const bool has_params = fwd.param_bytes > 0;
    const double bw_total_flops_ps = 2.0 * fwd.flops_per_sample;
    const double bw_total_flops_fixed = 2.0 * fwd.flops_fixed;
    const double split = has_params ? 0.5 : 1.0;

    // 2a. Input-gradient op.
    OpDef bp;
    bp.name = fwd.name + "/grad_input";
    bp.kind = input_grad_kind(fwd.kind);
    bp.role = OpRole::kBackward;
    bp.flops_per_sample = bw_total_flops_ps * split;
    bp.flops_fixed = bw_total_flops_fixed * split;
    const BytesPair in_bytes = input_bytes(forward, fid);
    bp.out_bytes_per_sample = in_bytes.per_sample;
    bp.out_bytes_fixed = in_bytes.fixed;
    bp.batch_divisible = fwd.batch_divisible;
    bp.mirror_of = fid;
    const OpId bp_id = g.add_op(std::move(bp));
    input_grad_op[static_cast<size_t>(fid)] = bp_id;

    // Dependencies: forward activation + gradients from forward successors.
    g.add_edge(fid, bp_id);
    for (OpId s : forward.successors(fid)) {
      const OpId sg = input_grad_op[static_cast<size_t>(s)];
      check(sg != kInvalidOp, "reverse order violated");
      g.add_edge(sg, bp_id);
    }

    // 2b. Parameter-gradient + apply ops.
    if (has_params) {
      OpDef pg;
      pg.name = fwd.name + "/grad_param";
      pg.kind = param_grad_kind(fwd.kind);
      pg.role = OpRole::kBackward;
      pg.flops_per_sample = bw_total_flops_ps * (1.0 - split);
      pg.flops_fixed = bw_total_flops_fixed * (1.0 - split);
      pg.out_bytes_per_sample = 0;
      pg.out_bytes_fixed = fwd.param_bytes;  // gradient is parameter-shaped
      pg.batch_divisible = fwd.batch_divisible;
      pg.grad_of = fid;
      pg.mirror_of = fid;
      const OpId pg_id = g.add_op(std::move(pg));
      g.add_edge(fid, pg_id);
      for (OpId s : forward.successors(fid)) {
        g.add_edge(input_grad_op[static_cast<size_t>(s)], pg_id);
      }

      OpDef apply;
      apply.name = fwd.name + "/apply";
      apply.kind = OpKind::kApplyGradient;
      apply.role = OpRole::kApply;
      // SGD-style update touches each parameter a constant number of times.
      apply.flops_per_sample = 0.0;
      apply.flops_fixed = static_cast<double>(fwd.param_bytes) / 4.0 * 2.0;
      apply.out_bytes_per_sample = 0;
      apply.out_bytes_fixed = 0;
      apply.batch_divisible = false;
      apply.mirror_of = fid;
      const OpId apply_id = g.add_op(std::move(apply));
      g.add_edge(pg_id, apply_id);
    }
  }

  check(g.validate(), "build_training_graph produced an invalid graph");
  return g;
}

GraphDef unroll_iterations(const GraphDef& training_graph, int iterations) {
  check(iterations >= 1, "unroll_iterations: need at least one iteration");
  const int n = training_graph.op_count();
  GraphDef g(training_graph.name() + "/x" + std::to_string(iterations),
             training_graph.global_batch());

  for (int iter = 0; iter < iterations; ++iter) {
    for (const OpDef& op : training_graph.ops()) {
      OpDef copy = op;
      copy.id = kInvalidOp;
      if (iter > 0) copy.name += "#" + std::to_string(iter);
      if (copy.grad_of != kInvalidOp) copy.grad_of += iter * n;
      if (copy.mirror_of != kInvalidOp) copy.mirror_of += iter * n;
      const OpId nid = g.add_op(std::move(copy));
      check(nid == iter * n + op.id, "unroll_iterations: id scheme violated");
    }
  }
  for (int iter = 0; iter < iterations; ++iter) {
    for (OpId id = 0; id < n; ++id) {
      for (OpId s : training_graph.successors(id)) {
        g.add_edge(iter * n + id, iter * n + s);
      }
    }
  }
  // Parameter dependencies across iterations.
  for (int iter = 0; iter + 1 < iterations; ++iter) {
    for (const OpDef& op : training_graph.ops()) {
      if (op.role != OpRole::kApply) continue;
      check(op.mirror_of != kInvalidOp, "unroll_iterations: apply without mirror");
      g.add_edge(iter * n + op.id, (iter + 1) * n + op.mirror_of);
    }
  }
  check(g.validate(), "unroll_iterations: invalid result");
  return g;
}

RoleCounts count_roles(const GraphDef& graph) {
  RoleCounts counts;
  for (const OpDef& o : graph.ops()) {
    switch (o.role) {
      case OpRole::kForward:
        ++counts.forward;
        break;
      case OpRole::kBackward:
        ++counts.backward;
        break;
      case OpRole::kApply:
        ++counts.apply;
        break;
    }
  }
  return counts;
}

}  // namespace heterog::graph
