// The single-GPU training DAG (the Graph Analyzer's output in the paper).
#pragma once

#include <string>
#include <vector>

#include "graph/op.h"

namespace heterog::graph {

/// A directed acyclic computation graph with a global batch size.
///
/// Node ids are dense [0, op_count). Edges carry the producer's output
/// tensor; the tensor size is derived from the producer op and the batch.
class GraphDef {
 public:
  GraphDef() = default;
  GraphDef(std::string name, double global_batch)
      : name_(std::move(name)), global_batch_(global_batch) {}

  /// Adds an op; fills in its id and returns it.
  OpId add_op(OpDef op);

  /// Adds edge producer -> consumer. Duplicate edges are ignored.
  void add_edge(OpId producer, OpId consumer);

  const std::string& name() const { return name_; }
  double global_batch() const { return global_batch_; }
  void set_global_batch(double batch) { global_batch_ = batch; }

  int op_count() const { return static_cast<int>(ops_.size()); }
  const OpDef& op(OpId id) const;
  OpDef& mutable_op(OpId id);
  const std::vector<OpDef>& ops() const { return ops_; }

  const std::vector<OpId>& successors(OpId id) const;
  const std::vector<OpId>& predecessors(OpId id) const;

  bool has_edge(OpId producer, OpId consumer) const;
  int edge_count() const { return edge_count_; }

  /// Topological order; throws CheckError if the graph has a cycle.
  std::vector<OpId> topological_order() const;

  /// True iff the graph is acyclic and all edges reference valid ops.
  bool validate(std::string* error = nullptr) const;

  /// Total parameter bytes over all ops.
  int64_t total_param_bytes() const;

  /// Total forward+backward flops at the graph's global batch.
  double total_flops() const;

  /// Undirected hop distances from a set of source nodes (multi-source BFS).
  /// Returns for every node the index (into `sources`) of the nearest source
  /// and its hop distance; used by the paper's nearest-neighbour grouping.
  struct NearestSource {
    int source_index = -1;
    int hops = -1;
  };
  std::vector<NearestSource> nearest_sources(const std::vector<OpId>& sources) const;

 private:
  std::string name_;
  double global_batch_ = 1.0;
  std::vector<OpDef> ops_;
  std::vector<std::vector<OpId>> succ_;
  std::vector<std::vector<OpId>> pred_;
  int edge_count_ = 0;
};

}  // namespace heterog::graph
