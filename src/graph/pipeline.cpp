#include "graph/pipeline.h"

#include <algorithm>

#include "common/check.h"

namespace heterog::graph {

PipelineResult pipeline_microbatches(const GraphDef& training_graph, int micro_batches) {
  check(micro_batches >= 1, "pipeline_microbatches: need at least one micro-batch");
  const int n = training_graph.op_count();
  const double inv_m = 1.0 / micro_batches;

  PipelineResult result;
  result.micro_batches = micro_batches;
  result.graph = GraphDef(training_graph.name() + "/mb" + std::to_string(micro_batches),
                          training_graph.global_batch());
  GraphDef& g = result.graph;

  // new id of op `i` in micro-batch copy `m` (apply ops exist once, in copy 0;
  // kInvalidOp marks "not instantiated in this copy").
  std::vector<std::vector<OpId>> copy_id(
      static_cast<size_t>(micro_batches), std::vector<OpId>(static_cast<size_t>(n), kInvalidOp));

  // 1. Forward/backward copies, one per micro-batch. Apply ops are deferred.
  for (int m = 0; m < micro_batches; ++m) {
    for (const OpDef& op : training_graph.ops()) {
      if (op.role == OpRole::kApply) continue;
      OpDef copy = op;
      copy.id = kInvalidOp;
      if (m > 0) copy.name += "~mb" + std::to_string(m);
      // Each copy processes 1/m of the batch.
      copy.flops_per_sample *= inv_m;
      copy.out_bytes_per_sample =
          static_cast<int64_t>(static_cast<double>(copy.out_bytes_per_sample) * inv_m);
      // Parameters are shared: only copy 0 carries the variable residency.
      if (m > 0) copy.param_bytes = 0;
      // Per-micro gradient producers become plain backward ops; the
      // accumulation op takes over the grad_of marker below.
      const bool is_grad = op.grad_of != kInvalidOp;
      copy.grad_of = kInvalidOp;
      copy.mirror_of = kInvalidOp;  // re-pointed after ids are known
      (void)is_grad;
      const OpId nid = g.add_op(std::move(copy));
      copy_id[static_cast<size_t>(m)][static_cast<size_t>(op.id)] = nid;
      result.origin.push_back(op.id);
    }
  }
  // mirror_of re-pointing (to the same micro-batch's copy).
  for (int m = 0; m < micro_batches; ++m) {
    for (const OpDef& op : training_graph.ops()) {
      if (op.role == OpRole::kApply) continue;
      if (op.mirror_of == kInvalidOp) continue;
      const OpId nid = copy_id[static_cast<size_t>(m)][static_cast<size_t>(op.id)];
      g.mutable_op(nid).mirror_of =
          copy_id[static_cast<size_t>(m)][static_cast<size_t>(op.mirror_of)];
    }
  }

  // 2. Intra-copy edges (skipping edges into apply ops).
  for (int m = 0; m < micro_batches; ++m) {
    for (OpId id = 0; id < n; ++id) {
      if (training_graph.op(id).role == OpRole::kApply) continue;
      for (OpId s : training_graph.successors(id)) {
        if (training_graph.op(s).role == OpRole::kApply) continue;
        g.add_edge(copy_id[static_cast<size_t>(m)][static_cast<size_t>(id)],
                   copy_id[static_cast<size_t>(m)][static_cast<size_t>(s)]);
      }
    }
  }

  // 3. Gradient accumulation + apply per parameter op.
  for (OpId id = 0; id < n; ++id) {
    const OpDef& op = training_graph.op(id);
    if (op.role != OpRole::kApply) continue;
    check(op.mirror_of != kInvalidOp, "pipeline: apply without mirror");
    const OpId fw = op.mirror_of;
    // Its gradient producer in the base graph is the unique grad_of == fw op.
    OpId grad = kInvalidOp;
    for (OpId p : training_graph.predecessors(id)) {
      if (training_graph.op(p).grad_of == fw) grad = p;
    }
    check(grad != kInvalidOp, "pipeline: apply without gradient producer");

    OpId grad_source;
    if (micro_batches == 1) {
      grad_source = copy_id[0][static_cast<size_t>(grad)];
      g.mutable_op(grad_source).grad_of = copy_id[0][static_cast<size_t>(fw)];
    } else {
      // Chained (in-place style) accumulation: accum_k = accum_{k-1} +
      // grad_k, so each micro-batch's partial gradient is freed as soon as
      // it is folded in — holding all m partials until one final sum would
      // inflate peak memory by m x param bytes.
      OpId running = copy_id[0][static_cast<size_t>(grad)];
      for (int m = 1; m < micro_batches; ++m) {
        OpDef accum;
        accum.name = training_graph.op(fw).name + "/grad_accum" +
                     (m + 1 < micro_batches ? std::to_string(m) : std::string());
        accum.kind = OpKind::kAdd;
        accum.role = OpRole::kBackward;
        accum.flops_fixed = static_cast<double>(training_graph.op(fw).param_bytes) / 4.0;
        accum.out_bytes_fixed = training_graph.op(fw).param_bytes;
        accum.batch_divisible = training_graph.op(grad).batch_divisible;
        if (m + 1 == micro_batches) {
          // The final accumulator is the gradient the GA pass aggregates.
          accum.grad_of = copy_id[0][static_cast<size_t>(fw)];
          accum.mirror_of = copy_id[0][static_cast<size_t>(fw)];
        }
        const OpId accum_id = g.add_op(std::move(accum));
        result.origin.push_back(grad);
        g.add_edge(running, accum_id);
        g.add_edge(copy_id[static_cast<size_t>(m)][static_cast<size_t>(grad)], accum_id);
        running = accum_id;
      }
      grad_source = running;
    }

    OpDef apply = op;
    apply.id = kInvalidOp;
    apply.mirror_of = copy_id[0][static_cast<size_t>(fw)];
    const OpId apply_id = g.add_op(std::move(apply));
    result.origin.push_back(id);
    g.add_edge(grad_source, apply_id);
  }

  check(g.validate(), "pipeline_microbatches produced an invalid graph");
  check(static_cast<int>(result.origin.size()) == g.op_count(),
        "pipeline_microbatches: origin map incomplete");
  return result;
}

}  // namespace heterog::graph
