// Operation definitions for the single-GPU training DAG.
//
// Mirrors the paper's Graph Analyzer view of a TensorFlow graphdef: nodes are
// operations (Conv2D, MatMul, ...), edges are tensors. Costs are stored in a
// batch-parameterised form (per-sample + fixed) so that replicas processing a
// fraction of the global batch can be costed exactly, matching the paper's
// linear-regression cost models ("build a linear regression model to predict
// computation time of a specific operation at other batch sizes").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace heterog::graph {

using OpId = int32_t;
inline constexpr OpId kInvalidOp = -1;

/// Operation kinds. The set covers the op mix of the paper's 8 benchmark
/// models plus the structural ops HeteroG's Graph Compiler inserts.
enum class OpKind : uint8_t {
  // Forward compute.
  kConv2D,
  kDepthwiseConv2D,
  kConv1D,
  kMatMul,
  kBatchNorm,
  kLayerNorm,
  kRelu,
  kPool,
  kSoftmax,
  kEmbeddingLookup,
  kAttentionScore,   // QK^T + softmax portion of self-attention
  kAttentionContext, // attention-weighted value aggregation
  kAdd,              // residual adds etc.
  kLoss,
  // Backward compute (paper profiles e.g. Conv2DBpFilter / Conv2DBpInput).
  kConv2DBpFilter,
  kConv2DBpInput,
  kGenericBackward,
  // Optimiser.
  kApplyGradient,
  // Structural ops inserted by the Graph Compiler.
  kSplit,
  kConcat,
  kIdentity,
};

const char* op_kind_name(OpKind kind);

/// Whether ops of this kind are dominated by dense math (used by the
/// synthetic hardware model for device-efficiency factors).
bool is_compute_intensive(OpKind kind);

/// Role of an op within one training iteration.
enum class OpRole : uint8_t {
  kForward,
  kBackward,
  kApply,  // parameter update
};

const char* op_role_name(OpRole role);

/// A single operation of the single-GPU training DAG.
///
/// Cost fields are *hardware-independent* workload descriptions; the profiler
/// and cost models translate them into per-device times.
struct OpDef {
  OpId id = kInvalidOp;
  std::string name;
  OpKind kind = OpKind::kIdentity;
  OpRole role = OpRole::kForward;

  // Workload. flops(batch) = flops_per_sample * batch + flops_fixed.
  double flops_per_sample = 0.0;
  double flops_fixed = 0.0;

  // Output tensor size. bytes(batch) = out_bytes_per_sample * batch + fixed.
  int64_t out_bytes_per_sample = 0;
  int64_t out_bytes_fixed = 0;

  /// Parameter bytes owned by this op (weights); 0 for stateless ops.
  int64_t param_bytes = 0;

  /// True when the output carries the batch dimension; only such ops may be
  /// replicated under data parallelism (paper Sec. 5, Operation replication).
  bool batch_divisible = true;

  /// For backward ops that produce the gradient of some forward op's
  /// parameters: the forward op id. kInvalidOp otherwise.
  OpId grad_of = kInvalidOp;

  /// For apply ops: the forward op whose parameters they update; for backward
  /// ops: the mirrored forward op. kInvalidOp otherwise.
  OpId mirror_of = kInvalidOp;

  double flops(double batch) const { return flops_per_sample * batch + flops_fixed; }
  int64_t out_bytes(double batch) const {
    return static_cast<int64_t>(static_cast<double>(out_bytes_per_sample) * batch) +
           out_bytes_fixed;
  }
};

}  // namespace heterog::graph
