// Crash-consistent persistent plan/eval store.
//
// PlanStore promotes rl::EvalEngine's in-process LRU to a durable cross-run
// cache: a directory holding an append-only journal of CRC32-framed eval
// records (common/record_io), a CRC-stamped generation header, a quarantine
// sidecar and a single-writer lock file. The design goal is that the store
// is *never* the reason a search fails:
//
//   * self-healing open — the journal is scanned record by record; corrupt
//     or truncated records (torn appends, bit rot, version skew) are copied
//     to `quarantine.log` with a reason and skipped, then the journal is
//     compacted to a clean generation via the write-temp/fsync/rename
//     protocol. Corruption is telemetry (`store_quarantine` events,
//     `store.quarantined.count`), not an error.
//   * crash-safe writes — puts are write-behind (buffered, appended in
//     batches with fsync); a SIGKILL mid-append tears at most the tail
//     batch, which the next open quarantines. Compaction replaces the
//     journal atomically, so a kill at any instant leaves either the old or
//     the new generation — tests/store_test.cpp proves both with fork+
//     SIGKILL loops and per-byte corruption sweeps.
//   * version skew — the first record is a header "heterog-store v<V> gen
//     <N>". An unknown (newer) version quarantines the whole journal and
//     rebuilds empty rather than guessing at its framing; generations count
//     compactions so forensics can tell rewrites apart.
//   * single writer — `store.lock` (O_CREAT|O_EXCL, pid inside) enforces one
//     writer; a lock held by a dead pid is taken over, a live one raises
//     StoreError{kLocked}. Readers (read_only) skip the lock entirely.
//
// Correctness contract: a store lookup only ever returns bytes that round-
// trip the exact doubles written (%.17g), keyed by the caller's 64-bit hash
// — search results with the store hot, cold or corrupted are bit-identical
// to a store-less run (rl::EvalEngine wires the key with a store context
// hash covering cluster fingerprint + profiler seed, so entries can never
// leak across clusters or cost models).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/plan_eval.h"

namespace heterog::store {

/// The only exception PlanStore throws. kEnvironment: the directory cannot
/// be created/written (missing parent, path is a file, read-only fs).
/// kLocked: another live process holds the writer lock.
class StoreError : public std::runtime_error {
 public:
  enum class Kind { kEnvironment, kLocked };
  StoreError(Kind kind, const std::string& what)
      : std::runtime_error("plan store: " + what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct PlanStoreOptions {
  std::string dir;
  /// Open without the writer lock; put()/flush()/compact() become no-ops and
  /// self-healing is skipped (corruption is still quarantine-counted in
  /// stats, just not rewritten).
  bool read_only = false;
  /// Buffered puts per fsync'd append batch (write-behind). 1 = write
  /// through. The destructor and flush() always drain the buffer.
  size_t flush_every = 64;
  /// Telemetry sinks, both optional and non-owning. Write-only: attaching
  /// them never changes lookup results.
  obs::EventLog* events = nullptr;        // store_open / store_quarantine
  obs::MetricsRegistry* metrics = nullptr;  // store.* counters
};

struct PlanStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t appends_flushed = 0;     // fsync'd append batches
  uint64_t records_loaded = 0;      // live records after the open scan
  uint64_t records_quarantined = 0; // corrupt records diverted at open
  uint64_t compactions = 0;         // journal rewrites (heal or explicit)
  int generation = 0;               // bumped by every compaction
  bool healed = false;              // open found damage and rewrote
};

/// Durable key -> sim::PlanEvaluation map. Thread-safe (one mutex; the
/// eval engine's worker pool calls lookup/put concurrently).
class PlanStore {
 public:
  static constexpr int kFormatVersion = 1;

  /// Opens (creating the directory and journal as needed), scans, and
  /// self-heals. Throws StoreError — never anything else — and only for the
  /// two environment conditions documented on StoreError; corruption of any
  /// kind is handled, not thrown.
  explicit PlanStore(PlanStoreOptions options);
  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;
  ~PlanStore();  // flushes buffered puts, releases the lock

  /// True + *out filled when `key` is present. Counts a hit/miss.
  bool lookup(uint64_t key, sim::PlanEvaluation* out);

  /// Upserts `key` (last write wins, in memory immediately, durable at the
  /// next flush batch). No-op in read_only mode. Evaluations carrying
  /// utilization detail (collect_utilization) are not persisted — the
  /// deployment path bypasses caching, and the on-disk record only
  /// round-trips the search-path fields.
  void put(uint64_t key, const sim::PlanEvaluation& eval);

  /// Drains the write-behind buffer with one fsync'd append.
  void flush();

  /// Rewrites the journal to a single clean generation (atomic replace,
  /// crash-safe at every instant). No-op in read_only mode.
  void compact();

  PlanStoreStats stats() const;
  size_t size() const;
  const std::string& dir() const { return options_.dir; }

  std::string journal_path() const;
  std::string quarantine_path() const;
  std::string lock_path() const;

  /// One record's payload encoding, exposed for tests and the fuzzer.
  /// decode returns false (never throws) on any malformed payload.
  static std::string encode_eval(uint64_t key, const sim::PlanEvaluation& eval);
  static bool decode_eval(std::string_view payload, uint64_t* key,
                          sim::PlanEvaluation* eval);

 private:
  void open_scan();
  void acquire_lock();
  void release_lock();
  void sweep_stale_tmp_files();
  void quarantine(std::string_view raw, size_t offset, const std::string& reason);
  void flush_locked();
  void compact_locked();
  std::string header_payload(int generation) const;
  void count(const char* metric, uint64_t delta = 1);

  PlanStoreOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, sim::PlanEvaluation> map_;
  std::string pending_;        // framed records awaiting one append batch
  size_t pending_records_ = 0;
  bool lock_held_ = false;
  PlanStoreStats stats_;
};

}  // namespace heterog::store
