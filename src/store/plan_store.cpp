#include "store/plan_store.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/record_io.h"

namespace heterog::store {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kHeaderMagic = "heterog-store v";

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trips doubles exactly
  return buf;
}

std::string hex16(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

/// Vector lengths inside a record are bounded so a corrupt count that
/// happens to pass the CRC of a truncated frame can never drive a gigantic
/// reserve() (mirrors ckpt::parse_count).
constexpr long long kMaxVectorLen = 1'000'000;

[[noreturn]] void env_fail(const std::string& what, int err) {
  throw StoreError(StoreError::Kind::kEnvironment,
                   what + ": " + std::strerror(err) + " (errno " +
                       std::to_string(err) + ")");
}

/// Appends `data` to `path` with one fsync. Best effort: a failure (disk
/// full, fs gone read-only) is reported by return value; the store treats it
/// as lost durability, never as a fatal error — the next open simply sees a
/// shorter journal.
bool append_durable(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  size_t written = 0;
  bool ok = true;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool parse_header(std::string_view payload, int* version, int* generation) {
  if (payload.substr(0, kHeaderMagic.size()) != kHeaderMagic) return false;
  std::istringstream is(std::string(payload.substr(kHeaderMagic.size())));
  std::string gen_word;
  long long v = -1, gen = -1;
  if (!(is >> v >> gen_word >> gen) || gen_word != "gen") return false;
  if (v < 0 || v > 1'000'000 || gen < 0 || gen > kMaxVectorLen) return false;
  std::string extra;
  if (is >> extra) return false;
  *version = static_cast<int>(v);
  *generation = static_cast<int>(gen);
  return true;
}

}  // namespace

std::string PlanStore::header_payload(int generation) const {
  return std::string(kHeaderMagic) + std::to_string(kFormatVersion) + " gen " +
         std::to_string(generation);
}

std::string PlanStore::encode_eval(uint64_t key, const sim::PlanEvaluation& eval) {
  std::string out = "eval ";
  out += hex16(key);
  out += ' ';
  out += fmt(eval.per_iteration_ms);
  out += ' ';
  out += fmt(eval.cold_iteration_ms);
  out += ' ';
  out += fmt(eval.computation_ms);
  out += ' ';
  out += fmt(eval.communication_ms);
  out += ' ';
  out += eval.oom ? '1' : '0';
  out += " peaks " + std::to_string(eval.peak_memory_bytes.size());
  for (const int64_t b : eval.peak_memory_bytes) out += ' ' + std::to_string(b);
  out += " oomdevs " + std::to_string(eval.oom_devices.size());
  for (const auto d : eval.oom_devices) out += ' ' + std::to_string(d);
  return out;
}

bool PlanStore::decode_eval(std::string_view payload, uint64_t* key,
                            sim::PlanEvaluation* eval) {
  std::istringstream is{std::string(payload)};
  std::string word;
  if (!(is >> word) || word != "eval") return false;
  if (!(is >> word) || !parse_hex16(word, key)) return false;
  sim::PlanEvaluation e;
  int oom = -1;
  if (!(is >> e.per_iteration_ms >> e.cold_iteration_ms >> e.computation_ms >>
        e.communication_ms >> oom)) {
    return false;
  }
  if (oom != 0 && oom != 1) return false;
  e.oom = oom == 1;
  long long n = -1;
  if (!(is >> word >> n) || word != "peaks" || n < 0 || n > kMaxVectorLen) return false;
  e.peak_memory_bytes.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    int64_t b = 0;
    if (!(is >> b)) return false;
    e.peak_memory_bytes.push_back(b);
  }
  if (!(is >> word >> n) || word != "oomdevs" || n < 0 || n > kMaxVectorLen) {
    return false;
  }
  e.oom_devices.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    cluster::DeviceId d = -1;
    if (!(is >> d)) return false;
    e.oom_devices.push_back(d);
  }
  if (is >> word) return false;  // trailing garbage
  *eval = std::move(e);
  return true;
}

PlanStore::PlanStore(PlanStoreOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw StoreError(StoreError::Kind::kEnvironment, "no directory given");
  }
  if (options_.flush_every == 0) options_.flush_every = 1;

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw StoreError(StoreError::Kind::kEnvironment,
                     "cannot create directory " + options_.dir + ": " + ec.message());
  }
  if (!fs::is_directory(options_.dir, ec)) {
    throw StoreError(StoreError::Kind::kEnvironment,
                     options_.dir + " is not a directory");
  }

  if (!options_.read_only) {
    acquire_lock();
    try {
      sweep_stale_tmp_files();
      open_scan();
    } catch (...) {
      release_lock();
      throw;
    }
  } else {
    open_scan();
  }

  if (options_.metrics != nullptr) {
    options_.metrics->add("store.opens.count");
    options_.metrics->add("store.loaded.count", stats_.records_loaded);
  }
  if (options_.events != nullptr) {
    options_.events->emit(obs::Event("store_open")
                              .with("path", options_.dir)
                              .with("records", stats_.records_loaded)
                              .with("quarantined", stats_.records_quarantined)
                              .with("generation", stats_.generation)
                              .with("healed", stats_.healed)
                              .with("read_only", options_.read_only));
  }
}

PlanStore::~PlanStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
  }
  release_lock();
}

void PlanStore::acquire_lock() {
  const std::string path = lock_path();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
      const std::string line = "pid " + std::to_string(::getpid()) + "\n";
      (void)!::write(fd, line.data(), line.size());
      ::fsync(fd);
      ::close(fd);
      lock_held_ = true;
      return;
    }
    if (errno != EEXIST) env_fail("cannot create lock file " + path, errno);

    // Somebody holds (or held) the lock — stale-lock takeover iff the
    // recorded pid no longer exists.
    long long pid = -1;
    {
      std::ifstream in(path);
      std::string word;
      if (in && in >> word && word == "pid") in >> pid;
    }
    // An unreadable or pid-less lock is treated as LIVE, not stale: a fresh
    // lock is empty for the instant between its O_EXCL create and the pid
    // write, and classifying that instant as "dead" would let a concurrent
    // claimant rename a live writer's lock away. The cost — a writer killed
    // inside that same instant leaves a lock only a human clears — is far
    // narrower than two live writers on one journal.
    if (pid <= 0) {
      throw StoreError(StoreError::Kind::kLocked,
                       options_.dir + " is locked (owner not yet recorded)");
    }
    const bool alive =
        ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
    if (alive) {
      throw StoreError(StoreError::Kind::kLocked,
                       options_.dir + " is locked by live pid " + std::to_string(pid));
    }
    // Dead owner: take over by *renaming* the stale lock to
    // a per-claimant name, never by unlinking it in place. remove() here was
    // a TOCTOU hole: two openers could both observe the dead pid, then the
    // slower one would unlink the lock the faster one had just re-created —
    // two live writers on one journal. rename() of the same source succeeds
    // for exactly one claimant (the loser gets ENOENT), so at most one
    // process proceeds to the O_EXCL create per stale lock; everyone else
    // loops and sees either the winner's fresh live lock (kLocked) or an
    // open race it can win legitimately. tests/store_test.cpp pins this with
    // a fork barrier of simultaneous claimants.
    const std::string claim = path + ".stale." + std::to_string(::getpid());
    if (::rename(path.c_str(), claim.c_str()) == 0) {
      std::remove(claim.c_str());
    } else if (errno != ENOENT) {
      env_fail("cannot take over stale lock " + path, errno);
    }
  }
  throw StoreError(StoreError::Kind::kEnvironment,
                   "could not acquire lock " + path + " (takeover loop exhausted)");
}

void PlanStore::release_lock() {
  if (!lock_held_) return;
  std::remove(lock_path().c_str());
  lock_held_ = false;
}

void PlanStore::sweep_stale_tmp_files() {
  // SIGKILL mid-save orphans "<file>.tmp.<pid>" temporaries that
  // write_file_atomic could not clean up; remove the ones whose writer is
  // dead so litter never accumulates.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    // "<file>.tmp.<pid>" atomic-save temporaries, plus "store.lock.stale.<pid>"
    // rename-claimed stale locks a claimant died holding (acquire_lock).
    size_t tag = name.find(".tmp.");
    size_t tag_len = 5;
    if (tag == std::string::npos) {
      tag = name.find(".stale.");
      tag_len = 7;
    }
    if (tag == std::string::npos) continue;
    const std::string pid_text = name.substr(tag + tag_len);
    char* end = nullptr;
    const long long pid = std::strtoll(pid_text.c_str(), &end, 10);
    const bool numeric = end != nullptr && *end == '\0' && !pid_text.empty();
    const bool alive =
        numeric && pid > 0 && (::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM);
    if (!alive) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

void PlanStore::quarantine(std::string_view raw, size_t offset,
                           const std::string& reason) {
  ++stats_.records_quarantined;
  count("store.quarantined.count");
  if (!options_.read_only) {
    std::string payload = "quarantined offset " + std::to_string(offset) +
                          " bytes " + std::to_string(raw.size()) + " reason " +
                          reason + "\n";
    payload.append(raw.data(), raw.size());
    (void)append_durable(quarantine_path(), frame_record(payload));
  }
  if (options_.events != nullptr) {
    options_.events->emit(obs::Event("store_quarantine")
                              .with("path", options_.dir)
                              .with("offset", static_cast<uint64_t>(offset))
                              .with("bytes", static_cast<uint64_t>(raw.size()))
                              .with("reason", reason));
  }
}

void PlanStore::open_scan() {
  stats_.generation = 1;
  std::string data;
  {
    std::ifstream in(journal_path(), std::ios::binary);
    if (!in) {
      // Fresh store: publish an empty generation-1 journal so every later
      // append lands behind a valid header.
      if (!options_.read_only) {
        std::string error;
        if (!write_file_atomic(journal_path(), frame_record(header_payload(1)),
                               &error)) {
          throw StoreError(StoreError::Kind::kEnvironment,
                           "cannot write journal " + journal_path() + ": " + error);
        }
      }
      return;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    data = buffer.str();
  }

  RecordScanner scanner(data);
  bool damaged = false;
  bool version_skew = false;
  bool saw_header = false;
  for (ScannedRecord rec = scanner.next(); rec.status != ScannedRecord::Status::kEnd;
       rec = scanner.next()) {
    const std::string_view raw = std::string_view(data).substr(rec.offset, rec.length);
    if (rec.status == ScannedRecord::Status::kCorrupt) {
      damaged = true;
      quarantine(raw, rec.offset, rec.reason);
      continue;
    }
    if (!saw_header) {
      saw_header = true;
      int version = 0, generation = 0;
      if (!parse_header(rec.payload, &version, &generation)) {
        // The first record must be the generation header; anything else
        // means we cannot trust the journal's claimed schema.
        damaged = version_skew = true;
        quarantine(raw, rec.offset, "missing or malformed generation header");
      } else if (version != kFormatVersion) {
        // A journal from a newer (or unknown) format version: do not guess
        // at its payload schema — quarantine wholesale and rebuild empty.
        damaged = version_skew = true;
        quarantine(raw, rec.offset,
                   "version skew (journal v" + std::to_string(version) +
                       ", this build reads v" + std::to_string(kFormatVersion) + ")");
      } else {
        stats_.generation = generation;
      }
      continue;
    }
    if (version_skew) {
      quarantine(raw, rec.offset, "record under version-skewed header");
      continue;
    }
    uint64_t key = 0;
    sim::PlanEvaluation eval;
    if (!decode_eval(rec.payload, &key, &eval)) {
      damaged = true;
      quarantine(raw, rec.offset, "undecodable eval payload");
      continue;
    }
    map_[key] = std::move(eval);  // duplicates: last write wins
  }
  if (!saw_header && !data.empty()) damaged = true;  // pure-garbage journal
  stats_.records_loaded = map_.size();

  if (damaged && !options_.read_only) {
    // Self-heal: rewrite the surviving records as one clean generation. The
    // quarantine sidecar keeps the damaged bytes for forensics.
    compact_locked();
    stats_.healed = true;
  }
}

bool PlanStore::lookup(uint64_t key, sim::PlanEvaluation* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    count("store.misses.count");
    return false;
  }
  ++stats_.hits;
  count("store.hits.count");
  *out = it->second;
  return true;
}

void PlanStore::put(uint64_t key, const sim::PlanEvaluation& eval) {
  if (options_.read_only) return;
  // Utilization-annotated evaluations come from the deployment path, whose
  // extra fields the on-disk record deliberately does not carry (they are
  // never needed by the search hot loop). Persisting a stripped copy would
  // break the "store round-trips exactly what it returns" contract, so skip.
  if (!eval.device_busy_ms.empty() || !eval.comm_busy.empty() ||
      eval.critical_path_ms != 0.0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = eval;
  ++stats_.puts;
  count("store.puts.count");
  pending_ += frame_record(encode_eval(key, eval));
  ++pending_records_;
  if (pending_records_ >= options_.flush_every) flush_locked();
}

void PlanStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void PlanStore::flush_locked() {
  if (pending_.empty() || options_.read_only) return;
  // Best effort: if the append fails (disk full, fs read-only) the records
  // stay memory-resident for this run and the next open sees the shorter —
  // still valid — journal. Durability degrades; correctness does not.
  (void)append_durable(journal_path(), pending_);
  pending_.clear();
  pending_records_ = 0;
  ++stats_.appends_flushed;
}

void PlanStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.read_only) return;
  compact_locked();
}

void PlanStore::compact_locked() {
  // Deterministic record order (sorted by key) so identical contents always
  // produce byte-identical journals, whatever insertion order built them.
  std::vector<uint64_t> keys;
  keys.reserve(map_.size());
  for (const auto& [key, eval] : map_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::string body = frame_record(header_payload(stats_.generation + 1));
  for (const uint64_t key : keys) {
    body += frame_record(encode_eval(key, map_.at(key)));
  }
  // Atomic replace: a SIGKILL at any instant leaves either the previous
  // journal or this complete new generation — never a hybrid.
  std::string error;
  if (write_file_atomic(journal_path(), body, &error)) {
    ++stats_.generation;
    ++stats_.compactions;
    count("store.compactions.count");
    pending_.clear();  // buffered records are part of map_, hence of `body`
    pending_records_ = 0;
  }
  // On failure the old journal (plus any already-appended batches) stands;
  // pending_ is kept for the next append attempt.
}

PlanStoreStats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::string PlanStore::journal_path() const {
  return (fs::path(options_.dir) / "evals.journal").string();
}

std::string PlanStore::quarantine_path() const {
  return (fs::path(options_.dir) / "quarantine.log").string();
}

std::string PlanStore::lock_path() const {
  return (fs::path(options_.dir) / "store.lock").string();
}

void PlanStore::count(const char* metric, uint64_t delta) {
  if (options_.metrics != nullptr) options_.metrics->add(metric, delta);
}

}  // namespace heterog::store
