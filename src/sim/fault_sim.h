// Fault-aware execution mode for the discrete-event simulator.
//
// Instead of one steady-state scalar, the cluster is stepped through a
// FaultPlan: for every training step the active fault set scales per-device
// compute durations and per-link bandwidth, and the step's makespan is
// reported individually. A step whose plan touches a failed device is
// flagged inexecutable — the signal DistRunner's re-planning loop consumes.
#pragma once

#include <map>
#include <memory>

#include "compile/dist_graph.h"
#include "faults/faults.h"
#include "health/health.h"
#include "sim/simulator.h"

namespace heterog::sim {

struct StepOutcome {
  int step = 0;
  double makespan_ms = 0.0;
  bool executable = true;  // false: a failed device is in the plan
  std::vector<cluster::DeviceId> failed_devices;  // cause when !executable
};

struct FaultAwareRun {
  std::vector<StepOutcome> steps;
  double total_ms = 0.0;               // sum over executable steps
  int first_inexecutable_step = -1;    // -1 when every step ran
};

/// Copy of `graph` with durations scaled by the active fault set: compute
/// nodes by their device's slowdown, transfer/collective nodes by the
/// inverse of the degraded link bandwidth factor on their path.
compile::DistGraph apply_fault_scaling(const compile::DistGraph& graph,
                                       const cluster::ClusterSpec& cluster,
                                       const faults::FaultScaling& scaling);

/// Whether any node of the compiled plan executes on / communicates through
/// `device`.
bool plan_uses_device(const compile::DistGraph& graph, cluster::DeviceId device);

/// Steps the plan through `steps` iterations of `plan`. Stops at the first
/// step whose active fault set fails a device the plan uses (re-planning is
/// the runner's job, not the simulator's). Identical fault sets are
/// simulated once and memoised.
FaultAwareRun simulate_with_faults(const compile::DistGraph& graph,
                                   const cluster::ClusterSpec& cluster,
                                   const faults::FaultPlan& plan, int steps,
                                   SimOptions options = SimOptions());

/// The *injection* half of the fault pipeline (DESIGN.md "Online health &
/// degraded modes"). The injector owns the FaultPlan and the fault-scaled
/// simulations; the runner's reaction logic sees only the
/// health::Observation values it hands out — per-attempt heartbeats, error
/// attributions and (for completed attempts) the raw makespan and per-device
/// busy times a real execution engine's telemetry would report. The oracle_*
/// accessors exist solely for the legacy PR-1 recovery path and the runner's
/// measurement-free replay bookkeeping; the online health path never calls
/// them.
class FaultInjector {
 public:
  /// Raw timing of one simulated iteration under a fixed fault set.
  struct StepMeasurement {
    double makespan_ms = 0.0;
    std::vector<double> device_busy_ms;  // indexed by device id
  };

  FaultInjector(compile::DistGraph graph, cluster::ClusterSpec cluster,
                faults::FaultPlan plan, SimOptions options);
  ~FaultInjector();  // out of line: SimBaseline is incomplete here

  /// One attempt of `step` (attempt 0 = first try). Outcome precedence:
  /// a failed device the plan uses times the attempt out (no error
  /// attribution — heartbeats are the only signal); otherwise a transient
  /// event with failed_attempts > attempt aborts it with an attributed
  /// error; otherwise it completes with measured timings.
  /// `transients_active` = false suppresses transient errors (the runner
  /// already retried through this step before a re-plan re-entered it).
  health::Observation attempt_step(int step, int attempt,
                                   bool transients_active = true);

  /// Memoised simulation of the active graph under `scaling` (shared by the
  /// oracle and online paths so their arithmetic is identical).
  const StepMeasurement& measure(const faults::FaultScaling& scaling);

  /// Swaps in the re-planned graph/cluster and rewrites the plan's device
  /// references through `new_id_of` (faults::remap_plan semantics).
  void apply_replan(compile::DistGraph graph, cluster::ClusterSpec cluster,
                    const std::vector<int>& new_id_of);

  /// Oracle accessors — PR-1 recovery path only.
  faults::FaultScaling oracle_scaling(int step) const;
  const faults::FaultPlan& oracle_plan() const { return plan_; }

  int device_count() const { return cluster_.device_count(); }

 private:
  /// Simulates the active graph under `scaling`. Data-oriented mode records
  /// a baseline of the unscaled graph on first use and re-simulates every
  /// fault-scaled variant incrementally against it; SimImpl::kReference runs
  /// each variant from scratch. Results are bit-identical either way.
  SimResult simulate_scaled(const faults::FaultScaling& scaling);

  compile::DistGraph graph_;
  cluster::ClusterSpec cluster_;
  faults::FaultPlan plan_;
  SimOptions options_;
  std::map<std::string, StepMeasurement> memo_;  // keyed by scaling signature
  std::unique_ptr<SimBaseline> baseline_;        // unscaled-graph execution log
};

}  // namespace heterog::sim
