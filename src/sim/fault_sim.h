// Fault-aware execution mode for the discrete-event simulator.
//
// Instead of one steady-state scalar, the cluster is stepped through a
// FaultPlan: for every training step the active fault set scales per-device
// compute durations and per-link bandwidth, and the step's makespan is
// reported individually. A step whose plan touches a failed device is
// flagged inexecutable — the signal DistRunner's re-planning loop consumes.
#pragma once

#include "compile/dist_graph.h"
#include "faults/faults.h"
#include "sim/simulator.h"

namespace heterog::sim {

struct StepOutcome {
  int step = 0;
  double makespan_ms = 0.0;
  bool executable = true;  // false: a failed device is in the plan
  std::vector<cluster::DeviceId> failed_devices;  // cause when !executable
};

struct FaultAwareRun {
  std::vector<StepOutcome> steps;
  double total_ms = 0.0;               // sum over executable steps
  int first_inexecutable_step = -1;    // -1 when every step ran
};

/// Copy of `graph` with durations scaled by the active fault set: compute
/// nodes by their device's slowdown, transfer/collective nodes by the
/// inverse of the degraded link bandwidth factor on their path.
compile::DistGraph apply_fault_scaling(const compile::DistGraph& graph,
                                       const cluster::ClusterSpec& cluster,
                                       const faults::FaultScaling& scaling);

/// Whether any node of the compiled plan executes on / communicates through
/// `device`.
bool plan_uses_device(const compile::DistGraph& graph, cluster::DeviceId device);

/// Steps the plan through `steps` iterations of `plan`. Stops at the first
/// step whose active fault set fails a device the plan uses (re-planning is
/// the runner's job, not the simulator's). Identical fault sets are
/// simulated once and memoised.
FaultAwareRun simulate_with_faults(const compile::DistGraph& graph,
                                   const cluster::ClusterSpec& cluster,
                                   const faults::FaultPlan& plan, int steps,
                                   SimOptions options = SimOptions());

}  // namespace heterog::sim
