#include "sim/fault_sim.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "sim/sim_core.h"

namespace heterog::sim {

namespace {

using compile::DistNodeId;
using compile::NodeKind;

/// The priorities Simulator::run would compute for `graph` under
/// `options.policy`. Fault scaling changes durations, so rank priorities are
/// recomputed per scaled variant — exactly what a from-scratch run does.
std::vector<double> policy_priorities(const compile::DistGraph& graph,
                                      const SimOptions& options) {
  if (options.policy == sched::OrderPolicy::kRankPriority) {
    return sched::rank_priorities(graph);
  }
  return std::vector<double>(static_cast<size_t>(graph.node_count()), 0.0);
}

/// Smallest link bandwidth factor across all participant host pairs — a
/// ring/collective runs at the speed of its most degraded segment.
double collective_link_factor(const cluster::ClusterSpec& cluster,
                              const faults::FaultScaling& scaling,
                              const std::vector<cluster::DeviceId>& participants) {
  double factor = 1.0;
  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t j = i + 1; j < participants.size(); ++j) {
      factor = std::min(factor,
                        scaling.link_factor(cluster, participants[i], participants[j]));
    }
  }
  return factor;
}

}  // namespace

compile::DistGraph apply_fault_scaling(const compile::DistGraph& graph,
                                       const cluster::ClusterSpec& cluster,
                                       const faults::FaultScaling& scaling) {
  compile::DistGraph scaled = graph;
  for (DistNodeId id = 0; id < scaled.node_count(); ++id) {
    auto& node = scaled.mutable_node(id);
    switch (node.kind) {
      case NodeKind::kCompute:
        if (node.device >= 0 &&
            static_cast<size_t>(node.device) < scaling.compute_slowdown.size()) {
          node.duration_ms *= scaling.compute_slowdown[static_cast<size_t>(node.device)];
        }
        break;
      case NodeKind::kTransfer: {
        const double factor = scaling.link_factor(cluster, node.link_from, node.link_to);
        if (factor < 1.0) node.duration_ms /= factor;
        break;
      }
      case NodeKind::kCollective: {
        const double factor =
            collective_link_factor(cluster, scaling, node.participants);
        if (factor < 1.0) node.duration_ms /= factor;
        break;
      }
    }
  }
  return scaled;
}

bool plan_uses_device(const compile::DistGraph& graph, cluster::DeviceId device) {
  for (const auto& node : graph.nodes()) {
    switch (node.kind) {
      case NodeKind::kCompute:
        if (node.device == device) return true;
        break;
      case NodeKind::kTransfer:
        if (node.link_from == device || node.link_to == device) return true;
        break;
      case NodeKind::kCollective:
        if (std::find(node.participants.begin(), node.participants.end(), device) !=
            node.participants.end()) {
          return true;
        }
        break;
    }
  }
  return false;
}

FaultAwareRun simulate_with_faults(const compile::DistGraph& graph,
                                   const cluster::ClusterSpec& cluster,
                                   const faults::FaultPlan& plan, int steps,
                                   SimOptions options) {
  check(steps >= 0, "simulate_with_faults: negative steps");
  plan.validate(cluster);

  // Memory tracking is a single-iteration concern; per-step makespans only
  // need timing, so skip the tracker in the inner loop.
  SimOptions step_options = options;
  step_options.track_memory = false;
  const Simulator simulator(step_options);

  FaultAwareRun run;
  std::map<std::string, double> memo;
  SimBaseline baseline;  // unscaled-graph log; recorded on first simulated step
  for (int step = 0; step < steps; ++step) {
    const faults::FaultScaling scaling = faults::scaling_at(plan, cluster, step);

    StepOutcome outcome;
    outcome.step = step;
    // Isolated devices (cut off by a switch outage) block a step exactly like
    // failed ones: the plan cannot reach them.
    for (auto d : scaling.failed) {
      if (plan_uses_device(graph, d)) outcome.failed_devices.push_back(d);
    }
    for (auto d : scaling.isolated) {
      if (plan_uses_device(graph, d)) outcome.failed_devices.push_back(d);
    }
    std::sort(outcome.failed_devices.begin(), outcome.failed_devices.end());
    if (!outcome.failed_devices.empty()) {
      outcome.executable = false;
      run.steps.push_back(outcome);
      run.first_inexecutable_step = step;
      break;
    }

    const std::string key = scaling.signature();
    auto it = memo.find(key);
    if (it == memo.end()) {
      double makespan_ms;
      if (step_options.impl == SimImpl::kReference) {
        const compile::DistGraph scaled =
            scaling.any() ? apply_fault_scaling(graph, cluster, scaling) : graph;
        makespan_ms = simulator.run(scaled).makespan_ms;
      } else {
        // Incremental mode: record the unscaled baseline once, then diff each
        // fault-scaled variant against it (bit-identical to a full run).
        if (!baseline.valid) {
          simulator.run_baseline(graph, policy_priorities(graph, step_options),
                                 baseline);
        }
        if (scaling.any()) {
          const compile::DistGraph scaled = apply_fault_scaling(graph, cluster, scaling);
          makespan_ms =
              simulator.resimulate(scaled, policy_priorities(scaled, step_options),
                                   baseline)
                  .makespan_ms;
        } else {
          makespan_ms = baseline.result.makespan_ms;
        }
      }
      it = memo.emplace(key, makespan_ms).first;
    }
    outcome.makespan_ms = it->second;
    run.steps.push_back(outcome);
    run.total_ms += outcome.makespan_ms;
  }
  return run;
}

FaultInjector::FaultInjector(compile::DistGraph graph, cluster::ClusterSpec cluster,
                             faults::FaultPlan plan, SimOptions options)
    : graph_(std::move(graph)),
      cluster_(std::move(cluster)),
      plan_(std::move(plan)),
      options_(options) {
  // Per-step timing only; memory tracking is a deployment-time concern.
  options_.track_memory = false;
  plan_.validate(cluster_);
}

FaultInjector::~FaultInjector() = default;

SimResult FaultInjector::simulate_scaled(const faults::FaultScaling& scaling) {
  const Simulator simulator(options_);
  if (options_.impl == SimImpl::kReference) {
    const compile::DistGraph scaled =
        scaling.any() ? apply_fault_scaling(graph_, cluster_, scaling) : graph_;
    return simulator.run(scaled);
  }
  // Incremental mode: one baseline of the unscaled active graph, diffed
  // against by every fault-scaled variant (bit-identical to a full run).
  if (baseline_ == nullptr || !baseline_->valid) {
    if (baseline_ == nullptr) baseline_ = std::make_unique<SimBaseline>();
    simulator.run_baseline(graph_, policy_priorities(graph_, options_), *baseline_);
  }
  if (!scaling.any()) return baseline_->result;
  const compile::DistGraph scaled = apply_fault_scaling(graph_, cluster_, scaling);
  return simulator.resimulate(scaled, policy_priorities(scaled, options_), *baseline_);
}

const FaultInjector::StepMeasurement& FaultInjector::measure(
    const faults::FaultScaling& scaling) {
  const std::string key = scaling.signature();
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    const SimResult result = simulate_scaled(scaling);
    StepMeasurement m;
    m.makespan_ms = result.makespan_ms;
    m.device_busy_ms.assign(static_cast<size_t>(cluster_.device_count()), 0.0);
    const compile::ResourceModel& resources = graph_.resources();
    for (int r = 0; r < static_cast<int>(result.resource_busy_ms.size()); ++r) {
      if (resources.is_gpu_resource(r) && r < cluster_.device_count()) {
        m.device_busy_ms[static_cast<size_t>(r)] =
            result.resource_busy_ms[static_cast<size_t>(r)];
      }
    }
    it = memo_.emplace(key, std::move(m)).first;
  }
  return it->second;
}

health::Observation FaultInjector::attempt_step(int step, int attempt,
                                                bool transients_active) {
  const faults::FaultScaling scaling = faults::scaling_at(plan_, cluster_, step);

  health::Observation obs;
  obs.step = step;
  obs.attempt = attempt;
  obs.responded.assign(static_cast<size_t>(cluster_.device_count()), 1);
  // Isolated devices (behind a dead switch) are indistinguishable from
  // failed ones at the telemetry layer: heartbeats stop arriving.
  for (const auto d : scaling.failed) {
    if (d >= 0 && static_cast<size_t>(d) < obs.responded.size()) {
      obs.responded[static_cast<size_t>(d)] = 0;
    }
  }
  for (const auto d : scaling.isolated) {
    if (d >= 0 && static_cast<size_t>(d) < obs.responded.size()) {
      obs.responded[static_cast<size_t>(d)] = 0;
    }
  }

  // A failed or unreachable device the plan depends on blocks the step
  // entirely: the attempt times out with no error attribution.
  for (const auto d : scaling.failed) {
    if (plan_uses_device(graph_, d)) return obs;
  }
  for (const auto d : scaling.isolated) {
    if (plan_uses_device(graph_, d)) return obs;
  }

  // Transient hiccup: the first failed_attempts tries at the onset step
  // abort with an exception attributed to the raising device (the lowest id
  // when several are active, mirroring "first rank to throw wins").
  if (transients_active) {
    cluster::DeviceId error_device = -1;
    for (const auto& event : plan_.events) {
      if (event.kind != faults::FaultKind::kTransient || event.onset_step != step ||
          event.failed_attempts <= attempt) {
        continue;
      }
      if (error_device < 0 || event.device < error_device) error_device = event.device;
    }
    if (error_device >= 0) {
      obs.error_device = error_device;
      return obs;
    }
  }

  const StepMeasurement& m = measure(scaling);
  obs.completed = true;
  obs.makespan_ms = m.makespan_ms;
  obs.device_busy_ms = m.device_busy_ms;
  return obs;
}

void FaultInjector::apply_replan(compile::DistGraph graph,
                                 cluster::ClusterSpec cluster,
                                 const std::vector<int>& new_id_of) {
  graph_ = std::move(graph);
  cluster_ = std::move(cluster);
  // The survivor-aware overload drops domain events whose rack/switch no
  // longer exists in the re-planned cluster.
  plan_ = faults::remap_plan(plan_, new_id_of, cluster_);
  memo_.clear();
  baseline_.reset();  // the log describes the replaced graph
  plan_.validate(cluster_);
}

faults::FaultScaling FaultInjector::oracle_scaling(int step) const {
  faults::FaultScaling scaling = faults::scaling_at(plan_, cluster_, step);
  // Legacy PR-1 oracle path: isolation is folded into failure (permanent
  // domain loss) — that runner removes devices and never re-admits them.
  if (!scaling.isolated.empty()) {
    scaling.failed.insert(scaling.failed.end(), scaling.isolated.begin(),
                          scaling.isolated.end());
    std::sort(scaling.failed.begin(), scaling.failed.end());
    scaling.failed.erase(std::unique(scaling.failed.begin(), scaling.failed.end()),
                         scaling.failed.end());
    scaling.isolated.clear();
  }
  return scaling;
}

}  // namespace heterog::sim
