#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace heterog::sim {

namespace {

/// Escapes a string for embedding in JSON.
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string resource_name(const compile::ResourceModel& resources, int resource) {
  if (resources.is_gpu_resource(resource)) {
    return "GPU " + std::to_string(resource);
  }
  if (resources.is_link_resource(resource)) {
    const int m = resources.device_count();
    const int pair = resource - m;
    return "link G" + std::to_string(pair / m) + "->G" + std::to_string(pair % m);
  }
  if (resource == resources.nccl_resource()) return "NCCL channel";
  const int nic = resource - resources.nccl_resource() - 1;
  return "host" + std::to_string(nic / 2) + (nic % 2 == 0 ? " NIC out" : " NIC in");
}

}  // namespace

std::string chrome_trace_json(const compile::DistGraph& graph, const SimResult& result) {
  check(static_cast<int>(result.start_ms.size()) == graph.node_count(),
        "chrome_trace_json: result does not match graph");
  const auto& resources = graph.resources();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;

  // Resource name metadata (tid = resource index, pid = 0).
  for (int r = 0; r < resources.resource_count(); ++r) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"" << json_escape(resource_name(resources, r))
       << "\"}}";
  }

  for (compile::DistNodeId id = 0; id < graph.node_count(); ++id) {
    const auto& node = graph.node(id);
    const int resource = resources.resource_of(node);
    const double start_us = result.start_ms[static_cast<size_t>(id)] * 1000.0;
    const double dur_us =
        std::max(result.finish_ms[static_cast<size_t>(id)] -
                     result.start_ms[static_cast<size_t>(id)],
                 0.0) *
        1000.0;
    os << ",{\"name\":\"" << json_escape(node.name) << "\",\"ph\":\"X\",\"pid\":0,"
       << "\"tid\":" << resource << ",\"ts\":" << start_us << ",\"dur\":" << dur_us
       << ",\"cat\":\"" << compile::node_kind_name(node.kind) << "\""
       << ",\"args\":{\"bytes\":" << node.output_bytes << "}}";
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path, const compile::DistGraph& graph,
                        const SimResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(graph, result);
  return static_cast<bool>(out);
}

std::string ascii_timeline(const compile::DistGraph& graph, const SimResult& result,
                           AsciiTimelineOptions options) {
  check(options.width >= 10, "ascii_timeline: width too small");
  const auto& resources = graph.resources();
  const double span = std::max(result.makespan_ms, 1e-9);
  const double per_column = span / options.width;

  std::ostringstream os;
  os << "timeline: " << result.makespan_ms << " ms total, one column ~ "
     << per_column << " ms\n";

  auto render_row = [&](int resource, const std::string& label) {
    std::string row(static_cast<size_t>(options.width), '.');
    bool any = false;
    for (compile::DistNodeId id = 0; id < graph.node_count(); ++id) {
      const auto& node = graph.node(id);
      if (resources.resource_of(node) != resource) continue;
      any = true;
      const char glyph = node.kind == compile::NodeKind::kCompute
                             ? '#'
                             : (node.kind == compile::NodeKind::kTransfer ? '=' : '*');
      int begin = static_cast<int>(result.start_ms[static_cast<size_t>(id)] / per_column);
      int end = static_cast<int>(
          std::ceil(result.finish_ms[static_cast<size_t>(id)] / per_column));
      begin = std::clamp(begin, 0, options.width - 1);
      end = std::clamp(end, begin + 1, options.width);
      for (int c = begin; c < end; ++c) row[static_cast<size_t>(c)] = glyph;
    }
    if (any || resources.is_gpu_resource(resource)) {
      os << label;
      if (label.size() < 14) os << std::string(14 - label.size(), ' ');
      os << row << "\n";
    }
  };

  for (int d = 0; d < resources.device_count(); ++d) {
    render_row(resources.gpu_resource(d), "GPU" + std::to_string(d));
  }
  render_row(resources.nccl_resource(), "NCCL");
  if (options.include_links) {
    for (int r = 0; r < resources.resource_count(); ++r) {
      if (resources.is_link_resource(r) || resources.is_nic_resource(r)) {
        render_row(r, resource_name(resources, r));
      }
    }
  }
  return os.str();
}

}  // namespace heterog::sim
