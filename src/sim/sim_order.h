// The simulator's scheduling orders, shared by the reference and
// data-oriented implementations so both pop ready nodes and drain events in
// exactly the same sequence.
//
// Every comparator below is a *strict total order*: ties on the primary key
// (priority, time) are broken by a unique secondary key (arrival sequence,
// node id). With a unique maximum at every step, the pop sequence of a heap
// is determined by the comparator alone — two heap implementations holding
// the same entries pop identically regardless of internal array layout.
// tests/sim_test.cpp pins this with explicit equal-key regression tests;
// never weaken a tiebreak back to a partial order.
//
// Totality additionally requires comparable keys: NaN priorities or NaN
// durations would violate strict weak ordering and corrupt the heaps, so
// Simulator rejects them up front (validate_for_simulation in simulator.h).
#pragma once

#include <cstdint>

#include "compile/dist_graph.h"

namespace heterog::sim {

struct ReadyEntry {
  double priority = 0.0;
  int64_t sequence = 0;  // unique arrival order: FIFO tiebreak / FIFO order
  compile::DistNodeId node = -1;
};

/// Max-heap on priority; equal priorities pop in arrival order (sequence is
/// unique per entry, so the order is total).
struct RankOrder {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;  // max-heap
    return a.sequence > b.sequence;
  }
};

/// Min-heap on arrival order (sequence is unique, so the order is total).
struct FifoOrder {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return a.sequence > b.sequence;
  }
};

struct Event {
  double time = 0.0;
  compile::DistNodeId node = -1;
  /// (time, node) lexicographic: equal-time completions drain in node-id
  /// order (node ids are unique, so the order is total).
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return node > other.node;
  }
};

/// Comparator form of Event::operator> for flat std::*_heap event queues
/// (std::greater<Event> resolves to the same call; this names it explicitly).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const { return a > b; }
};

}  // namespace heterog::sim
