// End-to-end plan evaluation: compile + simulate, reporting steady-state
// per-iteration time.
//
// A single-iteration makespan over-charges parameter synchronisation: pulls
// and late collectives overlap the *next* iteration's forward pass in a real
// training loop. evaluate_plan therefore simulates an unrolled multi-
// iteration graph (graph::unroll_iterations) and reports
//   per_iteration = (T_k - T_1) / (k - 1),
// while memory (peaks / OOM) comes from the single-iteration simulation —
// frameworks bound inter-iteration buffering with back-pressure, so one
// iteration's working set is the honest memory figure.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "compile/compiler.h"
#include "profiler/cost_provider.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog::sim {

/// One named communication resource's busy time over a single iteration
/// (links "link G0->G2", the NCCL channel "nccl", NICs "nic host0 egress").
struct CommResourceBusy {
  std::string resource;
  double busy_ms = 0.0;
};

struct PlanEvaluation {
  double per_iteration_ms = 0.0;    // steady state
  double cold_iteration_ms = 0.0;   // single-iteration makespan
  double computation_ms = 0.0;      // busiest GPU, single iteration
  double communication_ms = 0.0;    // busiest comm resource, single iteration
  bool oom = false;
  std::vector<int64_t> peak_memory_bytes;
  std::vector<cluster::DeviceId> oom_devices;

  /// Filled only when PlanEvalOptions::collect_utilization is set (the
  /// deployment path; off in the search hot loop so memoized cache entries
  /// stay small). All figures are over the single cold iteration.
  std::vector<double> device_busy_ms;        // per device id (ms)
  std::vector<CommResourceBusy> comm_busy;   // comm resources with busy > 0
  double critical_path_ms = 0.0;             // longest dependency chain (ms)
};

struct PlanEvalOptions {
  sched::OrderPolicy policy = sched::OrderPolicy::kRankPriority;
  compile::CompilerOptions compiler;
  /// Iterations in the steady-state unroll (>= 1; 1 disables unrolling and
  /// reports the cold makespan as per-iteration time).
  int unroll_iterations = 2;
  double usable_memory_fraction = 0.92;
  /// Also compute per-device / per-link busy times and the critical path
  /// (PlanEvaluation::device_busy_ms et al.). Deliberately NOT part of
  /// rl::EvalEngine's cache key: only the deployment path (which bypasses
  /// the cache) turns it on.
  bool collect_utilization = false;
  /// Report the cold makespan as per_iteration_ms for OOM plans instead of
  /// simulating the steady-state unroll — an infeasible plan's steady-state
  /// rate is never deployed, and at 1000 GPUs the unroll is ~40% of an
  /// evaluation. Off by default because it changes per_iteration_ms (and
  /// hence RL rewards) for OOM strategies; the heuristic-only planning path
  /// — which only ever reads `oom` and the winner's time — turns it on.
  /// IS part of rl::EvalEngine's cache key (it changes results).
  bool skip_unroll_on_oom = false;
  /// Simulator implementation used for every simulation inside the
  /// evaluation. Deliberately NOT part of rl::EvalEngine's cache key either:
  /// the two implementations are bit-identical (tests/sim_diff_test.cpp
  /// walls this), so a memoized result is valid for both.
  SimImpl sim_impl = SimImpl::kDataOriented;
};

/// Cross-call scratch for evaluate_plan. Caches the unrolled training
/// GraphDef + Grouping, which depend only on (graph, grouping, iterations) —
/// NOT on the strategy — so one entry serves every plan an engine evaluates
/// for a model. Keyed by a structural fingerprint of the graph (op workload
/// fields + edges + grouping assignment; names excluded — no evaluation
/// result depends on them). Thread-safe; rl::EvalEngine shares one instance
/// across its worker pool.
class PlanEvalScratch {
 public:
  struct Unrolled {
    graph::GraphDef graph;
    strategy::Grouping grouping;
  };

  /// Returns the cached unroll of (`training_graph`, `grouping`) at
  /// `iterations`, building and caching it on first use.
  std::shared_ptr<const Unrolled> unrolled(const graph::GraphDef& training_graph,
                                           const strategy::Grouping& grouping,
                                           int iterations);

 private:
  std::mutex mu_;
  std::vector<std::pair<uint64_t, std::shared_ptr<const Unrolled>>> entries_;
};

/// Compiles `strategy` against `costs` and evaluates it. `scratch` (optional)
/// memoises the strategy-independent unrolled graph across calls; results
/// are bit-identical with and without it.
PlanEvaluation evaluate_plan(const profiler::CostProvider& costs,
                             const graph::GraphDef& training_graph,
                             const strategy::Grouping& grouping,
                             const strategy::StrategyMap& strategy,
                             PlanEvalOptions options = PlanEvalOptions(),
                             PlanEvalScratch* scratch = nullptr);

}  // namespace heterog::sim
