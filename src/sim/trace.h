// Execution-timeline export for simulated schedules.
//
// Two renderers over a (DistGraph, SimResult) pair:
//   * chrome_trace_json — Chrome/Perfetto "trace event" JSON (open in
//     chrome://tracing or ui.perfetto.dev); one row per resource (GPU, link,
//     NIC, NCCL channel), one complete event per node.
//   * ascii_timeline    — a quick terminal Gantt view, one row per GPU plus
//     the NCCL channel, for examples and debugging.
#pragma once

#include <string>

#include "compile/dist_graph.h"
#include "sim/simulator.h"

namespace heterog::sim {

/// Chrome trace-event JSON for the simulated schedule. Durations are in
/// microseconds as the trace format expects (1 ms of simulated time = 1000
/// trace units).
std::string chrome_trace_json(const compile::DistGraph& graph, const SimResult& result);

/// Writes chrome_trace_json to a file; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const compile::DistGraph& graph,
                        const SimResult& result);

struct AsciiTimelineOptions {
  int width = 100;            // columns for the time axis
  bool include_links = false; // add rows for busy links / NICs
};

/// Terminal Gantt chart: '#' = compute, '=' = transfer, '*' = collective.
std::string ascii_timeline(const compile::DistGraph& graph, const SimResult& result,
                           AsciiTimelineOptions options = AsciiTimelineOptions());

}  // namespace heterog::sim
