#include "sim/plan_eval.h"

#include "common/check.h"
#include "compile/compiler.h"
#include "graph/training.h"

namespace heterog::sim {

PlanEvaluation evaluate_plan(const profiler::CostProvider& costs,
                             const graph::GraphDef& training_graph,
                             const strategy::Grouping& grouping,
                             const strategy::StrategyMap& strategy,
                             PlanEvalOptions options) {
  check(options.unroll_iterations >= 1, "evaluate_plan: bad unroll");
  const compile::GraphCompiler compiler(costs, options.compiler);

  // Single iteration: memory + breakdown + cold makespan.
  //
  // For HeteroG's order policy the Scheduler is simulator-driven: it tries
  // the resource-chained ranks, the plain upward ranks and the FIFO order on
  // the compiled graph and enforces whichever finishes first (list
  // scheduling has no universally dominant priority rule; simulating the
  // candidates is exactly what the paper's Scheduler/Simulator pair is for).
  const auto compiled = compiler.compile(training_graph, grouping, strategy);
  SimOptions sim_options;
  sim_options.policy = options.policy;
  sim_options.usable_memory_fraction = options.usable_memory_fraction;

  SimResult single;
  bool chained_rank_won = true;
  if (options.policy == sched::OrderPolicy::kRankPriority) {
    Simulator rank_sim(sim_options);
    single = rank_sim.run_with_priorities(compiled.graph,
                                          sched::rank_priorities(compiled.graph));
    const SimResult plain = rank_sim.run_with_priorities(
        compiled.graph, sched::compute_ranks(compiled.graph));
    if (plain.makespan_ms < single.makespan_ms) {
      single = plain;
      chained_rank_won = false;
    }
    SimOptions fifo_options = sim_options;
    fifo_options.policy = sched::OrderPolicy::kFifo;
    const SimResult fifo = Simulator(fifo_options).run(compiled.graph);
    if (fifo.makespan_ms < single.makespan_ms) {
      single = fifo;
      sim_options.policy = sched::OrderPolicy::kFifo;  // carry into the unroll
    }
    apply_oom_check(single, costs.cluster(), options.usable_memory_fraction);
  } else {
    single = evaluate(compiled.graph, costs.cluster(), sim_options);
  }

  PlanEvaluation eval;
  eval.cold_iteration_ms = single.makespan_ms;
  eval.computation_ms = single.computation_time_ms;
  eval.communication_ms = single.communication_time_ms;
  eval.oom = single.oom;
  eval.peak_memory_bytes = single.peak_memory_bytes;
  eval.oom_devices = single.oom_devices;

  if (options.unroll_iterations == 1) {
    eval.per_iteration_ms = single.makespan_ms;
    return eval;
  }

  // Steady state: unroll and difference out the pipeline fill.
  const graph::GraphDef unrolled =
      graph::unroll_iterations(training_graph, options.unroll_iterations);
  const strategy::Grouping unrolled_grouping =
      strategy::Grouping::unroll(grouping, options.unroll_iterations);
  const auto unrolled_compiled =
      compiler.compile(unrolled, unrolled_grouping, strategy);
  SimOptions steady_options = sim_options;
  steady_options.track_memory = false;
  Simulator simulator(steady_options);
  double t_k = 0.0;
  if (steady_options.policy == sched::OrderPolicy::kRankPriority && !chained_rank_won) {
    t_k = simulator
              .run_with_priorities(unrolled_compiled.graph,
                                   sched::compute_ranks(unrolled_compiled.graph))
              .makespan_ms;
  } else {
    t_k = simulator.run(unrolled_compiled.graph).makespan_ms;
  }
  eval.per_iteration_ms =
      (t_k - single.makespan_ms) / static_cast<double>(options.unroll_iterations - 1);
  // Guard against degenerate overlap estimates (per-iteration time can never
  // exceed the cold makespan nor be non-positive).
  if (eval.per_iteration_ms <= 0.0 || eval.per_iteration_ms > single.makespan_ms) {
    eval.per_iteration_ms = single.makespan_ms;
  }
  return eval;
}

}  // namespace heterog::sim
