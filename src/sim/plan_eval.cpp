#include "sim/plan_eval.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/hash.h"
#include "compile/compiler.h"
#include "graph/training.h"
#include "sched/scheduler.h"
#include "sim/sim_core.h"

namespace heterog::sim {

namespace {

std::string comm_resource_name(const compile::ResourceModel& resources, int r) {
  const int devices = resources.device_count();
  if (resources.is_link_resource(r)) {
    const int pair = r - devices;
    return "link G" + std::to_string(pair / devices) + "->G" +
           std::to_string(pair % devices);
  }
  if (r == resources.nccl_resource()) return "nccl";
  if (resources.is_nic_resource(r)) {
    const int nic = r - resources.nccl_resource() - 1;
    return "nic host" + std::to_string(nic / 2) +
           (nic % 2 == 0 ? " egress" : " ingress");
  }
  return "resource " + std::to_string(r);
}

/// Per-device and per-comm-resource busy times plus the critical path of the
/// single-iteration schedule (max upward rank == longest dependency chain,
/// since transfers are explicit nodes and edges are free).
void collect_utilization(const compile::DistGraph& graph, const SimResult& single,
                         PlanEvaluation& eval) {
  const compile::ResourceModel& resources = graph.resources();
  eval.device_busy_ms.assign(static_cast<size_t>(resources.device_count()), 0.0);
  for (int r = 0; r < static_cast<int>(single.resource_busy_ms.size()); ++r) {
    const double busy = single.resource_busy_ms[static_cast<size_t>(r)];
    if (resources.is_gpu_resource(r)) {
      eval.device_busy_ms[static_cast<size_t>(r)] = busy;
    } else if (busy > 0.0) {
      eval.comm_busy.push_back({comm_resource_name(resources, r), busy});
    }
  }
  const std::vector<double> ranks = sched::compute_ranks(graph);
  eval.critical_path_ms =
      ranks.empty() ? 0.0 : *std::max_element(ranks.begin(), ranks.end());
}

/// Structural fingerprint of (graph, grouping, iterations) for the unroll
/// cache. Covers everything unroll_iterations / Grouping::unroll read except
/// op names — no evaluation result depends on node names (evaluate_plan
/// compiles with emit_node_names off).
uint64_t unroll_key(const graph::GraphDef& graph, const strategy::Grouping& grouping,
                    int iterations) {
  Hash64 h;
  h.mix(0x756e726f6c6cULL);  // "unroll" domain tag
  h.mix(static_cast<uint64_t>(iterations));
  h.mix(static_cast<uint64_t>(graph.op_count()));
  h.mix_double(graph.global_batch());
  for (const auto& op : graph.ops()) {
    h.mix(static_cast<uint64_t>(op.kind));
    h.mix(static_cast<uint64_t>(op.role));
    h.mix_double(op.flops_per_sample);
    h.mix_double(op.flops_fixed);
    h.mix_signed(op.out_bytes_per_sample);
    h.mix_signed(op.out_bytes_fixed);
    h.mix_signed(op.param_bytes);
    h.mix(op.batch_divisible ? 1 : 0);
    h.mix_signed(op.grad_of);
    h.mix_signed(op.mirror_of);
    const auto& succ = graph.successors(op.id);
    h.mix(succ.size());
    for (const auto s : succ) h.mix_signed(s);
  }
  for (const auto g : grouping.assignment()) h.mix_signed(g);
  return h.digest();
}

}  // namespace

std::shared_ptr<const PlanEvalScratch::Unrolled> PlanEvalScratch::unrolled(
    const graph::GraphDef& training_graph, const strategy::Grouping& grouping,
    int iterations) {
  const uint64_t key = unroll_key(training_graph, grouping, iterations);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, v] : entries_) {
      if (k == key) return v;
    }
  }
  auto built = std::make_shared<Unrolled>(
      Unrolled{graph::unroll_iterations(training_graph, iterations),
               strategy::Grouping::unroll(grouping, iterations)});
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;  // lost the build race; share the winner
  }
  if (entries_.size() >= 16) entries_.erase(entries_.begin());  // tiny LRU-ish cap
  entries_.emplace_back(key, built);
  return built;
}

PlanEvaluation evaluate_plan(const profiler::CostProvider& costs,
                             const graph::GraphDef& training_graph,
                             const strategy::Grouping& grouping,
                             const strategy::StrategyMap& strategy,
                             PlanEvalOptions options, PlanEvalScratch* scratch) {
  check(options.unroll_iterations >= 1, "evaluate_plan: bad unroll");
  // Node names are write-only below this point (PlanEvaluation reports
  // resource names, never node names) — skip building them in the hot loop.
  compile::CompilerOptions compiler_options = options.compiler;
  compiler_options.emit_node_names = false;
  compiler_options.validate_output = false;  // asserted structure, not results
  const compile::GraphCompiler compiler(costs, compiler_options);

  // One simulation entry point for both implementations. The data-oriented
  // path builds the flat CompactGraph once per distinct graph and reuses the
  // per-thread workspace across the candidate runs (zero allocations after
  // warm-up); the reference path goes through the legacy simulator.
  const compile::DistGraph* built_for = nullptr;
  auto simulate = [&](const compile::DistGraph& graph,
                      const std::vector<double>& priorities,
                      const SimOptions& sim_opts) -> SimResult {
    if (sim_opts.impl == SimImpl::kReference) {
      return Simulator(sim_opts).run_with_priorities(graph, priorities);
    }
    SimWorkspace& ws = thread_workspace();
    if (built_for != &graph) {
      validate_for_simulation(graph);
      ws.graph.build(graph);
      built_for = &graph;
    }
    return run_core(ws.graph, priorities, sim_opts, ws, nullptr);
  };

  // Single iteration: memory + breakdown + cold makespan.
  //
  // For HeteroG's order policy the Scheduler is simulator-driven: it tries
  // the resource-chained ranks, the plain upward ranks and the FIFO order on
  // the compiled graph and enforces whichever finishes first (list
  // scheduling has no universally dominant priority rule; simulating the
  // candidates is exactly what the paper's Scheduler/Simulator pair is for).
  const auto compiled = compiler.compile(training_graph, grouping, strategy);
  SimOptions sim_options;
  sim_options.policy = options.policy;
  sim_options.usable_memory_fraction = options.usable_memory_fraction;
  sim_options.impl = options.sim_impl;

  SimResult single;
  bool chained_rank_won = true;
  if (options.policy == sched::OrderPolicy::kRankPriority) {
    const auto topo = compiled.graph.topological_order();
    // The chained-rank candidate usually wins the tryout, so it alone runs
    // with memory tracking on; the two challengers run without (tracking
    // writes memory arrays but never influences dispatch order, so their
    // makespans are unaffected). When a challenger does take the lead it is
    // re-simulated with tracking — simulation is deterministic, so the
    // result is bit-identical to having tracked it from the start, and the
    // common case skips two full memory passes per evaluation.
    single = simulate(compiled.graph, sched::rank_priorities(compiled.graph, topo),
                      sim_options);
    SimOptions trial_options = sim_options;
    trial_options.track_memory = false;
    const std::vector<double> plain_ranks =
        sched::compute_ranks(compiled.graph, topo, {});
    const SimResult plain = simulate(compiled.graph, plain_ranks, trial_options);
    bool rerun_winner = false;
    if (plain.makespan_ms < single.makespan_ms) {
      single = plain;
      chained_rank_won = false;
      rerun_winner = true;
    }
    SimOptions fifo_options = sim_options;
    fifo_options.policy = sched::OrderPolicy::kFifo;
    SimOptions fifo_trial = fifo_options;
    fifo_trial.track_memory = false;
    const std::vector<double> zeros(static_cast<size_t>(compiled.graph.node_count()),
                                    0.0);
    const SimResult fifo = simulate(compiled.graph, zeros, fifo_trial);
    bool fifo_won = false;
    if (fifo.makespan_ms < single.makespan_ms) {
      single = fifo;
      sim_options.policy = sched::OrderPolicy::kFifo;  // carry into the unroll
      fifo_won = true;
      rerun_winner = true;
    }
    if (rerun_winner && sim_options.track_memory) {
      single = fifo_won ? simulate(compiled.graph, zeros, fifo_options)
                        : simulate(compiled.graph, plain_ranks, sim_options);
    }
    apply_oom_check(single, costs.cluster(), options.usable_memory_fraction);
  } else {
    single = evaluate(compiled.graph, costs.cluster(), sim_options);
  }

  PlanEvaluation eval;
  eval.cold_iteration_ms = single.makespan_ms;
  eval.computation_ms = single.computation_time_ms;
  eval.communication_ms = single.communication_time_ms;
  eval.oom = single.oom;
  eval.peak_memory_bytes = single.peak_memory_bytes;
  eval.oom_devices = single.oom_devices;
  if (options.collect_utilization) collect_utilization(compiled.graph, single, eval);

  if (options.unroll_iterations == 1 ||
      (options.skip_unroll_on_oom && eval.oom)) {
    eval.per_iteration_ms = single.makespan_ms;
    return eval;
  }

  // Steady state: unroll and difference out the pipeline fill. The unroll is
  // strategy-independent, so the scratch (when provided) serves it from its
  // cache after the first plan of a (graph, grouping, k) triple.
  std::shared_ptr<const PlanEvalScratch::Unrolled> cached;
  std::optional<PlanEvalScratch::Unrolled> local;
  if (scratch != nullptr) {
    cached = scratch->unrolled(training_graph, grouping, options.unroll_iterations);
  } else {
    local.emplace(PlanEvalScratch::Unrolled{
        graph::unroll_iterations(training_graph, options.unroll_iterations),
        strategy::Grouping::unroll(grouping, options.unroll_iterations)});
  }
  const PlanEvalScratch::Unrolled& unrolled = scratch != nullptr ? *cached : *local;
  const auto unrolled_compiled =
      compiler.compile(unrolled.graph, unrolled.grouping, strategy);
  SimOptions steady_options = sim_options;
  steady_options.track_memory = false;
  std::vector<double> steady_priorities;
  if (steady_options.policy == sched::OrderPolicy::kRankPriority) {
    const auto topo = unrolled_compiled.graph.topological_order();
    steady_priorities =
        chained_rank_won
            ? sched::rank_priorities(unrolled_compiled.graph, topo)
            : sched::compute_ranks(unrolled_compiled.graph, topo, {});
  } else {
    steady_priorities.assign(static_cast<size_t>(unrolled_compiled.graph.node_count()),
                             0.0);
  }
  const double t_k =
      simulate(unrolled_compiled.graph, steady_priorities, steady_options).makespan_ms;
  eval.per_iteration_ms =
      (t_k - single.makespan_ms) / static_cast<double>(options.unroll_iterations - 1);
  // Guard against degenerate overlap estimates (per-iteration time can never
  // exceed the cold makespan nor be non-positive).
  if (eval.per_iteration_ms <= 0.0 || eval.per_iteration_ms > single.makespan_ms) {
    eval.per_iteration_ms = single.makespan_ms;
  }
  return eval;
}

}  // namespace heterog::sim
