#include "sim/plan_eval.h"

#include <algorithm>

#include "common/check.h"
#include "compile/compiler.h"
#include "graph/training.h"
#include "sched/scheduler.h"

namespace heterog::sim {

namespace {

std::string comm_resource_name(const compile::ResourceModel& resources, int r) {
  const int devices = resources.device_count();
  if (resources.is_link_resource(r)) {
    const int pair = r - devices;
    return "link G" + std::to_string(pair / devices) + "->G" +
           std::to_string(pair % devices);
  }
  if (r == resources.nccl_resource()) return "nccl";
  if (resources.is_nic_resource(r)) {
    const int nic = r - resources.nccl_resource() - 1;
    return "nic host" + std::to_string(nic / 2) +
           (nic % 2 == 0 ? " egress" : " ingress");
  }
  return "resource " + std::to_string(r);
}

/// Per-device and per-comm-resource busy times plus the critical path of the
/// single-iteration schedule (max upward rank == longest dependency chain,
/// since transfers are explicit nodes and edges are free).
void collect_utilization(const compile::DistGraph& graph, const SimResult& single,
                         PlanEvaluation& eval) {
  const compile::ResourceModel& resources = graph.resources();
  eval.device_busy_ms.assign(static_cast<size_t>(resources.device_count()), 0.0);
  for (int r = 0; r < static_cast<int>(single.resource_busy_ms.size()); ++r) {
    const double busy = single.resource_busy_ms[static_cast<size_t>(r)];
    if (resources.is_gpu_resource(r)) {
      eval.device_busy_ms[static_cast<size_t>(r)] = busy;
    } else if (busy > 0.0) {
      eval.comm_busy.push_back({comm_resource_name(resources, r), busy});
    }
  }
  const std::vector<double> ranks = sched::compute_ranks(graph);
  eval.critical_path_ms =
      ranks.empty() ? 0.0 : *std::max_element(ranks.begin(), ranks.end());
}

}  // namespace

PlanEvaluation evaluate_plan(const profiler::CostProvider& costs,
                             const graph::GraphDef& training_graph,
                             const strategy::Grouping& grouping,
                             const strategy::StrategyMap& strategy,
                             PlanEvalOptions options) {
  check(options.unroll_iterations >= 1, "evaluate_plan: bad unroll");
  const compile::GraphCompiler compiler(costs, options.compiler);

  // Single iteration: memory + breakdown + cold makespan.
  //
  // For HeteroG's order policy the Scheduler is simulator-driven: it tries
  // the resource-chained ranks, the plain upward ranks and the FIFO order on
  // the compiled graph and enforces whichever finishes first (list
  // scheduling has no universally dominant priority rule; simulating the
  // candidates is exactly what the paper's Scheduler/Simulator pair is for).
  const auto compiled = compiler.compile(training_graph, grouping, strategy);
  SimOptions sim_options;
  sim_options.policy = options.policy;
  sim_options.usable_memory_fraction = options.usable_memory_fraction;

  SimResult single;
  bool chained_rank_won = true;
  if (options.policy == sched::OrderPolicy::kRankPriority) {
    Simulator rank_sim(sim_options);
    single = rank_sim.run_with_priorities(compiled.graph,
                                          sched::rank_priorities(compiled.graph));
    const SimResult plain = rank_sim.run_with_priorities(
        compiled.graph, sched::compute_ranks(compiled.graph));
    if (plain.makespan_ms < single.makespan_ms) {
      single = plain;
      chained_rank_won = false;
    }
    SimOptions fifo_options = sim_options;
    fifo_options.policy = sched::OrderPolicy::kFifo;
    const SimResult fifo = Simulator(fifo_options).run(compiled.graph);
    if (fifo.makespan_ms < single.makespan_ms) {
      single = fifo;
      sim_options.policy = sched::OrderPolicy::kFifo;  // carry into the unroll
    }
    apply_oom_check(single, costs.cluster(), options.usable_memory_fraction);
  } else {
    single = evaluate(compiled.graph, costs.cluster(), sim_options);
  }

  PlanEvaluation eval;
  eval.cold_iteration_ms = single.makespan_ms;
  eval.computation_ms = single.computation_time_ms;
  eval.communication_ms = single.communication_time_ms;
  eval.oom = single.oom;
  eval.peak_memory_bytes = single.peak_memory_bytes;
  eval.oom_devices = single.oom_devices;
  if (options.collect_utilization) collect_utilization(compiled.graph, single, eval);

  if (options.unroll_iterations == 1) {
    eval.per_iteration_ms = single.makespan_ms;
    return eval;
  }

  // Steady state: unroll and difference out the pipeline fill.
  const graph::GraphDef unrolled =
      graph::unroll_iterations(training_graph, options.unroll_iterations);
  const strategy::Grouping unrolled_grouping =
      strategy::Grouping::unroll(grouping, options.unroll_iterations);
  const auto unrolled_compiled =
      compiler.compile(unrolled, unrolled_grouping, strategy);
  SimOptions steady_options = sim_options;
  steady_options.track_memory = false;
  Simulator simulator(steady_options);
  double t_k = 0.0;
  if (steady_options.policy == sched::OrderPolicy::kRankPriority && !chained_rank_won) {
    t_k = simulator
              .run_with_priorities(unrolled_compiled.graph,
                                   sched::compute_ranks(unrolled_compiled.graph))
              .makespan_ms;
  } else {
    t_k = simulator.run(unrolled_compiled.graph).makespan_ms;
  }
  eval.per_iteration_ms =
      (t_k - single.makespan_ms) / static_cast<double>(options.unroll_iterations - 1);
  // Guard against degenerate overlap estimates (per-iteration time can never
  // exceed the cold makespan nor be non-positive).
  if (eval.per_iteration_ms <= 0.0 || eval.per_iteration_ms > single.makespan_ms) {
    eval.per_iteration_ms = single.makespan_ms;
  }
  return eval;
}

}  // namespace heterog::sim
