#include "sim/sim_core.h"

#include <algorithm>

#include "common/check.h"

namespace heterog::sim {

namespace {

using compile::DistNodeId;
using compile::NodeKind;

void mem_alloc_output(const CompactGraph& g, SimWorkspace& ws, SimResult& result,
                      int32_t v) {
  const int64_t bytes = g.output_bytes[static_cast<size_t>(v)];
  for (int32_t k = g.mem_off[static_cast<size_t>(v)];
       k < g.mem_off[static_cast<size_t>(v) + 1]; ++k) {
    const int32_t d = g.mem_dat[static_cast<size_t>(k)];
    const int64_t cur = (ws.mem_current[static_cast<size_t>(d)] += bytes);
    auto& peak = result.peak_memory_bytes[static_cast<size_t>(d)];
    if (cur > peak) peak = cur;
  }
}

void mem_release_output(const CompactGraph& g, SimWorkspace& ws, int32_t v) {
  const int64_t bytes = g.output_bytes[static_cast<size_t>(v)];
  for (int32_t k = g.mem_off[static_cast<size_t>(v)];
       k < g.mem_off[static_cast<size_t>(v) + 1]; ++k) {
    ws.mem_current[static_cast<size_t>(g.mem_dat[static_cast<size_t>(k)])] -= bytes;
  }
}

/// MemoryTracker::on_finish: a terminal node's output is released
/// immediately; otherwise it lives until the last consumer finishes.
void mem_on_finish(const CompactGraph& g, SimWorkspace& ws, int32_t v) {
  if (ws.remaining_consumers[static_cast<size_t>(v)] == 0) mem_release_output(g, ws, v);
  for (int32_t k = g.pred_off[static_cast<size_t>(v)];
       k < g.pred_off[static_cast<size_t>(v) + 1]; ++k) {
    const int32_t p = g.pred_dat[static_cast<size_t>(k)];
    if (--ws.remaining_consumers[static_cast<size_t>(p)] == 0) {
      mem_release_output(g, ws, p);
    }
  }
}

void init_memory(const CompactGraph& g, SimWorkspace& ws, SimResult& result) {
  ws.mem_current.assign(static_cast<size_t>(g.device_count), 0);
  result.peak_memory_bytes.assign(static_cast<size_t>(g.device_count), 0);
  for (size_t d = 0; d < ws.mem_current.size() && d < g.static_params.size(); ++d) {
    ws.mem_current[d] = g.static_params[d];
    result.peak_memory_bytes[d] = g.static_params[d];
  }
  ws.remaining_consumers.assign(static_cast<size_t>(g.n), 0);
  for (int32_t v = 0; v < g.n; ++v) {
    ws.remaining_consumers[static_cast<size_t>(v)] =
        g.succ_off[static_cast<size_t>(v) + 1] - g.succ_off[static_cast<size_t>(v)];
  }
}

void mark_dirty(SimWorkspace& ws, int32_t res) {
  if (!ws.in_dirty[static_cast<size_t>(res)]) {
    ws.in_dirty[static_cast<size_t>(res)] = 1;
    ws.dirty.push_back(res);
  }
}

template <bool kRecord>
void heap_push(SimWorkspace& ws, SimBaseline* rec, const auto& order, int32_t res,
               int32_t v, int64_t seq, double priority) {
  auto& q = ws.ready[static_cast<size_t>(res)];
  q.push_back(ReadyEntry{priority, seq, v});
  std::push_heap(q.begin(), q.end(), order);
  mark_dirty(ws, res);
  if constexpr (kRecord) {
    rec->log.push_back({SimBaseline::kPush, res, v, seq});
  }
}

/// The main discrete-event loop, shared by full runs (initial_dispatch=true)
/// and incremental resumes (state already replayed; initial_dispatch=false).
/// Mirrors the reference simulator statement-for-statement — any change here
/// must keep tests/sim_diff_test.cpp bit-identical.
template <typename Order, bool kRecord>
void event_loop(const CompactGraph& g, const std::vector<double>& priorities,
                bool track_memory, SimWorkspace& ws, SimResult& result, double& now,
                int& completed, int64_t& sequence, SimBaseline* rec,
                bool initial_dispatch) {
  const Order order{};
  const int32_t r = g.r;

  auto push_ready = [&](int32_t v) {
    heap_push<kRecord>(ws, rec, order, g.queue_res[static_cast<size_t>(v)], v,
                       sequence++, priorities[static_cast<size_t>(v)]);
  };

  // Dispatch on one resource: start queued nodes whose resource sets are
  // entirely free; a node blocked on another resource migrates to that
  // resource's queue (it will be reconsidered when that resource frees).
  auto dispatch_resource = [&](int32_t res, double time) {
    auto& q = ws.ready[static_cast<size_t>(res)];
    while (!ws.busy[static_cast<size_t>(res)] && !q.empty()) {
      const ReadyEntry entry = q.front();
      int32_t blocking = -1;
      for (int32_t k = g.res_begin(entry.node); k < g.res_end(entry.node); ++k) {
        const int32_t nr = g.res_dat[static_cast<size_t>(k)];
        if (ws.busy[static_cast<size_t>(nr)]) {
          blocking = nr;
          break;
        }
      }
      std::pop_heap(q.begin(), q.end(), order);
      q.pop_back();
      if constexpr (kRecord) {
        rec->log.push_back({SimBaseline::kPop, res, entry.node, entry.sequence});
      }
      if (blocking >= 0) {
        heap_push<kRecord>(ws, rec, order, blocking, entry.node, entry.sequence,
                           entry.priority);
        continue;
      }
      const double duration = g.duration[static_cast<size_t>(entry.node)];
      for (int32_t k = g.res_begin(entry.node); k < g.res_end(entry.node); ++k) {
        const int32_t nr = g.res_dat[static_cast<size_t>(k)];
        ws.busy[static_cast<size_t>(nr)] = 1;
        result.resource_busy_ms[static_cast<size_t>(nr)] += duration;
      }
      result.start_ms[static_cast<size_t>(entry.node)] = time;
      result.finish_ms[static_cast<size_t>(entry.node)] = time + duration;
      if (track_memory) mem_alloc_output(g, ws, result, entry.node);
      ws.events.push_back(Event{time + duration, entry.node});
      std::push_heap(ws.events.begin(), ws.events.end(), EventAfter{});
      if constexpr (kRecord) {
        rec->log.push_back({SimBaseline::kDispatch, -1, entry.node, -1});
      }
    }
  };

  // Visit only resources freed or pushed to since the last pass, in ascending
  // index order — equivalent to the reference's full 0..R-1 scan because
  // every other resource is busy or has an empty queue (after a pass each
  // resource is busy-or-empty; only a completion free or a ready push can
  // break that, and both mark the resource dirty). Migration pushes during
  // the pass target the blocking (busy) resource, so entries appended past
  // the snapshot would be no-ops; they are re-marked when that resource
  // frees, and can be dropped here.
  auto dispatch_all = [&](double time) {
    auto& d = ws.dirty;
    // Ascending order matches the reference's 0..R-1 scan. The dirty set is
    // tiny (the resources freed/pushed since the last pass) and this runs
    // once per event batch, so an inline insertion sort beats std::sort's
    // call overhead.
    for (size_t i = 1; i < d.size(); ++i) {
      const int32_t x = d[i];
      size_t j = i;
      for (; j > 0 && d[j - 1] > x; --j) d[j] = d[j - 1];
      d[j] = x;
    }
    const size_t snapshot = d.size();
    for (size_t i = 0; i < snapshot; ++i) dispatch_resource(d[i], time);
    for (const int32_t res : d) ws.in_dirty[static_cast<size_t>(res)] = 0;
    d.clear();
  };
  (void)r;

  if (initial_dispatch) dispatch_all(0.0);
  while (!ws.events.empty()) {
    if constexpr (kRecord) {
      rec->batch_starts.push_back(static_cast<int32_t>(rec->log.size()));
    }
    // Drain all events at the same timestamp before dispatching, so freed
    // resources see every newly-ready node.
    const double time = ws.events.front().time;
    while (!ws.events.empty() && ws.events.front().time == time) {
      const Event ev = ws.events.front();
      std::pop_heap(ws.events.begin(), ws.events.end(), EventAfter{});
      ws.events.pop_back();
      now = ev.time;
      ++completed;
      for (int32_t k = g.res_begin(ev.node); k < g.res_end(ev.node); ++k) {
        const int32_t nr = g.res_dat[static_cast<size_t>(k)];
        ws.busy[static_cast<size_t>(nr)] = 0;
        mark_dirty(ws, nr);
      }
      if (track_memory) mem_on_finish(g, ws, ev.node);
      if constexpr (kRecord) {
        rec->log.push_back({SimBaseline::kComplete, -1, ev.node, -1});
      }
      for (int32_t k = g.succ_off[static_cast<size_t>(ev.node)];
           k < g.succ_off[static_cast<size_t>(ev.node) + 1]; ++k) {
        const int32_t s = g.succ_dat[static_cast<size_t>(k)];
        if (--ws.in_degree[static_cast<size_t>(s)] == 0) push_ready(s);
      }
    }
    dispatch_all(now);
  }
}

void finish_result(const CompactGraph& g, const SimOptions& options, SimResult& result,
                   double now, int completed) {
  check(completed == g.n, "simulation deadlocked (cycle or unreachable node)");
  result.makespan_ms = now;
  for (int32_t res = 0; res < g.r; ++res) {
    const double t = result.resource_busy_ms[static_cast<size_t>(res)];
    if (res < g.device_count) {  // ResourceModel::is_gpu_resource
      result.computation_time_ms = std::max(result.computation_time_ms, t);
    } else {
      result.communication_time_ms = std::max(result.communication_time_ms, t);
    }
  }
  if (!options.track_memory) {
    result.peak_memory_bytes.assign(static_cast<size_t>(g.device_count), 0);
  }
}

void reset_workspace(const CompactGraph& g, SimWorkspace& ws, SimResult& result) {
  result.resource_busy_ms.assign(static_cast<size_t>(g.r), 0.0);
  result.start_ms.assign(static_cast<size_t>(g.n), 0.0);
  result.finish_ms.assign(static_cast<size_t>(g.n), 0.0);
  if (ws.ready.size() < static_cast<size_t>(g.r)) ws.ready.resize(static_cast<size_t>(g.r));
  for (int32_t res = 0; res < g.r; ++res) ws.ready[static_cast<size_t>(res)].clear();
  ws.events.clear();
  ws.busy.assign(static_cast<size_t>(g.r), 0);
  ws.dirty.clear();
  ws.in_dirty.assign(static_cast<size_t>(g.r), 0);
  ws.in_degree.assign(static_cast<size_t>(g.n), 0);
  for (int32_t v = 0; v < g.n; ++v) {
    ws.in_degree[static_cast<size_t>(v)] =
        g.pred_off[static_cast<size_t>(v) + 1] - g.pred_off[static_cast<size_t>(v)];
  }
}

template <typename Order, bool kRecord>
SimResult run_impl(const CompactGraph& g, const std::vector<double>& priorities,
                   const SimOptions& options, SimWorkspace& ws, SimBaseline* rec) {
  SimResult result;
  if (g.n == 0) {
    result.resource_busy_ms.assign(static_cast<size_t>(g.r), 0.0);
    result.peak_memory_bytes.assign(static_cast<size_t>(g.device_count), 0);
    return result;
  }
  reset_workspace(g, ws, result);
  init_memory(g, ws, result);

  double now = 0.0;
  int completed = 0;
  int64_t sequence = 0;
  {
    const Order order{};
    for (int32_t v = 0; v < g.n; ++v) {
      if (ws.in_degree[static_cast<size_t>(v)] == 0) {
        heap_push<kRecord>(ws, rec, order, g.queue_res[static_cast<size_t>(v)], v,
                           sequence++, priorities[static_cast<size_t>(v)]);
      }
    }
  }
  event_loop<Order, kRecord>(g, priorities, options.track_memory, ws, result, now,
                             completed, sequence, rec, /*initial_dispatch=*/true);
  finish_result(g, options, result, now, completed);
  return result;
}

/// True when the compact span `v` of (off, dat) holds exactly `values`.
template <typename Range>
bool span_matches(const std::vector<int32_t>& off, const std::vector<int32_t>& dat,
                  int32_t v, const Range& values) {
  const int32_t b = off[static_cast<size_t>(v)], e = off[static_cast<size_t>(v) + 1];
  if (e - b != static_cast<int32_t>(values.size())) return false;
  return std::equal(dat.begin() + b, dat.begin() + e, values.begin());
}

/// The memory-target span build() would extract for `node` (its device /
/// link_to / participants when output_bytes > 0, else empty) — compared
/// against the baseline snapshot without materialising it.
bool mem_span_matches(const CompactGraph& og, int32_t v, const compile::DistNode& node) {
  const int32_t b = og.mem_off[static_cast<size_t>(v)];
  const int32_t e = og.mem_off[static_cast<size_t>(v) + 1];
  if (node.output_bytes <= 0) return b == e;
  switch (node.kind) {
    case NodeKind::kCompute:
      return e - b == 1 && og.mem_dat[static_cast<size_t>(b)] == node.device;
    case NodeKind::kTransfer:
      return e - b == 1 && og.mem_dat[static_cast<size_t>(b)] == node.link_to;
    case NodeKind::kCollective:
      return e - b == static_cast<int32_t>(node.participants.size()) &&
             std::equal(og.mem_dat.begin() + b, og.mem_dat.begin() + e,
                        node.participants.begin());
  }
  return false;
}

/// Cheap first diff pass over the DistGraph without building a snapshot:
/// scalar fields only (duration, output bytes, priority). Any hit proves the
/// frontier non-empty, so the caller can go straight to the snapshot build
/// and the compact diff below; a clean scan still needs the structural
/// confirm (direct_structural_diff) before the baseline may answer.
bool scalar_diff(const compile::DistGraph& graph,
                 const std::vector<double>& priorities, const SimBaseline& base) {
  const CompactGraph& og = base.graph;
  const int32_t n = og.n;
  if (n != graph.node_count()) return true;
  for (int32_t v = 0; v < n; ++v) {
    const auto sv = static_cast<size_t>(v);
    const compile::DistNode& node = graph.node(v);
    if (og.duration[sv] != node.duration_ms ||
        og.output_bytes[sv] != node.output_bytes ||
        base.priorities[sv] != priorities[sv]) {
      return true;
    }
  }
  return false;
}

/// Structural confirm for a scalar-clean graph: compares field-for-field what
/// CompactGraph::build would extract (queue resource, resource set,
/// adjacency, memory targets) directly against the baseline snapshot. Fills
/// ws.affected. A clean result means an empty frontier — the common
/// fault-sweep case of a delta that only touches devices the plan never uses
/// — detected without paying for a snapshot build or any simulation.
bool direct_structural_diff(const compile::DistGraph& graph, const SimBaseline& base,
                            SimWorkspace& ws) {
  const CompactGraph& og = base.graph;
  const compile::ResourceModel& resources = graph.resources();
  const int32_t n = og.n;
  ws.affected.assign(static_cast<size_t>(n), 0);
  bool any_affected = false;
  std::vector<int> res_scratch;
  res_scratch.reserve(4);
  for (int32_t v = 0; v < n; ++v) {
    const compile::DistNode& node = graph.node(v);
    resources.resources_of(node, res_scratch);
    const bool same = og.queue_res[static_cast<size_t>(v)] == resources.resource_of(node) &&
                      span_matches(og.res_off, og.res_dat, v, res_scratch) &&
                      span_matches(og.succ_off, og.succ_dat, v, graph.successors(v)) &&
                      span_matches(og.pred_off, og.pred_dat, v, graph.predecessors(v)) &&
                      mem_span_matches(og, v, node);
    if (!same) {
      ws.affected[static_cast<size_t>(v)] = 1;
      any_affected = true;
    }
  }
  return any_affected;
}

bool span_equal(const std::vector<int32_t>& a_off, const std::vector<int32_t>& a_dat,
                const std::vector<int32_t>& b_off, const std::vector<int32_t>& b_dat,
                int32_t v) {
  const int32_t ab = a_off[static_cast<size_t>(v)], ae = a_off[static_cast<size_t>(v) + 1];
  const int32_t bb = b_off[static_cast<size_t>(v)], be = b_off[static_cast<size_t>(v) + 1];
  if (ae - ab != be - bb) return false;
  return std::equal(a_dat.begin() + ab, a_dat.begin() + ae, b_dat.begin() + bb);
}

/// Full diff over two compact snapshots. Fills ws.affected: a node is
/// affected when anything the scheduler or memory tracker reads about it
/// changed — duration, bytes, queue resource, resource set, adjacency,
/// memory targets, or its priority.
bool compact_diff(const CompactGraph& og, const CompactGraph& ng,
                  const std::vector<double>& priorities, const SimBaseline& base,
                  SimWorkspace& ws) {
  const int32_t n_old = og.n;
  const int32_t n_new = ng.n;
  const int32_t n_common = std::min(n_old, n_new);
  ws.affected.assign(static_cast<size_t>(n_old), 0);
  bool any_affected = n_old != n_new;
  for (int32_t v = 0; v < n_common; ++v) {
    const auto sv = static_cast<size_t>(v);
    const bool same =
        og.duration[sv] == ng.duration[sv] &&
        og.output_bytes[sv] == ng.output_bytes[sv] &&
        og.queue_res[sv] == ng.queue_res[sv] &&
        base.priorities[sv] == priorities[sv] &&
        span_equal(og.res_off, og.res_dat, ng.res_off, ng.res_dat, v) &&
        span_equal(og.succ_off, og.succ_dat, ng.succ_off, ng.succ_dat, v) &&
        span_equal(og.pred_off, og.pred_dat, ng.pred_off, ng.pred_dat, v) &&
        span_equal(og.mem_off, og.mem_dat, ng.mem_off, ng.mem_dat, v);
    if (!same) {
      ws.affected[sv] = 1;
      any_affected = true;
    }
  }
  for (int32_t v = n_common; v < n_old; ++v) ws.affected[static_cast<size_t>(v)] = 1;
  return any_affected;
}

/// Replay + resume against a non-empty affected frontier (ws.affected is
/// already filled by diff_against_baseline).
template <typename Order>
SimResult resimulate_impl(const CompactGraph& ng, const std::vector<double>& priorities,
                          const SimOptions& options, const SimBaseline& base,
                          SimWorkspace& ws) {
  const CompactGraph& og = base.graph;
  const int32_t n_old = og.n;
  const int32_t n_new = ng.n;

  // A completion's side effects reach its neighbours: it may release an
  // affected predecessor's output and its successors' readiness (hence push
  // order) depends on their pred sets. Conservatively treat completions with
  // any affected neighbour as divergent.
  ws.affected_adj.assign(static_cast<size_t>(n_old), 0);
  for (int32_t v = 0; v < n_old; ++v) {
    if (!ws.affected[static_cast<size_t>(v)]) continue;
    for (int32_t k = og.pred_off[static_cast<size_t>(v)];
         k < og.pred_off[static_cast<size_t>(v) + 1]; ++k) {
      ws.affected_adj[static_cast<size_t>(og.pred_dat[static_cast<size_t>(k)])] = 1;
    }
    for (int32_t k = og.succ_off[static_cast<size_t>(v)];
         k < og.succ_off[static_cast<size_t>(v) + 1]; ++k) {
      ws.affected_adj[static_cast<size_t>(og.succ_dat[static_cast<size_t>(k)])] = 1;
    }
  }

  // The initial ready set must match the baseline's leading id-order pushes;
  // a node that became source-ready only in the new graph would otherwise
  // never be pushed by the replayed prefix.
  {
    size_t lead = 0;
    while (lead < base.log.size() && base.log[lead].op == SimBaseline::kPush) ++lead;
    size_t li = 0;
    int32_t id = 0;
    bool match = true;
    for (;;) {
      while (id < n_new &&
             ng.pred_off[static_cast<size_t>(id) + 1] != ng.pred_off[static_cast<size_t>(id)]) {
        ++id;
      }
      const bool have_new = id < n_new;
      const bool have_old = li < lead;
      if (!have_new && !have_old) break;
      if (have_new != have_old || base.log[li].node != id) {
        match = false;
        break;
      }
      ++li;
      ++id;
    }
    if (!match) return run_core(ng, priorities, options, ws, nullptr);
  }

  // First divergent log position, then the last safe resume point before it.
  size_t divergence = base.log.size();
  for (size_t i = 0; i < base.log.size(); ++i) {
    const auto& e = base.log[i];
    const auto sv = static_cast<size_t>(e.node);
    if (ws.affected[sv] ||
        (e.op == SimBaseline::kComplete && ws.affected_adj[sv])) {
      divergence = i;
      break;
    }
  }
  size_t cut = 0;
  for (const int32_t b : base.batch_starts) {
    if (static_cast<size_t>(b) <= divergence) {
      cut = static_cast<size_t>(b);
    } else {
      break;
    }
  }
  if (cut == 0) return run_core(ng, priorities, options, ws, nullptr);

  // ---- Replay log[0..cut) with plain array arithmetic (no heap work). ----
  SimResult result;
  reset_workspace(ng, ws, result);
  if (options.track_memory) init_memory(ng, ws, result);

  ws.seq_live.assign(static_cast<size_t>(n_old), 0);
  ws.seq_res.assign(static_cast<size_t>(n_old), -1);
  ws.seq_node.assign(static_cast<size_t>(n_old), -1);
  ws.node_running.assign(static_cast<size_t>(n_old), 0);

  double now = 0.0;
  int completed = 0;
  int64_t sequence = 0;
  for (size_t i = 0; i < cut; ++i) {
    const auto& e = base.log[i];
    const auto sv = static_cast<size_t>(e.node);
    switch (e.op) {
      case SimBaseline::kPush: {
        const auto ss = static_cast<size_t>(e.seq);
        ws.seq_live[ss] = 1;
        ws.seq_res[ss] = e.res;
        ws.seq_node[ss] = e.node;
        if (e.seq >= sequence) sequence = e.seq + 1;
        break;
      }
      case SimBaseline::kPop:
        ws.seq_live[static_cast<size_t>(e.seq)] = 0;
        break;
      case SimBaseline::kDispatch: {
        const double duration = ng.duration[sv];
        for (int32_t k = ng.res_begin(e.node); k < ng.res_end(e.node); ++k) {
          const int32_t nr = ng.res_dat[static_cast<size_t>(k)];
          ws.busy[static_cast<size_t>(nr)] = 1;
          result.resource_busy_ms[static_cast<size_t>(nr)] += duration;
        }
        result.start_ms[sv] = base.result.start_ms[sv];
        result.finish_ms[sv] = base.result.finish_ms[sv];
        ws.node_running[sv] = 1;
        if (options.track_memory) mem_alloc_output(ng, ws, result, e.node);
        break;
      }
      case SimBaseline::kComplete: {
        now = result.finish_ms[sv];
        ++completed;
        ws.node_running[sv] = 0;
        for (int32_t k = ng.res_begin(e.node); k < ng.res_end(e.node); ++k) {
          ws.busy[static_cast<size_t>(ng.res_dat[static_cast<size_t>(k)])] = 0;
        }
        if (options.track_memory) mem_on_finish(ng, ws, e.node);
        for (int32_t k = ng.succ_off[sv]; k < ng.succ_off[sv + 1]; ++k) {
          --ws.in_degree[static_cast<size_t>(ng.succ_dat[static_cast<size_t>(k)])];
        }
        break;
      }
    }
  }

  // Rebuild the ready heaps and the event heap from the replayed live sets.
  // The comparators are strict total orders, so any valid heap arrangement
  // of the same entries pops in the same sequence as the baseline's
  // incrementally-built heaps would.
  const Order order{};
  for (int32_t s = 0; s < n_old; ++s) {
    if (!ws.seq_live[static_cast<size_t>(s)]) continue;
    const int32_t v = ws.seq_node[static_cast<size_t>(s)];
    ws.ready[static_cast<size_t>(ws.seq_res[static_cast<size_t>(s)])].push_back(
        ReadyEntry{priorities[static_cast<size_t>(v)], s, v});
  }
  for (int32_t res = 0; res < ng.r; ++res) {
    auto& q = ws.ready[static_cast<size_t>(res)];
    if (q.size() > 1) std::make_heap(q.begin(), q.end(), order);
  }
  for (int32_t v = 0; v < n_old; ++v) {
    if (ws.node_running[static_cast<size_t>(v)]) {
      ws.events.push_back(Event{result.finish_ms[static_cast<size_t>(v)], v});
    }
  }
  if (ws.events.size() > 1) {
    std::make_heap(ws.events.begin(), ws.events.end(), EventAfter{});
  }

  event_loop<Order, false>(ng, priorities, options.track_memory, ws, result, now,
                           completed, sequence, nullptr, /*initial_dispatch=*/false);
  finish_result(ng, options, result, now, completed);
  return result;
}

}  // namespace

void CompactGraph::build(const compile::DistGraph& graph) {
  const compile::ResourceModel& resources = graph.resources();
  n = graph.node_count();
  r = resources.resource_count();
  device_count = resources.device_count();

  const auto sn = static_cast<size_t>(n);
  duration.resize(sn);
  output_bytes.resize(sn);
  queue_res.resize(sn);
  res_off.resize(sn + 1);
  succ_off.resize(sn + 1);
  pred_off.resize(sn + 1);
  mem_off.resize(sn + 1);
  res_dat.clear();
  succ_dat.clear();
  pred_dat.clear();
  mem_dat.clear();

  std::vector<int> scratch;
  scratch.reserve(4);
  for (DistNodeId id = 0; id < n; ++id) {
    const auto sv = static_cast<size_t>(id);
    const compile::DistNode& node = graph.node(id);
    duration[sv] = node.duration_ms;
    output_bytes[sv] = node.output_bytes;
    queue_res[sv] = resources.resource_of(node);

    res_off[sv] = static_cast<int32_t>(res_dat.size());
    resources.resources_of(node, scratch);
    res_dat.insert(res_dat.end(), scratch.begin(), scratch.end());

    succ_off[sv] = static_cast<int32_t>(succ_dat.size());
    const auto& succ = graph.successors(id);
    succ_dat.insert(succ_dat.end(), succ.begin(), succ.end());

    pred_off[sv] = static_cast<int32_t>(pred_dat.size());
    const auto& pred = graph.predecessors(id);
    pred_dat.insert(pred_dat.end(), pred.begin(), pred.end());

    mem_off[sv] = static_cast<int32_t>(mem_dat.size());
    if (node.output_bytes > 0) {
      switch (node.kind) {
        case NodeKind::kCompute:
          mem_dat.push_back(node.device);
          break;
        case NodeKind::kTransfer:
          mem_dat.push_back(node.link_to);
          break;
        case NodeKind::kCollective:
          mem_dat.insert(mem_dat.end(), node.participants.begin(),
                         node.participants.end());
          break;
      }
    }
  }
  res_off[sn] = static_cast<int32_t>(res_dat.size());
  succ_off[sn] = static_cast<int32_t>(succ_dat.size());
  pred_off[sn] = static_cast<int32_t>(pred_dat.size());
  mem_off[sn] = static_cast<int32_t>(mem_dat.size());
  static_params = graph.static_param_bytes();
}

SimResult run_core(const CompactGraph& compact, const std::vector<double>& priorities,
                   const SimOptions& options, SimWorkspace& ws, SimBaseline* record) {
  check(record == nullptr || &compact == &record->graph,
        "run_core: a recording run must simulate the baseline's own graph snapshot");
  if (record != nullptr) {
    record->valid = false;
    record->log.clear();
    record->batch_starts.clear();
  }
  const bool rank = options.policy == sched::OrderPolicy::kRankPriority;
  SimResult result;
  if (record != nullptr) {
    result = rank ? run_impl<RankOrder, true>(compact, priorities, options, ws, record)
                  : run_impl<FifoOrder, true>(compact, priorities, options, ws, record);
    record->priorities = priorities;
    record->policy = options.policy;
    record->track_memory = options.track_memory;
    record->result = result;
    record->valid = true;
  } else {
    result = rank ? run_impl<RankOrder, false>(compact, priorities, options, ws, nullptr)
                  : run_impl<FifoOrder, false>(compact, priorities, options, ws, nullptr);
  }
  return result;
}

SimResult resimulate_core(const compile::DistGraph& graph,
                          const std::vector<double>& priorities,
                          const SimOptions& options, const SimBaseline& baseline,
                          SimWorkspace& ws) {
  check(baseline.valid, "resimulate_core: baseline was never recorded");
  const CompactGraph& og = baseline.graph;
  const compile::ResourceModel& resources = graph.resources();
  if (og.r != resources.resource_count() ||
      og.device_count != resources.device_count() ||
      baseline.policy != options.policy ||
      baseline.track_memory != options.track_memory ||
      og.static_params != graph.static_param_bytes() || og.n == 0 ||
      graph.node_count() == 0) {
    ws.graph.build(graph);
    return run_core(ws.graph, priorities, options, ws, nullptr);
  }
  if (!scalar_diff(graph, priorities, baseline)) {
    // No duration/bytes/priority change. Structurally confirm before letting
    // the baseline answer: an empty affected frontier means the delta is a
    // no-op for this plan (e.g. a fault scaling on devices the plan never
    // touches) and costs neither a snapshot build nor any simulation.
    if (!direct_structural_diff(graph, baseline, ws)) return baseline.result;
    ws.graph.build(graph);
    const CompactGraph& ng = ws.graph;
    return options.policy == sched::OrderPolicy::kRankPriority
               ? resimulate_impl<RankOrder>(ng, priorities, options, baseline, ws)
               : resimulate_impl<FifoOrder>(ng, priorities, options, baseline, ws);
  }
  // A scalar already proves the frontier non-empty: build the snapshot and
  // complete the diff compact-vs-compact (cheaper than structural compares
  // against fat DistNodes).
  ws.graph.build(graph);
  const CompactGraph& ng = ws.graph;
  compact_diff(og, ng, priorities, baseline, ws);
  return options.policy == sched::OrderPolicy::kRankPriority
             ? resimulate_impl<RankOrder>(ng, priorities, options, baseline, ws)
             : resimulate_impl<FifoOrder>(ng, priorities, options, baseline, ws);
}

SimWorkspace& thread_workspace() {
  static thread_local SimWorkspace ws;
  return ws;
}

}  // namespace heterog::sim
