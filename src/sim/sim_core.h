// Data-oriented simulator core (DESIGN.md §5i).
//
// The reference simulator in simulator.cpp allocates per run: a
// vector<vector<int>> of resource sets, one std::priority_queue per
// resource, and a MemoryTracker. This core replaces all of that with flat
// structure-of-arrays state over the DistNodeId / resource index spaces:
//
//   * CompactGraph — a string-free SoA snapshot of a DistGraph (durations,
//     output bytes, CSR adjacency, CSR resource sets, CSR memory targets);
//   * SimWorkspace — every per-run buffer, reused across runs so repeated
//     simulate_iteration_ms / evaluate_plan calls in one search allocate
//     nothing once warm;
//   * SimBaseline + run_core / resimulate_core — an execution log of the
//     baseline run (push/pop/dispatch/complete) enabling incremental
//     re-simulation: a delta graph is diffed against the baseline snapshot,
//     the unaffected schedule prefix is replayed with cheap array arithmetic
//     (no heap operations), the ready/event heaps are rebuilt with
//     make_heap, and the normal event loop resumes from the first affected
//     batch. Results are bit-identical to a from-scratch run
//     (tests/sim_diff_test.cpp + the property wall pin this).
//
// Everything here is an implementation detail of sim::Simulator; include
// simulator.h unless you need baselines or a long-lived workspace.
#pragma once

#include <cstdint>
#include <vector>

#include "compile/dist_graph.h"
#include "sim/sim_order.h"
#include "sim/sim_types.h"

namespace heterog::sim {

/// String-free structure-of-arrays snapshot of a DistGraph, addressed by
/// DistNodeId. Cheap to copy (flat vectors only); rebuilt in place without
/// allocating once capacity is warm.
struct CompactGraph {
  int32_t n = 0;             // node count
  int32_t r = 0;             // resource count
  int32_t device_count = 0;

  std::vector<double> duration;        // per node
  std::vector<int64_t> output_bytes;   // per node
  std::vector<int32_t> queue_res;      // resource a node queues on

  // CSR resource sets (ResourceModel::resources_of, order preserved — the
  // first busy resource in set order decides where a blocked node migrates).
  std::vector<int32_t> res_off;  // n + 1
  std::vector<int32_t> res_dat;

  // CSR adjacency.
  std::vector<int32_t> succ_off, succ_dat;  // succ_off: n + 1
  std::vector<int32_t> pred_off, pred_dat;  // pred_off: n + 1

  // CSR memory targets: the devices a node's output occupies while live
  // (compute: its device; transfer: link_to; collective: every participant).
  // Empty span when output_bytes <= 0.
  std::vector<int32_t> mem_off, mem_dat;  // mem_off: n + 1

  std::vector<int64_t> static_params;  // per device; may be shorter than device_count

  void build(const compile::DistGraph& graph);

  int32_t res_begin(int32_t v) const { return res_off[static_cast<size_t>(v)]; }
  int32_t res_end(int32_t v) const { return res_off[static_cast<size_t>(v) + 1]; }
};

/// Baseline execution log for incremental re-simulation. Captured by
/// run_core(record=...); consumed by resimulate_core. Holds the graph
/// snapshot it was recorded against so deltas can be diffed without keeping
/// the original DistGraph alive.
struct SimBaseline {
  enum Op : uint8_t { kPush, kPop, kDispatch, kComplete };
  struct LogEntry {
    uint8_t op = kPush;
    int32_t res = -1;   // kPush/kPop: the queue operated on
    int32_t node = -1;
    int64_t seq = -1;   // kPush/kPop: the ready-entry's arrival sequence
  };

  bool valid = false;
  CompactGraph graph;
  std::vector<double> priorities;
  sched::OrderPolicy policy = sched::OrderPolicy::kRankPriority;
  bool track_memory = true;
  SimResult result;

  std::vector<LogEntry> log;
  /// Log positions where an outer drain-batch iteration begins (safe resume
  /// points: all pending dispatch work is done, events are the only state in
  /// flight). Incremental runs cut at the last batch start before the first
  /// divergent log entry.
  std::vector<int32_t> batch_starts;
};

/// All per-run buffers of the data-oriented core. Reusing one workspace
/// across runs makes repeated simulations allocation-free once warm. Not
/// thread-safe; use one workspace per thread (Simulator keeps one per thread
/// internally).
struct SimWorkspace {
  CompactGraph graph;  // scratch snapshot for runs that don't record a baseline

  std::vector<std::vector<ReadyEntry>> ready;  // per-resource binary heaps
  std::vector<Event> events;                   // min-heap on (time, node)
  std::vector<uint8_t> busy;                   // per resource
  std::vector<int32_t> in_degree;              // per node

  // Dispatch worklist: resources touched (freed or pushed to) since the last
  // dispatch pass. Avoids scanning all R resources per event batch; sorted
  // ascending before each pass so the visit order matches the reference
  // simulator's full 0..R-1 scan (see event_loop in sim_core.cpp).
  std::vector<int32_t> dirty;
  std::vector<uint8_t> in_dirty;               // per resource: in `dirty`

  // Memory tracking (merged MemoryTracker state).
  std::vector<int64_t> mem_current;            // per device
  std::vector<int32_t> remaining_consumers;    // per node

  // Replay scratch (resimulate_core).
  std::vector<uint8_t> seq_live;       // per sequence: entry sits in a queue
  std::vector<int32_t> seq_res;        // per sequence: which queue
  std::vector<int32_t> seq_node;       // per sequence: the node
  std::vector<uint8_t> node_running;   // dispatched, not yet completed
  std::vector<uint8_t> affected;       // per node: signature differs
  std::vector<uint8_t> affected_adj;   // per node: an affected pred or succ
};

/// Runs `compact` under `priorities` / `options.policy` / `track_memory`.
/// When `record` is non-null the execution log + graph snapshot + result are
/// captured into it for later incremental runs (`record->graph` must BE
/// `compact`; pass the baseline's own graph member). Bit-identical to the
/// reference simulator.
SimResult run_core(const CompactGraph& compact, const std::vector<double>& priorities,
                   const SimOptions& options, SimWorkspace& ws,
                   SimBaseline* record);

/// Incremental re-simulation of `graph` (typically a small delta of the
/// baseline's graph: scaled durations, flipped priorities, a re-compiled
/// strategy). Diffs against `baseline.graph`, replays the unaffected prefix
/// of the log, and resumes the event loop; falls back to a full run when the
/// delta is structurally incompatible (different resource model, policy or
/// memory mode). The result is bit-identical to run_core on `graph` from
/// scratch.
SimResult resimulate_core(const compile::DistGraph& graph,
                          const std::vector<double>& priorities,
                          const SimOptions& options, const SimBaseline& baseline,
                          SimWorkspace& ws);

/// The calling thread's lazily-constructed workspace (one per thread; reused
/// across all runs on that thread).
SimWorkspace& thread_workspace();

}  // namespace heterog::sim
