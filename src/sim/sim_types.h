// Shared simulator option/result types, split out of simulator.h so the
// data-oriented core (sim_core.h) and the public Simulator facade can both
// include them without a cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sched/scheduler.h"

namespace heterog::sim {

/// Which simulator implementation executes a run. Both produce bit-identical
/// results (tests/sim_diff_test.cpp is the wall); the reference path is the
/// original per-node priority_queue implementation, kept as the differential
/// oracle until the wall has soaked.
enum class SimImpl : uint8_t {
  kDataOriented,  // flat SoA core with pooled workspace (default)
  kReference,     // legacy std::priority_queue implementation
};

struct SimOptions {
  sched::OrderPolicy policy = sched::OrderPolicy::kRankPriority;
  bool track_memory = true;
  /// Fraction of device memory usable by the job (framework overheads).
  double usable_memory_fraction = 0.92;
  /// Implementation selector; results are identical either way.
  SimImpl impl = SimImpl::kDataOriented;
};

struct SimResult {
  double makespan_ms = 0.0;

  /// Busiest-GPU computation time and busiest-communication-resource time
  /// (Fig. 8 reports per-iteration computation and communication times; with
  /// overlap their sum exceeds the makespan).
  double computation_time_ms = 0.0;
  double communication_time_ms = 0.0;

  /// Total busy ms per resource (indexed by ResourceModel).
  std::vector<double> resource_busy_ms;

  /// Peak memory per device, static parameters included.
  std::vector<int64_t> peak_memory_bytes;
  bool oom = false;
  std::vector<cluster::DeviceId> oom_devices;

  /// Per-node start times (ms); useful for timeline inspection in tests.
  std::vector<double> start_ms;
  std::vector<double> finish_ms;
};

}  // namespace heterog::sim
