// Discrete-event simulator for distributed training graphs (paper Sec. 3.3
// Simulator, Sec. 5 Implementation).
//
// Faithful to the paper's description:
//   * a ready queue per device; "every GPU processes at most one computation
//     operation at a time, and every link sends tensor for at most one
//     communication operation at a time";
//   * a single NCCL channel — collectives serialise;
//   * reference-counted memory simulation recording per-device peak usage,
//     used to flag OOM strategies;
//   * per-iteration makespan plus computation / communication busy times for
//     the Fig. 8 breakdown.
//
// Two implementations produce bit-identical results (SimOptions::impl):
// the data-oriented core (sim_core.h — flat SoA state, pooled per-thread
// workspace, incremental re-simulation) and the reference per-node
// priority_queue path kept as the differential oracle. The differential wall
// is tests/sim_diff_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "compile/dist_graph.h"
#include "sched/scheduler.h"
#include "sim/sim_types.h"

namespace heterog::sim {

struct SimBaseline;  // sim_core.h

/// Thread-safety: run()/run_with_priorities() are pure functions of
/// (options_, graph) — working state lives on the call stack or in a
/// per-thread workspace, so one Simulator (or many) may run concurrently
/// from any number of threads. rl::EvalEngine relies on this to fan plan
/// evaluations across its pool.
class Simulator {
 public:
  explicit Simulator(SimOptions options = SimOptions()) : options_(options) {}

  /// Executes the graph under the configured order policy. For the rank
  /// policy, priorities are computed internally unless provided.
  SimResult run(const compile::DistGraph& graph) const;
  SimResult run_with_priorities(const compile::DistGraph& graph,
                                const std::vector<double>& priorities) const;

  /// Like run_with_priorities, but records an execution log into `baseline`
  /// so later deltas of the same graph can be re-simulated incrementally.
  /// Always uses the data-oriented core (the log is its format).
  SimResult run_baseline(const compile::DistGraph& graph,
                         const std::vector<double>& priorities,
                         SimBaseline& baseline) const;

  /// Incremental re-simulation of a delta of `baseline`'s graph (scaled
  /// durations, flipped priorities, a re-compiled strategy...). Bit-identical
  /// to run_with_priorities on `graph`; reuses the unaffected schedule
  /// prefix when the delta leaves one, falls back to a full run otherwise.
  SimResult resimulate(const compile::DistGraph& graph,
                       const std::vector<double>& priorities,
                       const SimBaseline& baseline) const;

 private:
  SimOptions options_;
};

/// Rejects graphs the simulator cannot execute safely: NaN/negative
/// durations, out-of-range devices/links, collective participants outside
/// the device range (DistGraph::add_node does not range-check participants),
/// and non-finite priorities (a NaN priority breaks the ready queues' strict
/// total order — see sim_order.h). Throws CheckError; called by every
/// Simulator entry point, exercised by tests/serialize_fuzz_test.cpp.
void validate_for_simulation(const compile::DistGraph& graph,
                             const std::vector<double>* priorities = nullptr);

/// Flags devices whose simulated peak memory exceeds the usable fraction of
/// their capacity; sets result.oom / result.oom_devices.
void apply_oom_check(SimResult& result, const cluster::ClusterSpec& cluster,
                     double usable_memory_fraction = 0.92);

/// Convenience: simulated per-iteration time under HeteroG's order policy.
double simulate_iteration_ms(const compile::DistGraph& graph);

/// Convenience: full evaluation (rank policy + OOM check against `cluster`).
SimResult evaluate(const compile::DistGraph& graph, const cluster::ClusterSpec& cluster,
                   SimOptions options = SimOptions());

/// Exhaustive minimum makespan over all list-schedule priority orders.
/// Exponential; refuses graphs larger than `max_nodes`. Used to validate the
/// (M + M^2) scheduling bound on small instances.
double optimal_makespan_exhaustive(const compile::DistGraph& graph, int max_nodes = 9);

}  // namespace heterog::sim
