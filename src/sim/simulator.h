// Discrete-event simulator for distributed training graphs (paper Sec. 3.3
// Simulator, Sec. 5 Implementation).
//
// Faithful to the paper's description:
//   * a ready queue per device; "every GPU processes at most one computation
//     operation at a time, and every link sends tensor for at most one
//     communication operation at a time";
//   * a single NCCL channel — collectives serialise;
//   * reference-counted memory simulation recording per-device peak usage,
//     used to flag OOM strategies;
//   * per-iteration makespan plus computation / communication busy times for
//     the Fig. 8 breakdown.
#pragma once

#include <cstdint>
#include <vector>

#include "compile/dist_graph.h"
#include "sched/scheduler.h"

namespace heterog::sim {

struct SimOptions {
  sched::OrderPolicy policy = sched::OrderPolicy::kRankPriority;
  bool track_memory = true;
  /// Fraction of device memory usable by the job (framework overheads).
  double usable_memory_fraction = 0.92;
};

struct SimResult {
  double makespan_ms = 0.0;

  /// Busiest-GPU computation time and busiest-communication-resource time
  /// (Fig. 8 reports per-iteration computation and communication times; with
  /// overlap their sum exceeds the makespan).
  double computation_time_ms = 0.0;
  double communication_time_ms = 0.0;

  /// Total busy ms per resource (indexed by ResourceModel).
  std::vector<double> resource_busy_ms;

  /// Peak memory per device, static parameters included.
  std::vector<int64_t> peak_memory_bytes;
  bool oom = false;
  std::vector<cluster::DeviceId> oom_devices;

  /// Per-node start times (ms); useful for timeline inspection in tests.
  std::vector<double> start_ms;
  std::vector<double> finish_ms;
};

/// Thread-safety: run()/run_with_priorities() are pure functions of
/// (options_, graph) — all working state lives on the call stack, so one
/// Simulator (or many) may run concurrently from any number of threads.
/// rl::EvalEngine relies on this to fan plan evaluations across its pool.
class Simulator {
 public:
  explicit Simulator(SimOptions options = SimOptions()) : options_(options) {}

  /// Executes the graph under the configured order policy. For the rank
  /// policy, priorities are computed internally unless provided.
  SimResult run(const compile::DistGraph& graph) const;
  SimResult run_with_priorities(const compile::DistGraph& graph,
                                const std::vector<double>& priorities) const;

 private:
  SimOptions options_;
};

/// Flags devices whose simulated peak memory exceeds the usable fraction of
/// their capacity; sets result.oom / result.oom_devices.
void apply_oom_check(SimResult& result, const cluster::ClusterSpec& cluster,
                     double usable_memory_fraction = 0.92);

/// Convenience: simulated per-iteration time under HeteroG's order policy.
double simulate_iteration_ms(const compile::DistGraph& graph);

/// Convenience: full evaluation (rank policy + OOM check against `cluster`).
SimResult evaluate(const compile::DistGraph& graph, const cluster::ClusterSpec& cluster,
                   SimOptions options = SimOptions());

/// Exhaustive minimum makespan over all list-schedule priority orders.
/// Exponential; refuses graphs larger than `max_nodes`. Used to validate the
/// (M + M^2) scheduling bound on small instances.
double optimal_makespan_exhaustive(const compile::DistGraph& graph, int max_nodes = 9);

}  // namespace heterog::sim
