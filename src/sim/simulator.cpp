#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "sim/sim_core.h"
#include "sim/sim_order.h"

namespace heterog::sim {

namespace {

using compile::DistGraph;
using compile::DistNodeId;
using compile::NodeKind;

// ---------------------------------------------------------------------------
// Reference implementation (SimImpl::kReference): the original per-node
// priority_queue simulator, kept as the differential oracle for the
// data-oriented core (sim_core.cpp). tests/sim_diff_test.cpp pins both paths
// bit-identical; the comparators are shared via sim_order.h.
// ---------------------------------------------------------------------------

/// Per-device live-tensor memory tracker with reference counting.
class MemoryTracker {
 public:
  MemoryTracker(const DistGraph& graph, int device_count)
      : graph_(graph),
        current_(static_cast<size_t>(device_count), 0),
        peak_(static_cast<size_t>(device_count), 0),
        remaining_consumers_(static_cast<size_t>(graph.node_count()), 0) {
    const auto& params = graph.static_param_bytes();
    for (size_t d = 0; d < current_.size() && d < params.size(); ++d) {
      current_[d] = params[d];
      peak_[d] = params[d];
    }
    for (DistNodeId id = 0; id < graph.node_count(); ++id) {
      remaining_consumers_[static_cast<size_t>(id)] =
          static_cast<int>(graph.successors(id).size());
    }
  }

  void on_start(DistNodeId id) {
    const auto& n = graph_.node(id);
    if (n.output_bytes <= 0) return;
    switch (n.kind) {
      case NodeKind::kCompute:
        allocate(n.device, n.output_bytes);
        break;
      case NodeKind::kTransfer:
        allocate(n.link_to, n.output_bytes);
        break;
      case NodeKind::kCollective:
        for (auto d : n.participants) allocate(d, n.output_bytes);
        break;
    }
  }

  void on_finish(DistNodeId id) {
    // A terminal node's output is released immediately; otherwise it lives
    // until the last consumer finishes.
    if (remaining_consumers_[static_cast<size_t>(id)] == 0) release_output(id);
    for (DistNodeId p : graph_.predecessors(id)) {
      if (--remaining_consumers_[static_cast<size_t>(p)] == 0) release_output(p);
    }
  }

  const std::vector<int64_t>& peak() const { return peak_; }

 private:
  void allocate(cluster::DeviceId device, int64_t bytes) {
    auto& cur = current_[static_cast<size_t>(device)];
    cur += bytes;
    peak_[static_cast<size_t>(device)] = std::max(peak_[static_cast<size_t>(device)], cur);
  }

  void release_output(DistNodeId id) {
    const auto& n = graph_.node(id);
    if (n.output_bytes <= 0) return;
    switch (n.kind) {
      case NodeKind::kCompute:
        current_[static_cast<size_t>(n.device)] -= n.output_bytes;
        break;
      case NodeKind::kTransfer:
        current_[static_cast<size_t>(n.link_to)] -= n.output_bytes;
        break;
      case NodeKind::kCollective:
        for (auto d : n.participants) current_[static_cast<size_t>(d)] -= n.output_bytes;
        break;
    }
  }

  const DistGraph& graph_;
  std::vector<int64_t> current_;
  std::vector<int64_t> peak_;
  std::vector<int> remaining_consumers_;
};

template <typename Order>
SimResult run_simulation(const DistGraph& graph, const std::vector<double>& priorities,
                         const SimOptions& options) {
  const auto& resources = graph.resources();
  const int n = graph.node_count();
  const int r = resources.resource_count();

  SimResult result;
  result.resource_busy_ms.assign(static_cast<size_t>(r), 0.0);
  result.start_ms.assign(static_cast<size_t>(n), 0.0);
  result.finish_ms.assign(static_cast<size_t>(n), 0.0);

  if (n == 0) {
    result.peak_memory_bytes.assign(static_cast<size_t>(resources.device_count()), 0);
    return result;
  }

  // Per-node resource sets (multi-resource transfers occupy NIC resources
  // besides their link; see ResourceModel::resources_of).
  std::vector<std::vector<int>> node_resources(static_cast<size_t>(n));
  {
    std::vector<int> scratch;
    for (DistNodeId id = 0; id < n; ++id) {
      resources.resources_of(graph.node(id), scratch);
      node_resources[static_cast<size_t>(id)] = scratch;
    }
  }

  std::vector<std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, Order>> ready(
      static_cast<size_t>(r));
  std::vector<bool> busy(static_cast<size_t>(r), false);
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  int64_t sequence = 0;

  // Dirty-resource worklist, mirroring sim_core.cpp: resources only need a
  // dispatch pass after a push or a free, and r is O(D^2) in cluster size —
  // sweeping all of them per event batch dominated 1000-GPU simulations.
  std::vector<int> dirty;
  std::vector<bool> in_dirty(static_cast<size_t>(r), false);
  auto mark_dirty = [&](int res) {
    if (!in_dirty[static_cast<size_t>(res)]) {
      in_dirty[static_cast<size_t>(res)] = true;
      dirty.push_back(res);
    }
  };

  auto push_on = [&](int res, DistNodeId id, int64_t seq, double priority) {
    ReadyEntry e;
    e.priority = priority;
    e.sequence = seq;
    e.node = id;
    ready[static_cast<size_t>(res)].push(e);
    mark_dirty(res);
  };

  auto push_ready = [&](DistNodeId id) {
    const int res = resources.resource_of(graph.node(id));
    push_on(res, id, sequence++, priorities[static_cast<size_t>(id)]);
  };

  for (DistNodeId id = 0; id < n; ++id) {
    in_degree[static_cast<size_t>(id)] = static_cast<int>(graph.predecessors(id).size());
    if (in_degree[static_cast<size_t>(id)] == 0) push_ready(id);
  }

  MemoryTracker memory(graph, resources.device_count());

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  double now = 0.0;
  int completed = 0;

  // Dispatch on one resource: start queued nodes whose resource sets are
  // entirely free; a node blocked on another resource migrates to that
  // resource's queue (it will be reconsidered when that resource frees).
  auto dispatch_resource = [&](int res, double time) {
    auto& queue = ready[static_cast<size_t>(res)];
    while (!busy[static_cast<size_t>(res)] && !queue.empty()) {
      const ReadyEntry entry = queue.top();
      const auto& needed = node_resources[static_cast<size_t>(entry.node)];
      int blocking = -1;
      for (int nr : needed) {
        if (busy[static_cast<size_t>(nr)]) {
          blocking = nr;
          break;
        }
      }
      queue.pop();
      if (blocking >= 0) {
        push_on(blocking, entry.node, entry.sequence, entry.priority);
        continue;
      }
      const double duration = graph.node(entry.node).duration_ms;
      for (int nr : needed) {
        busy[static_cast<size_t>(nr)] = true;
        result.resource_busy_ms[static_cast<size_t>(nr)] += duration;
      }
      result.start_ms[static_cast<size_t>(entry.node)] = time;
      result.finish_ms[static_cast<size_t>(entry.node)] = time + duration;
      if (options.track_memory) memory.on_start(entry.node);
      events.push(Event{time + duration, entry.node});
    }
  };

  // Visit only resources freed or pushed to since the last pass, in ascending
  // index order — equivalent to a full 0..R-1 scan because after a pass every
  // resource is busy or has an empty queue, and only a completion free or a
  // ready push can break that (both mark the resource dirty). Migration
  // pushes during the pass target the blocking (busy) resource, so entries
  // appended past the snapshot would be no-ops; they are re-marked when that
  // resource frees.
  auto dispatch_all = [&](double time) {
    // Ascending order matches the historical 0..R-1 scan; the dirty set is
    // tiny, so an inline insertion sort beats std::sort's call overhead.
    for (size_t i = 1; i < dirty.size(); ++i) {
      const int x = dirty[i];
      size_t j = i;
      for (; j > 0 && dirty[j - 1] > x; --j) dirty[j] = dirty[j - 1];
      dirty[j] = x;
    }
    const size_t snapshot = dirty.size();
    for (size_t i = 0; i < snapshot; ++i) dispatch_resource(dirty[i], time);
    for (const int res : dirty) in_dirty[static_cast<size_t>(res)] = false;
    dirty.clear();
  };

  dispatch_all(0.0);
  while (!events.empty()) {
    // Drain all events at the same timestamp before dispatching, so freed
    // resources see every newly-ready node.
    const double time = events.top().time;
    while (!events.empty() && events.top().time == time) {
      const Event ev = events.top();
      events.pop();
      now = ev.time;
      ++completed;
      for (int nr : node_resources[static_cast<size_t>(ev.node)]) {
        busy[static_cast<size_t>(nr)] = false;
        mark_dirty(nr);
      }
      if (options.track_memory) memory.on_finish(ev.node);
      for (DistNodeId s : graph.successors(ev.node)) {
        if (--in_degree[static_cast<size_t>(s)] == 0) push_ready(s);
      }
    }
    dispatch_all(now);
  }

  check(completed == n, "simulation deadlocked (cycle or unreachable node)");
  result.makespan_ms = now;

  for (int res = 0; res < r; ++res) {
    const double t = result.resource_busy_ms[static_cast<size_t>(res)];
    if (resources.is_gpu_resource(res)) {
      result.computation_time_ms = std::max(result.computation_time_ms, t);
    } else {
      result.communication_time_ms = std::max(result.communication_time_ms, t);
    }
  }

  if (options.track_memory) {
    result.peak_memory_bytes = memory.peak();
  } else {
    result.peak_memory_bytes.assign(static_cast<size_t>(resources.device_count()), 0);
  }
  return result;
}

}  // namespace

void validate_for_simulation(const compile::DistGraph& graph,
                             const std::vector<double>* priorities) {
  const int devices = graph.resources().device_count();
  for (const auto& node : graph.nodes()) {
    check(std::isfinite(node.duration_ms) && node.duration_ms >= 0.0,
          "simulator: node duration must be finite and non-negative");
    switch (node.kind) {
      case NodeKind::kCompute:
        check(node.device >= 0 && node.device < devices,
              "simulator: compute node device out of range");
        break;
      case NodeKind::kTransfer:
        check(node.link_from >= 0 && node.link_from < devices &&
                  node.link_to >= 0 && node.link_to < devices,
              "simulator: transfer node link endpoint out of range");
        break;
      case NodeKind::kCollective:
        for (const auto d : node.participants) {
          check(d >= 0 && d < devices,
                "simulator: collective participant out of range");
        }
        break;
    }
  }
  if (priorities != nullptr) {
    check(static_cast<int>(priorities->size()) == graph.node_count(),
          "run_with_priorities: size mismatch");
    for (const double p : *priorities) {
      check(!std::isnan(p),
            "simulator: NaN priority breaks the ready-queue total order");
    }
  }
}

SimResult Simulator::run(const compile::DistGraph& graph) const {
  if (options_.policy == sched::OrderPolicy::kRankPriority) {
    return run_with_priorities(graph, sched::rank_priorities(graph));
  }
  // FIFO ignores priorities; arrival order decides.
  const std::vector<double> zeros(static_cast<size_t>(graph.node_count()), 0.0);
  return run_with_priorities(graph, zeros);
}

SimResult Simulator::run_with_priorities(const compile::DistGraph& graph,
                                         const std::vector<double>& priorities) const {
  validate_for_simulation(graph, &priorities);
  if (options_.impl == SimImpl::kReference) {
    return options_.policy == sched::OrderPolicy::kRankPriority
               ? run_simulation<RankOrder>(graph, priorities, options_)
               : run_simulation<FifoOrder>(graph, priorities, options_);
  }
  SimWorkspace& ws = thread_workspace();
  ws.graph.build(graph);
  return run_core(ws.graph, priorities, options_, ws, nullptr);
}

SimResult Simulator::run_baseline(const compile::DistGraph& graph,
                                  const std::vector<double>& priorities,
                                  SimBaseline& baseline) const {
  validate_for_simulation(graph, &priorities);
  baseline.graph.build(graph);
  return run_core(baseline.graph, priorities, options_, thread_workspace(), &baseline);
}

SimResult Simulator::resimulate(const compile::DistGraph& graph,
                                const std::vector<double>& priorities,
                                const SimBaseline& baseline) const {
  validate_for_simulation(graph, &priorities);
  return resimulate_core(graph, priorities, options_, baseline, thread_workspace());
}

void apply_oom_check(SimResult& result, const cluster::ClusterSpec& cluster,
                     double usable_memory_fraction) {
  result.oom = false;
  result.oom_devices.clear();
  for (const auto& d : cluster.devices()) {
    // A peak vector shorter than the device count (e.g. a graph compiled for
    // a smaller device set, or track_memory disabled) means no recorded
    // usage on the missing devices — treat it as zero rather than indexing
    // out of bounds. `continue` (not `break`) so a dense-by-id assumption on
    // devices() is never load-bearing here.
    if (d.id < 0 || static_cast<size_t>(d.id) >= result.peak_memory_bytes.size()) {
      continue;
    }
    const auto usable = static_cast<int64_t>(
        static_cast<double>(d.memory_bytes) * usable_memory_fraction);
    if (result.peak_memory_bytes[static_cast<size_t>(d.id)] > usable) {
      result.oom = true;
      result.oom_devices.push_back(d.id);
    }
  }
}

double simulate_iteration_ms(const compile::DistGraph& graph) {
  Simulator sim;
  return sim.run(graph).makespan_ms;
}

SimResult evaluate(const compile::DistGraph& graph, const cluster::ClusterSpec& cluster,
                   SimOptions options) {
  Simulator sim(options);
  SimResult result = sim.run(graph);
  apply_oom_check(result, cluster, options.usable_memory_fraction);
  return result;
}

double optimal_makespan_exhaustive(const compile::DistGraph& graph, int max_nodes) {
  check(graph.node_count() <= max_nodes,
        "optimal_makespan_exhaustive: graph too large for exhaustive search");
  std::vector<int> perm(static_cast<size_t>(graph.node_count()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);

  SimOptions options;
  options.track_memory = false;
  Simulator simulator(options);

  double best = -1.0;
  std::vector<double> priorities(perm.size(), 0.0);
  do {
    // perm[i] is the i-th most urgent node.
    for (size_t i = 0; i < perm.size(); ++i) {
      priorities[static_cast<size_t>(perm[i])] = static_cast<double>(perm.size() - i);
    }
    const double makespan = simulator.run_with_priorities(graph, priorities).makespan_ms;
    if (best < 0.0 || makespan < best) best = makespan;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace heterog::sim
