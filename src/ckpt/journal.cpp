#include "ckpt/journal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/record_io.h"

namespace heterog::ckpt {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw JournalError("run journal: " + why);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trips doubles exactly
  return buf;
}

/// Strict sequential reader over the checksummed body's lines.
class LineReader {
 public:
  explicit LineReader(const std::string& body) {
    size_t start = 0;
    while (start < body.size()) {
      size_t nl = body.find('\n', start);
      if (nl == std::string::npos) nl = body.size();
      lines_.push_back(body.substr(start, nl - start));
      start = nl + 1;
    }
  }

  bool done() const { return pos_ >= lines_.size(); }

  const std::string& peek() const {
    if (done()) fail("unexpected end of journal");
    return lines_[pos_];
  }

  std::string next() {
    std::string line = peek();
    ++pos_;
    return line;
  }

  /// Consumes the next line, requiring it to start with `key` + ' ', and
  /// returns the remainder.
  std::string field(const std::string& key) {
    const std::string line = next();
    if (line.rfind(key + " ", 0) != 0) {
      fail("expected \"" + key + " ...\", got \"" + line + "\"");
    }
    return line.substr(key.size() + 1);
  }

  /// Consumes the next line, requiring it to equal `literal` exactly.
  void expect(const std::string& literal) {
    const std::string line = next();
    if (line != literal) fail("expected \"" + literal + "\", got \"" + line + "\"");
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

template <typename T>
T parse_num(const std::string& text, const std::string& what) {
  std::istringstream is(text);
  T value{};
  if (!(is >> value)) fail("malformed " + what + ": \"" + text + "\"");
  std::string extra;
  if (is >> extra) fail("trailing garbage in " + what + ": \"" + text + "\"");
  return value;
}

/// Counts are parsed signed and range-checked so a crafted journal cannot
/// drive a gigantic reserve() into std::length_error / bad_alloc (those are
/// not JournalErrors).
size_t parse_count(const std::string& text, const std::string& what) {
  const long long n = parse_num<long long>(text, what);
  constexpr long long kMax = 100'000'000;
  if (n < 0 || n > kMax) fail(what + " out of range: " + std::to_string(n));
  return static_cast<size_t>(n);
}

bool parse_bool(const std::string& text, const std::string& what) {
  if (text == "0") return false;
  if (text == "1") return true;
  fail("malformed " + what + " (want 0 or 1): \"" + text + "\"");
}

/// Splits off and string-verifies the final "crc <hex>" line; returns the
/// checksummed body. The trailer protocol itself (shared with the plan/eval
/// store) lives in common/record_io.
std::string verify_crc_trailer(const std::string& text) {
  CrcTrailerResult r = strip_crc_trailer(text);
  if (!r.ok) fail("journal " + r.error);
  return std::move(r.body);
}

}  // namespace

std::string to_text(const RunJournal& j) {
  std::ostringstream os;
  os << "heterog-journal v" << j.version << "\n";
  os << "model " << j.model_name << "\n";
  for (const auto& [key, value] : j.meta) os << "meta " << key << " " << value << "\n";
  os << "ckpt-every " << j.ckpt_every << "\n";
  os << "rng-seed " << j.profiler_seed << "\n";
  os << "order-scheduling " << (j.use_order_scheduling ? 1 : 0) << "\n";
  os << "max-groups " << j.max_groups << "\n";
  os << "fault-handling " << j.fh_max_retries << " " << fmt(j.fh_retry_backoff_ms)
     << " " << fmt(j.fh_max_backoff_ms) << " " << j.fh_replan_rl_episodes << " "
     << (j.fh_deterministic_walls ? 1 : 0) << "\n";

  os << "cluster-begin\n";
  os << "switch " << fmt(j.cluster.switch_gbps()) << "\n";
  for (const auto& h : j.cluster.hosts()) {
    os << "host " << h.id << " " << fmt(h.nic_gbps) << " " << fmt(h.intra_gbps) << " "
       << h.name << "\n";
  }
  for (const auto& d : j.cluster.devices()) {
    os << "device " << d.id << " " << static_cast<int>(d.model) << " " << d.host << " "
       << fmt(d.gflops_per_ms) << " " << d.memory_bytes << " " << d.name << "\n";
  }
  for (const auto& [pair, scale] : j.cluster.host_link_scales()) {
    os << "link " << pair.first << " " << pair.second << " " << fmt(scale) << "\n";
  }
  // Optional switch-topology lines: only written when a topology is attached,
  // so flat-cluster journals stay byte-identical to the pre-topology format.
  if (j.cluster.has_topology()) {
    const auto& topo = j.cluster.topology();
    os << "tor " << fmt(topo.tor_gbps) << "\n";
    for (size_t h = 0; h < topo.rack_of_host.size(); ++h) {
      os << "rack " << h << " " << topo.rack_of_host[h] << "\n";
    }
    for (const auto& tier : topo.tiers) {
      os << "tier " << fmt(tier.gbps) << " " << tier.group_size << "\n";
    }
  }
  os << "cluster-end\n";
  os << "fingerprint " << crc32_hex(j.cluster_crc) << "\n";

  os << "total-steps " << j.total_steps << "\n";
  os << "watermark " << j.watermark << "\n";
  os << "transient-retries " << j.transient_retries << "\n";
  os << "retry-backoff-ms " << fmt(j.retry_backoff_total_ms) << "\n";
  os << "step-ms " << j.step_ms.size() << "\n";
  for (const double ms : j.step_ms) os << fmt(ms) << "\n";
  os << "recoveries " << j.recoveries.size() << "\n";
  for (const auto& r : j.recoveries) {
    os << "recovery " << r.fault_step << " " << r.steps_lost << " "
       << r.surviving_devices << " " << (r.post_plan_oom ? 1 : 0) << " "
       << (r.escalated_transient ? 1 : 0) << " " << fmt(r.replan_wall_ms) << " "
       << fmt(r.pre_fault_iteration_ms) << " " << fmt(r.post_fault_iteration_ms) << " "
       << r.failed_devices.size();
    for (const auto d : r.failed_devices) os << " " << d;
    os << " " << r.detection_attempts << " " << (r.degraded ? 1 : 0);
    os << "\n";
  }

  os << "grouping " << j.grouping_assignment.size() << "\n";
  for (size_t i = 0; i < j.grouping_assignment.size(); ++i) {
    os << (i ? " " : "") << j.grouping_assignment[i];
  }
  os << "\n";

  // Embedded documents are line-counted so their content can never be
  // confused with journal fields (a plan line is just bytes here).
  const auto count_lines = [](const std::string& text) {
    size_t n = 0;
    for (const char c : text) n += c == '\n';
    if (!text.empty() && text.back() != '\n') ++n;
    return n;
  };
  os << "plan-lines " << count_lines(j.plan_text) << "\n";
  os << j.plan_text;
  if (!j.plan_text.empty() && j.plan_text.back() != '\n') os << "\n";
  os << "fault-plan-lines " << count_lines(j.fault_plan_json) << "\n";
  os << j.fault_plan_json;
  if (!j.fault_plan_json.empty() && j.fault_plan_json.back() != '\n') os << "\n";
  // Optional trailing block: only written when online health monitoring ran,
  // so health-free journals stay byte-identical to the pre-health format.
  if (!j.health_state.empty()) {
    os << "health-lines " << count_lines(j.health_state) << "\n";
    os << j.health_state;
    if (j.health_state.back() != '\n') os << "\n";
  }

  return with_crc_trailer(os.str());
}

RunJournal parse_journal(const std::string& text) {
  const std::string body = verify_crc_trailer(text);
  LineReader in(body);

  RunJournal j;
  {
    const std::string magic = in.next();
    if (magic.rfind("heterog-journal v", 0) != 0) fail("not a heterog-journal file");
    j.version = parse_num<int>(magic.substr(std::string("heterog-journal v").size()),
                               "version");
    if (j.version != 1) {
      fail("unsupported journal version " + std::to_string(j.version));
    }
  }
  j.model_name = in.field("model");
  while (!in.done() && in.peek().rfind("meta ", 0) == 0) {
    const std::string rest = in.field("meta");
    const size_t space = rest.find(' ');
    if (space == std::string::npos) fail("malformed meta line: \"" + rest + "\"");
    j.meta[rest.substr(0, space)] = rest.substr(space + 1);
  }
  j.ckpt_every = parse_num<int>(in.field("ckpt-every"), "ckpt-every");
  j.profiler_seed = parse_num<uint64_t>(in.field("rng-seed"), "rng-seed");
  j.use_order_scheduling = parse_bool(in.field("order-scheduling"), "order-scheduling");
  j.max_groups = parse_num<int>(in.field("max-groups"), "max-groups");
  {
    std::istringstream is(in.field("fault-handling"));
    if (!(is >> j.fh_max_retries >> j.fh_retry_backoff_ms >> j.fh_max_backoff_ms >>
          j.fh_replan_rl_episodes)) {
      fail("malformed fault-handling line");
    }
    int det_walls = 0;  // optional (absent in pre-health journals)
    if (is >> det_walls) j.fh_deterministic_walls = det_walls != 0;
  }

  in.expect("cluster-begin");
  const double switch_gbps = parse_num<double>(in.field("switch"), "switch");
  std::vector<cluster::HostSpec> hosts;
  std::vector<cluster::DeviceSpec> devices;
  std::map<std::pair<int, int>, double> link_scales;
  while (!in.done() && in.peek().rfind("host ", 0) == 0) {
    std::istringstream is(in.field("host"));
    cluster::HostSpec h;
    if (!(is >> h.id >> h.nic_gbps >> h.intra_gbps)) fail("malformed host line");
    std::getline(is, h.name);
    if (!h.name.empty() && h.name.front() == ' ') h.name.erase(0, 1);
    hosts.push_back(std::move(h));
  }
  while (!in.done() && in.peek().rfind("device ", 0) == 0) {
    std::istringstream is(in.field("device"));
    cluster::DeviceSpec d;
    int model = -1;
    if (!(is >> d.id >> model >> d.host >> d.gflops_per_ms >> d.memory_bytes)) {
      fail("malformed device line");
    }
    if (model < 0 || model >= cluster::kGpuModelCount) {
      fail("unknown GPU model id " + std::to_string(model));
    }
    d.model = static_cast<cluster::GpuModel>(model);
    std::getline(is, d.name);
    if (!d.name.empty() && d.name.front() == ' ') d.name.erase(0, 1);
    devices.push_back(std::move(d));
  }
  while (!in.done() && in.peek().rfind("link ", 0) == 0) {
    std::istringstream is(in.field("link"));
    int a = -1, b = -1;
    double factor = 1.0;
    if (!(is >> a >> b >> factor)) fail("malformed link line");
    link_scales[{a, b}] = factor;
  }
  // Optional topology block (absent in pre-topology journals).
  cluster::TopologySpec topo;
  if (!in.done() && in.peek().rfind("tor ", 0) == 0) {
    topo.tor_gbps = parse_num<double>(in.field("tor"), "tor");
    topo.rack_of_host.assign(hosts.size(), 0);
    while (!in.done() && in.peek().rfind("rack ", 0) == 0) {
      std::istringstream is(in.field("rack"));
      int h = -1, rack = -1;
      if (!(is >> h >> rack)) fail("malformed rack line");
      if (h < 0 || h >= static_cast<int>(hosts.size())) {
        fail("rack line references unknown host " + std::to_string(h));
      }
      topo.rack_of_host[static_cast<size_t>(h)] = rack;
    }
    while (!in.done() && in.peek().rfind("tier ", 0) == 0) {
      std::istringstream is(in.field("tier"));
      cluster::SwitchTierSpec tier;
      if (!(is >> tier.gbps >> tier.group_size)) fail("malformed tier line");
      topo.tiers.push_back(tier);
    }
  }
  in.expect("cluster-end");
  try {
    j.cluster = cluster::ClusterSpec(std::move(hosts), std::move(devices), switch_gbps,
                                     std::move(link_scales));
    if (!topo.empty()) j.cluster = j.cluster.with_topology(std::move(topo));
  } catch (const cluster::ClusterSpecError& e) {
    fail(std::string("embedded cluster invalid: ") + e.what());
  }
  {
    const std::string fp = in.field("fingerprint");
    if (fp.size() != 8) fail("malformed fingerprint line");
    uint32_t value = 0;
    for (const char c : fp) {
      if (c >= '0' && c <= '9') value = value * 16 + static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value = value * 16 + static_cast<uint32_t>(c - 'a' + 10);
      else fail("malformed fingerprint line");
    }
    j.cluster_crc = value;
  }

  j.total_steps = parse_num<int>(in.field("total-steps"), "total-steps");
  j.watermark = parse_num<int>(in.field("watermark"), "watermark");
  j.transient_retries = parse_num<int>(in.field("transient-retries"), "transient-retries");
  j.retry_backoff_total_ms =
      parse_num<double>(in.field("retry-backoff-ms"), "retry-backoff-ms");
  const size_t n_steps = parse_count(in.field("step-ms"), "step-ms count");
  j.step_ms.reserve(n_steps);
  for (size_t i = 0; i < n_steps; ++i) {
    j.step_ms.push_back(parse_num<double>(in.next(), "step time"));
  }
  const size_t n_recoveries = parse_count(in.field("recoveries"), "recovery count");
  for (size_t i = 0; i < n_recoveries; ++i) {
    std::istringstream is(in.field("recovery"));
    RecoveryRecord r;
    int oom = 0, escalated = 0;
    size_t n_failed = 0;
    if (!(is >> r.fault_step >> r.steps_lost >> r.surviving_devices >> oom >>
          escalated >> r.replan_wall_ms >> r.pre_fault_iteration_ms >>
          r.post_fault_iteration_ms >> n_failed)) {
      fail("malformed recovery line");
    }
    r.post_plan_oom = oom != 0;
    r.escalated_transient = escalated != 0;
    for (size_t k = 0; k < n_failed; ++k) {
      cluster::DeviceId d = -1;
      if (!(is >> d)) fail("malformed recovery line (device list)");
      r.failed_devices.push_back(d);
    }
    // Optional online-detection fields (absent in pre-health journals).
    if (is >> r.detection_attempts) {
      int degraded = 0;
      if (is >> degraded) r.degraded = degraded != 0;
    }
    j.recoveries.push_back(std::move(r));
  }

  const size_t n_ops = parse_count(in.field("grouping"), "grouping count");
  {
    std::istringstream is(in.next());
    j.grouping_assignment.reserve(n_ops);
    for (size_t i = 0; i < n_ops; ++i) {
      int32_t g = -1;
      if (!(is >> g)) fail("truncated grouping assignment");
      j.grouping_assignment.push_back(g);
    }
    std::string extra;
    if (is >> extra) fail("trailing garbage in grouping assignment");
  }

  const auto read_block = [&](const char* key) {
    const size_t n_lines = parse_count(in.field(key), key);
    std::string block;
    for (size_t i = 0; i < n_lines; ++i) block += in.next() + "\n";
    return block;
  };
  j.plan_text = read_block("plan-lines");
  j.fault_plan_json = read_block("fault-plan-lines");
  if (!in.done() && in.peek().rfind("health-lines ", 0) == 0) {
    j.health_state = read_block("health-lines");
  }
  if (!in.done()) fail("trailing garbage after fault plan block");

  // Internal consistency beyond per-field syntax.
  if (j.total_steps < 0 || j.watermark < 0 || j.watermark > j.total_steps) {
    fail("watermark " + std::to_string(j.watermark) + " outside [0, total-steps=" +
         std::to_string(j.total_steps) + "]");
  }
  if (j.step_ms.size() != static_cast<size_t>(j.watermark)) {
    fail("step-ms count does not match watermark");
  }
  if (j.ckpt_every < 0) fail("negative ckpt-every");
  return j;
}

bool save_journal(const std::string& path, const RunJournal& journal) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // An un-creatable directory surfaces as the write failing below.
  }
  return write_file_atomic(path, to_text(journal));
}

RunJournal load_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read journal file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_journal(buffer.str());
}

std::string CheckpointOptions::journal_path() const {
  return (std::filesystem::path(dir) / "journal.heterog").string();
}

}  // namespace heterog::ckpt
