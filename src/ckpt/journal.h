// Crash-consistent run journal (DESIGN.md "Crash consistency & resume").
//
// A RunJournal is a versioned, CRC-checksummed snapshot of everything a
// DistRunner needs to deterministically resume an interrupted run:
//
//   * the deployed plan (embedded checksummed v2 plan text) and the op
//     grouping it applies to;
//   * the full cluster description plus its fingerprint, so resume can
//     refuse hardware the plan was not made for;
//   * the RNG seed and the config knobs that feed mid-run re-planning (all
//     randomness in HeteroG is seed-derived and no live engine state crosses
//     a step boundary, so at step granularity the seed IS the RNG state);
//   * the completed-step watermark, per-step times, transient-retry
//     bookkeeping and the recovery history accumulated so far;
//   * the fault plan being injected, if any.
//
// save_journal publishes snapshots with write-temp/flush/fsync/rename
// atomicity: a kill at any instant leaves either the previous or the new
// snapshot on disk, never a torn one. load_journal verifies the trailer
// CRC over the whole payload before parsing a single field, so corrupting
// any byte of the file surfaces as a typed JournalError — never a crash and
// never a silently wrong plan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace heterog::ckpt {

/// Thrown for every journal failure mode: unreadable file, bad magic or
/// version, checksum mismatch, malformed or internally inconsistent fields.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// One completed recovery from a permanent device failure, as persisted in
/// the journal (mirror of heterog::RecoveryReport; ckpt sits below core in
/// the dependency order so it keeps its own struct).
struct RecoveryRecord {
  int fault_step = -1;
  std::vector<cluster::DeviceId> failed_devices;
  int steps_lost = 0;
  double replan_wall_ms = 0.0;
  double pre_fault_iteration_ms = 0.0;
  double post_fault_iteration_ms = 0.0;
  int surviving_devices = 0;
  bool post_plan_oom = false;
  bool escalated_transient = false;
  /// Online-detection runs only: failed attempts spent confirming the
  /// failure (0 on the oracle path, which detects by plan lookup).
  int detection_attempts = 0;
  /// The re-plan was degraded to the heuristic path (circuit breaker open or
  /// re-plan deadline exceeded).
  bool degraded = false;
};

struct RunJournal {
  /// Format version of the snapshot (bumped on layout changes).
  int version = 1;

  /// GraphDef::name() of the training graph; resume cross-checks it against
  /// the graph produced by the caller's model_func.
  std::string model_name;

  /// Free-form caller metadata, persisted verbatim (heterog_cli stores
  /// model/layers/batch/cluster here so `heterog_cli resume` can rebuild the
  /// model without flags).
  std::map<std::string, std::string> meta;

  /// Full cluster the plan was deployed on, plus its fingerprint at save
  /// time. resume re-validates fingerprint(cluster) == cluster_crc.
  cluster::ClusterSpec cluster;
  uint32_t cluster_crc = 0;

  /// Config knobs that determinism depends on (HeteroGConfig subset).
  uint64_t profiler_seed = 42;
  bool use_order_scheduling = true;
  int max_groups = 48;
  int fh_max_retries = 5;
  double fh_retry_backoff_ms = 50.0;
  double fh_max_backoff_ms = 2000.0;
  int fh_replan_rl_episodes = 0;
  /// Wall-clock fields (replan_wall_ms, checkpoint wall_ms) are recorded as
  /// zero, so identical executions produce byte-identical journals (the
  /// chaos harness's determinism contract). Journalled so a resumed run
  /// inherits the contract.
  bool fh_deterministic_walls = false;

  /// Checkpoint cadence of the run that wrote this journal; a resume with no
  /// explicit cadence inherits it.
  int ckpt_every = 0;

  /// Progress: `watermark` steps of `total_steps` are complete; step_ms has
  /// exactly `watermark` entries (times of completed steps since step 0).
  int total_steps = 0;
  int watermark = 0;
  int transient_retries = 0;
  double retry_backoff_total_ms = 0.0;
  std::vector<double> step_ms;
  std::vector<RecoveryRecord> recoveries;

  /// The originally deployed plan, embedded as checksummed v2 text, and the
  /// per-op grouping assignment it indexes into.
  std::string plan_text;
  std::vector<int32_t> grouping_assignment;

  /// Fault plan JSON (faults::fault_plan_to_json); empty when none.
  std::string fault_plan_json;

  /// Serialized health::HealthMonitor state at the watermark (empty when
  /// online health monitoring is off). Resume replays observations from step
  /// 0 and cross-checks the rebuilt monitor against this snapshot, proving
  /// detection decisions are deterministic across a crash.
  std::string health_state;
};

/// Serialises the journal (line-oriented text ending in a `crc` trailer).
std::string to_text(const RunJournal& journal);

/// Parses and fully validates a journal; throws JournalError on anything
/// short of a byte-exact round-trip of what to_text produced.
RunJournal parse_journal(const std::string& text);

/// Atomic save. Creates the parent directory if needed. Returns false (and
/// leaves any prior journal intact) on any failure.
bool save_journal(const std::string& path, const RunJournal& journal);

/// Reads and parses `path`; throws JournalError when unreadable or corrupt.
RunJournal load_journal(const std::string& path);

/// Periodic checkpointing knobs accepted by DistRunner::run and resume_run.
struct CheckpointOptions {
  /// Directory the journal lives in (created on first save). Empty disables.
  std::string dir;
  /// Snapshot after every `every` completed steps, anchored at absolute step
  /// counts so interrupted and uninterrupted runs checkpoint at the same
  /// steps. A final snapshot is always written when the run ends. 0 disables.
  int every = 0;
  /// Caller metadata stored verbatim in the journal (see RunJournal::meta).
  std::map<std::string, std::string> meta;
  /// Invoked after each successful snapshot with the completed-step count
  /// and the journal path. Exceptions propagate out of run() — tests use
  /// this to simulate a crash at an exact checkpoint boundary.
  std::function<void(int completed_steps, const std::string& path)> after_checkpoint;

  bool enabled() const { return every > 0 && !dir.empty(); }
  /// dir + "/journal.heterog".
  std::string journal_path() const;
};

}  // namespace heterog::ckpt
