#include "strategy/strategy.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace heterog::strategy {

const char* comm_method_name(CommMethod method) {
  return method == CommMethod::kPS ? "PS" : "AllReduce";
}

const char* replication_mode_name(ReplicationMode mode) {
  return mode == ReplicationMode::kEven ? "even" : "proportional";
}

Action Action::mp(DeviceId device) {
  Action a;
  a.is_mp = true;
  a.mp_device = device;
  return a;
}

Action Action::dp(ReplicationMode mode, CommMethod comm) {
  Action a;
  a.is_mp = false;
  a.replication = mode;
  a.comm = comm;
  return a;
}

int Action::index(int device_count) const {
  if (is_mp) {
    check(mp_device >= 0 && mp_device < device_count, "Action::index: bad device");
    return mp_device;
  }
  const int base = device_count;
  const int mode_offset = replication == ReplicationMode::kEven ? 0 : 2;
  const int comm_offset = comm == CommMethod::kPS ? 0 : 1;
  return base + mode_offset + comm_offset;
}

Action Action::from_index(int index, int device_count) {
  check(index >= 0 && index < action_count(device_count), "Action::from_index: bad index");
  if (index < device_count) return mp(index);
  const int rem = index - device_count;
  const ReplicationMode mode = rem < 2 ? ReplicationMode::kEven : ReplicationMode::kProportional;
  const CommMethod comm = (rem % 2 == 0) ? CommMethod::kPS : CommMethod::kAllReduce;
  return dp(mode, comm);
}

bool Action::operator==(const Action& other) const {
  if (is_mp != other.is_mp) return false;
  if (is_mp) return mp_device == other.mp_device;
  return replication == other.replication && comm == other.comm;
}

std::string Action::to_string() const {
  if (is_mp) return "MP(G" + std::to_string(mp_device) + ")";
  std::string mode = replication == ReplicationMode::kEven ? "EV" : "CP";
  std::string comm_name = comm == CommMethod::kPS ? "PS" : "AR";
  return mode + "-" + comm_name;
}

std::string action_table_label(const Action& action, int device_count) {
  (void)device_count;
  return action.to_string();
}

GroupId Grouping::group_of(OpId op) const {
  check(op >= 0 && op < static_cast<OpId>(group_of_.size()), "group_of: bad op");
  return group_of_[static_cast<size_t>(op)];
}

const std::vector<OpId>& Grouping::members(GroupId group) const {
  check(group >= 0 && group < group_count(), "members: bad group");
  return members_[static_cast<size_t>(group)];
}

Grouping Grouping::build(const graph::GraphDef& graph,
                         const profiler::CostProvider& costs, int max_groups) {
  check(max_groups >= 1, "Grouping: max_groups must be >= 1");
  const int n = graph.op_count();
  Grouping grouping;
  grouping.group_of_.assign(static_cast<size_t>(n), -1);

  // Forward ops are the grouping anchors; backward/apply ops inherit via
  // mirror_of so a parameter's compute, gradient and update stay coherent.
  std::vector<OpId> anchors;
  for (const auto& op : graph.ops()) {
    if (op.role == graph::OpRole::kForward) anchors.push_back(op.id);
  }
  check(!anchors.empty(), "Grouping: graph has no forward ops");

  std::vector<OpId> centres;
  if (static_cast<int>(anchors.size()) <= max_groups) {
    centres = anchors;
  } else {
    // Longest-running anchors become group centres (they dominate iteration
    // time), chosen stratified over the topological order: the anchors are
    // cut into N contiguous segments and each segment contributes its
    // longest op. Plain global top-N lets the centres cluster in one stage
    // of the network, which produces one giant group covering everything
    // else — fatal for memory-balanced placement.
    std::vector<double> topo_pos(static_cast<size_t>(graph.op_count()), 0.0);
    {
      const auto order = graph.topological_order();
      for (size_t i = 0; i < order.size(); ++i) {
        topo_pos[static_cast<size_t>(order[i])] = static_cast<double>(i);
      }
    }
    std::vector<OpId> by_topo = anchors;
    std::sort(by_topo.begin(), by_topo.end(), [&](OpId a, OpId b) {
      return topo_pos[static_cast<size_t>(a)] < topo_pos[static_cast<size_t>(b)];
    });
    centres.reserve(static_cast<size_t>(max_groups));
    const size_t n_anchors = by_topo.size();
    for (int seg = 0; seg < max_groups; ++seg) {
      const size_t begin = n_anchors * static_cast<size_t>(seg) /
                           static_cast<size_t>(max_groups);
      const size_t end = n_anchors * (static_cast<size_t>(seg) + 1) /
                         static_cast<size_t>(max_groups);
      OpId best = by_topo[begin];
      double best_time = -1.0;
      for (size_t i = begin; i < end; ++i) {
        const double t =
            costs.average_op_time_ms(graph.op(by_topo[i]), graph.global_batch());
        if (t > best_time) {
          best_time = t;
          best = by_topo[i];
        }
      }
      centres.push_back(best);
    }
    std::sort(centres.begin(), centres.end());
    centres.erase(std::unique(centres.begin(), centres.end()), centres.end());
  }

  grouping.members_.assign(centres.size(), {});
  const auto nearest = graph.nearest_sources(centres);
  for (OpId id : anchors) {
    int source = nearest[static_cast<size_t>(id)].source_index;
    if (source < 0) source = 0;  // disconnected component: fold into group 0
    grouping.group_of_[static_cast<size_t>(id)] = source;
  }
  // Mirrors inherit.
  for (const auto& op : graph.ops()) {
    if (op.role == graph::OpRole::kForward) continue;
    check(op.mirror_of != graph::kInvalidOp, "Grouping: non-forward op without mirror");
    grouping.group_of_[static_cast<size_t>(op.id)] =
        grouping.group_of_[static_cast<size_t>(op.mirror_of)];
  }
  for (OpId id = 0; id < n; ++id) {
    const GroupId g = grouping.group_of_[static_cast<size_t>(id)];
    check(g >= 0, "Grouping: unassigned op");
    grouping.members_[static_cast<size_t>(g)].push_back(id);
  }
  // Drop empty groups (possible when a centre's anchors were re-captured).
  std::vector<std::vector<OpId>> compact;
  std::vector<GroupId> remap(grouping.members_.size(), -1);
  for (size_t g = 0; g < grouping.members_.size(); ++g) {
    if (grouping.members_[g].empty()) continue;
    remap[g] = static_cast<GroupId>(compact.size());
    compact.push_back(std::move(grouping.members_[g]));
  }
  for (auto& g : grouping.group_of_) g = remap[static_cast<size_t>(g)];
  grouping.members_ = std::move(compact);
  return grouping;
}

Grouping Grouping::unroll(const Grouping& base, int iterations) {
  check(iterations >= 1, "Grouping::unroll: need at least one iteration");
  const int n = static_cast<int>(base.group_of_.size());
  Grouping unrolled;
  unrolled.group_of_.reserve(static_cast<size_t>(n) * iterations);
  for (int iter = 0; iter < iterations; ++iter) {
    for (int i = 0; i < n; ++i) {
      unrolled.group_of_.push_back(base.group_of_[static_cast<size_t>(i)]);
    }
  }
  unrolled.members_.assign(base.members_.size(), {});
  for (int iter = 0; iter < iterations; ++iter) {
    for (size_t g = 0; g < base.members_.size(); ++g) {
      for (OpId op : base.members_[g]) {
        unrolled.members_[g].push_back(iter * n + op);
      }
    }
  }
  return unrolled;
}

Grouping Grouping::from_origin(const Grouping& base,
                               const std::vector<graph::OpId>& origin) {
  Grouping derived;
  derived.group_of_.reserve(origin.size());
  derived.members_.assign(base.members_.size(), {});
  for (size_t i = 0; i < origin.size(); ++i) {
    const OpId src = origin[i];
    check(src >= 0 && src < static_cast<OpId>(base.group_of_.size()),
          "Grouping::from_origin: origin out of range");
    const GroupId g = base.group_of_[static_cast<size_t>(src)];
    derived.group_of_.push_back(g);
    derived.members_[static_cast<size_t>(g)].push_back(static_cast<OpId>(i));
  }
  return derived;
}

Grouping Grouping::from_assignment(const std::vector<GroupId>& assignment) {
  check(!assignment.empty(), "Grouping::from_assignment: empty assignment");
  GroupId max_group = -1;
  for (const GroupId g : assignment) {
    check(g >= 0, "Grouping::from_assignment: negative group id");
    max_group = std::max(max_group, g);
  }
  Grouping grouping;
  grouping.group_of_ = assignment;
  grouping.members_.assign(static_cast<size_t>(max_group) + 1, {});
  for (size_t op = 0; op < assignment.size(); ++op) {
    grouping.members_[static_cast<size_t>(assignment[op])].push_back(
        static_cast<OpId>(op));
  }
  for (const auto& members : grouping.members_) {
    check(!members.empty(), "Grouping::from_assignment: group ids must be dense");
  }
  return grouping;
}

const Action& StrategyMap::action_for(const Grouping& grouping, OpId op) const {
  const GroupId g = grouping.group_of(op);
  check(g >= 0 && g < static_cast<GroupId>(group_actions.size()),
        "action_for: strategy/grouping mismatch");
  return group_actions[static_cast<size_t>(g)];
}

StrategyMap StrategyMap::uniform(int group_count, Action action) {
  StrategyMap map;
  map.group_actions.assign(static_cast<size_t>(group_count), action);
  return map;
}

StrategyBreakdown summarize_strategy(const graph::GraphDef& graph,
                                     const Grouping& grouping,
                                     const StrategyMap& strategy, int device_count) {
  StrategyBreakdown bd;
  bd.mp_fraction.assign(static_cast<size_t>(device_count), 0.0);
  const double total = static_cast<double>(graph.op_count());
  for (OpId id = 0; id < graph.op_count(); ++id) {
    const Action& a = strategy.action_for(grouping, id);
    if (a.is_mp) {
      bd.mp_fraction[static_cast<size_t>(a.mp_device)] += 1.0 / total;
    } else if (a.replication == ReplicationMode::kEven && a.comm == CommMethod::kPS) {
      bd.ev_ps += 1.0 / total;
    } else if (a.replication == ReplicationMode::kEven && a.comm == CommMethod::kAllReduce) {
      bd.ev_ar += 1.0 / total;
    } else if (a.replication == ReplicationMode::kProportional && a.comm == CommMethod::kPS) {
      bd.cp_ps += 1.0 / total;
    } else {
      bd.cp_ar += 1.0 / total;
    }
  }
  return bd;
}

}  // namespace heterog::strategy
