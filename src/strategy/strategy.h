// Part-I decision space (paper Sec. 4.1.2).
//
// For each op group the agent picks one action out of M + 4:
//   * action i < M          -> model parallelism: place the whole group on
//                              device i, no replication;
//   * the last four actions -> data parallelism, the cross product of
//     {even replication (one replica per device),
//      proportional replication (replicas per device ~ compute power)}
//     x {PS, AllReduce} gradient synchronisation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "profiler/cost_provider.h"

namespace heterog::strategy {

using cluster::DeviceId;
using graph::OpId;
using GroupId = int32_t;

enum class CommMethod : uint8_t { kPS, kAllReduce };
const char* comm_method_name(CommMethod method);

enum class ReplicationMode : uint8_t { kEven, kProportional };
const char* replication_mode_name(ReplicationMode mode);

/// One Part-I action. Exactly one of the M+4 alternatives.
struct Action {
  bool is_mp = false;
  DeviceId mp_device = 0;                              // valid when is_mp
  ReplicationMode replication = ReplicationMode::kEven;  // valid when !is_mp
  CommMethod comm = CommMethod::kAllReduce;              // valid when !is_mp

  static Action mp(DeviceId device);
  static Action dp(ReplicationMode mode, CommMethod comm);

  /// Index in [0, M+4): MP(d) -> d; DP -> M + {EV-PS, EV-AR, CP-PS, CP-AR}.
  int index(int device_count) const;
  static Action from_index(int index, int device_count);
  static int action_count(int device_count) { return device_count + 4; }

  bool operator==(const Action& other) const;
  std::string to_string() const;
};

/// Names matching the paper's Table 2 / 3 columns for DP actions.
std::string action_table_label(const Action& action, int device_count);

/// Operation grouping (paper Sec. 4.1.1, per-group embeddings).
///
/// If the op count is within `max_groups`, every op is its own group.
/// Otherwise the top-`max_groups` ops by average execution time become group
/// centres and every other op joins the centre nearest in (undirected) hop
/// distance. Backward and apply ops always share the group of their mirrored
/// forward op so that parameters, gradients and updates are planned
/// coherently.
class Grouping {
 public:
  int group_count() const { return static_cast<int>(members_.size()); }
  GroupId group_of(OpId op) const;
  const std::vector<OpId>& members(GroupId group) const;
  const std::vector<GroupId>& assignment() const { return group_of_; }

  static Grouping build(const graph::GraphDef& graph,
                        const profiler::CostProvider& costs, int max_groups);

  /// Grouping for a graph::unroll_iterations(...) copy of the grouped graph:
  /// op `k * n + i` joins the group of op `i` (same group ids, so a strategy
  /// for the original grouping applies verbatim to the unrolled graph).
  static Grouping unroll(const Grouping& base, int iterations);

  /// Grouping for a derived graph whose op `i` realises base op `origin[i]`
  /// (e.g. graph::pipeline_microbatches): each derived op joins the group of
  /// its origin, so strategies transfer verbatim.
  static Grouping from_origin(const Grouping& base,
                              const std::vector<graph::OpId>& origin);

  /// Reconstructs a Grouping from a per-op assignment vector (the shape
  /// returned by assignment()), as persisted by the ckpt run journal. Group
  /// ids must be dense: every id in [0, max] occupied. Throws CheckError
  /// otherwise.
  static Grouping from_assignment(const std::vector<GroupId>& assignment);

 private:
  std::vector<GroupId> group_of_;             // per op
  std::vector<std::vector<OpId>> members_;    // per group
};

/// A full Part-I strategy: one action per group.
struct StrategyMap {
  std::vector<Action> group_actions;

  const Action& action_for(const Grouping& grouping, OpId op) const;

  /// Uniform strategy (all groups take `action`) — the DP baselines.
  static StrategyMap uniform(int group_count, Action action);
};

/// Per-category op fractions in the style of Tables 2 / 3: for each device
/// (MP placements) and each of the four DP schemes, the fraction of graph
/// ops whose group selected it.
struct StrategyBreakdown {
  std::vector<double> mp_fraction;  // per device
  double ev_ps = 0.0;
  double ev_ar = 0.0;
  double cp_ps = 0.0;
  double cp_ar = 0.0;
};
StrategyBreakdown summarize_strategy(const graph::GraphDef& graph,
                                     const Grouping& grouping,
                                     const StrategyMap& strategy, int device_count);

}  // namespace heterog::strategy
