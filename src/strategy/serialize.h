// Plain-text (de)serialisation of strategy maps, used by the bench harness
// to cache search results across binaries, by users to export plans, and by
// the ckpt run journal to embed the deployed plan.
//
// Two on-disk versions:
//
//   v1 (legacy, read-compat only)      v2 (written by save_plan)
//   -----------------------------      --------------------------------
//   heterog-plan v1                    heterog-plan v2
//   devices <M>                        cluster <8-hex fingerprint>
//   groups <N>                         devices <M>
//   <N action indices, one per line>   groups <N>
//                                      <N action indices, one per line>
//                                      crc <8-hex CRC-32 of all prior bytes>
//
// v2 hardens the format against deployment accidents: the cluster
// fingerprint (cluster::cluster_fingerprint) refuses a plan made for
// different hardware even when the device *count* happens to match; the crc
// line detects truncation and bit rot; the action count is cross-checked
// against the `groups` header; and trailing garbage after the last line is
// rejected (for v1 too), so concatenation corruption cannot masquerade as a
// valid shorter plan.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "cluster/cluster.h"
#include "strategy/strategy.h"

namespace heterog::strategy {

/// Thrown by the checked parse/load entry points for any malformed plan:
/// bad magic, checksum mismatch, action-count mismatch, out-of-range action,
/// device-count or cluster-fingerprint mismatch, trailing garbage.
class PlanFormatError : public std::runtime_error {
 public:
  explicit PlanFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Serialises to the legacy v1 format (no checksum) — kept for tooling that
/// has only a device count in hand.
std::string to_text(const StrategyMap& map, int device_count);

/// Serialises to the checksummed v2 format, stamping `cluster`'s fingerprint.
std::string to_text(const StrategyMap& map, const cluster::ClusterSpec& cluster);

/// Parses a v1 or v2 plan; returns nullopt on malformed input or
/// device-count mismatch. v2 checksums are verified; the v2 cluster
/// fingerprint is NOT verified by this overload (no cluster in hand).
std::optional<StrategyMap> from_text(const std::string& text, int device_count);

/// Checked parse: like from_text but throws PlanFormatError carrying the
/// reason, and additionally verifies a v2 fingerprint against `cluster`.
StrategyMap parse_plan(const std::string& text, const cluster::ClusterSpec& cluster);

/// File helpers. Saves are atomic (write-temp/flush/rename in the target
/// directory): on failure they return false and leave any prior plan at
/// `path` intact. The device_count overload writes v1, the cluster overload
/// writes v2.
bool save_plan(const std::string& path, const StrategyMap& map, int device_count);
bool save_plan(const std::string& path, const StrategyMap& map,
               const cluster::ClusterSpec& cluster);

/// load returns nullopt when the file is missing or invalid.
std::optional<StrategyMap> load_plan(const std::string& path, int device_count);

/// Checked load: throws PlanFormatError (unreadable file, corrupt or
/// mismatched plan) instead of flattening every failure to nullopt.
StrategyMap load_plan_checked(const std::string& path,
                              const cluster::ClusterSpec& cluster);

}  // namespace heterog::strategy
