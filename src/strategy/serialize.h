// Plain-text (de)serialisation of strategy maps, used by the bench harness
// to cache search results across binaries and by users to export plans.
//
// Format (line-oriented):
//   heterog-plan v1
//   devices <M>
//   groups <N>
//   <action index of group 0>
//   ...
#pragma once

#include <optional>
#include <string>

#include "strategy/strategy.h"

namespace heterog::strategy {

std::string to_text(const StrategyMap& map, int device_count);

/// Parses a plan; returns nullopt on malformed input or device-count
/// mismatch.
std::optional<StrategyMap> from_text(const std::string& text, int device_count);

/// File helpers; save overwrites. load returns nullopt when the file is
/// missing or invalid.
bool save_plan(const std::string& path, const StrategyMap& map, int device_count);
std::optional<StrategyMap> load_plan(const std::string& path, int device_count);

}  // namespace heterog::strategy
