#include "strategy/serialize.h"

#include <fstream>
#include <sstream>

namespace heterog::strategy {

std::string to_text(const StrategyMap& map, int device_count) {
  std::ostringstream os;
  os << "heterog-plan v1\n";
  os << "devices " << device_count << "\n";
  os << "groups " << map.group_actions.size() << "\n";
  for (const Action& a : map.group_actions) os << a.index(device_count) << "\n";
  return os.str();
}

std::optional<StrategyMap> from_text(const std::string& text, int device_count) {
  std::istringstream is(text);
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "heterog-plan" || version != "v1") {
    return std::nullopt;
  }
  std::string key;
  int devices = 0;
  if (!(is >> key >> devices) || key != "devices" || devices != device_count) {
    return std::nullopt;
  }
  size_t groups = 0;
  if (!(is >> key >> groups) || key != "groups") return std::nullopt;

  StrategyMap map;
  map.group_actions.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    int index = -1;
    if (!(is >> index) || index < 0 || index >= Action::action_count(device_count)) {
      return std::nullopt;
    }
    map.group_actions.push_back(Action::from_index(index, device_count));
  }
  return map;
}

bool save_plan(const std::string& path, const StrategyMap& map, int device_count) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_text(map, device_count);
  return static_cast<bool>(out);
}

std::optional<StrategyMap> load_plan(const std::string& path, int device_count) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str(), device_count);
}

}  // namespace heterog::strategy
