#include "strategy/serialize.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32.h"

namespace heterog::strategy {

namespace {

[[noreturn]] void fail(const std::string& why) { throw PlanFormatError("plan: " + why); }

/// Splits off the final "crc <hex>" line of a v2 payload and verifies it.
/// Returns the checksummed body (everything before the crc line).
std::string verify_crc_trailer(const std::string& text) {
  // The crc line is by construction the last line; search from the end so
  // embedded-looking "crc " bytes earlier in a (corrupt) body cannot
  // confuse the split.
  std::string trimmed = text;
  if (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
  const size_t nl = trimmed.find_last_of('\n');
  const std::string last = nl == std::string::npos ? trimmed : trimmed.substr(nl + 1);
  if (last.rfind("crc ", 0) != 0) fail("missing crc trailer line");
  if (trimmed.size() == last.size()) fail("plan is only a crc line");
  const std::string body = text.substr(0, nl + 1);
  // String comparison, not value comparison: a flipped byte inside the
  // stored checksum itself must also be detected.
  const std::string expected = crc32_hex(crc32(body));
  if (last.substr(4) != expected) {
    fail("checksum mismatch (stored \"" + last.substr(4) + "\", computed \"" +
         expected + "\")");
  }
  return body;
}

/// Group counts are parsed signed and range-checked so a crafted plan cannot
/// drive a gigantic reserve() into std::length_error / bad_alloc (those are
/// not PlanFormatErrors). No real plan comes near the cap.
size_t parse_group_count(std::istringstream& is, const char* version) {
  std::string key;
  long long groups = -1;
  if (!(is >> key >> groups) || key != "groups") {
    fail(std::string(version) + ": bad groups line");
  }
  constexpr long long kMax = 1'000'000;
  if (groups < 0 || groups > kMax) {
    fail(std::string(version) + ": group count out of range: " + std::to_string(groups));
  }
  return static_cast<size_t>(groups);
}

StrategyMap parse_actions(std::istringstream& is, size_t groups, int device_count) {
  StrategyMap map;
  map.group_actions.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    int index = -1;
    if (!(is >> index)) {
      fail("truncated: expected " + std::to_string(groups) + " actions, found " +
           std::to_string(g));
    }
    if (index < 0 || index >= Action::action_count(device_count)) {
      fail("action index " + std::to_string(index) + " out of range for " +
           std::to_string(device_count) + " devices");
    }
    map.group_actions.push_back(Action::from_index(index, device_count));
  }
  return map;
}

void reject_trailing(std::istringstream& is) {
  std::string extra;
  if (is >> extra) fail("trailing garbage after last action (\"" + extra + "\")");
}

/// Shared v1/v2 parser. `cluster` may be null (fingerprint check skipped).
StrategyMap parse_any(const std::string& text, int device_count,
                      const cluster::ClusterSpec* cluster) {
  std::istringstream header(text);
  std::string magic, version;
  if (!(header >> magic >> version) || magic != "heterog-plan") {
    fail("not a heterog-plan file");
  }

  if (version == "v1") {
    std::istringstream is(text);
    is >> magic >> version;
    std::string key;
    int devices = 0;
    if (!(is >> key >> devices) || key != "devices") fail("v1: bad devices line");
    if (devices != device_count) {
      fail("v1: plan is for " + std::to_string(devices) + " devices, expected " +
           std::to_string(device_count));
    }
    const size_t groups = parse_group_count(is, "v1");
    StrategyMap map = parse_actions(is, groups, device_count);
    reject_trailing(is);
    return map;
  }

  if (version != "v2") fail("unsupported version \"" + version + "\"");

  const std::string body = verify_crc_trailer(text);
  std::istringstream is(body);
  is >> magic >> version;
  std::string key, fingerprint;
  if (!(is >> key >> fingerprint) || key != "cluster" || fingerprint.size() != 8) {
    fail("v2: bad cluster fingerprint line");
  }
  if (cluster && fingerprint != crc32_hex(cluster_fingerprint(*cluster))) {
    fail("v2: cluster fingerprint mismatch — plan was made for different hardware "
         "(plan " + fingerprint + ", cluster " +
         crc32_hex(cluster_fingerprint(*cluster)) + ")");
  }
  int devices = 0;
  if (!(is >> key >> devices) || key != "devices") fail("v2: bad devices line");
  if (devices != device_count) {
    fail("v2: plan is for " + std::to_string(devices) + " devices, expected " +
         std::to_string(device_count));
  }
  const size_t groups = parse_group_count(is, "v2");
  StrategyMap map = parse_actions(is, groups, device_count);
  reject_trailing(is);  // action count cross-check: nothing between actions and crc
  return map;
}

}  // namespace

std::string to_text(const StrategyMap& map, int device_count) {
  std::ostringstream os;
  os << "heterog-plan v1\n";
  os << "devices " << device_count << "\n";
  os << "groups " << map.group_actions.size() << "\n";
  for (const Action& a : map.group_actions) os << a.index(device_count) << "\n";
  return os.str();
}

std::string to_text(const StrategyMap& map, const cluster::ClusterSpec& cluster) {
  const int device_count = cluster.device_count();
  std::ostringstream os;
  os << "heterog-plan v2\n";
  os << "cluster " << crc32_hex(cluster_fingerprint(cluster)) << "\n";
  os << "devices " << device_count << "\n";
  os << "groups " << map.group_actions.size() << "\n";
  for (const Action& a : map.group_actions) os << a.index(device_count) << "\n";
  std::string body = os.str();
  body += "crc " + crc32_hex(crc32(body)) + "\n";
  return body;
}

std::optional<StrategyMap> from_text(const std::string& text, int device_count) {
  try {
    return parse_any(text, device_count, nullptr);
  } catch (const PlanFormatError&) {
    return std::nullopt;
  }
}

StrategyMap parse_plan(const std::string& text, const cluster::ClusterSpec& cluster) {
  return parse_any(text, cluster.device_count(), &cluster);
}

bool save_plan(const std::string& path, const StrategyMap& map, int device_count) {
  return write_file_atomic(path, to_text(map, device_count));
}

bool save_plan(const std::string& path, const StrategyMap& map,
               const cluster::ClusterSpec& cluster) {
  return write_file_atomic(path, to_text(map, cluster));
}

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::optional<StrategyMap> load_plan(const std::string& path, int device_count) {
  const auto text = read_file(path);
  if (!text) return std::nullopt;
  return from_text(*text, device_count);
}

StrategyMap load_plan_checked(const std::string& path,
                              const cluster::ClusterSpec& cluster) {
  const auto text = read_file(path);
  if (!text) throw PlanFormatError("plan: cannot read file: " + path);
  return parse_plan(*text, cluster);
}

}  // namespace heterog::strategy
