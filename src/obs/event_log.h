// Unified observability: the JSONL event sink.
//
// An EventLog streams structured records, one JSON object per line, with a
// fixed versioned envelope:
//
//   {"v":1,"seq":12,"type":"search_episode","episode":3,"best_ms":412.7,...}
//
// `v` is the schema version (bumped on breaking layout changes), `seq` a
// per-log monotonic sequence number (events from one log are totally
// ordered even after files are concatenated out of order), `type` one of
// all_event_types(). Every type and field is documented field-by-field in
// docs/observability.md; tests/obs_test.cpp cross-checks that the doc covers
// every type the code can emit, and constructing an Event with an
// undocumented type throws — the vocabulary below IS the schema.
//
// Producers: rl::Trainer (search_* / pretrain_round), heterog::DistRunner
// (run_*), heterog::get_runner + the CLI (schedule / *_utilization).
// Consumers: obs/report.h (the `heterog_cli report` renderer) and anything
// that can read JSON lines (jq, pandas, ...).
//
// Thread-safety: emit()/flush() may be called from any thread (one mutex
// serialises writes; a line is never torn). Telemetry is strictly
// write-only: attaching a log to a search or run never changes its results
// — tests/obs_test.cpp pins bit-identical searches with metrics on and off.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace heterog::obs {

/// Thrown by read_events() on unreadable files or lines that are not flat
/// JSON objects of the envelope above.
class EventLogError : public std::runtime_error {
 public:
  explicit EventLogError(const std::string& what) : std::runtime_error(what) {}
};

/// Every event type the library can emit. docs/observability.md documents
/// each one; the obs test enumerates this list against the doc.
const std::vector<std::string>& all_event_types();

/// One structured record under construction. Fields keep insertion order so
/// emitted lines are stable; values are scalars only (flat objects).
class Event {
 public:
  /// Throws CheckError when `type` is not in all_event_types().
  explicit Event(const std::string& type);

  Event& with(const std::string& key, int64_t value);
  Event& with(const std::string& key, int value);
  Event& with(const std::string& key, uint64_t value);
  Event& with(const std::string& key, double value);
  Event& with(const std::string& key, bool value);
  Event& with(const std::string& key, const std::string& value);
  Event& with(const std::string& key, const char* value);

  const std::string& type() const { return type_; }

  /// The record as one JSON line (no trailing newline), with the given
  /// sequence number in the envelope.
  std::string to_json(uint64_t seq) const;

 private:
  enum class Kind : uint8_t { kInt, kDouble, kBool, kString };
  struct Field {
    std::string key;
    Kind kind;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  std::string type_;
  std::vector<Field> fields_;
};

/// Append-structured-records-to-a-file sink. Opens (truncating) at
/// construction; ok() reports open failure instead of throwing so callers
/// can degrade to "no telemetry" gracefully.
class EventLog {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit EventLog(const std::string& path);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Writes one line; thread-safe, line-atomic, flushed per event (the log
  /// must survive a crash mid-run — it is a forensic artifact).
  void emit(const Event& event);

  void flush();

  /// Events written so far (== the next event's seq).
  uint64_t events_emitted() const;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  uint64_t seq_ = 0;
};

/// One record read back from a JSONL file: the envelope plus every field as
/// its raw JSON scalar text (numbers unparsed, strings unescaped).
struct ParsedEvent {
  int version = 0;
  uint64_t seq = 0;
  std::string type;
  std::map<std::string, std::string> fields;  // key -> scalar value (decoded)

  bool has(const std::string& key) const { return fields.count(key) > 0; }
  /// Field as double; `fallback` when absent or non-numeric.
  double number(const std::string& key, double fallback = 0.0) const;
  /// Field as decoded string; empty when absent.
  std::string str(const std::string& key) const;
};

/// Parses every line of `path`. Throws EventLogError on an unreadable file,
/// a malformed line, or an unsupported schema version (> kSchemaVersion).
std::vector<ParsedEvent> read_events(const std::string& path);

}  // namespace heterog::obs
