// Run-report pipeline: aggregate one or more JSONL event logs (obs/event_log)
// into the summary `heterog_cli report` prints.
//
// The report has up to four sections, each present only when its events are:
//   * Search   — episode count, best time/reward, convergence, cache traffic
//                (search_* events; the figures match the producing
//                rl::SearchResult field-for-field — tests/obs_test.cpp pins
//                episode count, best reward and cache hit-rate);
//   * Run      — step count and step-time distribution, transient retries,
//                recoveries, checkpoint latency (run_* events);
//   * Schedule — per-device utilization, busiest links, critical-path share
//                (schedule / *_utilization events);
//   * Pretrain — mean reward per round (pretrain_round events).
//
// CSV export writes the per-episode convergence series (one row per
// search_episode event) for plotting.
//
// Thread-safety: free functions over immutable inputs; safe anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.h"

namespace heterog::obs {

/// Aggregates computed from the event stream (the renderer's input, exposed
/// for tests to cross-check against SearchResult / RunStats).
struct ReportSummary {
  // Search section (search_* events).
  bool has_search = false;
  int search_episodes = 0;          // episodes run (search_end, falls back to count)
  double best_time_ms = 0.0;        // incumbent per-iteration time
  double best_reward = 0.0;         // reward of the incumbent
  bool best_feasible = false;
  int episode_of_best = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double search_wall_ms = 0.0;
  /// hits / (hits + misses); 0 when no evaluations were recorded.
  double cache_hit_rate() const;

  // Run section (run_* events).
  bool has_run = false;
  int run_steps = 0;
  double run_total_ms = 0.0;
  double step_mean_ms = 0.0;
  double step_p50_ms = 0.0;
  double step_p95_ms = 0.0;
  double step_max_ms = 0.0;
  int transient_retries = 0;
  double retry_backoff_ms = 0.0;
  int recoveries = 0;
  double replan_wall_ms = 0.0;      // summed over recoveries
  int checkpoints = 0;
  double checkpoint_mean_ms = 0.0;
  double checkpoint_max_ms = 0.0;
  bool run_completed = true;

  // Schedule section (schedule / *_utilization events).
  bool has_schedule = false;
  double makespan_ms = 0.0;
  double critical_path_share = 0.0;  // critical path ms / makespan ms
  struct DeviceUtilization {
    int device = -1;
    double busy_ms = 0.0;
    double utilization = 0.0;  // busy / makespan, in [0, 1]
  };
  std::vector<DeviceUtilization> devices;
  struct LinkUtilization {
    std::string resource;  // "link G0->G2", "nccl", "nic host1 ingress"
    double busy_ms = 0.0;
    double utilization = 0.0;
  };
  std::vector<LinkUtilization> links;  // sorted by busy_ms descending

  // Pretrain section.
  int pretrain_rounds = 0;
  double pretrain_last_mean_reward = 0.0;

  int total_events = 0;
};

/// Aggregates all events of all files, in file order. Throws EventLogError
/// on any unreadable or malformed file.
ReportSummary summarize_events(const std::vector<std::string>& paths);
ReportSummary summarize_events(const std::vector<ParsedEvent>& events);

/// The rendered text report (section tables, ready to print).
std::string render_report(const ReportSummary& summary);

/// Writes the per-episode convergence series as CSV
/// (episode,best_ms,best_feasible,mean_reward,baseline,entropy,cache_hits,
/// cache_misses,wall_ms). Returns false when the file cannot be written.
bool write_convergence_csv(const std::string& path,
                           const std::vector<ParsedEvent>& events);

}  // namespace heterog::obs
