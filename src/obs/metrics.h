// Unified observability: thread-safe metrics registry (counters, gauges,
// fixed-bucket histograms) with RAII scoped timers.
//
// Naming convention (docs/observability.md "Metric naming"): every metric is
// a dot-separated `subsystem.name.unit` string, e.g.
//
//   rl.search_wall.ms        bench.plans.count        sim.device_util.ratio
//
// The unit suffix is load-bearing: `report` and the bench JSON dump group
// and format values by it (`ms`, `count`, `ratio`, `bytes`).
//
// Thread-safety: every member of MetricsRegistry may be called from any
// number of threads concurrently (one mutex guards the maps; the TSan `obs`
// ctest label hammers it). Snapshots are consistent point-in-time copies.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace heterog::obs {

/// Point-in-time copy of one histogram. Buckets are cumulative-free,
/// half-open on the left: value v lands in the first bucket with
/// v <= upper_bounds[i]; values above the last bound land in the overflow
/// bucket, so counts.size() == upper_bounds.size() + 1.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;    // total observations
  double sum = 0.0;      // sum of observed values (same unit as the metric)
  double min = 0.0;      // defined only when count > 0
  double max = 0.0;      // defined only when count > 0

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Consistent copy of an entire registry, ordered by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Keys are sorted (std::map), so equal snapshots render byte-identical.
  std::string to_json() const;
};

/// The histogram bucket edges used when a metric is first observed without a
/// prior define_histogram() call: exponential 0.1 ms .. 10 s (wall-time
/// oriented; define explicit edges for anything that is not a duration).
const std::vector<double>& default_histogram_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at 0 on first use).
  void add(const std::string& name, uint64_t delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void set(const std::string& name, double value);

  /// Records one observation into the named histogram; the histogram is
  /// created with default_histogram_bounds() unless defined beforehand.
  void observe(const std::string& name, double value);

  /// Pre-declares a histogram with explicit bucket upper bounds (must be
  /// strictly increasing and non-empty). No-op if the name already exists.
  void define_histogram(const std::string& name, std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Drops every metric (tests and per-bench isolation).
  void clear();

  /// Process-wide registry used by the benches; library code takes a
  /// registry (or none) explicitly and never touches the global one.
  static MetricsRegistry& global();

 private:
  struct Histogram {
    std::vector<double> upper_bounds;
    std::vector<uint64_t> counts;  // upper_bounds.size() + 1 (overflow)
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII wall-clock timer: records the elapsed milliseconds into
/// `registry.observe(name)` when destroyed (or at stop(), whichever first).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

  /// Milliseconds since construction (monotonic clock).
  double elapsed_ms() const;

  /// Records now and disarms the destructor; returns the recorded ms.
  double stop();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  int64_t start_ns_ = 0;
  bool armed_ = true;
};

}  // namespace heterog::obs
