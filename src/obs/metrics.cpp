#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"

namespace heterog::obs {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Shortest-round-trip double rendering, shared with the event log.
void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Prefer the shortest representation that parses back exactly.
  for (int precision = 1; precision <= 16; ++precision) {
    char candidate[40];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      out += candidate;
      return;
    }
  }
  out += buffer;
}

void append_json_key(std::string& out, const std::string& key) {
  out += '"';
  out += key;  // metric names are dot/alnum only; no escaping needed
  out += "\":";
}

}  // namespace

const std::vector<double>& default_histogram_bounds() {
  static const std::vector<double> bounds = {0.1, 0.25, 0.5,  1.0,   2.5,   5.0,
                                             10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                                             1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

void MetricsRegistry::add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> upper_bounds) {
  check(!upper_bounds.empty(), "define_histogram: no bucket bounds");
  check(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
            std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                upper_bounds.end(),
        "define_histogram: bounds must be strictly increasing");
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (!inserted) return;
  it->second.upper_bounds = std::move(upper_bounds);
  it->second.counts.assign(it->second.upper_bounds.size() + 1, 0);
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  Histogram& h = it->second;
  if (inserted) {
    h.upper_bounds = default_histogram_bounds();
    h.counts.assign(h.upper_bounds.size() + 1, 0);
  }
  // First bucket whose upper bound is >= value; values above every bound go
  // to the trailing overflow bucket (tests pin the <=-edge semantics).
  const auto bound =
      std::lower_bound(h.upper_bounds.begin(), h.upper_bounds.end(), value);
  h.counts[static_cast<size_t>(bound - h.upper_bounds.begin())] += 1;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.upper_bounds = h.upper_bounds;
    hs.counts = h.counts;
    hs.count = h.count;
    hs.sum = h.sum;
    hs.min = h.min;
    hs.max = h.max;
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, name);
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, name);
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, name);
    out += "{\"count\":" + std::to_string(h.count) + ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"min\":";
    append_double(out, h.min);
    out += ",\"max\":";
    append_double(out, h.max);
    out += ",\"bounds\":[";
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (i > 0) out += ',';
      append_double(out, h.upper_bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, std::string name)
    : registry_(&registry), name_(std::move(name)), start_ns_(now_ns()) {}

double ScopedTimer::elapsed_ms() const {
  return static_cast<double>(now_ns() - start_ns_) / 1e6;
}

double ScopedTimer::stop() {
  const double ms = elapsed_ms();
  if (armed_) {
    armed_ = false;
    registry_->observe(name_, ms);
  }
  return ms;
}

ScopedTimer::~ScopedTimer() {
  if (armed_) stop();
}

}  // namespace heterog::obs
