#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace heterog::obs {

namespace {

void append_escaped(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    char candidate[40];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      out += candidate;
      return;
    }
  }
}

}  // namespace

const std::vector<std::string>& all_event_types() {
  // The emit-side schema. Adding a type here without a matching section in
  // docs/observability.md fails tests/obs_test.cpp:DocsCoverEveryEventType.
  static const std::vector<std::string> types = {
      // Strategy search (rl::Trainer).
      "search_start", "search_phase", "search_episode", "search_end",
      "pretrain_round",
      // Fault/checkpoint runner (heterog::DistRunner).
      "run_start", "run_step", "run_retry", "run_recovery", "run_checkpoint",
      "run_end",
      // Deployed-schedule statistics (heterog::get_runner, heterog_cli
      // evaluate).
      "schedule", "device_utilization", "link_utilization",
      // Online health monitoring (health::HealthMonitor, heterog::DistRunner
      // degraded re-planning).
      "suspicion", "quarantine", "breaker_open", "degraded_replan",
      // Correlated fault domains: a rack burst attributed by the monitor and
      // the runner's one-shot domain-wide replan.
      "domain_suspicion", "domain_replan",
      // Persistent plan/eval store (store::PlanStore).
      "store_open", "store_quarantine",
      // Plan server (server::PlanServer): lifecycle, per-request outcomes,
      // typed rejections, deadline degradation and graceful drain.
      "server_start", "server_request", "server_reject", "server_degraded",
      "server_drain",
  };
  return types;
}

Event::Event(const std::string& type) : type_(type) {
  const auto& types = all_event_types();
  check_lazy(std::find(types.begin(), types.end(), type) != types.end(),
             [&] { return "Event: undocumented event type '" + type + "'"; });
}

Event& Event::with(const std::string& key, int64_t value) {
  Field f;
  f.key = key;
  f.kind = Kind::kInt;
  f.int_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::with(const std::string& key, int value) {
  return with(key, static_cast<int64_t>(value));
}

Event& Event::with(const std::string& key, uint64_t value) {
  return with(key, static_cast<int64_t>(value));
}

Event& Event::with(const std::string& key, double value) {
  Field f;
  f.key = key;
  f.kind = Kind::kDouble;
  f.double_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::with(const std::string& key, bool value) {
  Field f;
  f.key = key;
  f.kind = Kind::kBool;
  f.bool_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::with(const std::string& key, const std::string& value) {
  Field f;
  f.key = key;
  f.kind = Kind::kString;
  f.string_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::with(const std::string& key, const char* value) {
  return with(key, std::string(value));
}

std::string Event::to_json(uint64_t seq) const {
  std::string out = "{\"v\":" + std::to_string(EventLog::kSchemaVersion) +
                    ",\"seq\":" + std::to_string(seq) + ",\"type\":";
  append_escaped(out, type_);
  for (const Field& f : fields_) {
    out += ',';
    append_escaped(out, f.key);
    out += ':';
    switch (f.kind) {
      case Kind::kInt: out += std::to_string(f.int_value); break;
      case Kind::kDouble: append_double(out, f.double_value); break;
      case Kind::kBool: out += f.bool_value ? "true" : "false"; break;
      case Kind::kString: append_escaped(out, f.string_value); break;
    }
  }
  out += '}';
  return out;
}

EventLog::EventLog(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void EventLog::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  const std::string line = event.to_json(seq_++);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void EventLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

uint64_t EventLog::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

double ParsedEvent::number(const std::string& key, double fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text) {
    // Booleans count as numbers for aggregation (true=1, false=0).
    if (it->second == "true") return 1.0;
    if (it->second == "false") return 0.0;
    return fallback;
  }
  return value;
}

std::string ParsedEvent::str(const std::string& key) const {
  const auto it = fields.find(key);
  return it != fields.end() ? it->second : std::string();
}

namespace {

// Minimal parser for the flat one-line objects the writer emits. `pos` is
// advanced past the parsed token; any deviation throws EventLogError with
// the line number for context.
[[noreturn]] void parse_fail(int line_no, const std::string& why) {
  throw EventLogError("event log line " + std::to_string(line_no) + ": " + why);
}

void skip_ws(const std::string& s, size_t& pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
}

std::string parse_string(const std::string& s, size_t& pos, int line_no) {
  if (pos >= s.size() || s[pos] != '"') parse_fail(line_no, "expected string");
  ++pos;
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    char c = s[pos++];
    if (c == '\\') {
      if (pos >= s.size()) parse_fail(line_no, "dangling escape");
      const char esc = s[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > s.size()) parse_fail(line_no, "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else parse_fail(line_no, "bad \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            // The writer only emits \u for control chars; anything else in
            // a hand-edited file is preserved as UTF-8 (2-byte range).
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: parse_fail(line_no, "unknown escape");
      }
    } else {
      out += c;
    }
  }
  if (pos >= s.size()) parse_fail(line_no, "unterminated string");
  ++pos;  // closing quote
  return out;
}

std::string parse_scalar(const std::string& s, size_t& pos, int line_no) {
  skip_ws(s, pos);
  if (pos >= s.size()) parse_fail(line_no, "missing value");
  if (s[pos] == '"') return parse_string(s, pos, line_no);
  if (s[pos] == '{' || s[pos] == '[') {
    parse_fail(line_no, "nested values are not part of the v1 schema");
  }
  const size_t start = pos;
  while (pos < s.size() && s[pos] != ',' && s[pos] != '}') ++pos;
  std::string out = s.substr(start, pos - start);
  while (!out.empty() && (out.back() == ' ' || out.back() == '\t')) out.pop_back();
  if (out.empty()) parse_fail(line_no, "empty value");
  return out;
}

ParsedEvent parse_line(const std::string& line, int line_no) {
  size_t pos = 0;
  skip_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') parse_fail(line_no, "expected '{'");
  ++pos;
  ParsedEvent event;
  bool first = true;
  while (true) {
    skip_ws(line, pos);
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      break;
    }
    if (!first) {
      if (pos >= line.size() || line[pos] != ',') parse_fail(line_no, "expected ','");
      ++pos;
      skip_ws(line, pos);
    }
    first = false;
    const std::string key = parse_string(line, pos, line_no);
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] != ':') parse_fail(line_no, "expected ':'");
    ++pos;
    const std::string value = parse_scalar(line, pos, line_no);
    if (key == "v") {
      event.version = std::atoi(value.c_str());
    } else if (key == "seq") {
      event.seq = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (key == "type") {
      event.type = value;
    } else {
      event.fields[key] = value;
    }
  }
  skip_ws(line, pos);
  if (pos != line.size()) parse_fail(line_no, "trailing garbage after object");
  if (event.version <= 0 || event.version > EventLog::kSchemaVersion) {
    parse_fail(line_no, "unsupported schema version " + std::to_string(event.version));
  }
  if (event.type.empty()) parse_fail(line_no, "missing \"type\"");
  return event;
}

}  // namespace

std::vector<ParsedEvent> read_events(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) throw EventLogError("cannot read " + path);
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);

  std::vector<ParsedEvent> events;
  size_t start = 0;
  int line_no = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    ++line_no;
    std::string line = content.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) events.push_back(parse_line(line, line_no));
    start = end + 1;
  }
  return events;
}

}  // namespace heterog::obs
