#include "obs/report.h"

#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"

namespace heterog::obs {

double ReportSummary::cache_hit_rate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total)
                   : 0.0;
}

ReportSummary summarize_events(const std::vector<std::string>& paths) {
  std::vector<ParsedEvent> events;
  for (const auto& path : paths) {
    auto file_events = read_events(path);
    events.insert(events.end(), std::make_move_iterator(file_events.begin()),
                  std::make_move_iterator(file_events.end()));
  }
  return summarize_events(events);
}

ReportSummary summarize_events(const std::vector<ParsedEvent>& events) {
  ReportSummary s;
  s.total_events = static_cast<int>(events.size());
  std::vector<double> step_ms;
  std::vector<double> ckpt_ms;
  int episode_events = 0;

  for (const ParsedEvent& e : events) {
    if (e.type == "search_start" || e.type == "search_phase") {
      s.has_search = true;
    } else if (e.type == "search_episode") {
      s.has_search = true;
      ++episode_events;
      // A log may carry several searches (e.g. re-plans after a device
      // failure); the trailing search_end wins, and episode events only
      // fill in when no search_end was written (crash mid-search).
      s.best_time_ms = e.number("best_ms");
      s.best_reward = e.number("best_reward");
      s.best_feasible = e.number("best_feasible") != 0.0;
      s.cache_hits = static_cast<uint64_t>(e.number("cache_hits"));
      s.cache_misses = static_cast<uint64_t>(e.number("cache_misses"));
    } else if (e.type == "search_end") {
      s.has_search = true;
      s.search_episodes = static_cast<int>(e.number("episodes_run"));
      s.best_time_ms = e.number("best_ms");
      s.best_reward = e.number("best_reward");
      s.best_feasible = e.number("best_feasible") != 0.0;
      s.episode_of_best = static_cast<int>(e.number("episode_of_best"));
      s.cache_hits = static_cast<uint64_t>(e.number("cache_hits"));
      s.cache_misses = static_cast<uint64_t>(e.number("cache_misses"));
      s.search_wall_ms = e.number("wall_ms");
      episode_events = 0;  // consumed by this search
    } else if (e.type == "pretrain_round") {
      ++s.pretrain_rounds;
      s.pretrain_last_mean_reward = e.number("mean_reward");
    } else if (e.type == "run_start") {
      s.has_run = true;
    } else if (e.type == "run_step") {
      s.has_run = true;
      step_ms.push_back(e.number("step_ms"));
    } else if (e.type == "run_retry") {
      s.has_run = true;
      s.transient_retries += static_cast<int>(e.number("attempts"));
      s.retry_backoff_ms += e.number("backoff_ms");
    } else if (e.type == "run_recovery") {
      s.has_run = true;
      ++s.recoveries;
      s.replan_wall_ms += e.number("replan_wall_ms");
    } else if (e.type == "run_checkpoint") {
      s.has_run = true;
      ++s.checkpoints;
      ckpt_ms.push_back(e.number("wall_ms"));
    } else if (e.type == "run_end") {
      s.has_run = true;
      s.run_completed = e.number("completed", 1.0) != 0.0;
    } else if (e.type == "schedule") {
      s.has_schedule = true;
      s.makespan_ms = e.number("makespan_ms");
      s.critical_path_share = e.number("critical_path_share");
      s.devices.clear();  // a re-plan re-emits the schedule; last wins
      s.links.clear();
    } else if (e.type == "device_utilization") {
      s.has_schedule = true;
      ReportSummary::DeviceUtilization d;
      d.device = static_cast<int>(e.number("device", -1.0));
      d.busy_ms = e.number("busy_ms");
      d.utilization = e.number("utilization");
      s.devices.push_back(d);
    } else if (e.type == "link_utilization") {
      s.has_schedule = true;
      ReportSummary::LinkUtilization l;
      l.resource = e.str("resource");
      l.busy_ms = e.number("busy_ms");
      l.utilization = e.number("utilization");
      s.links.push_back(std::move(l));
    }
  }

  // Crash tolerance: a log that ends mid-search still reports what the
  // episode stream established.
  if (s.has_search && s.search_episodes == 0) s.search_episodes = episode_events;

  s.run_steps = static_cast<int>(step_ms.size());
  if (!step_ms.empty()) {
    s.step_mean_ms = mean(step_ms);
    s.step_p50_ms = percentile(step_ms, 50.0);
    s.step_p95_ms = percentile(step_ms, 95.0);
    s.step_max_ms = *std::max_element(step_ms.begin(), step_ms.end());
    for (const double t : step_ms) s.run_total_ms += t;
  }
  if (!ckpt_ms.empty()) {
    s.checkpoint_mean_ms = mean(ckpt_ms);
    s.checkpoint_max_ms = *std::max_element(ckpt_ms.begin(), ckpt_ms.end());
  }
  std::sort(s.links.begin(), s.links.end(),
            [](const auto& a, const auto& b) { return a.busy_ms > b.busy_ms; });
  return s;
}

std::string render_report(const ReportSummary& s) {
  std::string out;
  if (s.has_search) {
    TextTable table({"search", "value"});
    table.add_row({"episodes run", std::to_string(s.search_episodes)});
    table.add_row({"best time (ms/iter)", fmt_double(s.best_time_ms, 2)});
    table.add_row({"best reward", fmt_double(s.best_reward, 4)});
    table.add_row({"feasible", s.best_feasible ? "yes" : "no"});
    table.add_row({"episode of best", std::to_string(s.episode_of_best)});
    table.add_row({"eval cache hits", std::to_string(s.cache_hits)});
    table.add_row({"eval cache misses", std::to_string(s.cache_misses)});
    table.add_row({"eval cache hit-rate", fmt_percent(s.cache_hit_rate())});
    if (s.search_wall_ms > 0.0) {
      table.add_row({"search wall (ms)", fmt_double(s.search_wall_ms, 1)});
    }
    out += table.render();
    out += '\n';
  }
  if (s.pretrain_rounds > 0) {
    TextTable table({"pretrain", "value"});
    table.add_row({"rounds", std::to_string(s.pretrain_rounds)});
    table.add_row({"last mean reward", fmt_double(s.pretrain_last_mean_reward, 4)});
    out += table.render();
    out += '\n';
  }
  if (s.has_run) {
    TextTable table({"run", "value"});
    table.add_row({"steps", std::to_string(s.run_steps)});
    table.add_row({"total (ms)", fmt_double(s.run_total_ms, 1)});
    table.add_row({"step mean (ms)", fmt_double(s.step_mean_ms, 2)});
    table.add_row({"step p50 / p95 (ms)", fmt_double(s.step_p50_ms, 2) + " / " +
                                              fmt_double(s.step_p95_ms, 2)});
    table.add_row({"step max (ms)", fmt_double(s.step_max_ms, 2)});
    table.add_row({"transient retries", std::to_string(s.transient_retries)});
    table.add_row({"retry backoff (ms)", fmt_double(s.retry_backoff_ms, 1)});
    table.add_row({"recoveries", std::to_string(s.recoveries)});
    if (s.recoveries > 0) {
      table.add_row({"re-plan wall (ms)", fmt_double(s.replan_wall_ms, 1)});
    }
    table.add_row({"checkpoints", std::to_string(s.checkpoints)});
    if (s.checkpoints > 0) {
      table.add_row({"ckpt latency mean / max (ms)",
                     fmt_double(s.checkpoint_mean_ms, 2) + " / " +
                         fmt_double(s.checkpoint_max_ms, 2)});
    }
    table.add_row({"completed", s.run_completed ? "yes" : "NO"});
    out += table.render();
    out += '\n';
  }
  if (s.has_schedule) {
    TextTable table({"schedule", "value"});
    table.add_row({"makespan (ms)", fmt_double(s.makespan_ms, 2)});
    table.add_row({"critical-path share", fmt_percent(s.critical_path_share)});
    out += table.render();
    if (!s.devices.empty()) {
      TextTable devices({"device", "busy (ms)", "utilization"});
      for (const auto& d : s.devices) {
        devices.add_row({"G" + std::to_string(d.device), fmt_double(d.busy_ms, 2),
                         fmt_percent(d.utilization)});
      }
      out += devices.render();
    }
    if (!s.links.empty()) {
      TextTable links({"comm resource", "busy (ms)", "utilization"});
      const size_t shown = std::min<size_t>(s.links.size(), 10);
      for (size_t i = 0; i < shown; ++i) {
        links.add_row({s.links[i].resource, fmt_double(s.links[i].busy_ms, 2),
                       fmt_percent(s.links[i].utilization)});
      }
      if (s.links.size() > shown) {
        links.add_row({"(" + std::to_string(s.links.size() - shown) + " more)",
                       "", ""});
      }
      out += links.render();
    }
    out += '\n';
  }
  if (out.empty()) out = "no events\n";
  return out;
}

bool write_convergence_csv(const std::string& path,
                           const std::vector<ParsedEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file,
               "episode,best_ms,best_feasible,mean_reward,baseline,entropy,"
               "cache_hits,cache_misses,wall_ms\n");
  for (const ParsedEvent& e : events) {
    if (e.type != "search_episode") continue;
    std::fprintf(file, "%d,%.17g,%d,%.17g,%.17g,%.17g,%llu,%llu,%.17g\n",
                 static_cast<int>(e.number("episode")), e.number("best_ms"),
                 e.number("best_feasible") != 0.0 ? 1 : 0, e.number("mean_reward"),
                 e.number("baseline"), e.number("entropy"),
                 static_cast<unsigned long long>(e.number("cache_hits")),
                 static_cast<unsigned long long>(e.number("cache_misses")),
                 e.number("wall_ms"));
  }
  std::fclose(file);
  return true;
}

}  // namespace heterog::obs
