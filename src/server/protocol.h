// Plan-server wire protocol: framing, request/reply schema, rejection
// taxonomy (docs/server.md).
//
// Transport is any stream socket (Unix domain or TCP). Each message —
// request or reply — is exactly one common/record_io frame:
//
//   "rec <payload-len> <crc32-hex>\n" <payload> "\n"
//
// so every byte on the wire is length-prefixed and CRC-protected: a torn
// write, a flipped bit, or hostile garbage is detected per message, before
// any field is parsed. The declared length is validated against a hard cap
// *before* any payload buffer is allocated (common/record_io
// parse_frame_header) — a crafted length prefix cannot drive a gigantic
// allocation or a long read.
//
// Payloads are flat text documents, one "key value" line each, led by a
// versioned magic line. Replies embed the chosen plan as the v2 plan format
// (strategy/serialize) behind an explicit "plan_lines <N>" count so the
// multi-line block parses unambiguously.
//
// The failure taxonomy has two layers, mirroring where the damage sits:
//
//   * frame-level damage (malformed or oversized frame, slow client, queue
//     full, server draining) => a `rejected` reply carrying a RejectReason —
//     the request was never understood, so no request-shaped answer exists;
//   * request-level damage (unknown model/cluster, bad ranges, planner
//     failure) => an `error` reply carrying a message — the frame was fine,
//     the content was not.
//
// Every decode function is total: malformed input returns false with a
// reason, never throws, never crashes (tests/serialize_fuzz_test.cpp fuzzes
// both decoders and the frame-header parser).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace heterog::server {

inline constexpr int kProtocolVersion = 1;

/// Hard cap on a request frame's declared payload (requests are small
/// key-value documents; anything bigger is hostile or broken).
inline constexpr size_t kMaxRequestPayload = 64u << 10;  // 64 KiB

/// Hard cap on a reply frame's declared payload (replies embed a plan, which
/// grows with the group count but stays far below this).
inline constexpr size_t kMaxReplyPayload = 4u << 20;  // 4 MiB

/// Why the server refused to answer a request at the frame/admission layer.
enum class RejectReason {
  kMalformedFrame,  // header or CRC damage; bytes were not a valid frame
  kOversizedFrame,  // declared payload length above kMaxRequestPayload
  kQueueFull,       // bounded admission queue at capacity (back-pressure)
  kDraining,        // server is shutting down gracefully; retry elsewhere
  kSlowClient,      // read budget exhausted before a full frame arrived
};

/// Stable wire token for each reason ("queue_full", ...).
const char* reject_reason_name(RejectReason reason);

/// Inverse of reject_reason_name; false for unknown tokens.
bool parse_reject_reason(std::string_view token, RejectReason* out);

/// One "plan this model on this cluster" request.
struct PlanRequest {
  std::string model;        // models::parse_model_name vocabulary
  int layers = -1;          // -1 = the model family's default depth
  double batch = 0.0;       // global batch size (must be > 0)
  std::string cluster = "8gpu";  // cluster::cluster_from_name vocabulary
  int episodes = 0;         // RL search episodes; 0 = heuristic-only plan
  double deadline_ms = -1.0;  // search budget; < 0 = none (docs/server.md)
  uint64_t seed = 42;       // profiler seed (plan determinism knob)
};

/// The server's answer. Exactly one of the three statuses; `plan_text` (the
/// v2 plan format) only accompanies kOk. Replies are deliberately free of
/// wall-clock or cache-traffic fields so an identical request always yields
/// byte-identical reply payloads — the restart/cache acceptance contract.
struct PlanReply {
  enum class Status { kOk, kRejected, kError };
  Status status = Status::kError;
  RejectReason reject_reason = RejectReason::kMalformedFrame;  // kRejected only
  std::string error;        // kError only: human-readable reason
  bool degraded = false;    // deadline exhausted: heuristic plan substituted
  bool feasible = false;    // plan fits device memory
  double per_iteration_ms = 0.0;
  std::string plan_text;    // v2 plan (strategy/serialize), kOk only
};

std::string encode_request(const PlanRequest& request);

/// Parses a request payload. Returns false with *error set on anything
/// malformed: bad magic, unknown keys, missing fields, non-numeric or
/// out-of-range values. Never throws.
bool decode_request(std::string_view payload, PlanRequest* out, std::string* error);

std::string encode_reply(const PlanReply& reply);

/// Parses a reply payload; same totality contract as decode_request.
bool decode_reply(std::string_view payload, PlanReply* out, std::string* error);

/// Outcome of reading one framed message off a socket.
enum class FrameReadStatus {
  kOk,         // *payload holds the verified frame payload
  kEof,        // peer closed before a full frame arrived
  kTimeout,    // read budget exhausted (slow client)
  kMalformed,  // header/terminator/CRC damage
  kOversized,  // declared length above max_payload (rejected pre-allocation)
  kIoError,    // errno-level read failure
};

/// Reads exactly one frame from `fd` within a total budget of `timeout_ms`
/// milliseconds. Bounded everywhere: the header line at
/// record_io::kMaxFrameHeaderBytes, the payload at `max_payload` (checked
/// against the *declared* length before allocating), the wall clock at the
/// timeout. On kMalformed, *error carries the typed header-parse reason.
FrameReadStatus read_frame(int fd, size_t max_payload, int timeout_ms,
                           std::string* payload, std::string* error);

/// Frames `payload` and writes it fully to `fd`. False on any short write or
/// error (EPIPE from a vanished client is a false return, never a signal —
/// writes use MSG_NOSIGNAL).
bool write_frame(int fd, std::string_view payload);

/// Writes `bytes` verbatim (no framing) — the chaos harness's malformed-
/// frame injection path.
bool write_raw(int fd, std::string_view bytes);

}  // namespace heterog::server
