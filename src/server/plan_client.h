// Minimal blocking client for the plan server (docs/server.md).
//
// One connection per exchange — the server's unit of admission is the
// connection, so a client that wants N answers opens N sockets (cheap on
// localhost, and it keeps the protocol trivially restartable: there is no
// connection state to resynchronise after either side dies).
//
// raw_exchange / fire_and_close exist for the test suite and the chaos
// harness: they ship arbitrary bytes (malformed frames, oversized headers,
// half a frame followed by a hangup) so the server's rejection taxonomy can
// be exercised from outside the process.
#pragma once

#include <string>
#include <string_view>

#include "server/protocol.h"

namespace heterog::server {

struct ClientOptions {
  /// Connect target: unix_path when non-empty, else 127.0.0.1:tcp_port.
  std::string unix_path;
  int tcp_port = -1;
  /// Budget for reading the reply frame (planning a cold request takes real
  /// work; keep this comfortably above the server's expected latency).
  int timeout_ms = 60000;
};

class PlanClient {
 public:
  explicit PlanClient(ClientOptions options) : options_(std::move(options)) {}

  /// Sends `request`, waits for the framed reply. True when a reply frame
  /// arrived and parsed (whatever its status — rejected/error replies are
  /// successful exchanges); false with *transport_error set on connect/read
  /// failures, timeouts, or an unparseable reply.
  bool exchange(const PlanRequest& request, PlanReply* reply,
                std::string* transport_error);

  /// Ships `bytes` verbatim, then reads one framed reply like exchange().
  /// The chaos harness's malformed-request path.
  bool raw_exchange(std::string_view bytes, PlanReply* reply,
                    std::string* transport_error);

  /// Connects, writes `bytes` (possibly a partial frame), hangs up without
  /// reading — the disconnect-injection path. False if the connect failed.
  bool fire_and_close(std::string_view bytes);

 private:
  int connect_fd(std::string* error) const;
  bool framed_exchange(const std::string& wire, PlanReply* reply,
                       std::string* transport_error);

  ClientOptions options_;
};

}  // namespace heterog::server
