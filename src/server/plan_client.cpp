#include "server/plan_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/record_io.h"

namespace heterog::server {
namespace {

std::string errno_text(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) + ")";
}

}  // namespace

int PlanClient::connect_fd(std::string* error) const {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      *error = "unix socket path too long: " + options_.unix_path;
      return -1;
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = "socket(AF_UNIX): " + errno_text(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = "connect " + options_.unix_path + ": " + errno_text(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }

  if (options_.tcp_port < 0 || options_.tcp_port > 65535) {
    *error = "no connect target (set unix_path or tcp_port)";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket(AF_INET): " + errno_text(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect 127.0.0.1:" + std::to_string(options_.tcp_port) + ": " +
             errno_text(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool PlanClient::framed_exchange(const std::string& wire, PlanReply* reply,
                                 std::string* transport_error) {
  const int fd = connect_fd(transport_error);
  if (fd < 0) return false;

  // A failed write is NOT fatal yet: the server rejects overloaded or
  // draining connections by replying and closing without ever reading the
  // request, which can reset our in-flight send. The typed rejection is
  // still sitting in the receive buffer — read it before giving up.
  const bool sent = write_raw(fd, wire);
  if (sent) ::shutdown(fd, SHUT_WR);  // request fully sent; server reads EOF

  std::string payload;
  std::string frame_error;
  const FrameReadStatus status =
      read_frame(fd, kMaxReplyPayload, options_.timeout_ms, &payload, &frame_error);
  ::close(fd);

  switch (status) {
    case FrameReadStatus::kOk:
      break;
    case FrameReadStatus::kEof:
      *transport_error = sent ? "server closed the connection without a reply"
                              : "short write to server and no reply";
      return false;
    case FrameReadStatus::kTimeout:
      *transport_error = "timed out waiting for the reply";
      return false;
    case FrameReadStatus::kMalformed:
      *transport_error = "malformed reply frame: " + frame_error;
      return false;
    case FrameReadStatus::kOversized:
      *transport_error = "oversized reply frame";
      return false;
    case FrameReadStatus::kIoError:
      *transport_error = "read error: " + frame_error;
      return false;
  }

  std::string decode_error;
  if (!decode_reply(payload, reply, &decode_error)) {
    *transport_error = "unparseable reply payload: " + decode_error;
    return false;
  }
  return true;
}

bool PlanClient::exchange(const PlanRequest& request, PlanReply* reply,
                          std::string* transport_error) {
  return framed_exchange(frame_record(encode_request(request)), reply,
                         transport_error);
}

bool PlanClient::raw_exchange(std::string_view bytes, PlanReply* reply,
                              std::string* transport_error) {
  return framed_exchange(std::string(bytes), reply, transport_error);
}

bool PlanClient::fire_and_close(std::string_view bytes) {
  std::string error;
  const int fd = connect_fd(&error);
  if (fd < 0) return false;
  write_raw(fd, bytes);  // best effort; partial is the point
  ::close(fd);
  return true;
}

}  // namespace heterog::server
