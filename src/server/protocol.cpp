#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "common/record_io.h"

namespace heterog::server {

namespace {

constexpr std::string_view kRequestMagic = "heterog-rpc v1 request";
constexpr std::string_view kReplyMagic = "heterog-rpc v1 reply";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trips doubles exactly
  return buf;
}

/// Strict full-consumption numeric parses: "12x" or "" is malformed, not 12.
bool parse_double(std::string_view text, double* out) {
  if (text.empty() || text.size() >= 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + text.size()) return false;
  *out = v;
  return true;
}

bool parse_int(std::string_view text, long long min, long long max, long long* out) {
  if (text.empty() || text.size() >= 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno == ERANGE || end != buf + text.size() || v < min || v > max) return false;
  *out = v;
  return true;
}

bool parse_u64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() >= 63) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  const unsigned long long v = std::strtoull(buf, nullptr, 10);
  if (errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Splits a payload into lines (newline-terminated or final fragment).
std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool fail(std::string* error, std::string why) {
  *error = std::move(why);
  return false;
}

/// "key value" split at the first space; value may contain spaces.
bool split_kv(std::string_view line, std::string_view* key, std::string_view* value) {
  const size_t space = line.find(' ');
  if (space == std::string_view::npos || space == 0) return false;
  *key = line.substr(0, space);
  *value = line.substr(space + 1);
  return true;
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kMalformedFrame: return "malformed_frame";
    case RejectReason::kOversizedFrame: return "oversized_frame";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDraining: return "draining";
    case RejectReason::kSlowClient: return "slow_client";
  }
  return "unknown";
}

bool parse_reject_reason(std::string_view token, RejectReason* out) {
  for (const RejectReason reason :
       {RejectReason::kMalformedFrame, RejectReason::kOversizedFrame,
        RejectReason::kQueueFull, RejectReason::kDraining,
        RejectReason::kSlowClient}) {
    if (token == reject_reason_name(reason)) {
      *out = reason;
      return true;
    }
  }
  return false;
}

std::string encode_request(const PlanRequest& request) {
  std::string out(kRequestMagic);
  out += '\n';
  out += "model " + request.model + '\n';
  out += "layers " + std::to_string(request.layers) + '\n';
  out += "batch " + fmt_double(request.batch) + '\n';
  out += "cluster " + request.cluster + '\n';
  out += "episodes " + std::to_string(request.episodes) + '\n';
  out += "deadline_ms " + fmt_double(request.deadline_ms) + '\n';
  out += "seed " + std::to_string(request.seed) + '\n';
  return out;
}

bool decode_request(std::string_view payload, PlanRequest* out, std::string* error) {
  const std::vector<std::string_view> lines = split_lines(payload);
  if (lines.empty() || lines[0] != kRequestMagic) {
    return fail(error, "bad request magic line");
  }
  PlanRequest req;
  bool saw_model = false, saw_batch = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(lines[i], &key, &value)) {
      return fail(error, "malformed request line " + std::to_string(i + 1));
    }
    if (key == "model") {
      if (value.empty() || value.find(' ') != std::string_view::npos) {
        return fail(error, "bad model name");
      }
      req.model.assign(value.data(), value.size());
      saw_model = true;
    } else if (key == "layers") {
      long long v = 0;
      if (!parse_int(value, -1, 4096, &v)) return fail(error, "bad layers");
      req.layers = static_cast<int>(v);
    } else if (key == "batch") {
      if (!parse_double(value, &req.batch) || !(req.batch > 0.0) ||
          !(req.batch < 1e9)) {
        return fail(error, "bad batch (need 0 < batch < 1e9)");
      }
      saw_batch = true;
    } else if (key == "cluster") {
      if (value.empty() || value.find(' ') != std::string_view::npos) {
        return fail(error, "bad cluster name");
      }
      req.cluster.assign(value.data(), value.size());
    } else if (key == "episodes") {
      long long v = 0;
      if (!parse_int(value, 0, 1'000'000, &v)) return fail(error, "bad episodes");
      req.episodes = static_cast<int>(v);
    } else if (key == "deadline_ms") {
      if (!parse_double(value, &req.deadline_ms) || req.deadline_ms != req.deadline_ms ||
          req.deadline_ms > 1e15) {
        return fail(error, "bad deadline_ms");
      }
    } else if (key == "seed") {
      if (!parse_u64(value, &req.seed)) return fail(error, "bad seed");
    } else {
      return fail(error, "unknown request key \"" + std::string(key) + "\"");
    }
  }
  if (!saw_model) return fail(error, "request missing model");
  if (!saw_batch) return fail(error, "request missing batch");
  *out = std::move(req);
  return true;
}

std::string encode_reply(const PlanReply& reply) {
  std::string out(kReplyMagic);
  out += '\n';
  switch (reply.status) {
    case PlanReply::Status::kOk: {
      out += "status ok\n";
      out += "degraded " + std::string(reply.degraded ? "1" : "0") + '\n';
      out += "feasible " + std::string(reply.feasible ? "1" : "0") + '\n';
      out += "per_iteration_ms " + fmt_double(reply.per_iteration_ms) + '\n';
      size_t plan_lines = 0;
      for (const char c : reply.plan_text) plan_lines += c == '\n' ? 1 : 0;
      if (!reply.plan_text.empty() && reply.plan_text.back() != '\n') ++plan_lines;
      out += "plan_lines " + std::to_string(plan_lines) + '\n';
      out += reply.plan_text;
      if (!reply.plan_text.empty() && reply.plan_text.back() != '\n') out += '\n';
      break;
    }
    case PlanReply::Status::kRejected:
      out += "status rejected\n";
      out += "reason " + std::string(reject_reason_name(reply.reject_reason)) + '\n';
      break;
    case PlanReply::Status::kError:
      out += "status error\n";
      out += "message " +
             (reply.error.empty() ? std::string("planning failed") : reply.error) +
             '\n';
      break;
  }
  return out;
}

bool decode_reply(std::string_view payload, PlanReply* out, std::string* error) {
  const std::vector<std::string_view> lines = split_lines(payload);
  if (lines.empty() || lines[0] != kReplyMagic) {
    return fail(error, "bad reply magic line");
  }
  if (lines.size() < 2) return fail(error, "reply missing status");
  PlanReply reply;
  std::string_view key, value;
  if (!split_kv(lines[1], &key, &value) || key != "status") {
    return fail(error, "reply missing status");
  }
  if (value == "rejected") {
    reply.status = PlanReply::Status::kRejected;
    if (lines.size() < 3 || !split_kv(lines[2], &key, &value) || key != "reason" ||
        !parse_reject_reason(value, &reply.reject_reason)) {
      return fail(error, "rejected reply missing a known reason");
    }
    *out = std::move(reply);
    return true;
  }
  if (value == "error") {
    reply.status = PlanReply::Status::kError;
    if (lines.size() < 3 || !split_kv(lines[2], &key, &value) || key != "message") {
      return fail(error, "error reply missing message");
    }
    reply.error.assign(value.data(), value.size());
    *out = std::move(reply);
    return true;
  }
  if (value != "ok") return fail(error, "unknown reply status");

  reply.status = PlanReply::Status::kOk;
  long long plan_lines = -1;
  size_t i = 2;
  for (; i < lines.size(); ++i) {
    if (!split_kv(lines[i], &key, &value)) {
      return fail(error, "malformed reply line " + std::to_string(i + 1));
    }
    if (key == "degraded") {
      if (value != "0" && value != "1") return fail(error, "bad degraded flag");
      reply.degraded = value == "1";
    } else if (key == "feasible") {
      if (value != "0" && value != "1") return fail(error, "bad feasible flag");
      reply.feasible = value == "1";
    } else if (key == "per_iteration_ms") {
      if (!parse_double(value, &reply.per_iteration_ms)) {
        return fail(error, "bad per_iteration_ms");
      }
    } else if (key == "plan_lines") {
      // Count bounded well below the payload cap: each plan line is >= 2
      // bytes on the wire, so a count beyond payload size is a lie.
      if (!parse_int(value, 0, static_cast<long long>(kMaxReplyPayload), &plan_lines)) {
        return fail(error, "bad plan_lines count");
      }
      ++i;
      break;
    } else {
      return fail(error, "unknown reply key \"" + std::string(key) + "\"");
    }
  }
  if (plan_lines < 0) return fail(error, "ok reply missing plan_lines");
  if (static_cast<long long>(lines.size()) - static_cast<long long>(i) != plan_lines) {
    return fail(error, "plan_lines count does not match embedded plan");
  }
  for (size_t j = i; j < lines.size(); ++j) {
    reply.plan_text.append(lines[j].data(), lines[j].size());
    reply.plan_text += '\n';
  }
  *out = std::move(reply);
  return true;
}

namespace {

/// Waits for readability within the remaining budget; false on timeout.
bool wait_readable(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd = {fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// Reads up to `want` more bytes into `buffer`. Returns -1 on error, 0 on
/// EOF, else the byte count.
ssize_t read_some(int fd, std::string* buffer, size_t want) {
  char chunk[4096];
  const size_t n = want < sizeof(chunk) ? want : sizeof(chunk);
  const ssize_t got = ::recv(fd, chunk, n, 0);
  if (got > 0) buffer->append(chunk, static_cast<size_t>(got));
  return got;
}

}  // namespace

FrameReadStatus read_frame(int fd, size_t max_payload, int timeout_ms,
                           std::string* payload, std::string* error) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buffer;

  // Phase 1: the header line, bounded at kMaxFrameHeaderBytes.
  size_t newline = std::string::npos;
  for (;;) {
    newline = buffer.find('\n');
    if (newline != std::string::npos) break;
    if (buffer.size() >= kMaxFrameHeaderBytes) {
      *error = "frame header exceeds " + std::to_string(kMaxFrameHeaderBytes) +
               " bytes without a newline";
      return FrameReadStatus::kMalformed;
    }
    if (!wait_readable(fd, deadline)) return FrameReadStatus::kTimeout;
    const ssize_t got = read_some(fd, &buffer, kMaxFrameHeaderBytes - buffer.size());
    if (got == 0) return FrameReadStatus::kEof;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *error = std::strerror(errno);
      return FrameReadStatus::kIoError;
    }
  }

  // The declared length is validated (including against the cap) before the
  // payload buffer is ever sized — the adversarial-length contract. The wire
  // requires a non-empty payload: no valid message encodes to zero bytes.
  FrameHeader header;
  const FrameHeaderStatus status = parse_frame_header(
      std::string_view(buffer).substr(0, newline), max_payload, 1, &header);
  if (status == FrameHeaderStatus::kOversized) {
    *error = frame_header_status_name(status);
    return FrameReadStatus::kOversized;
  }
  if (status != FrameHeaderStatus::kOk) {
    *error = frame_header_status_name(status);
    return FrameReadStatus::kMalformed;
  }

  // Phase 2: payload + terminating newline.
  buffer.erase(0, newline + 1);
  const size_t want_total = header.payload_len + 1;
  buffer.reserve(want_total);
  while (buffer.size() < want_total) {
    if (!wait_readable(fd, deadline)) return FrameReadStatus::kTimeout;
    const ssize_t got = read_some(fd, &buffer, want_total - buffer.size());
    if (got == 0) return FrameReadStatus::kEof;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *error = std::strerror(errno);
      return FrameReadStatus::kIoError;
    }
  }
  if (buffer[header.payload_len] != '\n') {
    *error = "missing record terminator";
    return FrameReadStatus::kMalformed;
  }
  buffer.pop_back();
  if (!verify_frame_payload(header, buffer)) {
    *error = "payload checksum mismatch";
    return FrameReadStatus::kMalformed;
  }
  *payload = std::move(buffer);
  return FrameReadStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  return write_raw(fd, frame_record(payload));
}

bool write_raw(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace heterog::server
