#include "server/plan_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/shutdown.h"
#include "core/heterog.h"
#include "models/models.h"
#include "strategy/serialize.h"

namespace heterog::server {
namespace {

std::string errno_text(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) + ")";
}

int bind_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ServerError("unix socket path too long (" + std::to_string(path.size()) +
                      " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
                      "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ServerError("socket(AF_UNIX): " + errno_text(errno));
  ::unlink(path.c_str());  // a previous instance's leftover path
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServerError("bind " + path + ": " + errno_text(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw ServerError("listen " + path + ": " + errno_text(err));
  }
  return fd;
}

int bind_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ServerError("socket(AF_INET): " + errno_text(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local service, never 0.0.0.0
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServerError("bind 127.0.0.1:" + std::to_string(port) + ": " + errno_text(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServerError("listen 127.0.0.1:" + std::to_string(port) + ": " +
                      errno_text(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServerError("getsockname: " + errno_text(err));
  }
  *bound_port = static_cast<int>(ntohs(bound.sin_port));
  return fd;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

}  // namespace

void ServerOptions::validate() const {
  if (unix_path.empty() && tcp_port < 0) {
    throw ServerError("no listener configured (set unix_path and/or tcp_port)");
  }
  if (tcp_port > 65535) {
    throw ServerError("tcp_port out of range: " + std::to_string(tcp_port));
  }
  if (threads < 1) {
    throw ServerError("threads must be >= 1, got " + std::to_string(threads));
  }
  if (read_timeout_ms <= 0) {
    throw ServerError("read_timeout_ms must be > 0, got " +
                      std::to_string(read_timeout_ms));
  }
  if (!(episode_cost_ms > 0.0)) {
    throw ServerError("episode_cost_ms must be > 0");
  }
}

PlanServer::PlanServer(ServerOptions options) : options_(std::move(options)) {
  options_.validate();
  if (!options_.store_dir.empty()) {
    store::PlanStoreOptions sopts;
    sopts.dir = options_.store_dir;
    sopts.events = options_.events;
    sopts.metrics = options_.metrics;
    store_ = std::make_unique<store::PlanStore>(sopts);  // StoreError propagates
  }
  // Bind before spawning workers so a bind failure leaves nothing to unwind.
  if (!options_.unix_path.empty()) unix_fd_ = bind_unix_listener(options_.unix_path);
  if (options_.tcp_port >= 0) tcp_fd_ = bind_tcp_listener(options_.tcp_port, &bound_tcp_port_);
  pool_ = std::make_unique<ThreadPool>(options_.threads, ThreadPool::Mode::kAlwaysSpawn);
}

PlanServer::~PlanServer() {
  request_stop();
  // The pool joins its workers first (declaration order), so no handler can
  // touch the store or sockets after this point.
  pool_.reset();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void PlanServer::request_stop() { stop_requested_.store(true); }

ServerStats PlanServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats copy = stats_;
  copy.draining = draining_.load();
  return copy;
}

void PlanServer::count_metric(const char* name, uint64_t delta) {
  if (options_.metrics != nullptr) options_.metrics->add(name, delta);
}

void PlanServer::observe_latency(double ms) {
  if (options_.metrics != nullptr) options_.metrics->observe("server.latency.ms", ms);
}

void PlanServer::run() {
  if (options_.events != nullptr) {
    options_.events->emit(obs::Event("server_start")
                              .with("unix_path", options_.unix_path)
                              .with("tcp_port", bound_tcp_port_)
                              .with("threads", options_.threads)
                              .with("queue_capacity",
                                    static_cast<uint64_t>(options_.queue_capacity))
                              .with("store", options_.store_dir));
  }

  pollfd fds[2];
  nfds_t nfds = 0;
  if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
  if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};

  const size_t admit_cap =
      static_cast<size_t>(options_.threads) + options_.queue_capacity;

  while (!stop_requested_.load() && !shutdown_requested()) {
    for (nfds_t i = 0; i < nfds; ++i) fds[i].revents = 0;
    const int ready = ::poll(fds, nfds, 100);  // 100 ms stop-flag tick
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal landed; loop re-checks the flags
      log_error() << "plan server: poll: " << errno_text(errno);
      break;
    }
    if (ready == 0) continue;

    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;  // raced close or transient; poll again

      bool admit = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.accepted;
        if (stats_.in_flight < admit_cap) {
          ++stats_.in_flight;
          admit = true;
        } else {
          ++stats_.rejected;
          ++stats_.rejected_queue_full;
        }
      }
      if (!admit) {
        count_metric("server.rejects.count");
        send_rejection(client, RejectReason::kQueueFull);
        ::close(client);
        continue;
      }
      pool_->submit([this, client] {
        handle_connection(client);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --stats_.in_flight;
        }
        idle_.notify_all();
      });
    }
  }

  // Graceful drain: stop admitting, answer stragglers that already connected
  // with a typed `draining` rejection, then finish the in-flight work.
  draining_.store(true);
  for (nfds_t i = 0; i < nfds; ++i) {
    for (;;) {
      pollfd probe = {fds[i].fd, POLLIN, 0};
      if (::poll(&probe, 1, 0) <= 0 || (probe.revents & POLLIN) == 0) break;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.accepted;
        ++stats_.rejected;
        ++stats_.rejected_draining;
      }
      count_metric("server.rejects.count");
      send_rejection(client, RejectReason::kDraining);
      ::close(client);
    }
    ::close(fds[i].fd);
  }
  if (unix_fd_ >= 0) {
    ::unlink(options_.unix_path.c_str());
    unix_fd_ = -1;
  }
  tcp_fd_ = -1;

  uint64_t drained_in_flight = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_in_flight = stats_.in_flight;
    idle_.wait(lock, [this] { return stats_.in_flight == 0; });
  }
  if (store_ != nullptr) store_->flush();

  const ServerStats final = stats();
  if (options_.events != nullptr) {
    options_.events->emit(obs::Event("server_drain")
                              .with("in_flight_at_drain", drained_in_flight)
                              .with("replies_ok", final.replies_ok)
                              .with("replies_error", final.replies_error)
                              .with("rejected", final.rejected)
                              .with("degraded", final.degraded)
                              .with("disconnects", final.disconnects));
    options_.events->flush();
  }
  log_info() << "plan server: drained (" << final.replies_ok << " ok, "
             << final.replies_error << " error, " << final.rejected << " rejected, "
             << final.degraded << " degraded)";
}

void PlanServer::send_rejection(int fd, RejectReason reason) {
  PlanReply reply;
  reply.status = PlanReply::Status::kRejected;
  reply.reject_reason = reason;
  write_frame(fd, encode_reply(reply));  // best effort: peer may be gone
  // Drain whatever request bytes arrived without blocking: closing with
  // unread data pending resets a TCP connection, which can destroy the
  // rejection reply before the client reads it. Bounded so a firehose
  // client cannot pin the accept loop here.
  char sink[4096];
  for (size_t drained = 0; drained < (64u << 10);) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
    if (n <= 0) break;
    drained += static_cast<size_t>(n);
  }
  if (options_.events != nullptr) {
    options_.events->emit(
        obs::Event("server_reject").with("reason", reject_reason_name(reason)));
  }
}

void PlanServer::handle_connection(int fd) {
  const auto started = std::chrono::steady_clock::now();
  std::string payload;
  std::string frame_error;
  const FrameReadStatus read_status = read_frame(
      fd, kMaxRequestPayload, options_.read_timeout_ms, &payload, &frame_error);

  auto finish = [&](void) { ::close(fd); };

  switch (read_status) {
    case FrameReadStatus::kOk:
      break;
    case FrameReadStatus::kEof:
    case FrameReadStatus::kIoError: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disconnects;
      count_metric("server.disconnects.count");
      finish();
      return;
    }
    case FrameReadStatus::kTimeout: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected;
        ++stats_.rejected_slow_client;
      }
      count_metric("server.rejects.count");
      send_rejection(fd, RejectReason::kSlowClient);
      finish();
      return;
    }
    case FrameReadStatus::kOversized: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected;
        ++stats_.rejected_oversized;
      }
      count_metric("server.rejects.count");
      send_rejection(fd, RejectReason::kOversizedFrame);
      finish();
      return;
    }
    case FrameReadStatus::kMalformed: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected;
        ++stats_.rejected_malformed;
      }
      count_metric("server.rejects.count");
      send_rejection(fd, RejectReason::kMalformedFrame);
      finish();
      return;
    }
  }

  count_metric("server.requests.count");

  PlanRequest request;
  PlanReply reply;
  std::string decode_error;
  bool degraded = false;
  if (!decode_request(payload, &request, &decode_error)) {
    reply.status = PlanReply::Status::kError;
    reply.error = decode_error;
  } else {
    reply = plan_request(request, &degraded);
  }

  const double latency = elapsed_ms(started);
  observe_latency(latency);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reply.status == PlanReply::Status::kOk) {
      ++stats_.replies_ok;
      if (degraded) ++stats_.degraded;
    } else {
      ++stats_.replies_error;
    }
  }
  if (reply.status != PlanReply::Status::kOk) count_metric("server.errors.count");
  if (degraded) count_metric("server.degraded.count");

  // Crash consistency: flush the store's write-behind buffer before the
  // client can observe the reply — any answer a client ever saw is durable,
  // so a kill -9 at any later instant re-answers the repeat from disk.
  if (store_ != nullptr) store_->flush();

  if (!write_frame(fd, encode_reply(reply))) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disconnects;
    count_metric("server.disconnects.count");
  }

  if (options_.events != nullptr) {
    options_.events->emit(
        obs::Event("server_request")
            .with("model", request.model)
            .with("cluster", request.cluster)
            .with("batch", request.batch)
            .with("episodes", request.episodes)
            .with("status", reply.status == PlanReply::Status::kOk ? "ok" : "error")
            .with("degraded", degraded)
            .with("latency_ms", latency));
  }
  finish();
}

PlanReply PlanServer::plan_request(const PlanRequest& request, bool* degraded_out) {
  PlanReply reply;
  *degraded_out = false;

  models::ModelKind kind;
  int default_layers = 0;
  if (!models::parse_model_name(request.model, &kind, &default_layers)) {
    reply.status = PlanReply::Status::kError;
    reply.error = "unknown model '" + request.model + "'";
    return reply;
  }
  const int layers = request.layers < 0 ? default_layers : request.layers;

  const auto cluster = cluster::cluster_from_name(request.cluster);
  if (!cluster.has_value()) {
    reply.status = PlanReply::Status::kError;
    reply.error = "unknown cluster '" + request.cluster + "'";
    return reply;
  }

  // Deadline admission, on the *modelled* search cost (episodes x the
  // configured per-episode cost) — never the wall clock, so the decision and
  // the resulting plan are bit-reproducible. Same idiom as
  // health::HealthPolicy::replan_deadline_ms in the mid-run re-plan path.
  bool degraded = false;
  if (request.episodes > 0 && request.deadline_ms >= 0.0) {
    const double modelled_ms =
        static_cast<double>(request.episodes) * options_.episode_cost_ms;
    if (modelled_ms > request.deadline_ms) degraded = true;
  }

  HeteroGConfig config;
  config.profiler_seed = request.seed;
  config.search_with_rl = request.episodes > 0 && !degraded;
  if (request.episodes > 0) config.train.episodes = request.episodes;
  // One planner thread per request: concurrency comes from the server's own
  // worker pool; nested fan-out would oversubscribe it.
  config.train.threads = 1;
  config.plan_store = store_.get();

  if (degraded && options_.events != nullptr) {
    options_.events->emit(obs::Event("server_degraded")
                              .with("model", request.model)
                              .with("cluster", request.cluster)
                              .with("episodes", request.episodes)
                              .with("deadline_ms", request.deadline_ms)
                              .with("episode_cost_ms", options_.episode_cost_ms));
  }

  try {
    const auto runner = get_runner(
        [&] { return models::build_forward(kind, layers, request.batch); }, *cluster,
        config);
    reply.status = PlanReply::Status::kOk;
    reply.degraded = degraded;
    reply.feasible = runner.feasible();
    reply.per_iteration_ms = runner.per_iteration_ms();
    reply.plan_text = strategy::to_text(runner.strategy(), runner.cluster());
    *degraded_out = degraded;
  } catch (const std::exception& e) {
    reply.status = PlanReply::Status::kError;
    reply.error = std::string("planner failure: ") + e.what();
  }
  return reply;
}

}  // namespace heterog::server
