// Planner-as-a-service: a hardened, multi-tenant plan daemon
// (docs/server.md).
//
// PlanServer turns the one-shot heterog::get_runner pipeline into a
// long-running service: it listens on a Unix and/or TCP socket, admits
// framed PlanRequests (server/protocol), fans them across a
// common/ThreadPool of planner workers, and answers repeats read-through
// from a persistent store::PlanStore so a restarted server re-answers a
// repeated request bit-identically — and fast — from disk.
//
// The robustness core, each piece pinned by tests/server_test.cpp and
// hammered by bench/bench_plan_server:
//
//   * bounded admission — at most queue_capacity + threads requests are in
//     flight; the next connection gets an immediate typed `queue_full`
//     rejection instead of an unbounded backlog.
//   * typed rejection, never a crash — malformed frames, oversized declared
//     lengths (refused before any allocation), slow clients and mid-frame
//     disconnects each map to a RejectReason or a counted close; hostile
//     bytes cannot take the daemon down.
//   * per-request deadlines with graceful degradation — when the modelled
//     cost of the requested RL search (episodes x episode_cost_ms, the same
//     deterministic modelled-cost decision as
//     health::HealthPolicy::replan_deadline_ms) exceeds the request's
//     deadline, the server degrades to the heuristic planner and answers
//     with degraded=1 instead of blowing the budget or refusing.
//   * graceful drain — request_stop() (or SIGTERM/SIGINT via
//     common/shutdown) stops admission, answers stragglers with a typed
//     `draining` rejection, finishes every in-flight request, flushes the
//     store's write-behind buffer, and emits a `server_drain` event.
//   * crash consistency — the store is flushed after every put, so kill -9
//     at any instant leaves at most a torn tail record that the next open
//     self-heals (store::PlanStore); a restarted server serves the same
//     bytes for the same request.
//
// Telemetry: server.* metrics (requests, rejects by reason, degraded count,
// latency histogram) through obs::MetricsRegistry and
// server_start/request/reject/degraded/drain events through obs::EventLog —
// write-only, results are bit-identical with or without sinks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/thread_pool.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "server/protocol.h"
#include "store/plan_store.h"

namespace heterog::server {

/// Environment failures only (bad options, socket bind/listen errors).
/// Store problems keep their own store::StoreError type so callers can keep
/// the established exit-code mapping.
class ServerError : public std::runtime_error {
 public:
  explicit ServerError(const std::string& what)
      : std::runtime_error("plan server: " + what) {}
};

struct ServerOptions {
  /// Unix-domain listening socket path (empty = no Unix listener). The path
  /// is unlinked on bind and on clean shutdown.
  std::string unix_path;
  /// TCP listener on 127.0.0.1 (-1 = none; 0 = ephemeral, read the bound
  /// port back via PlanServer::tcp_port()).
  int tcp_port = -1;
  /// Planner worker threads (>= 1). Workers are real threads even for 1
  /// (ThreadPool::Mode::kAlwaysSpawn): the accept loop never plans inline.
  int threads = 4;
  /// Admission bound: requests queued beyond the workers. A connection
  /// arriving with queue_capacity + threads requests in flight is rejected
  /// `queue_full`.
  size_t queue_capacity = 16;
  /// Total budget for reading one request frame (slow-client bound).
  int read_timeout_ms = 5000;
  /// Deterministic model of one RL episode's search cost, for the deadline
  /// admission decision (never measured, so the degrade decision — and the
  /// reply — is bit-reproducible).
  double episode_cost_ms = 5.0;
  /// Durable plan/eval store directory (empty = no persistence). Opened for
  /// writing at construction: an unusable directory or live writer raises
  /// store::StoreError before the server starts.
  std::string store_dir;
  /// Telemetry sinks, optional and non-owning (write-only).
  obs::EventLog* events = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Throws ServerError when no listener is configured or a knob is out of
  /// range.
  void validate() const;
};

struct ServerStats {
  uint64_t accepted = 0;        // connections accepted
  uint64_t replies_ok = 0;      // status ok replies (incl. degraded)
  uint64_t replies_error = 0;   // status error replies
  uint64_t rejected = 0;        // typed rejections, all reasons
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_malformed = 0;
  uint64_t rejected_oversized = 0;
  uint64_t rejected_draining = 0;
  uint64_t rejected_slow_client = 0;
  uint64_t degraded = 0;        // deadline-degraded ok replies
  uint64_t disconnects = 0;     // peer vanished before a full frame/reply
  uint64_t in_flight = 0;       // currently admitted requests
  bool draining = false;
};

class PlanServer {
 public:
  /// Binds the listeners and opens the store. Throws ServerError on socket
  /// problems and store::StoreError on store problems; after the
  /// constructor returns, the sockets accept connections (they queue until
  /// run() starts dispatching).
  explicit PlanServer(ServerOptions options);
  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;
  ~PlanServer();

  /// Serves until request_stop() or a process-wide shutdown request
  /// (common/shutdown). Returns after the graceful drain completes: no new
  /// admissions, in-flight requests answered, store flushed.
  void run();

  /// Initiates graceful drain from any thread. Safe to call repeatedly.
  void request_stop();

  /// The actual TCP port (useful with tcp_port = 0), -1 when no TCP
  /// listener.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ServerStats stats() const;

  /// The store the server answers repeats from; null without store_dir.
  store::PlanStore* plan_store() { return store_.get(); }

 private:
  void handle_connection(int fd);
  PlanReply plan_request(const PlanRequest& request, bool* degraded_out);
  void send_rejection(int fd, RejectReason reason);
  void count_metric(const char* name, uint64_t delta = 1);
  void observe_latency(double ms);

  ServerOptions options_;
  std::unique_ptr<store::PlanStore> store_;
  std::unique_ptr<ThreadPool> pool_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  std::condition_variable idle_;  // signalled when in_flight reaches 0
  ServerStats stats_;
};

}  // namespace heterog::server
