// Graph Compiler (paper Sec. 3.4 / Sec. 5): applies Part-I decisions to the
// single-GPU training DAG and emits the distributed execution graph.
//
//   * Operation replication — DP ops are copied once per assigned device
//     slot, each replica processing an even share of the global batch; ops
//     whose output lacks the batch dimension are not replicated.
//   * Split/Concat insertion — when adjacent ops have mismatched replica
//     distributions, a Concat on the producer's primary device gathers the
//     replica outputs and a Split redistributes them (Fig. 7).
//   * Gradient aggregation — parameter gradients of replicated ops are
//     synchronised via PS (push / aggregate / apply / pull; the PS device is
//     the replica device minimising aggregation completion time) or via an
//     NCCL-style collective (ring or hierarchical, whichever is faster).
//   * Cross-device tensors become transfer nodes occupying link resources.
#pragma once

#include <vector>

#include "compile/dist_graph.h"
#include "profiler/cost_provider.h"
#include "strategy/strategy.h"

namespace heterog::compile {

struct CompileStats {
  int compute_replicas = 0;
  int transfers = 0;
  int collectives = 0;
  int splits = 0;
  int concats = 0;
  int ps_aggregations = 0;
  int local_aggregations = 0;
};

struct CompileResult {
  DistGraph graph;
  CompileStats stats;
  /// For every base op, the dist nodes realising it (replicas; empty for
  /// apply ops of PS groups realised on the PS device only).
  std::vector<std::vector<DistNodeId>> nodes_of_op;

  explicit CompileResult(const cluster::ClusterSpec& cluster) : graph(cluster) {}
};

struct CompilerOptions {
  /// Gradient-fusion threshold for AllReduce: parameter gradients sharing a
  /// device set are fused into collectives of up to this many bytes, in
  /// backward-completion order (Horovod-style tensor fusion). The default is
  /// 0 — one collective per gradient tensor — because that is what the
  /// paper's Graph Compiler emits ("we add collective NCCL primitive
  /// operations into the training graph"); per-tensor collectives on the
  /// serialised NCCL channel are exactly why its hybrid PS/AllReduce plans
  /// pay off. The Horovod baseline (and the fusion ablation) set this to
  /// 64 MB.
  int64_t allreduce_fusion_bytes = 0;
  /// Per-transfer RPC overhead of the parameter-server path (gRPC-style
  /// stack on push/pull; NCCL avoids it via fused kernels).
  double ps_rpc_overhead_ms = 1.0;
  /// Force every PS group onto this device (-1 = pick the completion-time
  /// minimiser per group, the paper's default). Used to study PS placement
  /// (Fig. 2(a): colocate the PS with the slowest worker).
  int forced_ps_device = -1;
  /// Emit human-readable DistNode names ("conv1/r3", "fc/allreduce", ...).
  /// Names are write-only during compilation — nothing downstream of the
  /// simulator reads them — so the search hot loop (sim::evaluate_plan)
  /// disables them to skip the per-node string construction. Structure,
  /// durations and edge order are identical either way; traces and
  /// deployment tooling compile with names on.
  bool emit_node_names = true;
  /// Run DistGraph::validate over the compiled graph (an O(V+E) internal
  /// consistency assert; it never alters the output). The search hot loop
  /// disables it — at 1000 GPUs the pass costs real milliseconds per
  /// candidate — while every other caller keeps the safety net.
  bool validate_output = true;
};

/// Thread-safety: compile() only reads costs_/options_ and builds its output
/// locally, and CostProvider implementations are immutable after
/// construction — concurrent compiles (rl::EvalEngine's worker pool) are
/// safe without external locking.
class GraphCompiler {
 public:
  explicit GraphCompiler(const profiler::CostProvider& costs) : costs_(&costs) {}
  GraphCompiler(const profiler::CostProvider& costs, CompilerOptions options)
      : costs_(&costs), options_(options) {}

  const CompilerOptions& options() const { return options_; }

  /// Compiles `graph` under the given grouping + strategy. The graph must be
  /// a training graph (build_training_graph output): every parameter op has
  /// exactly one grad op (grad_of) and one apply op.
  CompileResult compile(const graph::GraphDef& graph, const strategy::Grouping& grouping,
                        const strategy::StrategyMap& strategy) const;

  /// Replica device slots for an op under an action: (device, batch) pairs.
  /// Exposed for tests; deterministic in (op, action, cluster).
  std::vector<std::pair<cluster::DeviceId, double>> placement_slots(
      const graph::OpDef& op, const strategy::Action& action, double global_batch) const;

 private:
  const profiler::CostProvider* costs_;
  CompilerOptions options_;
};

}  // namespace heterog::compile
