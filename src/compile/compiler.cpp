#include "compile/compiler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "compile/collective.h"

namespace heterog::compile {

namespace {

using cluster::DeviceId;
using graph::GraphDef;
using graph::OpDef;
using graph::OpId;
using graph::OpKind;
using graph::OpRole;
using strategy::Action;

/// Builder-side view of where one base op runs.
struct OpPlacement {
  struct Slot {
    DeviceId device = -1;
    double batch = 0.0;
    DistNodeId node = -1;
  };
  std::vector<Slot> slots;
  bool replicated() const { return slots.size() > 1; }
  bool aligned_with(const OpPlacement& other) const {
    if (slots.size() != other.slots.size()) return false;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].device != other.slots[i].device) return false;
      if (std::abs(slots[i].batch - other.slots[i].batch) > 1e-9) return false;
    }
    return true;
  }
  std::vector<DeviceId> distinct_devices() const {
    std::set<DeviceId> s;
    for (const auto& slot : slots) s.insert(slot.device);
    return {s.begin(), s.end()};
  }
};

/// The device used for Concat/Split staging: the one carrying the largest
/// batch share (fastest device under proportional replication).
DeviceId primary_device(const OpPlacement& p, const cluster::ClusterSpec& cluster) {
  std::map<DeviceId, double> share;
  for (const auto& slot : p.slots) share[slot.device] += slot.batch;
  DeviceId best = p.slots.front().device;
  double best_key = -1.0;
  for (const auto& [dev, s] : share) {
    const double key = s * 1e6 + cluster.device(dev).gflops_per_ms;
    if (key > best_key) {
      best_key = key;
      best = dev;
    }
  }
  return best;
}

/// Synthesised structural op (Split / Concat / aggregation add): a single
/// memory-bound pass over `bytes`.
OpDef make_structural_op(OpKind kind, const std::string& name, int64_t bytes) {
  OpDef op;
  op.id = graph::kInvalidOp;
  op.name = name;
  op.kind = kind;
  op.role = OpRole::kForward;
  op.flops_fixed = static_cast<double>(bytes) / 4.0;
  op.out_bytes_fixed = bytes;
  op.batch_divisible = false;
  return op;
}

class CompilerPass {
 public:
  CompilerPass(const profiler::CostProvider& costs, const GraphDef& graph,
               const strategy::Grouping& grouping, const strategy::StrategyMap& strategy,
               const GraphCompiler& compiler)
      : costs_(costs),
        cluster_(costs.cluster()),
        graph_(graph),
        grouping_(grouping),
        strategy_(strategy),
        compiler_(compiler),
        names_(compiler.options().emit_node_names),
        result_(cluster_) {}

  CompileResult run() {
    // Rough upper bound: one replica per device per op plus structural nodes.
    result_.graph.reserve_nodes(static_cast<size_t>(graph_.op_count()) *
                                (static_cast<size_t>(cluster_.device_count()) + 2));
    place_ops();
    wire_activation_edges();
    wire_gradient_aggregation();
    wire_parameter_consumers();
    finalize();
    return std::move(result_);
  }

 private:
  static void append_part(std::string& out, const std::string& s) { out += s; }
  static void append_part(std::string& out, const char* s) { out += s; }
  static void append_part(std::string& out, int64_t v) { out += std::to_string(v); }

  /// Builds a node name from the parts — or nothing when names are disabled
  /// (CompilerOptions::emit_node_names): the hot search loop never reads
  /// them, and the string construction is measurable at scale.
  template <typename... Parts>
  std::string node_name(const Parts&... parts) const {
    std::string out;
    if (names_) (append_part(out, parts), ...);
    return out;
  }

  DistNodeId add_transfer(const std::string& name, int64_t bytes, DeviceId from,
                          DeviceId to, double overhead_ms = 0.0) {
    check(from != to, "add_transfer: same device");
    DistNode n;
    n.name = name;
    n.kind = NodeKind::kTransfer;
    n.link_from = from;
    n.link_to = to;
    n.output_bytes = bytes;
    n.duration_ms = costs_.transfer_time_ms(bytes, from, to) + overhead_ms;
    n.op_kind = OpKind::kIdentity;
    ++result_.stats.transfers;
    return result_.graph.add_node(std::move(n));
  }

  DistNodeId add_structural(OpKind kind, const std::string& name, int64_t bytes,
                            DeviceId device) {
    const OpDef op = make_structural_op(kind, name, bytes);
    DistNode n;
    n.name = name;
    n.kind = NodeKind::kCompute;
    n.device = device;
    n.output_bytes = bytes;
    n.duration_ms = costs_.op_time_ms(op, 0.0, device);
    n.op_kind = kind;
    if (kind == OpKind::kSplit) ++result_.stats.splits;
    if (kind == OpKind::kConcat) ++result_.stats.concats;
    return result_.graph.add_node(std::move(n));
  }

  /// Ensures a copy of `producer_slot`'s output is available on `device`;
  /// returns the node the consumer should depend on.
  DistNodeId materialize_on(DistNodeId source_node, int64_t bytes, DeviceId source_dev,
                            DeviceId device, const std::string& name) {
    if (source_dev == device) return source_node;
    // Packed (node, device) key; the cache is only probed, never iterated,
    // so hash order cannot leak into edge-insertion order.
    const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(source_node)) << 32) |
                         static_cast<uint32_t>(device);
    auto it = transfer_cache_.find(key);
    if (it != transfer_cache_.end()) return it->second;
    const DistNodeId t = add_transfer(name, bytes, source_dev, device);
    result_.graph.add_edge(source_node, t);
    transfer_cache_[key] = t;
    return t;
  }

  // Pass 1: create compute replicas for every base op except apply ops
  // (those are created by the gradient-aggregation pass).
  void place_ops() {
    placements_.resize(static_cast<size_t>(graph_.op_count()));
    result_.nodes_of_op.resize(static_cast<size_t>(graph_.op_count()));
    for (OpId id = 0; id < graph_.op_count(); ++id) {
      const OpDef& op = graph_.op(id);
      const Action& action = strategy_.action_for(grouping_, id);
      auto& placement = placements_[static_cast<size_t>(id)];
      const auto slots = compiler_.placement_slots(op, action, graph_.global_batch());
      placement.slots.reserve(slots.size());
      for (const auto& [dev, batch] : slots) {
        OpPlacement::Slot slot;
        slot.device = dev;
        slot.batch = batch;
        placement.slots.push_back(slot);
      }
      if (op.role == OpRole::kApply) continue;  // realised by GA pass

      for (size_t r = 0; r < placement.slots.size(); ++r) {
        auto& slot = placement.slots[r];
        DistNode n;
        n.name = placement.replicated()
                         ? node_name(op.name, "/r", static_cast<int64_t>(r))
                         : node_name(op.name);
        n.kind = NodeKind::kCompute;
        n.device = slot.device;
        n.duration_ms = costs_.op_time_ms(op, slot.batch, slot.device);
        n.output_bytes = op.out_bytes(slot.batch);
        n.origin = id;
        n.op_kind = op.kind;
        n.role = op.role;
        n.replica_index = static_cast<int>(r);
        slot.node = result_.graph.add_node(std::move(n));
        result_.nodes_of_op[static_cast<size_t>(id)].push_back(slot.node);
        ++result_.stats.compute_replicas;
      }
    }
  }

  // Pass 2: base activation edges. Edges into apply ops are realised by the
  // GA pass; all other edges connect producer replicas to consumer replicas,
  // inserting Concat/Split/transfers as needed.
  void wire_activation_edges() {
    for (OpId u = 0; u < graph_.op_count(); ++u) {
      const OpDef& u_op = graph_.op(u);
      if (u_op.role == OpRole::kApply) continue;
      for (OpId v : graph_.successors(u)) {
        const OpDef& v_op = graph_.op(v);
        if (v_op.role == OpRole::kApply) continue;  // GA pass
        wire_edge(u, v);
      }
    }
  }

  void wire_edge(OpId u, OpId v) {
    const OpDef& u_op = graph_.op(u);
    auto& pu = placements_[static_cast<size_t>(u)];
    auto& pv = placements_[static_cast<size_t>(v)];

    if (pu.aligned_with(pv)) {
      for (size_t i = 0; i < pu.slots.size(); ++i) {
        result_.graph.add_edge(pu.slots[i].node, pv.slots[i].node);
      }
      return;
    }

    if (pu.slots.size() == 1) {
      const auto& src = pu.slots.front();
      if (pv.slots.size() == 1) {
        const auto& dst = pv.slots.front();
        const DistNodeId feed = materialize_on(src.node, result_.graph.node(src.node).output_bytes,
                                               src.device, dst.device,
                                               node_name(u_op.name, "/send"));
        result_.graph.add_edge(feed, pv.slots.front().node);
        return;
      }
      // Single producer, replicated consumer.
      if (u_op.batch_divisible) {
        // Output carries the batch dimension: Split then scatter shards.
        const DistNodeId split = add_structural(
            OpKind::kSplit, node_name(u_op.name, "/split"), result_.graph.node(src.node).output_bytes,
            src.device);
        result_.graph.add_edge(src.node, split);
        for (const auto& dst : pv.slots) {
          const int64_t shard = u_op.out_bytes(dst.batch);
          if (dst.device == src.device) {
            result_.graph.add_edge(split, dst.node);
          } else {
            const DistNodeId t =
                add_transfer(node_name(u_op.name, "/shard"), shard, src.device, dst.device);
            result_.graph.add_edge(split, t);
            result_.graph.add_edge(t, dst.node);
          }
        }
      } else {
        // Batch-independent tensor: broadcast the full payload per device.
        for (const auto& dst : pv.slots) {
          const DistNodeId feed =
              materialize_on(src.node, result_.graph.node(src.node).output_bytes, src.device,
                             dst.device, node_name(u_op.name, "/bcast"));
          if (feed == src.node && dst.device == src.device) {
            result_.graph.add_edge(src.node, dst.node);
          } else {
            result_.graph.add_edge(feed, dst.node);
          }
        }
      }
      return;
    }

    // Replicated producer. Gather replica outputs on the primary device.
    const DeviceId stage = primary_device(pu, cluster_);
    double total_batch = 0.0;
    for (const auto& s : pu.slots) total_batch += s.batch;
    const int64_t full_bytes = u_op.out_bytes(total_batch);
    const DistNodeId concat = add_structural(OpKind::kConcat, node_name(u_op.name, "/concat"),
                                             full_bytes, stage);
    for (const auto& s : pu.slots) {
      const DistNodeId feed = materialize_on(
          s.node, result_.graph.node(s.node).output_bytes, s.device, stage,
          node_name(u_op.name, "/gather"));
      result_.graph.add_edge(feed, concat);
    }

    if (pv.slots.size() == 1) {
      const auto& dst = pv.slots.front();
      const DistNodeId feed =
          materialize_on(concat, full_bytes, stage, dst.device, node_name(u_op.name, "/send"));
      result_.graph.add_edge(feed, dst.node);
      return;
    }

    // Replicated consumer with a different distribution: Split and scatter.
    const DistNodeId split =
        add_structural(OpKind::kSplit, node_name(u_op.name, "/resplit"), full_bytes, stage);
    result_.graph.add_edge(concat, split);
    for (const auto& dst : pv.slots) {
      const int64_t shard = u_op.out_bytes(dst.batch);
      if (dst.device == stage) {
        result_.graph.add_edge(split, dst.node);
      } else {
        const DistNodeId t = add_transfer(node_name(u_op.name, "/shard"), shard, stage, dst.device);
        result_.graph.add_edge(split, t);
        result_.graph.add_edge(t, dst.node);
      }
    }
  }

  DistNodeId add_apply_node(OpId apply, const OpDef& apply_op, DeviceId dev,
                            DistNodeId dep) {
    DistNode n;
    n.name = node_name(apply_op.name, "@G", static_cast<int64_t>(dev));
    n.kind = NodeKind::kCompute;
    n.device = dev;
    n.duration_ms = costs_.op_time_ms(apply_op, 0.0, dev);
    n.output_bytes = 0;
    n.origin = apply;
    n.op_kind = apply_op.kind;
    n.role = OpRole::kApply;
    const DistNodeId id = result_.graph.add_node(std::move(n));
    result_.graph.add_edge(dep, id);
    result_.nodes_of_op[static_cast<size_t>(apply)].push_back(id);
    ++result_.stats.compute_replicas;
    param_ready_[apply][dev] = id;
    return id;
  }

  /// AllReduce work item collected during the gradient pass; fused into
  /// bucketed collectives afterwards.
  struct ArRequest {
    OpId fw = graph::kInvalidOp;
    OpId grad = graph::kInvalidOp;
    OpId apply = graph::kInvalidOp;
    int64_t bytes = 0;
    std::map<DeviceId, DistNodeId> partial;
    std::vector<DeviceId> devices;
  };

  /// Effective serial ingest rate of a host NIC in our exclusive-resource
  /// model: each transfer runs at the path-min bandwidth, so a fast NIC fed
  /// by slower peers cannot exceed the peers' line rate.
  double effective_nic_rate(int host) const {
    double peer_max = 0.0;
    for (int h = 0; h < cluster_.host_count(); ++h) {
      if (h == host) continue;
      peer_max = std::max(peer_max, cluster_.host(h).nic_gbps);
    }
    const double gbps = std::min({cluster_.host(host).nic_gbps,
                                  peer_max > 0.0 ? peer_max : cluster_.host(host).nic_gbps,
                                  cluster_.switch_gbps()});
    return cluster::gbps_to_bytes_per_ms(gbps);
  }

  // Pass 3: gradient aggregation + apply + static parameter residency.
  void wire_gradient_aggregation() {
    // Index grad and apply ops by the forward op they serve.
    std::unordered_map<OpId, OpId> grad_of_fw, apply_of_fw;  // probed only, never iterated
    for (OpId id = 0; id < graph_.op_count(); ++id) {
      const OpDef& op = graph_.op(id);
      if (op.grad_of != graph::kInvalidOp) grad_of_fw[op.grad_of] = id;
      if (op.role == OpRole::kApply) {
        check(op.mirror_of != graph::kInvalidOp, "apply op without mirror");
        apply_of_fw[op.mirror_of] = id;
      }
    }

    for (OpId fw = 0; fw < graph_.op_count(); ++fw) {
      const OpDef& fw_op = graph_.op(fw);
      if (fw_op.param_bytes <= 0) continue;
      const auto git = grad_of_fw.find(fw);
      const auto ait = apply_of_fw.find(fw);
      check(git != grad_of_fw.end(), "param op without grad op");
      check(ait != apply_of_fw.end(), "param op without apply op");
      const OpId grad = git->second;
      const OpId apply = ait->second;
      const OpDef& apply_op = graph_.op(apply);
      const auto& pg = placements_[static_cast<size_t>(grad)];
      const Action& action = strategy_.action_for(grouping_, grad);
      const int64_t bytes = fw_op.param_bytes;

      // Parameters are resident on every device that computes with them,
      // together with the optimiser's slot variable (momentum) of equal size.
      constexpr int64_t kOptimizerSlots = 1;  // SGD-with-momentum
      for (DeviceId d : placements_[static_cast<size_t>(fw)].distinct_devices()) {
        result_.graph.add_static_param_bytes(d, bytes * (1 + kOptimizerSlots));
      }

      // Per-device partial gradient (local aggregation if several replicas
      // of the grad op share a device).
      std::map<DeviceId, std::vector<DistNodeId>> by_device;
      for (const auto& s : pg.slots) by_device[s.device].push_back(s.node);
      std::map<DeviceId, DistNodeId> partial;
      for (const auto& [dev, nodes] : by_device) {
        if (nodes.size() == 1) {
          partial[dev] = nodes.front();
        } else {
          const DistNodeId agg = add_structural(
              OpKind::kAdd, node_name(fw_op.name, "/local_agg"), bytes, dev);
          for (DistNodeId n : nodes) result_.graph.add_edge(n, agg);
          partial[dev] = agg;
          ++result_.stats.local_aggregations;
        }
      }

      if (partial.size() == 1) {
        // Single-device parameters (MP or non-replicated): plain apply.
        const auto& [dev, node] = *partial.begin();
        add_apply_node(apply, apply_op, dev, node);
        continue;
      }

      std::vector<DeviceId> devices;
      for (const auto& [dev, node] : partial) {
        (void)node;
        devices.push_back(dev);
      }

      if (action.comm == strategy::CommMethod::kAllReduce) {
        ArRequest request;
        request.fw = fw;
        request.grad = grad;
        request.apply = apply;
        request.bytes = bytes;
        request.partial = partial;
        request.devices = devices;
        ar_requests_.push_back(std::move(request));
      } else {
        // PS with host-level pre-aggregation: gradients of the devices on
        // one host are first reduced onto a host chief over the intra-host
        // fabric, the chief pushes once to the PS, and after the update the
        // chief pulls once and re-broadcasts locally. This halves NIC
        // traffic versus per-GPU push/pull and mirrors production PS setups.
        const double rpc_ms = compiler_.options().ps_rpc_overhead_ms;

        // 1. Per-host chiefs and host-level partial gradients.
        std::map<int, std::vector<std::pair<DeviceId, DistNodeId>>> by_host;
        for (const auto& [dev, node] : partial) {
          by_host[cluster_.device(dev).host].emplace_back(dev, node);
        }
        std::map<int, std::pair<DeviceId, DistNodeId>> host_partial;  // chief, node
        for (const auto& [host, members] : by_host) {
          const DeviceId chief = members.front().first;
          if (members.size() == 1) {
            host_partial[host] = {chief, members.front().second};
            continue;
          }
          const DistNodeId agg =
              add_structural(OpKind::kAdd, node_name(fw_op.name, "/host_agg"), bytes, chief);
          for (const auto& [dev, node] : members) {
            if (dev == chief) {
              result_.graph.add_edge(node, agg);
            } else {
              const DistNodeId t =
                  add_transfer(node_name(fw_op.name, "/local_push"), bytes, dev, chief);
              result_.graph.add_edge(node, t);
              result_.graph.add_edge(t, agg);
            }
          }
          ++result_.stats.local_aggregations;
          host_partial[host] = {chief, agg};
        }

        // 2. PS placement among chiefs: minimise push + pull completion,
        //    including the gradient backlog already routed through the
        //    candidate's host NIC (otherwise every group elects the same
        //    fast host and its links bottleneck — paper Sec. 2.3).
        DeviceId ps = host_partial.begin()->second.first;
        const int forced = compiler_.options().forced_ps_device;
        if (forced >= 0) {
          // Honour the forced device when it holds a replica (its host chief
          // otherwise).
          for (const auto& [host, chief_node] : host_partial) {
            (void)host;
            if (chief_node.first == forced) ps = forced;
          }
          if (ps != forced) {
            const int want_host = cluster_.device(forced).host;
            const auto it = host_partial.find(want_host);
            if (it != host_partial.end()) ps = it->second.first;
          }
        }
        double best = 1e300;
        for (const auto& [host, chief_node] : host_partial) {
          if (forced >= 0) break;
          const DeviceId cand = chief_node.first;
          double push = 0.0, pull = 0.0;
          for (const auto& [other_host, other] : host_partial) {
            if (other_host == host) continue;
            push = std::max(push, costs_.transfer_time_ms(bytes, other.first, cand));
            pull = std::max(pull, costs_.transfer_time_ms(bytes, cand, other.first));
          }
          const double backlog_ms =
              2.0 * ps_bytes_per_host_[static_cast<size_t>(host)] / effective_nic_rate(host);
          if (push + pull + backlog_ms < best) {
            best = push + pull + backlog_ms;
            ps = cand;
          }
        }
        const int ps_host = cluster_.device(ps).host;
        ps_bytes_per_host_[static_cast<size_t>(ps_host)] +=
            static_cast<double>(bytes) *
            static_cast<double>(host_partial.size() > 1 ? host_partial.size() - 1 : 1);

        // 3. Chief pushes, PS aggregation, apply.
        const DistNodeId agg =
            add_structural(OpKind::kAdd, node_name(fw_op.name, "/ps_agg"), bytes, ps);
        ++result_.stats.ps_aggregations;
        for (const auto& [host, chief_node] : by_host) {
          const auto& [chief, node] = host_partial[host];
          (void)chief_node;
          if (chief == ps) {
            result_.graph.add_edge(node, agg);
          } else {
            const DistNodeId push =
                add_transfer(node_name(fw_op.name, "/push"), bytes, chief, ps, rpc_ms);
            result_.graph.add_edge(node, push);
            result_.graph.add_edge(push, agg);
          }
        }
        const DistNodeId apply_node = add_apply_node(apply, apply_op, ps, agg);

        // 4. Chiefs pull, then re-broadcast intra-host.
        for (const auto& [host, members] : by_host) {
          const DeviceId chief = host_partial[host].first;
          DistNodeId chief_ready = apply_node;
          if (chief != ps) {
            chief_ready = add_transfer(node_name(fw_op.name, "/pull"), bytes, ps, chief, rpc_ms);
            result_.graph.add_edge(apply_node, chief_ready);
            param_ready_[apply][chief] = chief_ready;
          }
          for (const auto& [dev, node] : members) {
            (void)node;
            if (dev == chief || dev == ps) continue;
            const DistNodeId bcast =
                add_transfer(node_name(fw_op.name, "/local_pull"), bytes, chief, dev);
            result_.graph.add_edge(chief_ready, bcast);
            param_ready_[apply][dev] = bcast;
          }
        }
      }
    }

    emit_fused_collectives();
  }

  /// Emits one collective realising the given AllReduce requests, plus the
  /// per-device apply nodes it gates.
  void emit_bucket(const std::vector<size_t>& members,
                   const std::vector<DeviceId>& devices) {
    int64_t total = 0;
    for (size_t idx : members) total += ar_requests_[idx].bytes;
    DistNode coll;
    coll.name =
        members.size() == 1
            ? node_name(graph_.op(ar_requests_[members.front()].fw).name, "/allreduce")
            : node_name("fused_allreduce[", static_cast<int64_t>(members.size()), "]");
    coll.kind = NodeKind::kCollective;
    coll.participants = devices;
    coll.output_bytes = total;
    coll.duration_ms = estimate_allreduce(total, devices, costs_).time_ms;
    coll.origin = ar_requests_[members.front()].grad;
    coll.op_kind = OpKind::kAdd;
    coll.role = OpRole::kBackward;
    const DistNodeId coll_id = result_.graph.add_node(std::move(coll));
    ++result_.stats.collectives;
    for (size_t idx : members) {
      const ArRequest& request = ar_requests_[idx];
      for (const auto& [dev, node] : request.partial) {
        (void)dev;
        result_.graph.add_edge(node, coll_id);
      }
      const OpDef& apply_op = graph_.op(request.apply);
      for (DeviceId dev : devices) {
        add_apply_node(request.apply, apply_op, dev, coll_id);
      }
    }
  }

  // Emits the collected AllReduce requests as fused collectives: requests
  // sharing a device set are packed, in backward-completion order, into
  // buckets of up to allreduce_fusion_bytes (Horovod-style tensor fusion).
  void emit_fused_collectives() {
    if (ar_requests_.empty()) return;
    std::sort(ar_requests_.begin(), ar_requests_.end(),
              [](const ArRequest& a, const ArRequest& b) { return a.grad < b.grad; });

    const int64_t fusion_limit = compiler_.options().allreduce_fusion_bytes;
    if (fusion_limit <= 0) {
      // Fusion disabled (the default): the bucketed path below would flush
      // every request by itself immediately, so emit directly in backward
      // order — identical output, without the bucket maps or the phase
      // (topological-order) computation their keys need.
      std::vector<size_t> one(1);
      for (size_t i = 0; i < ar_requests_.size(); ++i) {
        one[0] = i;
        emit_bucket(one, ar_requests_[i].devices);
      }
      return;
    }

    // Training-step phase of every op: the number of apply ops on the
    // deepest path above it. Fusing gradients across phases (iterations of
    // an unrolled graph) would close a cycle through the applies, so the
    // phase is part of the bucket key.
    std::vector<int> phase(static_cast<size_t>(graph_.op_count()), 0);
    for (const OpId id : graph_.topological_order()) {
      for (const OpId p : graph_.predecessors(id)) {
        const int contribution =
            phase[static_cast<size_t>(p)] +
            (graph_.op(p).role == OpRole::kApply ? 1 : 0);
        phase[static_cast<size_t>(id)] =
            std::max(phase[static_cast<size_t>(id)], contribution);
      }
    }

    using BucketKey = std::pair<int, std::vector<DeviceId>>;
    std::map<BucketKey, std::vector<size_t>> open_bucket;  // key -> request idx
    std::map<BucketKey, int64_t> open_bytes;

    auto flush = [&](const BucketKey& key) {
      auto& members = open_bucket[key];
      if (members.empty()) return;
      emit_bucket(members, key.second);
      members.clear();
      open_bytes[key] = 0;
    };

    for (size_t i = 0; i < ar_requests_.size(); ++i) {
      const auto& request = ar_requests_[i];
      const BucketKey key{phase[static_cast<size_t>(request.grad)], request.devices};
      auto& bytes_acc = open_bytes[key];
      if (fusion_limit > 0 && !open_bucket[key].empty() &&
          bytes_acc + request.bytes > fusion_limit) {
        flush(key);
      }
      open_bucket[key].push_back(i);
      bytes_acc += request.bytes;
      if (fusion_limit <= 0) flush(key);  // fusion disabled
    }
    std::vector<BucketKey> keys;
    for (const auto& [key, members] : open_bucket) {
      (void)members;
      keys.push_back(key);
    }
    for (const auto& key : keys) flush(key);
  }

  // Pass 4: edges leaving apply ops (only present in unrolled multi-
  // iteration graphs: apply of iteration k gates the mirrored forward op of
  // iteration k+1). Each consumer replica waits for its own device's
  // parameter copy to refresh (the apply itself, or the pull from the PS).
  void wire_parameter_consumers() {
    for (OpId u = 0; u < graph_.op_count(); ++u) {
      if (graph_.op(u).role != OpRole::kApply) continue;
      const auto ready_it = param_ready_.find(u);
      check(ready_it != param_ready_.end(), "apply op without param_ready entry");
      const auto& ready = ready_it->second;
      for (OpId v : graph_.successors(u)) {
        for (const auto& slot : placements_[static_cast<size_t>(v)].slots) {
          if (slot.node < 0) continue;  // apply consumer (not expected)
          const auto dep = ready.find(slot.device);
          if (dep != ready.end()) {
            result_.graph.add_edge(dep->second, slot.node);
          } else {
            // Consumer on a device without a parameter copy (placement
            // changed across iterations is not expected, but stay safe):
            // gate on every refresh point.
            for (const auto& [dev, node] : ready) {
              (void)dev;
              result_.graph.add_edge(node, slot.node);
            }
          }
        }
      }
    }
  }

  void finalize() {
    // Ensure the static-param vector exists even for parameter-free graphs.
    if (result_.graph.static_param_bytes().empty()) {
      result_.graph.add_static_param_bytes(0, 0);
    }
    if (compiler_.options().validate_output) {
      std::string error;
      check_lazy(result_.graph.validate(&error),
                 [&] { return "compiled graph invalid: " + error; });
    }
  }

  const profiler::CostProvider& costs_;
  const cluster::ClusterSpec& cluster_;
  const GraphDef& graph_;
  const strategy::Grouping& grouping_;
  const strategy::StrategyMap& strategy_;
  const GraphCompiler& compiler_;
  const bool names_;  // CompilerOptions::emit_node_names
  CompileResult result_;
  std::unordered_map<uint64_t, DistNodeId> transfer_cache_;
  std::vector<OpPlacement> placements_;
  /// Bytes of gradient traffic already routed to each host's PS devices
  /// (load-aware PS placement).
  std::vector<double> ps_bytes_per_host_ =
      std::vector<double>(static_cast<size_t>(cluster_.host_count()), 0.0);
  /// For each apply op: the node on each device after which that device's
  /// parameter copy is up to date (apply itself, or the pull from the PS).
  std::map<OpId, std::map<DeviceId, DistNodeId>> param_ready_;
  /// AllReduce requests awaiting fusion (emit_fused_collectives).
  std::vector<ArRequest> ar_requests_;
};

}  // namespace

std::vector<std::pair<DeviceId, double>> GraphCompiler::placement_slots(
    const OpDef& op, const Action& action, double global_batch) const {
  const auto& cluster = costs_->cluster();
  std::vector<std::pair<DeviceId, double>> slots;

  if (action.is_mp) {
    slots.emplace_back(action.mp_device, global_batch);
    return slots;
  }

  // Replica counts per device.
  std::vector<int> counts(static_cast<size_t>(cluster.device_count()), 1);
  if (action.replication == strategy::ReplicationMode::kProportional) {
    for (const auto& d : cluster.devices()) {
      counts[static_cast<size_t>(d.id)] =
          std::max(1, static_cast<int>(std::lround(cluster.relative_power(d.id))));
    }
  }

  if (!op.batch_divisible) {
    // Not replicable: a single copy on the device carrying the largest
    // replica count (fastest on ties).
    DeviceId best = 0;
    double best_key = -1.0;
    for (const auto& d : cluster.devices()) {
      const double key = counts[static_cast<size_t>(d.id)] * 1e6 + d.gflops_per_ms;
      if (key > best_key) {
        best_key = key;
        best = d.id;
      }
    }
    slots.emplace_back(best, global_batch);
    return slots;
  }

  int total = 0;
  for (int c : counts) total += c;
  const double share = global_batch / static_cast<double>(total);
  for (const auto& d : cluster.devices()) {
    for (int r = 0; r < counts[static_cast<size_t>(d.id)]; ++r) {
      slots.emplace_back(d.id, share);
    }
  }
  return slots;
}

CompileResult GraphCompiler::compile(const GraphDef& graph,
                                     const strategy::Grouping& grouping,
                                     const strategy::StrategyMap& strategy) const {
  check(static_cast<int>(grouping.assignment().size()) == graph.op_count(),
        "compile: grouping does not match graph");
  check(static_cast<int>(strategy.group_actions.size()) == grouping.group_count(),
        "compile: strategy does not match grouping");
  CompilerPass pass(*costs_, graph, grouping, strategy, *this);
  return pass.run();
}

}  // namespace heterog::compile
