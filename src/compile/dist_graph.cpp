#include "compile/dist_graph.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace heterog::compile {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kCompute:
      return "compute";
    case NodeKind::kTransfer:
      return "transfer";
    case NodeKind::kCollective:
      return "collective";
  }
  return "unknown";
}

int ResourceModel::gpu_resource(DeviceId d) const {
  check(d >= 0 && d < device_count_, "gpu_resource: bad device");
  return d;
}

int ResourceModel::link_resource(DeviceId from, DeviceId to) const {
  check(from >= 0 && from < device_count_, "link_resource: bad from");
  check(to >= 0 && to < device_count_, "link_resource: bad to");
  check(from != to, "link_resource: degenerate link");
  return device_count_ + from * device_count_ + to;
}

int ResourceModel::nic_egress_resource(int host) const {
  check(host >= 0 && host < host_count_, "nic_egress_resource: bad host");
  return nccl_resource() + 1 + 2 * host;
}

int ResourceModel::nic_ingress_resource(int host) const {
  check(host >= 0 && host < host_count_, "nic_ingress_resource: bad host");
  return nccl_resource() + 1 + 2 * host + 1;
}

int ResourceModel::resource_of(const DistNode& node) const {
  switch (node.kind) {
    case NodeKind::kCompute:
      return gpu_resource(node.device);
    case NodeKind::kTransfer:
      return link_resource(node.link_from, node.link_to);
    case NodeKind::kCollective:
      return nccl_resource();
  }
  check_failed("resource_of: unknown node kind");
}

void ResourceModel::resources_of(const DistNode& node, std::vector<int>& out) const {
  out.clear();
  out.push_back(resource_of(node));
  if (node.kind != NodeKind::kTransfer || host_of_.empty()) return;
  const int src_host = host_of_[static_cast<size_t>(node.link_from)];
  const int dst_host = host_of_[static_cast<size_t>(node.link_to)];
  if (src_host != dst_host) {
    out.push_back(nic_egress_resource(src_host));
    out.push_back(nic_ingress_resource(dst_host));
  }
}

ResourceModel DistGraph::make_resource_model(const cluster::ClusterSpec& cluster) {
  std::vector<int> host_of;
  host_of.reserve(static_cast<size_t>(cluster.device_count()));
  for (const auto& d : cluster.devices()) host_of.push_back(d.host);
  return ResourceModel(cluster.device_count(), std::move(host_of), cluster.host_count());
}

DistNodeId DistGraph::add_node(DistNode node) {
  switch (node.kind) {
    case NodeKind::kCompute:
      check(node.device >= 0 && node.device < resources_.device_count(),
            "add_node: compute node without valid device");
      break;
    case NodeKind::kTransfer:
      check(node.link_from >= 0 && node.link_to >= 0 && node.link_from != node.link_to,
            "add_node: transfer node without valid link");
      break;
    case NodeKind::kCollective:
      check(node.participants.size() >= 2, "add_node: collective needs >= 2 participants");
      break;
  }
  check(node.duration_ms >= 0.0, "add_node: negative duration");
  node.id = static_cast<DistNodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  succ_.emplace_back();
  pred_.emplace_back();
  return nodes_.back().id;
}

void DistGraph::add_edge(DistNodeId from, DistNodeId to) {
  check(from >= 0 && from < node_count(), "add_edge: bad from");
  check(to >= 0 && to < node_count(), "add_edge: bad to");
  check(from != to, "add_edge: self loop");
  auto& out = succ_[static_cast<size_t>(from)];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  pred_[static_cast<size_t>(to)].push_back(from);
}

const DistNode& DistGraph::node(DistNodeId id) const {
  check(id >= 0 && id < node_count(), "node: bad id");
  return nodes_[static_cast<size_t>(id)];
}

DistNode& DistGraph::mutable_node(DistNodeId id) {
  check(id >= 0 && id < node_count(), "mutable_node: bad id");
  return nodes_[static_cast<size_t>(id)];
}

const std::vector<DistNodeId>& DistGraph::successors(DistNodeId id) const {
  check(id >= 0 && id < node_count(), "successors: bad id");
  return succ_[static_cast<size_t>(id)];
}

const std::vector<DistNodeId>& DistGraph::predecessors(DistNodeId id) const {
  check(id >= 0 && id < node_count(), "predecessors: bad id");
  return pred_[static_cast<size_t>(id)];
}

void DistGraph::add_static_param_bytes(DeviceId device, int64_t bytes) {
  check(device >= 0 && device < resources_.device_count(), "add_static_param_bytes: bad device");
  check(bytes >= 0, "add_static_param_bytes: negative bytes");
  if (static_params_.empty()) {
    static_params_.assign(static_cast<size_t>(resources_.device_count()), 0);
  }
  static_params_[static_cast<size_t>(device)] += bytes;
}

std::vector<DistNodeId> DistGraph::topological_order() const {
  std::vector<int> in_degree(static_cast<size_t>(node_count()), 0);
  for (DistNodeId id = 0; id < node_count(); ++id) {
    in_degree[static_cast<size_t>(id)] = static_cast<int>(pred_[static_cast<size_t>(id)].size());
  }
  std::deque<DistNodeId> ready;
  for (DistNodeId id = 0; id < node_count(); ++id) {
    if (in_degree[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<DistNodeId> order;
  order.reserve(static_cast<size_t>(node_count()));
  while (!ready.empty()) {
    DistNodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (DistNodeId s : succ_[static_cast<size_t>(id)]) {
      if (--in_degree[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  check(static_cast<int>(order.size()) == node_count(), "DistGraph has a cycle");
  return order;
}

bool DistGraph::validate(std::string* error) const {
  for (DistNodeId id = 0; id < node_count(); ++id) {
    if (nodes_[static_cast<size_t>(id)].id != id) {
      if (error) *error = "node id mismatch";
      return false;
    }
  }
  std::vector<int> in_degree(static_cast<size_t>(node_count()), 0);
  for (DistNodeId id = 0; id < node_count(); ++id) {
    in_degree[static_cast<size_t>(id)] = static_cast<int>(pred_[static_cast<size_t>(id)].size());
  }
  std::deque<DistNodeId> ready;
  for (DistNodeId id = 0; id < node_count(); ++id) {
    if (in_degree[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  int visited = 0;
  while (!ready.empty()) {
    DistNodeId id = ready.front();
    ready.pop_front();
    ++visited;
    for (DistNodeId s : succ_[static_cast<size_t>(id)]) {
      if (--in_degree[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (visited != node_count()) {
    if (error) *error = "dist graph has a cycle";
    return false;
  }
  return true;
}

double DistGraph::total_compute_ms() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (!n.is_communication()) total += n.duration_ms;
  }
  return total;
}

double DistGraph::total_communication_ms() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (n.is_communication()) total += n.duration_ms;
  }
  return total;
}

}  // namespace heterog::compile
