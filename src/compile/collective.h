// AllReduce time estimation (paper Sec. 3.4, Gradient Aggregation):
// "ring-based AllReduce, or a hierarchical AllReduce structure that
//  aggregates gradients among GPUs on the same physical server first and
//  then across servers. We always use the better structure among the two by
//  estimating the communication time of the two based on the given network
//  topology."
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "profiler/cost_provider.h"

namespace heterog::compile {

enum class AllReduceStructure { kRing, kHierarchical };

struct AllReduceEstimate {
  double time_ms = 0.0;
  AllReduceStructure structure = AllReduceStructure::kRing;
};

/// Ring AllReduce over `devices` (>= 2, ring in the given order): 2(R-1)
/// phases, each moving bytes/R per link; phase time is the slowest ring link.
double ring_allreduce_ms(int64_t bytes, const std::vector<cluster::DeviceId>& devices,
                         const profiler::CostProvider& costs);

/// Hierarchical: intra-host ring reduce, inter-host ring over host chiefs
/// with the full payload, intra-host broadcast.
double hierarchical_allreduce_ms(int64_t bytes,
                                 const std::vector<cluster::DeviceId>& devices,
                                 const profiler::CostProvider& costs);

/// Fixed per-collective launch/rendezvous overhead added by
/// estimate_allreduce (NCCL kernels synchronise all participants).
inline constexpr double kCollectiveLaunchOverheadMs = 1.0;

/// The better of the two structures for this payload and device set, plus
/// the launch overhead.
AllReduceEstimate estimate_allreduce(int64_t bytes,
                                     const std::vector<cluster::DeviceId>& devices,
                                     const profiler::CostProvider& costs);

}  // namespace heterog::compile
