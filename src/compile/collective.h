// AllReduce time estimation (paper Sec. 3.4, Gradient Aggregation):
// "ring-based AllReduce, or a hierarchical AllReduce structure that
//  aggregates gradients among GPUs on the same physical server first and
//  then across servers. We always use the better structure among the two by
//  estimating the communication time of the two based on the given network
//  topology."
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "profiler/cost_provider.h"

namespace heterog::compile {

enum class AllReduceStructure { kRing, kHierarchical, kRackHierarchical };

struct AllReduceEstimate {
  double time_ms = 0.0;
  AllReduceStructure structure = AllReduceStructure::kRing;
};

/// Ring AllReduce over `devices` (>= 2, ring in the given order): 2(R-1)
/// phases, each moving bytes/R per link; phase time is the slowest ring link.
double ring_allreduce_ms(int64_t bytes, const std::vector<cluster::DeviceId>& devices,
                         const profiler::CostProvider& costs);

/// Hierarchical: intra-host ring reduce, inter-host ring over host chiefs
/// with the full payload, intra-host broadcast.
double hierarchical_allreduce_ms(int64_t bytes,
                                 const std::vector<cluster::DeviceId>& devices,
                                 const profiler::CostProvider& costs);

/// Rack-aware three-level structure for clusters with an attached
/// TopologySpec: intra-host reduce to host chiefs, intra-rack reduce to rack
/// chiefs (behind the ToR, off the oversubscribed core), inter-rack ring
/// over rack chiefs, then the mirrored broadcasts. Requires a topology with
/// >= 2 racks among the participants; throws CheckError otherwise.
double rack_hierarchical_allreduce_ms(int64_t bytes,
                                      const std::vector<cluster::DeviceId>& devices,
                                      const profiler::CostProvider& costs);

/// Fixed per-collective launch/rendezvous overhead added by
/// estimate_allreduce (NCCL kernels synchronise all participants).
inline constexpr double kCollectiveLaunchOverheadMs = 1.0;

/// The better structure for this payload and device set, plus the launch
/// overhead. The rack-aware structure is only considered when the cluster
/// has a multi-rack topology attached, so flat clusters keep the original
/// two-way choice bit-for-bit.
AllReduceEstimate estimate_allreduce(int64_t bytes,
                                     const std::vector<cluster::DeviceId>& devices,
                                     const profiler::CostProvider& costs);

}  // namespace heterog::compile
