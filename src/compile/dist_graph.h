// Distributed execution graph — the Graph Compiler's output.
//
// Nodes are concrete units of work with a precomputed duration:
//   * compute nodes run on a GPU (op replicas, Split/Concat, PS aggregation,
//     ApplyGradient);
//   * transfer nodes occupy a directed GPU-GPU link ("we further treat a
//     link between two GPUs as a device" — paper Sec. 4.2);
//   * collective nodes (NCCL AllReduce) occupy the global NCCL channel,
//     serialising with each other ("AllReduce for different operations
//     cannot be launched simultaneously" — paper Sec. 6.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "graph/op.h"

namespace heterog::compile {

using cluster::DeviceId;
using DistNodeId = int32_t;

enum class NodeKind : uint8_t { kCompute, kTransfer, kCollective };
const char* node_kind_name(NodeKind kind);

struct DistNode {
  DistNodeId id = -1;
  std::string name;
  NodeKind kind = NodeKind::kCompute;

  // kCompute: execution device. kTransfer: unused (see link_*). kCollective:
  // unused (see participants).
  DeviceId device = -1;
  DeviceId link_from = -1;
  DeviceId link_to = -1;
  std::vector<DeviceId> participants;  // collective only, sorted, unique

  /// Precomputed duration (cost model applied at compile time).
  double duration_ms = 0.0;

  /// Bytes of output tensor this node materialises. Compute: on `device`;
  /// transfer: on `link_to`; collective: on every participant.
  int64_t output_bytes = 0;

  /// Provenance.
  graph::OpId origin = graph::kInvalidOp;  // base op id, or kInvalidOp
  graph::OpKind op_kind = graph::OpKind::kIdentity;
  graph::OpRole role = graph::OpRole::kForward;
  int replica_index = -1;

  bool is_communication() const { return kind != NodeKind::kCompute; }
};

/// Maps nodes to schedulable resources: one per GPU, one per directed GPU
/// pair, a single NCCL channel, and — when host topology is attached — one
/// egress and one ingress resource per host NIC (full-duplex Ethernet).
///
/// An inter-host transfer occupies three resources simultaneously: its GPU
/// pair link, the source host's NIC egress and the destination host's NIC
/// ingress. This models the incast/outcast serialisation that makes a
/// parameter server's links the bottleneck (paper Sec. 2.3) while intra-host
/// transfers only contend pairwise.
class ResourceModel {
 public:
  explicit ResourceModel(int device_count) : device_count_(device_count) {}
  ResourceModel(int device_count, std::vector<int> host_of_device, int host_count)
      : device_count_(device_count),
        host_of_(std::move(host_of_device)),
        host_count_(host_count) {}

  int device_count() const { return device_count_; }
  bool has_host_topology() const { return host_count_ > 0; }
  int host_count() const { return host_count_; }

  int resource_count() const {
    return device_count_ + device_count_ * device_count_ + 1 + 2 * host_count_;
  }

  int gpu_resource(DeviceId d) const;
  int link_resource(DeviceId from, DeviceId to) const;
  int nccl_resource() const { return device_count_ + device_count_ * device_count_; }
  int nic_egress_resource(int host) const;
  int nic_ingress_resource(int host) const;

  bool is_gpu_resource(int r) const { return r >= 0 && r < device_count_; }
  bool is_link_resource(int r) const {
    return r >= device_count_ && r < device_count_ + device_count_ * device_count_;
  }
  bool is_nic_resource(int r) const { return r > nccl_resource() && r < resource_count(); }

  /// The resource a node queues on (GPU, link, or NCCL channel).
  int resource_of(const DistNode& node) const;

  /// All resources a node occupies while running. Appends to `out` (cleared
  /// first); 1 for compute/collective/intra-host transfers, 3 for inter-host
  /// transfers when host topology is attached.
  void resources_of(const DistNode& node, std::vector<int>& out) const;

 private:
  int device_count_;
  std::vector<int> host_of_;
  int host_count_ = 0;
};

class DistGraph {
 public:
  /// Without host topology: pairwise links only (unit tests, micro DAGs).
  explicit DistGraph(int device_count) : resources_(device_count) {}
  /// With host topology: NIC contention modelled (the Graph Compiler's path).
  explicit DistGraph(const cluster::ClusterSpec& cluster)
      : resources_(make_resource_model(cluster)) {}

  DistNodeId add_node(DistNode node);
  void add_edge(DistNodeId from, DistNodeId to);

  /// Pre-sizes the node and adjacency stores (the Graph Compiler knows a
  /// good estimate up front; DistNode is fat, so reallocation moves are
  /// worth avoiding in the search hot loop).
  void reserve_nodes(size_t expected) {
    nodes_.reserve(expected);
    succ_.reserve(expected);
    pred_.reserve(expected);
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const DistNode& node(DistNodeId id) const;
  DistNode& mutable_node(DistNodeId id);
  const std::vector<DistNode>& nodes() const { return nodes_; }

  const std::vector<DistNodeId>& successors(DistNodeId id) const;
  const std::vector<DistNodeId>& predecessors(DistNodeId id) const;

  const ResourceModel& resources() const { return resources_; }

  /// Parameter bytes statically resident on each device (model weights).
  const std::vector<int64_t>& static_param_bytes() const { return static_params_; }
  void add_static_param_bytes(DeviceId device, int64_t bytes);

  std::vector<DistNodeId> topological_order() const;
  bool validate(std::string* error = nullptr) const;

  /// Sum of durations of all nodes whose resource is a GPU / a link or the
  /// NCCL channel; used by the Fig. 8 breakdown.
  double total_compute_ms() const;
  double total_communication_ms() const;

 private:
  static ResourceModel make_resource_model(const cluster::ClusterSpec& cluster);

  ResourceModel resources_;
  std::vector<DistNode> nodes_;
  std::vector<std::vector<DistNodeId>> succ_;
  std::vector<std::vector<DistNodeId>> pred_;
  std::vector<int64_t> static_params_;
};

}  // namespace heterog::compile
