#include "compile/collective.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace heterog::compile {

double ring_allreduce_ms(int64_t bytes, const std::vector<cluster::DeviceId>& devices,
                         const profiler::CostProvider& costs) {
  const int r = static_cast<int>(devices.size());
  check(r >= 2, "ring_allreduce_ms: need >= 2 devices");
  const int64_t chunk = std::max<int64_t>(bytes / r, 1);
  // Each of the 2(R-1) phases is bounded by the slowest link in the ring.
  double slowest_chunk_ms = 0.0;
  for (int i = 0; i < r; ++i) {
    const cluster::DeviceId from = devices[static_cast<size_t>(i)];
    const cluster::DeviceId to = devices[static_cast<size_t>((i + 1) % r)];
    slowest_chunk_ms = std::max(slowest_chunk_ms, costs.transfer_time_ms(chunk, from, to));
  }
  return 2.0 * static_cast<double>(r - 1) * slowest_chunk_ms;
}

double hierarchical_allreduce_ms(int64_t bytes,
                                 const std::vector<cluster::DeviceId>& devices,
                                 const profiler::CostProvider& costs) {
  check(devices.size() >= 2, "hierarchical_allreduce_ms: need >= 2 devices");
  const auto& cluster = costs.cluster();

  std::map<int, std::vector<cluster::DeviceId>> by_host;
  for (cluster::DeviceId d : devices) by_host[cluster.device(d).host].push_back(d);

  // Phase 1: intra-host ring reduce to the host chief (first device).
  double intra_reduce_ms = 0.0;
  std::vector<cluster::DeviceId> chiefs;
  for (const auto& [host, local] : by_host) {
    (void)host;
    chiefs.push_back(local.front());
    if (local.size() >= 2) {
      // Reduce to chief: each non-chief sends the full payload over the
      // intra-host fabric; transfers on distinct links proceed in parallel,
      // so the phase is bounded by the slowest single transfer.
      double host_ms = 0.0;
      for (size_t i = 1; i < local.size(); ++i) {
        host_ms = std::max(host_ms, costs.transfer_time_ms(bytes, local[i], local[0]));
      }
      intra_reduce_ms = std::max(intra_reduce_ms, host_ms);
    }
  }

  // Phase 2: ring AllReduce across host chiefs.
  double inter_ms = 0.0;
  if (chiefs.size() >= 2) {
    inter_ms = ring_allreduce_ms(bytes, chiefs, costs);
  }

  // Phase 3: intra-host broadcast from the chief (mirror of phase 1).
  return intra_reduce_ms + inter_ms + intra_reduce_ms;
}

double rack_hierarchical_allreduce_ms(int64_t bytes,
                                      const std::vector<cluster::DeviceId>& devices,
                                      const profiler::CostProvider& costs) {
  check(devices.size() >= 2, "rack_hierarchical_allreduce_ms: need >= 2 devices");
  const auto& cluster = costs.cluster();
  check(cluster.has_topology(),
        "rack_hierarchical_allreduce_ms: cluster has no switch topology");
  const auto& racks = cluster.topology().rack_of_host;

  std::map<int, std::vector<cluster::DeviceId>> by_host;
  for (cluster::DeviceId d : devices) by_host[cluster.device(d).host].push_back(d);

  // Phase 1: intra-host reduce to the host chief (as in hierarchical_*).
  double intra_reduce_ms = 0.0;
  std::map<int, std::vector<cluster::DeviceId>> chiefs_by_rack;
  for (const auto& [host, local] : by_host) {
    chiefs_by_rack[racks[static_cast<size_t>(host)]].push_back(local.front());
    double host_ms = 0.0;
    for (size_t i = 1; i < local.size(); ++i) {
      host_ms = std::max(host_ms, costs.transfer_time_ms(bytes, local[i], local[0]));
    }
    intra_reduce_ms = std::max(intra_reduce_ms, host_ms);
  }
  check(chiefs_by_rack.size() >= 2,
        "rack_hierarchical_allreduce_ms: participants span a single rack");

  // Phase 2: intra-rack reduce to the rack chief. Traffic stays behind each
  // ToR, so racks proceed in parallel; like phase 1, the phase is bounded by
  // the slowest single full-payload transfer.
  double rack_reduce_ms = 0.0;
  std::vector<cluster::DeviceId> rack_chiefs;
  for (const auto& [rack, chiefs] : chiefs_by_rack) {
    (void)rack;
    rack_chiefs.push_back(chiefs.front());
    double rack_ms = 0.0;
    for (size_t i = 1; i < chiefs.size(); ++i) {
      rack_ms = std::max(rack_ms, costs.transfer_time_ms(bytes, chiefs[i], chiefs[0]));
    }
    rack_reduce_ms = std::max(rack_reduce_ms, rack_ms);
  }

  // Phase 3: ring AllReduce across rack chiefs — the only phase that crosses
  // the (possibly oversubscribed) aggregation/core tiers.
  const double inter_ms = ring_allreduce_ms(bytes, rack_chiefs, costs);

  // Phases 4/5: mirrored intra-rack and intra-host broadcasts.
  return intra_reduce_ms + rack_reduce_ms + inter_ms + rack_reduce_ms + intra_reduce_ms;
}

namespace {

/// True when the cluster has a topology and `devices` span >= 2 racks — the
/// precondition for the rack-aware structure to be meaningful.
bool spans_multiple_racks(const std::vector<cluster::DeviceId>& devices,
                          const cluster::ClusterSpec& cluster) {
  if (!cluster.has_topology()) return false;
  const auto& racks = cluster.topology().rack_of_host;
  int first_rack = -1;
  for (cluster::DeviceId d : devices) {
    const int rack = racks[static_cast<size_t>(cluster.device(d).host)];
    if (first_rack < 0) {
      first_rack = rack;
    } else if (rack != first_rack) {
      return true;
    }
  }
  return false;
}

}  // namespace

AllReduceEstimate estimate_allreduce(int64_t bytes,
                                     const std::vector<cluster::DeviceId>& devices,
                                     const profiler::CostProvider& costs) {
  AllReduceEstimate est;
  const double ring = ring_allreduce_ms(bytes, devices, costs);
  const double hier = hierarchical_allreduce_ms(bytes, devices, costs);
  if (hier < ring) {
    est.time_ms = hier;
    est.structure = AllReduceStructure::kHierarchical;
  } else {
    est.time_ms = ring;
    est.structure = AllReduceStructure::kRing;
  }
  // The rack-aware structure only enters the contest on multi-rack
  // topologies, so flat clusters keep the original two-way choice (and the
  // plans pinned against it) bit-for-bit.
  if (spans_multiple_racks(devices, costs.cluster())) {
    const double rack = rack_hierarchical_allreduce_ms(bytes, devices, costs);
    if (rack < est.time_ms) {
      est.time_ms = rack;
      est.structure = AllReduceStructure::kRackHierarchical;
    }
  }
  // Per-collective launch/synchronisation overhead: every NCCL operation
  // rendezvouses all participants before data moves, a fixed cost that makes
  // one AllReduce per gradient tensor expensive for models with many
  // parameter ops (and is why the paper's hybrid PS/AR plans win).
  est.time_ms += kCollectiveLaunchOverheadMs;
  return est;
}

}  // namespace heterog::compile
