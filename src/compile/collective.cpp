#include "compile/collective.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace heterog::compile {

double ring_allreduce_ms(int64_t bytes, const std::vector<cluster::DeviceId>& devices,
                         const profiler::CostProvider& costs) {
  const int r = static_cast<int>(devices.size());
  check(r >= 2, "ring_allreduce_ms: need >= 2 devices");
  const int64_t chunk = std::max<int64_t>(bytes / r, 1);
  // Each of the 2(R-1) phases is bounded by the slowest link in the ring.
  double slowest_chunk_ms = 0.0;
  for (int i = 0; i < r; ++i) {
    const cluster::DeviceId from = devices[static_cast<size_t>(i)];
    const cluster::DeviceId to = devices[static_cast<size_t>((i + 1) % r)];
    slowest_chunk_ms = std::max(slowest_chunk_ms, costs.transfer_time_ms(chunk, from, to));
  }
  return 2.0 * static_cast<double>(r - 1) * slowest_chunk_ms;
}

double hierarchical_allreduce_ms(int64_t bytes,
                                 const std::vector<cluster::DeviceId>& devices,
                                 const profiler::CostProvider& costs) {
  check(devices.size() >= 2, "hierarchical_allreduce_ms: need >= 2 devices");
  const auto& cluster = costs.cluster();

  std::map<int, std::vector<cluster::DeviceId>> by_host;
  for (cluster::DeviceId d : devices) by_host[cluster.device(d).host].push_back(d);

  // Phase 1: intra-host ring reduce to the host chief (first device).
  double intra_reduce_ms = 0.0;
  std::vector<cluster::DeviceId> chiefs;
  for (const auto& [host, local] : by_host) {
    (void)host;
    chiefs.push_back(local.front());
    if (local.size() >= 2) {
      // Reduce to chief: each non-chief sends the full payload over the
      // intra-host fabric; transfers on distinct links proceed in parallel,
      // so the phase is bounded by the slowest single transfer.
      double host_ms = 0.0;
      for (size_t i = 1; i < local.size(); ++i) {
        host_ms = std::max(host_ms, costs.transfer_time_ms(bytes, local[i], local[0]));
      }
      intra_reduce_ms = std::max(intra_reduce_ms, host_ms);
    }
  }

  // Phase 2: ring AllReduce across host chiefs.
  double inter_ms = 0.0;
  if (chiefs.size() >= 2) {
    inter_ms = ring_allreduce_ms(bytes, chiefs, costs);
  }

  // Phase 3: intra-host broadcast from the chief (mirror of phase 1).
  return intra_reduce_ms + inter_ms + intra_reduce_ms;
}

AllReduceEstimate estimate_allreduce(int64_t bytes,
                                     const std::vector<cluster::DeviceId>& devices,
                                     const profiler::CostProvider& costs) {
  AllReduceEstimate est;
  const double ring = ring_allreduce_ms(bytes, devices, costs);
  const double hier = hierarchical_allreduce_ms(bytes, devices, costs);
  if (hier < ring) {
    est.time_ms = hier;
    est.structure = AllReduceStructure::kHierarchical;
  } else {
    est.time_ms = ring;
    est.structure = AllReduceStructure::kRing;
  }
  // Per-collective launch/synchronisation overhead: every NCCL operation
  // rendezvouses all participants before data moves, a fixed cost that makes
  // one AllReduce per gradient tensor expensive for models with many
  // parameter ops (and is why the paper's hybrid PS/AR plans win).
  est.time_ms += kCollectiveLaunchOverheadMs;
  return est;
}

}  // namespace heterog::compile
