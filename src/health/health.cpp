#include "health/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace heterog::health {

namespace {

/// Round-trip double formatting shared by serialize()/deserialize(); matches
/// the journal's convention so embedded state diffs cleanly.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void bad_state(const std::string& why) {
  throw HealthError("health state: " + why);
}

template <typename T>
T parse_num(std::istringstream& is, const char* what) {
  T value{};
  if (!(is >> value)) bad_state(std::string("malformed ") + what);
  return value;
}

}  // namespace

const char* device_state_name(DeviceState s) {
  switch (s) {
    case DeviceState::kHealthy:
      return "healthy";
    case DeviceState::kSuspect:
      return "suspect";
    case DeviceState::kQuarantined:
      return "quarantined";
    case DeviceState::kFailed:
      return "failed";
  }
  return "unknown";
}

void HealthPolicy::validate() const {
  auto fail = [](const std::string& why) { throw HealthError("health policy: " + why); };
  if (!(ewma_alpha > 0.0 && ewma_alpha <= 1.0)) fail("ewma_alpha must be in (0, 1]");
  if (z_threshold <= 0.0) fail("z_threshold must be positive");
  if (min_slowdown_ratio < 1.0) fail("min_slowdown_ratio must be >= 1");
  if (hysteresis_steps < 1) fail("hysteresis_steps must be >= 1");
  if (probation_steps < 1) fail("probation_steps must be >= 1");
  if (warmup_steps < 1) fail("warmup_steps must be >= 1");
  if (!(heartbeat_loss_probability > 0.0 && heartbeat_loss_probability < 1.0)) {
    fail("heartbeat_loss_probability must be in (0, 1)");
  }
  if (phi_threshold <= 0.0) fail("phi_threshold must be positive");
  if (heartbeat_timeout_ms < 0.0) fail("heartbeat_timeout_ms must be >= 0");
  if (!(domain_rack_fraction > 0.0 && domain_rack_fraction <= 1.0)) {
    fail("domain_rack_fraction must be in (0, 1]");
  }
  if (domain_window_steps < 0) fail("domain_window_steps must be >= 0");
}

HealthMonitor::HealthMonitor(int device_count, HealthPolicy policy,
                             obs::EventLog* events)
    : policy_(policy), events_(events) {
  if (device_count < 1) throw HealthError("HealthMonitor: device_count must be >= 1");
  policy_.validate();
  devices_.resize(static_cast<size_t>(device_count));
}

void HealthMonitor::emit_suspicion(int step, int device, const char* kind,
                                   double score, int streak, bool emit) {
  ++summary_.suspicion_events;
  if (!emit || events_ == nullptr || !events_->ok()) return;
  events_->emit(obs::Event("suspicion")
                    .with("step", step)
                    .with("device", device)
                    .with("kind", kind)
                    .with("score", score)
                    .with("streak", streak));
}

void HealthMonitor::confirm_failure(int device, int step, const std::string& kind,
                                    bool emit) {
  DeviceStats& d = devices_[static_cast<size_t>(device)];
  if (d.state == DeviceState::kFailed) return;
  const int onset = d.anomaly_onset_step >= 0 ? d.anomaly_onset_step : step;
  d.state = DeviceState::kFailed;
  d.consecutive_slow = 0;
  d.consecutive_normal = 0;
  d.confirmed_step = step;
  pending_failures_.push_back(device);
  ++summary_.failures_confirmed;
  if (kind == "domain") ++summary_.domain_failures;
  summary_.detections.push_back({device, kind, onset, step});
  if (emit && events_ != nullptr && events_->ok()) {
    events_->emit(obs::Event("quarantine")
                      .with("step", step)
                      .with("device", device)
                      .with("action", "fail")
                      .with("kind", kind)
                      .with("onset_step", onset)
                      .with("phi", phi(device)));
  }
  // Per-device verdicts ("failure", "error") can be the first visible edge
  // of a correlated burst; domain verdicts themselves never recurse.
  if (policy_.domain_attribution && kind != "domain" &&
      static_cast<size_t>(device) < rack_of_device_.size()) {
    maybe_attribute_domain(step, rack_of_device_[static_cast<size_t>(device)], emit);
  }
}

void HealthMonitor::maybe_attribute_domain(int step, int rack, bool emit) {
  if (rack < 0) return;
  // Members = rack devices still alive plus those that failed inside the
  // window (a device failed long ago belongs to an older incident).
  int members = 0;
  int recent = 0;
  for (size_t i = 0; i < devices_.size() && i < rack_of_device_.size(); ++i) {
    if (rack_of_device_[i] != rack) continue;
    const DeviceStats& d = devices_[i];
    if (d.state == DeviceState::kFailed) {
      if (d.confirmed_step >= 0 && d.confirmed_step + policy_.domain_window_steps >= step) {
        ++members;
        ++recent;
      }
    } else {
      ++members;
    }
  }
  if (members < 2 || recent >= members) return;  // nothing left to attribute
  const int needed =
      static_cast<int>(std::ceil(policy_.domain_rack_fraction * members));
  if (recent < needed) return;

  ++summary_.domain_suspicions;
  domain_verdicts_.push_back(rack);
  if (emit && events_ != nullptr && events_->ok()) {
    events_->emit(obs::Event("domain_suspicion")
                      .with("step", step)
                      .with("rack", rack)
                      .with("confirmed", recent)
                      .with("members", members));
  }
  // Fail the rest of the rack in the same batch so the runner replans around
  // the whole domain in one shot.
  for (size_t i = 0; i < devices_.size() && i < rack_of_device_.size(); ++i) {
    if (rack_of_device_[i] != rack) continue;
    if (devices_[i].state == DeviceState::kFailed) continue;
    confirm_failure(static_cast<int>(i), step, "domain", emit);
  }
}

void HealthMonitor::quarantine_device(int device, int step, bool emit) {
  DeviceStats& d = devices_[static_cast<size_t>(device)];
  d.state = DeviceState::kQuarantined;
  d.consecutive_normal = 0;
  ++summary_.quarantines;
  const int onset = d.anomaly_onset_step >= 0 ? d.anomaly_onset_step : step;
  summary_.detections.push_back({device, "straggler", onset, step});
  if (emit && events_ != nullptr && events_->ok()) {
    events_->emit(obs::Event("quarantine")
                      .with("step", step)
                      .with("device", device)
                      .with("action", "enter")
                      .with("kind", "straggler")
                      .with("onset_step", onset)
                      .with("slowdown", estimated_slowdown(device)));
  }
}

void HealthMonitor::reinstate_device(int device, int step, bool emit) {
  DeviceStats& d = devices_[static_cast<size_t>(device)];
  d.state = DeviceState::kHealthy;
  d.consecutive_slow = 0;
  d.consecutive_normal = 0;
  d.anomaly_onset_step = -1;
  ++summary_.reinstatements;
  if (emit && events_ != nullptr && events_->ok()) {
    events_->emit(obs::Event("quarantine")
                      .with("step", step)
                      .with("device", device)
                      .with("action", "reinstate")
                      .with("kind", "straggler")
                      .with("onset_step", step)
                      .with("slowdown", 1.0));
  }
}

void HealthMonitor::observe_step_time(const Observation& obs,
                                      bool any_device_anomalous, bool emit) {
  const double x = obs.makespan_ms;
  if (step_samples_ >= policy_.warmup_steps && !any_device_anomalous) {
    const double sd = std::sqrt(std::max(step_var_, 1e-12));
    const double z = (x - step_mean_) / sd;
    if (z > policy_.z_threshold &&
        x > step_mean_ * policy_.min_slowdown_ratio) {
      // Every device looks healthy but the step as a whole stalled: the
      // anomaly lives on the communication path.
      emit_suspicion(obs.step, -1, "comm", z, 1, emit);
    }
  }
  const double a = policy_.ewma_alpha;
  if (step_samples_ == 0) {
    step_mean_ = x;
    step_var_ = 0.0;
  } else {
    const double delta = x - step_mean_;
    step_mean_ += a * delta;
    step_var_ = (1.0 - a) * (step_var_ + a * delta * delta);
  }
  ++step_samples_;
}

void HealthMonitor::observe(const Observation& obs, bool emit) {
  // Heartbeats first: a missed round accrues phi on the device whatever the
  // attempt outcome was.
  const size_t n = devices_.size();
  for (size_t i = 0; i < n && i < obs.responded.size(); ++i) {
    DeviceStats& d = devices_[i];
    if (d.state == DeviceState::kFailed) continue;
    if (!obs.responded[i]) {
      if (d.consecutive_misses == 0) d.anomaly_onset_step = obs.step;
      ++d.consecutive_misses;
      const double score = phi(static_cast<int>(i));
      emit_suspicion(obs.step, static_cast<int>(i), "timeout", score,
                     d.consecutive_misses, emit);
      const bool budget_out = retry_budget_exhausted();
      if (score >= policy_.phi_threshold || budget_out) {
        confirm_failure(static_cast<int>(i), obs.step, "failure", emit);
      }
    } else if (d.consecutive_misses > 0) {
      d.consecutive_misses = 0;
      if (d.state == DeviceState::kHealthy) d.anomaly_onset_step = -1;
    }
  }

  // Error attribution: the worker that raised this attempt's exception.
  if (obs.error_device >= 0 &&
      static_cast<size_t>(obs.error_device) < n &&
      devices_[static_cast<size_t>(obs.error_device)].state != DeviceState::kFailed) {
    DeviceStats& d = devices_[static_cast<size_t>(obs.error_device)];
    if (d.anomaly_onset_step < 0) d.anomaly_onset_step = obs.step;
    emit_suspicion(obs.step, obs.error_device, "error", 1.0, obs.attempt + 1, emit);
  }

  if (!obs.completed) return;

  // Timing statistics only advance on completed attempts.
  bool any_anomalous = false;
  for (size_t i = 0; i < n && i < obs.device_busy_ms.size(); ++i) {
    DeviceStats& d = devices_[i];
    if (d.state == DeviceState::kFailed) continue;
    const double x = obs.device_busy_ms[i];
    d.last_busy_ms = x;

    bool anomalous = false;
    if (d.samples >= policy_.warmup_steps) {
      const double sd = std::sqrt(std::max(d.var, 1e-12));
      const double z = (x - d.mean) / sd;
      anomalous = z > policy_.z_threshold && x > d.mean * policy_.min_slowdown_ratio;
      if (anomalous) any_anomalous = true;

      if (d.state == DeviceState::kQuarantined) {
        // Probation against the frozen healthy baseline.
        if (!anomalous) {
          ++d.consecutive_normal;
          if (d.consecutive_normal >= policy_.probation_steps) {
            reinstate_device(static_cast<int>(i), obs.step, emit);
          }
        } else {
          d.consecutive_normal = 0;
        }
        continue;  // baseline stays frozen while quarantined
      }

      if (anomalous) {
        if (d.consecutive_slow == 0) d.anomaly_onset_step = obs.step;
        ++d.consecutive_slow;
        d.state = DeviceState::kSuspect;
        emit_suspicion(obs.step, static_cast<int>(i), "slow", z, d.consecutive_slow,
                       emit);
        if (d.consecutive_slow >= policy_.hysteresis_steps) {
          quarantine_device(static_cast<int>(i), obs.step, emit);
        }
        continue;  // anomalous samples do not poison the baseline
      }
      if (d.state == DeviceState::kSuspect) {
        d.state = DeviceState::kHealthy;
        d.anomaly_onset_step = -1;
      }
      d.consecutive_slow = 0;
    }

    const double a = policy_.ewma_alpha;
    if (d.samples == 0) {
      d.mean = x;
      d.var = 0.0;
    } else {
      const double delta = x - d.mean;
      d.mean += a * delta;
      d.var = (1.0 - a) * (d.var + a * delta * delta);
    }
    ++d.samples;
  }

  observe_step_time(obs, any_anomalous, emit);
}

std::vector<int> HealthMonitor::take_confirmed_failures() {
  std::vector<int> out = std::move(pending_failures_);
  pending_failures_.clear();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void HealthMonitor::set_rack_map(std::vector<int> rack_of_device) {
  if (static_cast<int>(rack_of_device.size()) != device_count()) {
    throw HealthError("HealthMonitor::set_rack_map: expected " +
                      std::to_string(device_count()) + " entries, got " +
                      std::to_string(rack_of_device.size()));
  }
  rack_of_device_ = std::move(rack_of_device);
}

std::vector<int> HealthMonitor::take_domain_verdicts() {
  std::vector<int> out = std::move(domain_verdicts_);
  domain_verdicts_.clear();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void HealthMonitor::force_failure(int device, int step, const std::string& kind) {
  if (device < 0 || static_cast<size_t>(device) >= devices_.size()) return;
  confirm_failure(device, step, kind, true);
}

DeviceState HealthMonitor::state(int device) const {
  if (device < 0 || static_cast<size_t>(device) >= devices_.size()) {
    throw HealthError("HealthMonitor::state: device out of range");
  }
  return devices_[static_cast<size_t>(device)].state;
}

double HealthMonitor::phi(int device) const {
  if (device < 0 || static_cast<size_t>(device) >= devices_.size()) return 0.0;
  const int misses = devices_[static_cast<size_t>(device)].consecutive_misses;
  return static_cast<double>(misses) * -std::log10(policy_.heartbeat_loss_probability);
}

double HealthMonitor::estimated_slowdown(int device) const {
  if (device < 0 || static_cast<size_t>(device) >= devices_.size()) return 1.0;
  const DeviceStats& d = devices_[static_cast<size_t>(device)];
  if (d.state != DeviceState::kQuarantined || d.mean <= 0.0) return 1.0;
  return std::max(1.0, d.last_busy_ms / d.mean);
}

bool HealthMonitor::charge_retry() {
  if (retry_budget_exhausted()) return false;
  ++retries_charged_;
  ++summary_.retries_charged;
  if (retry_budget_exhausted()) summary_.retry_budget_exhausted = true;
  return true;
}

bool HealthMonitor::retry_budget_exhausted() const {
  return policy_.retry_budget > 0 && retries_charged_ >= policy_.retry_budget;
}

void HealthMonitor::record_replan(int step, bool emit) {
  ++replans_;
  if (breaker_open_ || policy_.max_replans <= 0 || replans_ < policy_.max_replans) {
    return;
  }
  breaker_open_ = true;
  summary_.breaker_opened = true;
  if (emit && events_ != nullptr && events_->ok()) {
    events_->emit(obs::Event("breaker_open")
                      .with("step", step)
                      .with("replans", replans_)
                      .with("max_replans", policy_.max_replans));
  }
}

bool HealthMonitor::breaker_open() const { return breaker_open_; }

void HealthMonitor::on_replan(const std::vector<int>& new_id_of) {
  std::vector<DeviceStats> remapped;
  int survivors = 0;
  for (const int id : new_id_of) survivors = std::max(survivors, id + 1);
  remapped.resize(static_cast<size_t>(std::max(survivors, 1)));
  for (size_t old_id = 0; old_id < devices_.size() && old_id < new_id_of.size();
       ++old_id) {
    const int new_id = new_id_of[old_id];
    if (new_id < 0) continue;
    remapped[static_cast<size_t>(new_id)] = devices_[old_id];
  }
  devices_ = std::move(remapped);
  if (!rack_of_device_.empty()) {
    std::vector<int> racks(devices_.size(), -1);
    for (size_t old_id = 0;
         old_id < rack_of_device_.size() && old_id < new_id_of.size(); ++old_id) {
      const int new_id = new_id_of[old_id];
      if (new_id < 0 || static_cast<size_t>(new_id) >= racks.size()) continue;
      racks[static_cast<size_t>(new_id)] = rack_of_device_[old_id];
    }
    rack_of_device_ = std::move(racks);
  }
  // The workload per device changes under the new plan; baselines re-learn.
  for (DeviceStats& d : devices_) {
    d.mean = 0.0;
    d.var = 0.0;
    d.samples = 0;
    d.consecutive_slow = 0;
    d.consecutive_normal = 0;
    d.last_busy_ms = 0.0;
    if (d.state == DeviceState::kSuspect) d.state = DeviceState::kHealthy;
  }
  step_mean_ = 0.0;
  step_var_ = 0.0;
  step_samples_ = 0;
  pending_failures_.clear();
  domain_verdicts_.clear();
}

std::string HealthMonitor::serialize() const {
  std::ostringstream os;
  os << "health-v1\n";
  os << "policy " << (policy_.enabled ? 1 : 0) << " " << fmt(policy_.ewma_alpha) << " "
     << fmt(policy_.z_threshold) << " " << fmt(policy_.min_slowdown_ratio) << " "
     << policy_.hysteresis_steps << " " << policy_.probation_steps << " "
     << policy_.warmup_steps << " " << fmt(policy_.heartbeat_loss_probability) << " "
     << fmt(policy_.phi_threshold) << " " << fmt(policy_.heartbeat_timeout_ms) << " "
     << policy_.retry_budget << " " << policy_.max_replans << " "
     << (policy_.replan_on_straggler ? 1 : 0) << " "
     << fmt(policy_.replan_deadline_ms) << "\n";
  os << "run " << retries_charged_ << " " << replans_ << " " << (breaker_open_ ? 1 : 0)
     << " " << fmt(step_mean_) << " " << fmt(step_var_) << " " << step_samples_ << "\n";
  os << "devices " << devices_.size() << "\n";
  for (const DeviceStats& d : devices_) {
    os << "device " << static_cast<int>(d.state) << " " << fmt(d.mean) << " "
       << fmt(d.var) << " " << d.samples << " " << fmt(d.last_busy_ms) << " "
       << d.consecutive_slow << " " << d.consecutive_normal << " "
       << d.consecutive_misses << " " << d.anomaly_onset_step << "\n";
  }
  os << "pending " << pending_failures_.size();
  for (const int p : pending_failures_) os << " " << p;
  os << "\n";
  // Domain section only when a rack map was set (topology runs). Flat-run
  // snapshots stay byte-identical to every journal written before domain
  // attribution existed — the resume cross-check depends on that.
  if (!rack_of_device_.empty()) {
    os << "domain " << (policy_.domain_attribution ? 1 : 0) << " "
       << fmt(policy_.domain_rack_fraction) << " " << policy_.domain_window_steps
       << "\n";
    os << "rackmap " << rack_of_device_.size();
    for (const int r : rack_of_device_) os << " " << r;
    os << "\n";
    os << "confirmed " << devices_.size();
    for (const DeviceStats& d : devices_) os << " " << d.confirmed_step;
    os << "\n";
    os << "verdicts " << domain_verdicts_.size();
    for (const int r : domain_verdicts_) os << " " << r;
    os << "\n";
  }
  return os.str();
}

HealthMonitor HealthMonitor::deserialize(const std::string& text,
                                         obs::EventLog* events) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&](const char* what) {
    if (!std::getline(in, line)) bad_state(std::string("truncated before ") + what);
    return line;
  };
  if (next_line("header") != "health-v1") bad_state("bad header");

  HealthPolicy policy;
  {
    std::istringstream is(next_line("policy"));
    std::string tag;
    int enabled = 0, straggler = 0;
    is >> tag;
    if (tag != "policy") bad_state("expected policy line");
    enabled = parse_num<int>(is, "policy");
    policy.ewma_alpha = parse_num<double>(is, "policy");
    policy.z_threshold = parse_num<double>(is, "policy");
    policy.min_slowdown_ratio = parse_num<double>(is, "policy");
    policy.hysteresis_steps = parse_num<int>(is, "policy");
    policy.probation_steps = parse_num<int>(is, "policy");
    policy.warmup_steps = parse_num<int>(is, "policy");
    policy.heartbeat_loss_probability = parse_num<double>(is, "policy");
    policy.phi_threshold = parse_num<double>(is, "policy");
    policy.heartbeat_timeout_ms = parse_num<double>(is, "policy");
    policy.retry_budget = parse_num<int>(is, "policy");
    policy.max_replans = parse_num<int>(is, "policy");
    straggler = parse_num<int>(is, "policy");
    policy.replan_deadline_ms = parse_num<double>(is, "policy");
    policy.enabled = enabled != 0;
    policy.replan_on_straggler = straggler != 0;
  }

  int retries = 0, replans = 0, breaker = 0, step_samples = 0;
  double step_mean = 0.0, step_var = 0.0;
  {
    std::istringstream is(next_line("run"));
    std::string tag;
    is >> tag;
    if (tag != "run") bad_state("expected run line");
    retries = parse_num<int>(is, "run");
    replans = parse_num<int>(is, "run");
    breaker = parse_num<int>(is, "run");
    step_mean = parse_num<double>(is, "run");
    step_var = parse_num<double>(is, "run");
    step_samples = parse_num<int>(is, "run");
  }

  size_t n_devices = 0;
  {
    std::istringstream is(next_line("devices"));
    std::string tag;
    is >> tag;
    if (tag != "devices") bad_state("expected devices line");
    const long long n = parse_num<long long>(is, "devices");
    if (n < 1 || n > 1'000'000) bad_state("device count out of range");
    n_devices = static_cast<size_t>(n);
  }

  HealthMonitor monitor(static_cast<int>(n_devices), policy, events);
  monitor.retries_charged_ = retries;
  monitor.replans_ = replans;
  monitor.breaker_open_ = breaker != 0;
  monitor.step_mean_ = step_mean;
  monitor.step_var_ = step_var;
  monitor.step_samples_ = step_samples;
  for (size_t i = 0; i < n_devices; ++i) {
    std::istringstream is(next_line("device"));
    std::string tag;
    is >> tag;
    if (tag != "device") bad_state("expected device line");
    DeviceStats d;
    const int state = parse_num<int>(is, "device state");
    if (state < 0 || state > static_cast<int>(DeviceState::kFailed)) {
      bad_state("device state out of range");
    }
    d.state = static_cast<DeviceState>(state);
    d.mean = parse_num<double>(is, "device");
    d.var = parse_num<double>(is, "device");
    d.samples = parse_num<int>(is, "device");
    d.last_busy_ms = parse_num<double>(is, "device");
    d.consecutive_slow = parse_num<int>(is, "device");
    d.consecutive_normal = parse_num<int>(is, "device");
    d.consecutive_misses = parse_num<int>(is, "device");
    d.anomaly_onset_step = parse_num<int>(is, "device");
    monitor.devices_[i] = d;
  }
  {
    std::istringstream is(next_line("pending"));
    std::string tag;
    is >> tag;
    if (tag != "pending") bad_state("expected pending line");
    const long long n = parse_num<long long>(is, "pending");
    if (n < 0 || n > static_cast<long long>(n_devices)) {
      bad_state("pending count out of range");
    }
    for (long long i = 0; i < n; ++i) {
      monitor.pending_failures_.push_back(parse_num<int>(is, "pending device"));
    }
  }
  // Optional domain section (present iff the run had a rack map).
  if (std::getline(in, line) && !line.empty()) {
    {
      std::istringstream is(line);
      std::string tag;
      is >> tag;
      if (tag != "domain") bad_state("expected domain line");
      monitor.policy_.domain_attribution = parse_num<int>(is, "domain") != 0;
      monitor.policy_.domain_rack_fraction = parse_num<double>(is, "domain");
      monitor.policy_.domain_window_steps = parse_num<int>(is, "domain");
    }
    {
      std::istringstream is(next_line("rackmap"));
      std::string tag;
      is >> tag;
      if (tag != "rackmap") bad_state("expected rackmap line");
      const long long n = parse_num<long long>(is, "rackmap");
      if (n != static_cast<long long>(n_devices)) bad_state("rackmap count mismatch");
      std::vector<int> racks;
      for (long long i = 0; i < n; ++i) racks.push_back(parse_num<int>(is, "rackmap"));
      monitor.rack_of_device_ = std::move(racks);
    }
    {
      std::istringstream is(next_line("confirmed"));
      std::string tag;
      is >> tag;
      if (tag != "confirmed") bad_state("expected confirmed line");
      const long long n = parse_num<long long>(is, "confirmed");
      if (n != static_cast<long long>(n_devices)) bad_state("confirmed count mismatch");
      for (long long i = 0; i < n; ++i) {
        monitor.devices_[static_cast<size_t>(i)].confirmed_step =
            parse_num<int>(is, "confirmed step");
      }
    }
    {
      std::istringstream is(next_line("verdicts"));
      std::string tag;
      is >> tag;
      if (tag != "verdicts") bad_state("expected verdicts line");
      const long long n = parse_num<long long>(is, "verdicts");
      if (n < 0 || n > 1'000'000) bad_state("verdict count out of range");
      for (long long i = 0; i < n; ++i) {
        monitor.domain_verdicts_.push_back(parse_num<int>(is, "verdict rack"));
      }
    }
  }
  return monitor;
}

}  // namespace heterog::health
