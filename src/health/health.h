// Online health monitoring: oracle-free failure / straggler detection
// (DESIGN.md "Online health & degraded modes").
//
// The HealthMonitor is the *reaction* half of the fault pipeline. It never
// sees the injected faults::FaultPlan — that stays simulator-side, inside
// sim::FaultInjector. All the monitor consumes is what a real runtime could
// measure about a training step:
//
//   * per-device heartbeats (did device d respond this attempt?);
//   * per-device busy times of completed steps;
//   * the step makespan;
//   * error attributions (an attempt aborted with an exception from rank d).
//
// From those it maintains, per device:
//
//   * an EWMA mean/variance of busy time and a z-score per new sample;
//   * a phi-accrual-style suspicion score over consecutive missed
//     heartbeats (phi = misses * -log10(p_miss); crossing phi_threshold
//     confirms a permanent failure);
//   * hysteresis counters: `hysteresis_steps` consecutive anomalous samples
//     before a straggler verdict, `probation_steps` consecutive healthy
//     samples before a quarantined straggler is reinstated (flap damping).
//
// Run-level guards keep recovery itself from becoming the failure mode: a
// per-run retry budget (exhaustion forces immediate escalation so detection
// always terminates) and a circuit breaker that opens after `max_replans`
// re-plans and suppresses further optimisation re-plans (mandatory
// failure re-plans still run, degraded to the heuristic path).
//
// Determinism: the monitor is a pure function of its observation sequence —
// no clocks, no RNG — and serialize()/deserialize() round-trip its state
// byte-exactly, so a resumed run replays to bit-identical decisions
// (tests/chaos_test.cpp pins this per chaos seed).
//
// Layering: health sits below sim and core and must not depend on faults/ —
// oracle-freedom is enforced by the link graph, not just by convention.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event_log.h"

namespace heterog::health {

/// Thrown for malformed serialized monitor state and invalid policies.
class HealthError : public std::runtime_error {
 public:
  explicit HealthError(const std::string& what) : std::runtime_error(what) {}
};

/// Detection / recovery knobs. Defaults are tuned so a permanent failure is
/// confirmed within 3 heartbeat rounds and a x2 straggler within ~5 steps of
/// onset on the paper testbeds.
struct HealthPolicy {
  /// Master switch: off = the PR-1 oracle path (DistRunner reads the fault
  /// plan directly); on = measurement-only detection via this monitor.
  bool enabled = false;

  /// EWMA smoothing factor for per-device busy-time baselines (weight of the
  /// newest sample).
  double ewma_alpha = 0.2;
  /// z-score a busy-time sample must exceed to count as anomalous.
  double z_threshold = 3.0;
  /// A sample must also be at least this multiple of its baseline mean to
  /// count as anomalous (guards against tiny-variance false positives).
  double min_slowdown_ratio = 1.3;
  /// Consecutive anomalous samples before a straggler verdict.
  int hysteresis_steps = 3;
  /// Consecutive healthy samples before a quarantined straggler is
  /// reinstated (probation; damps flapping devices).
  int probation_steps = 4;
  /// Healthy samples per device before z-scores are trusted.
  int warmup_steps = 3;

  /// Assumed per-round heartbeat-loss probability of a *healthy* device;
  /// phi(d) = misses(d) * -log10(p). Smaller p => each miss is stronger
  /// evidence.
  double heartbeat_loss_probability = 0.1;
  /// phi at which consecutive missed heartbeats confirm a permanent
  /// failure. With p = 0.1 each miss adds exactly 1 phi, so the default
  /// confirms after 3 straight misses.
  double phi_threshold = 3.0;
  /// Wall-clock charge per timed-out attempt (the heartbeat interval the
  /// runner waits before declaring the attempt dead).
  double heartbeat_timeout_ms = 100.0;

  /// Per-run budget of failed attempts (timeouts + errors). Exhaustion
  /// forces immediate escalation instead of further retries, so detection
  /// terminates even under adversarial schedules. <= 0 disables the budget.
  int retry_budget = 64;
  /// Circuit breaker: re-plans allowed per run before it opens. <= 0
  /// disables the breaker.
  int max_replans = 4;
  /// When a quarantined straggler persists, re-plan against a derated
  /// cluster instead of just derating in place. Off by default: the re-plan
  /// pays replan_wall cost for a device that may recover.
  bool replan_on_straggler = false;
  /// Deadline for a full (RL) re-plan, in simulated milliseconds: when the
  /// estimated search cost (`replan_rl_episodes * current iteration time`)
  /// exceeds it, the runner degrades to the heuristic re-plan path and emits
  /// `degraded_replan`. Deliberately a *model* of the cost, not a wall-clock
  /// measurement, so the decision is deterministic. <= 0 disables.
  double replan_deadline_ms = 0.0;

  /// Correlated-domain attribution (only active once set_rack_map() gave the
  /// monitor a rack id per device — i.e. on topology-generated clusters).
  /// When at least `domain_rack_fraction` of a rack's member devices confirm
  /// failure within `domain_window_steps` of each other, the burst is
  /// attributed to the rack as a whole: a `domain_suspicion` event is
  /// emitted and the rack's remaining devices are failed in the same batch,
  /// so the runner replans around the domain once instead of N times.
  bool domain_attribution = true;
  double domain_rack_fraction = 0.6;
  int domain_window_steps = 2;

  /// Throws HealthError when a knob is out of range.
  void validate() const;
};

/// Everything the runner observed about one attempt of one step. Produced by
/// sim::FaultInjector (simulation) — in a real deployment this would come
/// from the execution engine's telemetry.
struct Observation {
  int step = 0;
  int attempt = 0;  // 0 = first try; > 0 = retry of the same step
  /// The attempt ran to completion (no timeout, no error).
  bool completed = false;
  /// Device whose worker raised an error this attempt; -1 when none (a
  /// timeout has no attribution — that is what heartbeats are for).
  int error_device = -1;
  /// Per-device heartbeat: responded[d] == false means device d missed this
  /// attempt's heartbeat round.
  std::vector<uint8_t> responded;
  /// Measured makespan of the attempt (only meaningful when completed).
  double makespan_ms = 0.0;
  /// Per-device busy time of the attempt (only meaningful when completed).
  std::vector<double> device_busy_ms;
};

enum class DeviceState : uint8_t {
  kHealthy = 0,
  kSuspect = 1,      // anomalous samples accruing, below hysteresis
  kQuarantined = 2,  // straggler verdict reached; on probation
  kFailed = 3,       // permanent failure confirmed (terminal)
};
const char* device_state_name(DeviceState s);

/// One confirmed detection, for reports and the recovery bench (detection
/// latency = confirmed_step - onset_step).
struct DetectionRecord {
  int device = -1;
  /// "failure" (missed heartbeats), "straggler" (timing), or "error"
  /// (escalated transient errors).
  std::string kind;
  int onset_step = -1;      // first anomalous observation
  int confirmed_step = -1;  // step the verdict was reached at
};

/// Aggregate monitor outcome carried in heterog::RunStats.
struct HealthSummary {
  int suspicion_events = 0;
  int quarantines = 0;
  int reinstatements = 0;
  int failures_confirmed = 0;
  int retries_charged = 0;  // failed attempts charged to the budget
  bool retry_budget_exhausted = false;
  bool breaker_opened = false;
  int domain_suspicions = 0;  // rack bursts attributed to a domain event
  int domain_failures = 0;    // devices failed by domain attribution alone
  std::vector<DetectionRecord> detections;
};

class HealthMonitor {
 public:
  /// `events` (non-owning, may be null) receives suspicion / quarantine /
  /// breaker_open telemetry; emission is additionally gated per observe()
  /// call so journal replays stay silent.
  HealthMonitor(int device_count, HealthPolicy policy,
                obs::EventLog* events = nullptr);

  /// Feeds one attempt's measurements. `emit` gates telemetry (pass false
  /// while replaying pre-watermark steps on resume). State transitions are
  /// identical either way.
  void observe(const Observation& obs, bool emit = true);

  /// Devices whose permanent failure was confirmed since the last call
  /// (sorted; consumed). The runner reacts by re-planning on the survivors.
  std::vector<int> take_confirmed_failures();

  /// Rack id per device (same indexing as devices). Enables domain
  /// attribution; pass what the cluster's TopologySpec says. Throws
  /// HealthError when the size disagrees with device_count(). Entries < 0
  /// opt a device out of any domain.
  void set_rack_map(std::vector<int> rack_of_device);
  const std::vector<int>& rack_map() const { return rack_of_device_; }

  /// Racks attributed to a correlated domain event since the last call
  /// (sorted, unique; consumed). Each came with a `domain_suspicion` event
  /// and the rack's devices queued in take_confirmed_failures().
  std::vector<int> take_domain_verdicts();

  /// Escalates `device` to a confirmed failure immediately (transient error
  /// retries exhausted). Idempotent for already-failed devices.
  void force_failure(int device, int step, const std::string& kind);

  /// Current per-device state / suspicion.
  DeviceState state(int device) const;
  double phi(int device) const;
  /// Measured slowdown estimate of a quarantined straggler (latest busy
  /// sample over its frozen healthy baseline); 1.0 for healthy devices.
  double estimated_slowdown(int device) const;
  int device_count() const { return static_cast<int>(devices_.size()); }

  /// Retry budget: charge one failed attempt; returns false when the budget
  /// was already exhausted (caller must escalate instead of retrying).
  bool charge_retry();
  bool retry_budget_exhausted() const;

  /// Circuit breaker. record_replan() counts one re-plan and opens the
  /// breaker (emitting `breaker_open` once) when the budget is spent.
  void record_replan(int step, bool emit = true);
  bool breaker_open() const;

  /// Remaps per-device state after a re-plan re-densified ids (new_id_of[d]
  /// = new id or -1 for removed devices). Failed devices drop out.
  void on_replan(const std::vector<int>& new_id_of);

  const HealthPolicy& policy() const { return policy_; }
  const HealthSummary& summary() const { return summary_; }

  /// Byte-exact state snapshot (doubles in round-trip %.17g form). The
  /// journal embeds this so resume can prove replay determinism.
  std::string serialize() const;
  /// Rebuilds a monitor from serialize() output. Throws HealthError on
  /// malformed input.
  static HealthMonitor deserialize(const std::string& text,
                                   obs::EventLog* events = nullptr);

 private:
  struct DeviceStats {
    DeviceState state = DeviceState::kHealthy;
    // EWMA baseline of busy-time (frozen while quarantined so recovery is
    // measured against the healthy norm).
    double mean = 0.0;
    double var = 0.0;
    int samples = 0;
    double last_busy_ms = 0.0;
    int consecutive_slow = 0;
    int consecutive_normal = 0;
    int consecutive_misses = 0;
    int anomaly_onset_step = -1;  // first step of the current streak
    int confirmed_step = -1;      // step a failure verdict landed; -1 = alive
  };

  void emit_suspicion(int step, int device, const char* kind, double score,
                      int streak, bool emit);
  void confirm_failure(int device, int step, const std::string& kind, bool emit);
  /// After a failure in `rack`: when enough of the rack failed inside the
  /// attribution window, fail the rest and record a domain verdict.
  void maybe_attribute_domain(int step, int rack, bool emit);
  void quarantine_device(int device, int step, bool emit);
  void reinstate_device(int device, int step, bool emit);
  void observe_step_time(const Observation& obs, bool any_device_anomalous,
                         bool emit);

  HealthPolicy policy_;
  obs::EventLog* events_ = nullptr;
  std::vector<DeviceStats> devices_;
  // Step-makespan EWMA for comm-path suspicion (slow step, healthy devices).
  double step_mean_ = 0.0;
  double step_var_ = 0.0;
  int step_samples_ = 0;
  int retries_charged_ = 0;
  int replans_ = 0;
  bool breaker_open_ = false;
  std::vector<int> pending_failures_;
  std::vector<int> rack_of_device_;   // empty = no domain attribution
  std::vector<int> domain_verdicts_;  // racks attributed since last take
  HealthSummary summary_;
};

}  // namespace heterog::health
