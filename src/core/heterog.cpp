#include "core/heterog.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/log.h"
#include "sim/fault_sim.h"

namespace heterog {

namespace {

/// Everything the Strategy Maker + Graph Compiler pipeline produces for one
/// (training graph, cluster) pair. get_runner builds the initial deployment
/// from this; the fault-recovery path re-runs it on the survivor cluster.
struct PlanResult {
  std::shared_ptr<profiler::HardwareModel> hardware;
  std::shared_ptr<const profiler::CostModel> cost_model;
  strategy::Grouping grouping;
  strategy::StrategyMap strategy;
  rl::SearchResult search;
  std::shared_ptr<compile::CompileResult> compiled;
  sim::PlanEvaluation deployment;
};

PlanResult make_plan(const graph::GraphDef& training_graph,
                     const cluster::ClusterSpec& cluster, const HeteroGConfig& config,
                     bool with_rl, int rl_episodes) {
  PlanResult plan;

  // Profiler: regression cost models over the (synthetic) hardware.
  plan.hardware = std::make_shared<profiler::HardwareModel>(cluster);
  profiler::Profiler prof(*plan.hardware, config.profiler_seed);
  plan.cost_model = prof.profile(training_graph);

  // Strategy Maker.
  const agent::EncodedGraph encoded =
      agent::encode_graph(training_graph, *plan.cost_model, config.agent.max_groups);
  plan.grouping = encoded.grouping;

  rl::TrainConfig train_config = config.train;
  train_config.episodes = rl_episodes;
  rl::Trainer trainer(*plan.cost_model, train_config);
  if (with_rl && train_config.episodes > 0) {
    agent::PolicyNetwork policy(cluster.device_count(), config.agent);
    plan.search = trainer.search(policy, encoded);
  } else {
    // Heuristic-only mode: evaluate warm-start candidates and keep the best.
    rl::SearchResult best;
    for (const auto& candidate :
         trainer.heuristic_candidates(training_graph, plan.grouping)) {
      const auto eval = trainer.evaluate(training_graph, plan.grouping, candidate);
      const bool better =
          !eval.oom && (!best.best_feasible || eval.time_ms < best.best_time_ms);
      if (better || best.best_strategy.group_actions.empty()) {
        best.best_strategy = candidate;
        best.best_time_ms = eval.time_ms;
        best.best_feasible = !eval.oom;
      }
    }
    plan.search = std::move(best);
  }
  check(!plan.search.best_strategy.group_actions.empty(),
        "make_plan: search produced no strategy");
  plan.strategy = plan.search.best_strategy;

  // Graph Compiler against the ground-truth hardware (deployment).
  profiler::GroundTruthCosts ground_truth(*plan.hardware);
  compile::GraphCompiler deploy_compiler(ground_truth);
  plan.compiled = std::make_shared<compile::CompileResult>(
      deploy_compiler.compile(training_graph, plan.grouping, plan.strategy));

  sim::PlanEvalOptions options;
  options.policy = config.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                               : sched::OrderPolicy::kFifo;
  plan.deployment = sim::evaluate_plan(ground_truth, training_graph, plan.grouping,
                                       plan.strategy, options);
  return plan;
}

/// new_id_of[d] after removing `failed` (sorted ascending) from a
/// `device_count`-device cluster with dense ids.
std::vector<int> survivor_id_map(int device_count,
                                 const std::vector<cluster::DeviceId>& failed) {
  std::vector<int> map(static_cast<size_t>(device_count));
  int next = 0;
  for (int d = 0; d < device_count; ++d) {
    const bool dead =
        std::binary_search(failed.begin(), failed.end(), static_cast<cluster::DeviceId>(d));
    map[static_cast<size_t>(d)] = dead ? -1 : next++;
  }
  return map;
}

}  // namespace

RunStats DistRunner::run(int steps) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  RunStats stats;
  stats.steps = steps;
  stats.per_iteration_ms = deployment_.per_iteration_ms;
  stats.total_ms = deployment_.per_iteration_ms * steps;
  stats.computation_ms = deployment_.computation_ms;
  stats.communication_ms = deployment_.communication_ms;
  stats.oom = deployment_.oom;
  return stats;
}

RunStats DistRunner::run(int steps, const faults::FaultPlan& plan) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  if (plan.empty()) return run(steps);
  plan.validate(cluster_);

  RunStats stats;
  stats.steps = steps;
  stats.computation_ms = deployment_.computation_ms;
  stats.communication_ms = deployment_.communication_ms;
  stats.oom = deployment_.oom;
  stats.step_ms.reserve(static_cast<size_t>(steps));

  const FaultHandlingConfig& fh = config_.fault_handling;

  // Mutable execution state; replaced wholesale on every re-plan.
  cluster::ClusterSpec active_cluster = cluster_;
  faults::FaultPlan active_plan = plan;
  compile::DistGraph active_graph = compiled_->graph;
  double active_iter_ms = deployment_.per_iteration_ms;
  double active_cold_ms = deployment_.cold_iteration_ms;

  sim::SimOptions sim_options;
  sim_options.policy = config_.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                                    : sched::OrderPolicy::kFifo;
  sim_options.track_memory = false;
  std::map<std::string, double> scaled_cache;

  int step = 0;
  int transients_done_through = -1;  // avoid double-charging retries when a
                                     // re-plan re-enters the same step
  while (step < steps) {
    // Transient faults first: capped exponential backoff. A device still
    // failing at the retry cap is escalated to a permanent failure below.
    std::vector<cluster::DeviceId> escalated;
    for (const auto& event : active_plan.events) {
      if (event.kind != faults::FaultKind::kTransient || event.onset_step != step ||
          step <= transients_done_through) {
        continue;
      }
      int attempts = 0;
      double backoff = fh.retry_backoff_ms;
      while (attempts < event.failed_attempts && attempts < fh.max_retries) {
        stats.retry_backoff_total_ms += backoff;
        backoff = std::min(backoff * 2.0, fh.max_backoff_ms);
        ++attempts;
      }
      stats.transient_retries += attempts;
      if (attempts < event.failed_attempts) {
        log_info() << "DistRunner: transient fault on G" << event.device
                   << " still failing after " << attempts
                   << " retries at step " << step << " — escalating to failure";
        escalated.push_back(event.device);
      }
    }
    transients_done_through = std::max(transients_done_through, step);

    faults::FaultScaling scaling = faults::scaling_at(active_plan, active_cluster, step);
    for (auto d : escalated) scaling.failed.push_back(d);
    std::sort(scaling.failed.begin(), scaling.failed.end());
    scaling.failed.erase(std::unique(scaling.failed.begin(), scaling.failed.end()),
                         scaling.failed.end());

    if (!scaling.failed.empty()) {
      // Graceful degradation: re-plan on the survivors, resume at `step`.
      if (static_cast<int>(scaling.failed.size()) >= active_cluster.device_count()) {
        log_info() << "DistRunner: all devices failed at step " << step
                   << "; cannot recover";
        stats.completed = false;
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      cluster::ClusterSpec survivors = active_cluster;
      for (auto it = scaling.failed.rbegin(); it != scaling.failed.rend(); ++it) {
        survivors = survivors.remove_device(*it);
      }
      const PlanResult replanned =
          make_plan(training_graph_, survivors, config_,
                    fh.replan_rl_episodes > 0, fh.replan_rl_episodes);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();

      RecoveryReport report;
      report.fault_step = step;
      report.failed_devices = scaling.failed;
      report.steps_lost = 1;  // the in-flight step is re-executed on resume
      report.replan_wall_ms = wall_ms;
      report.pre_fault_iteration_ms = active_iter_ms;
      report.post_fault_iteration_ms = replanned.deployment.per_iteration_ms;
      report.surviving_devices = survivors.device_count();
      report.post_plan_oom = replanned.deployment.oom;
      report.escalated_transient = !escalated.empty();
      stats.recoveries.push_back(report);
      stats.oom = stats.oom || replanned.deployment.oom;

      log_info() << "DistRunner: recovered from failure of " << scaling.failed.size()
                 << " device(s) at step " << step << " in " << wall_ms
                 << " ms; plan " << active_iter_ms << " -> "
                 << replanned.deployment.per_iteration_ms << " ms/iteration on "
                 << survivors.device_count() << " survivors";

      active_plan = faults::remap_plan(
          active_plan, survivor_id_map(active_cluster.device_count(), scaling.failed));
      active_cluster = std::move(survivors);
      active_graph = replanned.compiled->graph;
      active_iter_ms = replanned.deployment.per_iteration_ms;
      active_cold_ms = replanned.deployment.cold_iteration_ms;
      scaled_cache.clear();
      continue;  // re-execute this step under the new plan
    }

    double step_time_ms = active_iter_ms;
    if (scaling.any()) {
      // Scale the steady-state time by the degraded/baseline makespan ratio
      // of a single iteration (the pipeline-overlap correction of
      // evaluate_plan carries over unchanged).
      const std::string key = scaling.signature();
      auto it = scaled_cache.find(key);
      if (it == scaled_cache.end()) {
        const compile::DistGraph scaled =
            sim::apply_fault_scaling(active_graph, active_cluster, scaling);
        it = scaled_cache
                 .emplace(key, sim::Simulator(sim_options).run(scaled).makespan_ms)
                 .first;
      }
      if (active_cold_ms > 0.0) {
        step_time_ms = active_iter_ms * it->second / active_cold_ms;
      } else {
        step_time_ms = it->second;
      }
    }
    stats.step_ms.push_back(step_time_ms);
    stats.total_ms += step_time_ms;
    ++step;
  }

  stats.total_ms += stats.retry_backoff_total_ms;
  const int executed = static_cast<int>(stats.step_ms.size());
  stats.per_iteration_ms = executed > 0 ? stats.total_ms / executed : 0.0;
  return stats;
}

strategy::StrategyBreakdown DistRunner::breakdown() const {
  return strategy::summarize_strategy(training_graph_, grouping_, strategy_,
                                      cluster_.device_count());
}

DistRunner get_runner(const std::function<graph::GraphDef()>& model_func,
                      const cluster::ClusterSpec& device_info,
                      const HeteroGConfig& config) {
  check(static_cast<bool>(model_func), "get_runner: model_func is empty");

  DistRunner runner;
  runner.cluster_ = device_info;
  runner.config_ = config;

  // Graph Analyzer: single-GPU forward graph -> full training DAG.
  const graph::GraphDef forward = model_func();
  runner.training_graph_ = graph::build_training_graph(forward);

  PlanResult plan = make_plan(runner.training_graph_, runner.cluster_, config,
                              config.search_with_rl, config.train.episodes);
  runner.hardware_ = std::move(plan.hardware);
  runner.cost_model_ = std::move(plan.cost_model);
  runner.grouping_ = std::move(plan.grouping);
  runner.strategy_ = std::move(plan.strategy);
  runner.search_ = std::move(plan.search);
  runner.compiled_ = std::move(plan.compiled);
  runner.deployment_ = std::move(plan.deployment);
  runner.per_iteration_ms_ = runner.deployment_.per_iteration_ms;
  runner.feasible_ = !runner.deployment_.oom;

  log_info() << "get_runner(" << forward.name() << "): deployed plan runs "
             << runner.per_iteration_ms_ << " ms/iteration (feasible="
             << runner.feasible_ << ")";
  return runner;
}

}  // namespace heterog
