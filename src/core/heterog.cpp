#include "core/heterog.h"

#include "common/check.h"
#include "common/log.h"

namespace heterog {

RunStats DistRunner::run(int steps) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  RunStats stats;
  stats.steps = steps;
  stats.per_iteration_ms = deployment_.per_iteration_ms;
  stats.total_ms = deployment_.per_iteration_ms * steps;
  stats.computation_ms = deployment_.computation_ms;
  stats.communication_ms = deployment_.communication_ms;
  stats.oom = deployment_.oom;
  return stats;
}

strategy::StrategyBreakdown DistRunner::breakdown() const {
  return strategy::summarize_strategy(training_graph_, grouping_, strategy_,
                                      cluster_.device_count());
}

DistRunner get_runner(const std::function<graph::GraphDef()>& model_func,
                      const cluster::ClusterSpec& device_info,
                      const HeteroGConfig& config) {
  check(static_cast<bool>(model_func), "get_runner: model_func is empty");

  DistRunner runner;
  runner.cluster_ = device_info;
  runner.use_order_scheduling_ = config.use_order_scheduling;

  // Graph Analyzer: single-GPU forward graph -> full training DAG.
  const graph::GraphDef forward = model_func();
  runner.training_graph_ = graph::build_training_graph(forward);

  // Profiler: regression cost models over the (synthetic) hardware.
  runner.hardware_ = std::make_shared<profiler::HardwareModel>(runner.cluster_);
  profiler::Profiler prof(*runner.hardware_, config.profiler_seed);
  runner.cost_model_ = prof.profile(runner.training_graph_);

  // Strategy Maker.
  const agent::EncodedGraph encoded = agent::encode_graph(
      runner.training_graph_, *runner.cost_model_, config.agent.max_groups);
  runner.grouping_ = encoded.grouping;

  rl::Trainer trainer(*runner.cost_model_, config.train);
  if (config.search_with_rl && config.train.episodes > 0) {
    agent::PolicyNetwork policy(runner.cluster_.device_count(), config.agent);
    runner.search_ = trainer.search(policy, encoded);
  } else {
    // Heuristic-only mode: evaluate warm-start candidates and keep the best.
    rl::SearchResult best;
    for (const auto& candidate :
         trainer.heuristic_candidates(runner.training_graph_, runner.grouping_)) {
      const auto eval =
          trainer.evaluate(runner.training_graph_, runner.grouping_, candidate);
      const bool better =
          !eval.oom && (!best.best_feasible || eval.time_ms < best.best_time_ms);
      if (better || best.best_strategy.group_actions.empty()) {
        best.best_strategy = candidate;
        best.best_time_ms = eval.time_ms;
        best.best_feasible = !eval.oom;
      }
    }
    runner.search_ = std::move(best);
  }
  check(!runner.search_.best_strategy.group_actions.empty(),
        "get_runner: search produced no strategy");
  runner.strategy_ = runner.search_.best_strategy;

  // Graph Compiler against the ground-truth hardware (deployment).
  profiler::GroundTruthCosts ground_truth(*runner.hardware_);
  compile::GraphCompiler deploy_compiler(ground_truth);
  runner.compiled_ = std::make_shared<compile::CompileResult>(
      deploy_compiler.compile(runner.training_graph_, runner.grouping_, runner.strategy_));

  sim::PlanEvalOptions options;
  options.policy = config.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                               : sched::OrderPolicy::kFifo;
  runner.deployment_ = sim::evaluate_plan(ground_truth, runner.training_graph_,
                                          runner.grouping_, runner.strategy_, options);
  runner.per_iteration_ms_ = runner.deployment_.per_iteration_ms;
  runner.feasible_ = !runner.deployment_.oom;

  log_info() << "get_runner(" << forward.name() << "): deployed plan runs "
             << runner.per_iteration_ms_ << " ms/iteration (feasible="
             << runner.feasible_ << ")";
  return runner;
}

}  // namespace heterog
