#include "core/heterog.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/shutdown.h"
#include "sim/fault_sim.h"
#include "strategy/serialize.h"

namespace heterog {

namespace {

/// Everything the Strategy Maker + Graph Compiler pipeline produces for one
/// (training graph, cluster) pair. get_runner builds the initial deployment
/// from this; the fault-recovery path re-runs it on the survivor cluster.
struct PlanResult {
  std::shared_ptr<profiler::HardwareModel> hardware;
  std::shared_ptr<const profiler::CostModel> cost_model;
  strategy::Grouping grouping;
  strategy::StrategyMap strategy;
  rl::SearchResult search;
  std::shared_ptr<compile::CompileResult> compiled;
  sim::PlanEvaluation deployment;
};

PlanResult make_plan(const graph::GraphDef& training_graph,
                     const cluster::ClusterSpec& cluster, const HeteroGConfig& config,
                     bool with_rl, int rl_episodes) {
  PlanResult plan;

  // Profiler: regression cost models over the (synthetic) hardware.
  plan.hardware = std::make_shared<profiler::HardwareModel>(cluster);
  profiler::Profiler prof(*plan.hardware, config.profiler_seed);
  plan.cost_model = prof.profile(training_graph);

  // Strategy Maker.
  const agent::EncodedGraph encoded =
      agent::encode_graph(training_graph, *plan.cost_model, config.agent.max_groups);
  plan.grouping = encoded.grouping;

  rl::TrainConfig train_config = config.train;
  train_config.episodes = rl_episodes;
  // The heuristic-only reduce below reads only `oom` and the feasible
  // winner's time, so rejected candidates can skip the steady-state unroll
  // (~40% of an evaluation at 1000 GPUs). The RL search keeps the full
  // evaluation: OOM rewards feed its gradients.
  if (!(with_rl && train_config.episodes > 0)) {
    train_config.skip_unroll_on_oom = true;
  }
  if (config.plan_store != nullptr) {
    // The engine's plan_key deliberately omits cluster / cost-model identity
    // (its LRU is scoped per Trainer); the durable store is not, so salt its
    // keys with exactly that identity. Covers mid-run re-plans too: a
    // survivor cluster fingerprints differently, so its entries are disjoint.
    train_config.plan_store = config.plan_store;
    train_config.plan_store_context =
        Hash64()
            .mix(cluster::cluster_fingerprint(cluster))
            .mix(config.profiler_seed)
            .mix_string("profiled-cost-model-v1")
            .digest();
  }
  rl::Trainer trainer(*plan.cost_model, train_config);
  if (with_rl && train_config.episodes > 0) {
    agent::PolicyNetwork policy(cluster.device_count(), config.agent);
    plan.search = trainer.search(policy, encoded);
  } else {
    // Heuristic-only mode: evaluate warm-start candidates (one parallel
    // batch across config.train.threads workers) and keep the best — the
    // ordered reduce makes the pick independent of the thread count.
    const auto t0 = std::chrono::steady_clock::now();
    rl::SearchResult best;
    const std::vector<strategy::StrategyMap> candidates =
        trainer.heuristic_candidates(training_graph, plan.grouping);
    const std::vector<rl::Evaluation> evals =
        trainer.evaluate_batch(training_graph, plan.grouping, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const auto& eval = evals[i];
      const bool better =
          !eval.oom && (!best.best_feasible || eval.time_ms < best.best_time_ms);
      if (better || best.best_strategy.group_actions.empty()) {
        best.best_strategy = candidates[i];
        best.best_time_ms = eval.time_ms;
        best.best_reward = eval.reward;
        best.best_feasible = !eval.oom;
      }
    }
    best.eval_cache_hits = trainer.eval_engine().stats().hits;
    best.eval_cache_misses = trainer.eval_engine().stats().misses;
    best.eval_store_hits = trainer.eval_engine().stats().store_hits;
    best.eval_store_misses = trainer.eval_engine().stats().store_misses;
    if (config.train.events != nullptr && config.train.events->ok()) {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      config.train.events->emit(obs::Event("search_end")
                                    .with("model", training_graph.name())
                                    .with("episodes_run", 0)
                                    .with("best_ms", best.best_time_ms)
                                    .with("best_reward", best.best_reward)
                                    .with("best_feasible", best.best_feasible)
                                    .with("episode_of_best", 0)
                                    .with("cache_hits", best.eval_cache_hits)
                                    .with("cache_misses", best.eval_cache_misses)
                                    .with("wall_ms", wall_ms));
    }
    plan.search = std::move(best);
  }
  check(!plan.search.best_strategy.group_actions.empty(),
        "make_plan: search produced no strategy");
  plan.strategy = plan.search.best_strategy;

  // Graph Compiler against the ground-truth hardware (deployment).
  profiler::GroundTruthCosts ground_truth(*plan.hardware);
  compile::GraphCompiler deploy_compiler(ground_truth);
  plan.compiled = std::make_shared<compile::CompileResult>(
      deploy_compiler.compile(training_graph, plan.grouping, plan.strategy));

  sim::PlanEvalOptions options;
  options.policy = config.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                               : sched::OrderPolicy::kFifo;
  options.collect_utilization = true;  // deployment path: one extra rank pass
  plan.deployment = sim::evaluate_plan(ground_truth, training_graph, plan.grouping,
                                       plan.strategy, options);
  emit_schedule_events(config.events, plan.deployment, cluster.device_count());
  return plan;
}

/// Rebuilds a deployment from an already-decided plan (resume path): the
/// profiling and compilation stages of make_plan, with the strategy search
/// replaced by the given strategy. Deterministic in (graph, cluster, config).
PlanResult deploy_fixed_plan(const graph::GraphDef& training_graph,
                             const cluster::ClusterSpec& cluster,
                             const HeteroGConfig& config, strategy::Grouping grouping,
                             strategy::StrategyMap strategy) {
  PlanResult plan;
  plan.hardware = std::make_shared<profiler::HardwareModel>(cluster);
  profiler::Profiler prof(*plan.hardware, config.profiler_seed);
  plan.cost_model = prof.profile(training_graph);
  plan.grouping = std::move(grouping);
  plan.strategy = std::move(strategy);
  plan.search.best_strategy = plan.strategy;

  profiler::GroundTruthCosts ground_truth(*plan.hardware);
  compile::GraphCompiler deploy_compiler(ground_truth);
  plan.compiled = std::make_shared<compile::CompileResult>(
      deploy_compiler.compile(training_graph, plan.grouping, plan.strategy));

  sim::PlanEvalOptions options;
  options.policy = config.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                               : sched::OrderPolicy::kFifo;
  options.collect_utilization = true;
  plan.deployment = sim::evaluate_plan(ground_truth, training_graph, plan.grouping,
                                       plan.strategy, options);
  emit_schedule_events(config.events, plan.deployment, cluster.device_count());
  plan.search.best_time_ms = plan.deployment.per_iteration_ms;
  plan.search.best_feasible = !plan.deployment.oom;
  return plan;
}

/// new_id_of[d] after removing `failed` (sorted ascending) from a
/// `device_count`-device cluster with dense ids.
std::vector<int> survivor_id_map(int device_count,
                                 const std::vector<cluster::DeviceId>& failed) {
  std::vector<int> map(static_cast<size_t>(device_count));
  int next = 0;
  for (int d = 0; d < device_count; ++d) {
    const bool dead =
        std::binary_search(failed.begin(), failed.end(), static_cast<cluster::DeviceId>(d));
    map[static_cast<size_t>(d)] = dead ? -1 : next++;
  }
  return map;
}

ckpt::RecoveryRecord to_record(const RecoveryReport& report) {
  ckpt::RecoveryRecord record;
  record.fault_step = report.fault_step;
  record.failed_devices = report.failed_devices;
  record.steps_lost = report.steps_lost;
  record.replan_wall_ms = report.replan_wall_ms;
  record.pre_fault_iteration_ms = report.pre_fault_iteration_ms;
  record.post_fault_iteration_ms = report.post_fault_iteration_ms;
  record.surviving_devices = report.surviving_devices;
  record.post_plan_oom = report.post_plan_oom;
  record.escalated_transient = report.escalated_transient;
  record.detection_attempts = report.detection_attempts;
  record.degraded = report.degraded;
  return record;
}

}  // namespace

void emit_schedule_events(obs::EventLog* events, const sim::PlanEvaluation& eval,
                          int device_count) {
  if (events == nullptr || !events->ok()) return;
  const double makespan = eval.cold_iteration_ms;
  const double denom = makespan > 0.0 ? makespan : 1.0;
  events->emit(obs::Event("schedule")
                   .with("makespan_ms", makespan)
                   .with("per_iteration_ms", eval.per_iteration_ms)
                   .with("computation_ms", eval.computation_ms)
                   .with("communication_ms", eval.communication_ms)
                   .with("critical_path_ms", eval.critical_path_ms)
                   .with("critical_path_share", eval.critical_path_ms / denom)
                   .with("devices", device_count)
                   .with("oom", eval.oom));
  for (size_t d = 0; d < eval.device_busy_ms.size(); ++d) {
    events->emit(obs::Event("device_utilization")
                     .with("device", static_cast<int>(d))
                     .with("busy_ms", eval.device_busy_ms[d])
                     .with("utilization", eval.device_busy_ms[d] / denom));
  }
  for (const auto& link : eval.comm_busy) {
    events->emit(obs::Event("link_utilization")
                     .with("resource", link.resource)
                     .with("busy_ms", link.busy_ms)
                     .with("utilization", link.busy_ms / denom));
  }
}

RunStats DistRunner::run(int steps) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  RunStats stats;
  stats.steps = steps;
  stats.per_iteration_ms = deployment_.per_iteration_ms;
  stats.total_ms = deployment_.per_iteration_ms * steps;
  stats.computation_ms = deployment_.computation_ms;
  stats.communication_ms = deployment_.communication_ms;
  stats.oom = deployment_.oom;
  if (config_.events != nullptr && config_.events->ok()) {
    obs::EventLog& events = *config_.events;
    events.emit(obs::Event("run_start")
                    .with("steps", steps)
                    .with("start_step", 0)
                    .with("devices", cluster_.device_count())
                    .with("per_iteration_ms", stats.per_iteration_ms)
                    .with("faults", 0)
                    .with("checkpointing", false));
    // The fast path never simulates individual steps; every step costs the
    // steady-state per-iteration time.
    for (int s = 0; s < steps; ++s) {
      events.emit(obs::Event("run_step")
                      .with("step", s)
                      .with("step_ms", stats.per_iteration_ms));
    }
    events.emit(obs::Event("run_end")
                    .with("steps_executed", steps)
                    .with("total_ms", stats.total_ms)
                    .with("per_iteration_ms", stats.per_iteration_ms)
                    .with("transient_retries", 0)
                    .with("retry_backoff_ms", 0.0)
                    .with("recoveries", 0)
                    .with("completed", true));
  }
  return stats;
}

RunStats DistRunner::run(int steps, const faults::FaultPlan& plan) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  if (plan.empty()) return run(steps);
  return run_impl(steps, plan, 0, ckpt::CheckpointOptions{}, nullptr);
}

RunStats DistRunner::run(int steps, const ckpt::CheckpointOptions& ckpt) const {
  return run_impl(steps, faults::FaultPlan{}, 0, ckpt, nullptr);
}

RunStats DistRunner::run(int steps, const faults::FaultPlan& plan,
                         const ckpt::CheckpointOptions& ckpt) const {
  return run_impl(steps, plan, 0, ckpt, nullptr);
}

RunStats DistRunner::run_impl(int steps, const faults::FaultPlan& plan, int start_step,
                              const ckpt::CheckpointOptions& copts,
                              const ckpt::RunJournal* prior) const {
  check(steps >= 0, "DistRunner::run: negative steps");
  check(start_step >= 0 && start_step <= steps, "DistRunner::run: bad start step");
  if (!plan.empty()) plan.validate(cluster_);

  RunStats stats;
  stats.steps = steps - start_step;
  stats.computation_ms = deployment_.computation_ms;
  stats.communication_ms = deployment_.communication_ms;
  stats.oom = deployment_.oom;
  stats.step_ms.reserve(static_cast<size_t>(steps - start_step));

  const FaultHandlingConfig& fh = config_.fault_handling;
  const health::HealthPolicy& hp = config_.health;
  // Online = reaction from measurements only (health monitor); off = the
  // PR-1 oracle path that reads the injected plan directly.
  const bool online = hp.enabled;
  const bool det_walls = fh.deterministic_wall_times;

  std::unique_ptr<health::HealthMonitor> monitor;
  if (online) {
    monitor = std::make_unique<health::HealthMonitor>(cluster_.device_count(), hp,
                                                      config_.events);
    if (cluster_.has_topology()) {
      // Rack ids let the monitor attribute coincident same-rack failures to
      // a domain event — still measurement-only: the map describes where
      // devices live, not what faults are scheduled.
      const cluster::TopologySpec& topo = cluster_.topology();
      std::vector<int> racks(static_cast<size_t>(cluster_.device_count()), -1);
      for (const auto& d : cluster_.devices()) {
        racks[static_cast<size_t>(d.id)] =
            topo.rack_of_host[static_cast<size_t>(d.host)];
      }
      monitor->set_rack_map(std::move(racks));
    }
  }

  // Journal bookkeeping. The journal always describes the run from step 0:
  // a resumed run extends `prior`'s history, a fresh run starts its own, so
  // a crash during a resumed run resumes again from a complete record.
  const bool ckpt_on = copts.enabled();
  ckpt::RunJournal journal;
  if (ckpt_on) {
    if (prior) {
      journal = *prior;
    } else {
      journal.model_name = training_graph_.name();
      journal.meta = copts.meta;
      journal.cluster = cluster_;
      journal.cluster_crc = cluster::cluster_fingerprint(cluster_);
      journal.profiler_seed = config_.profiler_seed;
      journal.use_order_scheduling = config_.use_order_scheduling;
      journal.max_groups = config_.agent.max_groups;
      journal.fh_max_retries = fh.max_retries;
      journal.fh_retry_backoff_ms = fh.retry_backoff_ms;
      journal.fh_max_backoff_ms = fh.max_backoff_ms;
      journal.fh_replan_rl_episodes = fh.replan_rl_episodes;
      journal.fh_deterministic_walls = det_walls;
      journal.plan_text = strategy::to_text(strategy_, cluster_);
      journal.grouping_assignment = grouping_.assignment();
      if (!plan.empty()) journal.fault_plan_json = faults::fault_plan_to_json(plan);
    }
    journal.total_steps = steps;
    journal.ckpt_every = copts.every;
    journal.watermark = start_step;
  }
  const int prior_retries = prior ? prior->transient_retries : 0;
  const double prior_backoff = prior ? prior->retry_backoff_total_ms : 0.0;

  obs::EventLog* events = config_.events;
  const bool log_events = events != nullptr && events->ok();

  const auto save_snapshot = [&](int completed_steps) {
    if (!ckpt_on) return;
    journal.watermark = completed_steps;
    journal.transient_retries = prior_retries + stats.transient_retries;
    journal.retry_backoff_total_ms = prior_backoff + stats.retry_backoff_total_ms;
    if (monitor) journal.health_state = monitor->serialize();
    const std::string path = copts.journal_path();
    const auto t0 = std::chrono::steady_clock::now();
    const bool saved = ckpt::save_journal(path, journal);
    if (log_events) {
      const double wall_ms =
          det_walls ? 0.0
                    : std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      events->emit(obs::Event("run_checkpoint")
                       .with("step", completed_steps)
                       .with("wall_ms", wall_ms)
                       .with("path", path)
                       .with("ok", saved));
    }
    if (!saved) {
      log_info() << "DistRunner: failed to write checkpoint journal to " << path
                 << " — continuing without this snapshot";
    } else if (copts.after_checkpoint) {
      copts.after_checkpoint(completed_steps, path);
    }
  };

  if (log_events) {
    events->emit(obs::Event("run_start")
                     .with("steps", steps)
                     .with("start_step", start_step)
                     .with("devices", cluster_.device_count())
                     .with("per_iteration_ms", deployment_.per_iteration_ms)
                     .with("faults", static_cast<int>(plan.events.size()))
                     .with("checkpointing", ckpt_on));
  }

  // Mutable execution state; replaced wholesale on every re-plan. The
  // injector owns the fault plan and the fault-scaled simulations — the
  // *injection* half of the pipeline. On the oracle path the loop below is
  // allowed to query it (oracle_scaling / oracle_plan); on the online path
  // the loop consumes only the health::Observations it hands out.
  cluster::ClusterSpec active_cluster = cluster_;
  double active_iter_ms = deployment_.per_iteration_ms;
  double active_cold_ms = deployment_.cold_iteration_ms;

  sim::SimOptions sim_options;
  sim_options.policy = config_.use_order_scheduling ? sched::OrderPolicy::kRankPriority
                                                    : sched::OrderPolicy::kFifo;
  sim_options.track_memory = false;
  sim::FaultInjector injector(compiled_->graph, cluster_, plan, sim_options);

  int step = 0;
  int transients_done_through = -1;  // avoid double-charging retries when a
                                     // re-plan re-enters the same step

  // Resume determinism proof for online runs: once the replayed prefix
  // reaches the watermark, the rebuilt monitor must match the journalled
  // snapshot byte for byte.
  bool health_checked = false;
  const auto check_replayed_health = [&] {
    if (!online || health_checked) return;
    health_checked = true;
    if (prior != nullptr && !prior->health_state.empty() &&
        monitor->serialize() != prior->health_state) {
      throw ckpt::JournalError(
          "resume_run: replayed health monitor state diverges from the journal "
          "snapshot — the journal was written by a different policy or code version");
    }
  };

  // Cooperative shutdown (SIGTERM/SIGINT routed through common/shutdown):
  // stop at the next *live* step boundary — never mid-step, never during
  // replay — so the final save_snapshot below leaves a resumable journal and
  // the store/event-log flush in the caller runs through destructors.
  const auto shutdown_poll = [&](bool live) {
    if (!live || !shutdown_requested()) return false;
    stats.interrupted = true;
    stats.completed = false;
    log_info() << "DistRunner: shutdown requested — stopping at step " << step
               << " with state flushed";
    return true;
  };

  while (!online && step < steps) {
    // Steps before start_step are replayed: state transitions (escalation,
    // re-planning, fault-plan remapping) are applied so execution state at
    // the watermark matches an uninterrupted run's, but nothing is charged
    // to stats — those steps completed before the crash.
    const bool live = step >= start_step;
    if (shutdown_poll(live)) break;

    // Transient faults first: capped exponential backoff. A device still
    // failing at the retry cap is escalated to a permanent failure below.
    std::vector<cluster::DeviceId> escalated;
    for (const auto& event : injector.oracle_plan().events) {
      if (event.kind != faults::FaultKind::kTransient || event.onset_step != step ||
          step <= transients_done_through) {
        continue;
      }
      int attempts = 0;
      double backoff = fh.retry_backoff_ms;
      double backoff_spent_ms = 0.0;
      while (attempts < event.failed_attempts && attempts < fh.max_retries) {
        backoff_spent_ms += backoff;
        backoff = std::min(backoff * 2.0, fh.max_backoff_ms);
        ++attempts;
      }
      if (live) {
        stats.retry_backoff_total_ms += backoff_spent_ms;
        stats.transient_retries += attempts;
        if (attempts > 0 && log_events) {
          events->emit(obs::Event("run_retry")
                           .with("step", step)
                           .with("device", static_cast<int>(event.device))
                           .with("attempts", attempts)
                           .with("backoff_ms", backoff_spent_ms));
        }
      }
      if (attempts < event.failed_attempts) {
        if (live) {
          log_info() << "DistRunner: transient fault on G" << event.device
                     << " still failing after " << attempts
                     << " retries at step " << step << " — escalating to failure";
        }
        escalated.push_back(event.device);
      }
    }
    transients_done_through = std::max(transients_done_through, step);

    faults::FaultScaling scaling = injector.oracle_scaling(step);
    for (auto d : escalated) scaling.failed.push_back(d);
    std::sort(scaling.failed.begin(), scaling.failed.end());
    scaling.failed.erase(std::unique(scaling.failed.begin(), scaling.failed.end()),
                         scaling.failed.end());

    if (!scaling.failed.empty()) {
      // Graceful degradation: re-plan on the survivors, resume at `step`.
      if (static_cast<int>(scaling.failed.size()) >= active_cluster.device_count()) {
        log_info() << "DistRunner: all devices failed at step " << step
                   << "; cannot recover";
        stats.completed = false;
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      cluster::ClusterSpec survivors = active_cluster;
      for (auto it = scaling.failed.rbegin(); it != scaling.failed.rend(); ++it) {
        survivors = survivors.remove_device(*it);
      }
      const PlanResult replanned =
          make_plan(training_graph_, survivors, config_,
                    fh.replan_rl_episodes > 0, fh.replan_rl_episodes);
      const double wall_ms =
          det_walls ? 0.0
                    : std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

      RecoveryReport report;
      report.fault_step = step;
      report.failed_devices = scaling.failed;
      report.steps_lost = 1;  // the in-flight step is re-executed on resume
      report.replan_wall_ms = wall_ms;
      report.pre_fault_iteration_ms = active_iter_ms;
      report.post_fault_iteration_ms = replanned.deployment.per_iteration_ms;
      report.surviving_devices = survivors.device_count();
      report.post_plan_oom = replanned.deployment.oom;
      report.escalated_transient = !escalated.empty();
      stats.oom = stats.oom || replanned.deployment.oom;
      if (live) {
        stats.recoveries.push_back(report);
        if (ckpt_on) journal.recoveries.push_back(to_record(report));
        if (log_events) {
          events->emit(obs::Event("run_recovery")
                           .with("step", step)
                           .with("failed_devices",
                                 static_cast<int>(scaling.failed.size()))
                           .with("steps_lost", report.steps_lost)
                           .with("replan_wall_ms", wall_ms)
                           .with("pre_fault_iteration_ms",
                                 report.pre_fault_iteration_ms)
                           .with("post_fault_iteration_ms",
                                 report.post_fault_iteration_ms)
                           .with("surviving_devices", report.surviving_devices)
                           .with("post_plan_oom", report.post_plan_oom)
                           .with("escalated_transient", report.escalated_transient));
        }
        log_info() << "DistRunner: recovered from failure of " << scaling.failed.size()
                   << " device(s) at step " << step << " in " << wall_ms
                   << " ms; plan " << active_iter_ms << " -> "
                   << replanned.deployment.per_iteration_ms << " ms/iteration on "
                   << survivors.device_count() << " survivors";
      }

      injector.apply_replan(replanned.compiled->graph, survivors,
                            survivor_id_map(active_cluster.device_count(),
                                            scaling.failed));
      active_cluster = std::move(survivors);
      active_iter_ms = replanned.deployment.per_iteration_ms;
      active_cold_ms = replanned.deployment.cold_iteration_ms;
      continue;  // re-execute this step under the new plan
    }

    if (!live) {
      ++step;
      continue;
    }

    double step_time_ms = active_iter_ms;
    if (scaling.any()) {
      // Scale the steady-state time by the degraded/baseline makespan ratio
      // of a single iteration (the pipeline-overlap correction of
      // evaluate_plan carries over unchanged).
      const double scaled_ms = injector.measure(scaling).makespan_ms;
      if (active_cold_ms > 0.0) {
        step_time_ms = active_iter_ms * scaled_ms / active_cold_ms;
      } else {
        step_time_ms = scaled_ms;
      }
    }
    stats.step_ms.push_back(step_time_ms);
    stats.total_ms += step_time_ms;
    if (ckpt_on) journal.step_ms.push_back(step_time_ms);
    if (log_events) {
      events->emit(
          obs::Event("run_step").with("step", step).with("step_ms", step_time_ms));
    }
    ++step;
    // Mid-run snapshots are anchored at absolute step counts so an
    // interrupted and an uninterrupted run checkpoint at the same steps.
    if (ckpt_on && step % copts.every == 0 && step < steps) save_snapshot(step);
  }

  // Online path: *reaction* from measurements only. This loop never reads
  // the injected FaultPlan — the injector hands out one health::Observation
  // per attempt and every decision below (retry, escalation, quarantine,
  // re-plan, degradation) is the monitor's inference over those.
  std::vector<uint8_t> straggler_handled(
      static_cast<size_t>(active_cluster.device_count()), 0);
  while (online && step < steps) {
    const bool live = step >= start_step;
    if (shutdown_poll(live)) break;
    if (live) check_replayed_health();

    // Attempt the step until it completes, a permanent failure is confirmed
    // (phi accrual over missed heartbeats) or a persistently erroring device
    // is escalated. Retry arithmetic mirrors the oracle path so per-step
    // stats stay comparable — but the decisions come from observed error
    // attributions, never the plan.
    const bool transients_active = step > transients_done_through;
    std::vector<int> error_count(static_cast<size_t>(active_cluster.device_count()),
                                 0);
    std::vector<double> next_backoff(
        static_cast<size_t>(active_cluster.device_count()), fh.retry_backoff_ms);
    health::Observation obs;
    std::vector<cluster::DeviceId> confirmed;
    int attempts_spent = 0;
    bool escalated = false;
    for (int attempt = 0;; ++attempt) {
      check(attempt < 100000, "DistRunner: online recovery failed to terminate");
      obs = injector.attempt_step(step, attempt, transients_active);
      monitor->observe(obs, live);
      if (!obs.completed && obs.error_device < 0) {
        // Timed-out attempt: waiting out the heartbeat interval is detection
        // overhead, and each timeout draws from the retry budget so
        // detection terminates even when phi accrues slowly.
        if (live) stats.detection_overhead_ms += hp.heartbeat_timeout_ms;
        monitor->charge_retry();
      }
      confirmed = monitor->take_confirmed_failures();
      attempts_spent = attempt + 1;
      if (obs.completed || !confirmed.empty()) break;
      if (obs.error_device >= 0) {
        const int d = obs.error_device;
        const int n = ++error_count[static_cast<size_t>(d)];
        if (n > fh.max_retries || !monitor->charge_retry()) {
          if (live) {
            log_info() << "DistRunner: G" << d << " still erroring after " << (n - 1)
                       << " retries at step " << step << " — escalating to failure";
          }
          monitor->force_failure(d, step, "error");
          confirmed = monitor->take_confirmed_failures();
          escalated = true;
          break;
        }
        if (live) {
          stats.transient_retries += 1;
          stats.retry_backoff_total_ms += next_backoff[static_cast<size_t>(d)];
          if (log_events) {
            events->emit(obs::Event("run_retry")
                             .with("step", step)
                             .with("device", d)
                             .with("attempts", n)
                             .with("backoff_ms", next_backoff[static_cast<size_t>(d)]));
          }
        }
        next_backoff[static_cast<size_t>(d)] =
            std::min(next_backoff[static_cast<size_t>(d)] * 2.0, fh.max_backoff_ms);
      }
    }

    bool charged = false;
    if (obs.completed) {
      transients_done_through = std::max(transients_done_through, step);
      // Calibrate the measured makespan against the deployment's cold
      // makespan: a clean step costs exactly active_iter_ms (measured/cold
      // == 1) and a degraded step scales by the observed ratio — the same
      // arithmetic as the oracle path, fed by measurement.
      double step_time_ms = obs.makespan_ms;
      if (active_cold_ms > 0.0) {
        step_time_ms = active_iter_ms * obs.makespan_ms / active_cold_ms;
      }
      if (live) {
        stats.step_ms.push_back(step_time_ms);
        stats.total_ms += step_time_ms;
        if (ckpt_on) journal.step_ms.push_back(step_time_ms);
        if (log_events) {
          events->emit(
              obs::Event("run_step").with("step", step).with("step_ms", step_time_ms));
        }
      }
      charged = true;
    }

    if (!confirmed.empty()) {
      // Mandatory failure re-plan. The breaker / deadline can degrade it to
      // the heuristic path but never suppress it — running without the
      // failed devices is not optional.
      if (static_cast<int>(confirmed.size()) >= active_cluster.device_count()) {
        log_info() << "DistRunner: all devices failed at step " << step
                   << "; cannot recover";
        stats.completed = false;
        break;
      }
      const bool breaker = monitor->breaker_open();
      const bool want_rl = fh.replan_rl_episodes > 0;
      const bool over_deadline =
          want_rl && hp.replan_deadline_ms > 0.0 &&
          fh.replan_rl_episodes * active_iter_ms > hp.replan_deadline_ms;
      const bool degraded = want_rl && (breaker || over_deadline);
      const bool use_rl = want_rl && !degraded;

      const auto t0 = std::chrono::steady_clock::now();
      cluster::ClusterSpec survivors = active_cluster;
      for (auto it = confirmed.rbegin(); it != confirmed.rend(); ++it) {
        survivors = survivors.remove_device(*it);
      }
      const PlanResult replanned =
          make_plan(training_graph_, survivors, config_, use_rl,
                    use_rl ? fh.replan_rl_episodes : 0);
      const double wall_ms =
          det_walls ? 0.0
                    : std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      monitor->record_replan(step, live);
      // Racks the monitor attributed this batch to (consumed before
      // on_replan clears them). A domain verdict means the whole rack went
      // into `confirmed` at once — one replan, not N serial ones.
      const std::vector<int> domain_racks = monitor->take_domain_verdicts();

      RecoveryReport report;
      report.fault_step = step;
      report.failed_devices = confirmed;
      report.steps_lost = charged ? 0 : 1;
      report.replan_wall_ms = wall_ms;
      report.pre_fault_iteration_ms = active_iter_ms;
      report.post_fault_iteration_ms = replanned.deployment.per_iteration_ms;
      report.surviving_devices = survivors.device_count();
      report.post_plan_oom = replanned.deployment.oom;
      report.escalated_transient = escalated;
      report.detection_attempts = attempts_spent;
      report.degraded = degraded;
      report.domain_rack = domain_racks.empty() ? -1 : domain_racks.front();
      stats.oom = stats.oom || replanned.deployment.oom;
      if (live) {
        stats.recoveries.push_back(report);
        if (ckpt_on) journal.recoveries.push_back(to_record(report));
        if (log_events) {
          events->emit(obs::Event("run_recovery")
                           .with("step", step)
                           .with("failed_devices", static_cast<int>(confirmed.size()))
                           .with("steps_lost", report.steps_lost)
                           .with("replan_wall_ms", wall_ms)
                           .with("pre_fault_iteration_ms",
                                 report.pre_fault_iteration_ms)
                           .with("post_fault_iteration_ms",
                                 report.post_fault_iteration_ms)
                           .with("surviving_devices", report.surviving_devices)
                           .with("post_plan_oom", report.post_plan_oom)
                           .with("escalated_transient", report.escalated_transient));
          if (degraded) {
            events->emit(obs::Event("degraded_replan")
                             .with("step", step)
                             .with("reason", breaker ? "breaker_open" : "deadline")
                             .with("devices", static_cast<int>(confirmed.size()))
                             .with("replan", true));
          }
          for (const int rack : domain_racks) {
            events->emit(obs::Event("domain_replan")
                             .with("step", step)
                             .with("rack", rack)
                             .with("devices", static_cast<int>(confirmed.size()))
                             .with("surviving_devices", report.surviving_devices)
                             .with("degraded", degraded));
          }
        }
        log_info() << "DistRunner: online detection confirmed failure of "
                   << confirmed.size() << " device(s) at step " << step << " after "
                   << attempts_spent << " attempt(s); plan " << active_iter_ms
                   << " -> " << replanned.deployment.per_iteration_ms
                   << " ms/iteration on " << survivors.device_count()
                   << " survivors" << (degraded ? " (degraded re-plan)" : "");
      }

      const std::vector<int> id_map =
          survivor_id_map(active_cluster.device_count(), confirmed);
      injector.apply_replan(replanned.compiled->graph, survivors, id_map);
      monitor->on_replan(id_map);
      std::vector<uint8_t> handled_remapped(
          static_cast<size_t>(survivors.device_count()), 0);
      for (size_t d = 0; d < straggler_handled.size(); ++d) {
        if (id_map[d] >= 0) {
          handled_remapped[static_cast<size_t>(id_map[d])] = straggler_handled[d];
        }
      }
      straggler_handled = std::move(handled_remapped);
      active_cluster = std::move(survivors);
      active_iter_ms = replanned.deployment.per_iteration_ms;
      active_cold_ms = replanned.deployment.cold_iteration_ms;
      if (charged) {
        ++step;
        if (live && ckpt_on && step % copts.every == 0 && step < steps) {
          save_snapshot(step);
        }
      }
      continue;  // failure mid-step: re-execute it under the new plan
    }

    // Straggler reaction: devices the monitor quarantined while observing
    // this step. Each quarantine episode is handled once; a reinstated
    // device becomes reactive again.
    std::vector<int> quarantined_now;
    for (int d = 0; d < active_cluster.device_count(); ++d) {
      const health::DeviceState st = monitor->state(d);
      if (st == health::DeviceState::kQuarantined &&
          !straggler_handled[static_cast<size_t>(d)]) {
        quarantined_now.push_back(d);
        straggler_handled[static_cast<size_t>(d)] = 1;
      } else if (st == health::DeviceState::kHealthy) {
        straggler_handled[static_cast<size_t>(d)] = 0;
      }
    }
    if (!quarantined_now.empty() && hp.replan_on_straggler) {
      if (monitor->breaker_open()) {
        // Breaker open: keep the current plan and absorb the slowdown
        // (derate in place) instead of piling more re-plans on a run that is
        // already thrashing.
        if (live && log_events) {
          events->emit(obs::Event("degraded_replan")
                           .with("step", step)
                           .with("reason", "derate_in_place")
                           .with("devices",
                                 static_cast<int>(quarantined_now.size()))
                           .with("replan", false));
        }
      } else {
        // Optimisation re-plan against the *believed* cluster: derate the
        // quarantined devices by their measured slowdown estimates (all
        // reaction-side knowledge) and choose a plan for that. The chosen
        // strategy is then deployed on the real cluster — the injector keeps
        // applying the true slowdown, so deploying on the derated spec would
        // double-apply it.
        faults::FaultScaling believed;
        believed.step = step;
        believed.compute_slowdown.assign(
            static_cast<size_t>(active_cluster.device_count()), 1.0);
        for (int d : quarantined_now) {
          believed.compute_slowdown[static_cast<size_t>(d)] =
              std::max(1.0, monitor->estimated_slowdown(d));
        }
        const cluster::ClusterSpec derated =
            faults::degraded_cluster(active_cluster, believed);
        const PlanResult choice = make_plan(training_graph_, derated, config_,
                                            /*with_rl=*/false, 0);
        const PlanResult redeployed =
            deploy_fixed_plan(training_graph_, active_cluster, config_,
                              choice.grouping, choice.strategy);
        monitor->record_replan(step, live);
        std::vector<int> identity(
            static_cast<size_t>(active_cluster.device_count()));
        std::iota(identity.begin(), identity.end(), 0);
        injector.apply_replan(redeployed.compiled->graph, active_cluster, identity);
        monitor->on_replan(identity);
        stats.oom = stats.oom || redeployed.deployment.oom;
        if (live) {
          if (log_events) {
            events->emit(obs::Event("degraded_replan")
                             .with("step", step)
                             .with("reason", "straggler_replan")
                             .with("devices",
                                   static_cast<int>(quarantined_now.size()))
                             .with("replan", true));
          }
          log_info() << "DistRunner: re-planned around " << quarantined_now.size()
                     << " quarantined straggler(s) at step " << step << "; plan "
                     << active_iter_ms << " -> "
                     << redeployed.deployment.per_iteration_ms << " ms/iteration";
        }
        active_iter_ms = redeployed.deployment.per_iteration_ms;
        active_cold_ms = redeployed.deployment.cold_iteration_ms;
      }
    }

    ++step;
    if (live && ckpt_on && step % copts.every == 0 && step < steps) {
      save_snapshot(step);
    }
  }
  check_replayed_health();

  stats.total_ms += stats.retry_backoff_total_ms + stats.detection_overhead_ms;
  if (monitor) stats.health = monitor->summary();
  const int executed = static_cast<int>(stats.step_ms.size());
  stats.per_iteration_ms = executed > 0 ? stats.total_ms / executed : 0.0;
  save_snapshot(step);  // final snapshot: run end, or the step recovery died at
  if (log_events) {
    events->emit(obs::Event("run_end")
                     .with("steps_executed", executed)
                     .with("total_ms", stats.total_ms)
                     .with("per_iteration_ms", stats.per_iteration_ms)
                     .with("transient_retries", stats.transient_retries)
                     .with("retry_backoff_ms", stats.retry_backoff_total_ms)
                     .with("recoveries", static_cast<int>(stats.recoveries.size()))
                     .with("completed", stats.completed)
                     .with("interrupted", stats.interrupted));
  }
  return stats;
}

strategy::StrategyBreakdown DistRunner::breakdown() const {
  return strategy::summarize_strategy(training_graph_, grouping_, strategy_,
                                      cluster_.device_count());
}

DistRunner get_runner(const std::function<graph::GraphDef()>& model_func,
                      const cluster::ClusterSpec& device_info,
                      const HeteroGConfig& config) {
  check(static_cast<bool>(model_func), "get_runner: model_func is empty");

  DistRunner runner;
  runner.cluster_ = device_info;
  runner.config_ = config;

  // Graph Analyzer: single-GPU forward graph -> full training DAG.
  const graph::GraphDef forward = model_func();
  runner.training_graph_ = graph::build_training_graph(forward);

  PlanResult plan = make_plan(runner.training_graph_, runner.cluster_, config,
                              config.search_with_rl, config.train.episodes);
  runner.hardware_ = std::move(plan.hardware);
  runner.cost_model_ = std::move(plan.cost_model);
  runner.grouping_ = std::move(plan.grouping);
  runner.strategy_ = std::move(plan.strategy);
  runner.search_ = std::move(plan.search);
  runner.compiled_ = std::move(plan.compiled);
  runner.deployment_ = std::move(plan.deployment);
  runner.per_iteration_ms_ = runner.deployment_.per_iteration_ms;
  runner.feasible_ = !runner.deployment_.oom;

  log_info() << "get_runner(" << forward.name() << "): deployed plan runs "
             << runner.per_iteration_ms_ << " ms/iteration (feasible="
             << runner.feasible_ << ")";
  return runner;
}

RunStats resume_run(const std::string& journal_path,
                    const std::function<graph::GraphDef()>& model_func,
                    const ckpt::CheckpointOptions& ckpt, obs::EventLog* events,
                    store::PlanStore* plan_store) {
  check(static_cast<bool>(model_func), "resume_run: model_func is empty");

  const ckpt::RunJournal journal = ckpt::load_journal(journal_path);

  // The journal CRC already proved the bytes are intact; the fingerprint
  // check proves the *cluster* is the one the plan was deployed on (it would
  // catch, e.g., a hand-edited journal re-checksummed over different
  // hardware).
  const uint32_t fp = cluster::cluster_fingerprint(journal.cluster);
  if (fp != journal.cluster_crc) {
    throw ckpt::JournalError(
        "resume_run: cluster fingerprint mismatch (journal says " +
        crc32_hex(journal.cluster_crc) + ", embedded cluster hashes to " +
        crc32_hex(fp) + ")");
  }

  const graph::GraphDef forward = model_func();
  graph::GraphDef training_graph = graph::build_training_graph(forward);
  if (training_graph.name() != journal.model_name) {
    throw ckpt::JournalError("resume_run: model mismatch — journal was written for '" +
                             journal.model_name + "', model_func built '" +
                             training_graph.name() + "'");
  }
  if (static_cast<int>(journal.grouping_assignment.size()) !=
      training_graph.op_count()) {
    throw ckpt::JournalError(
        "resume_run: model mismatch — journal grouping covers " +
        std::to_string(journal.grouping_assignment.size()) + " ops, model_func built " +
        std::to_string(training_graph.op_count()));
  }

  HeteroGConfig config;
  config.profiler_seed = journal.profiler_seed;
  config.use_order_scheduling = journal.use_order_scheduling;
  config.agent.max_groups = journal.max_groups;
  config.fault_handling.max_retries = journal.fh_max_retries;
  config.fault_handling.retry_backoff_ms = journal.fh_retry_backoff_ms;
  config.fault_handling.max_backoff_ms = journal.fh_max_backoff_ms;
  config.fault_handling.replan_rl_episodes = journal.fh_replan_rl_episodes;
  config.fault_handling.deterministic_wall_times = journal.fh_deterministic_walls;
  // An online-monitored run journals its serialized monitor; the embedded
  // policy re-enables monitoring on resume so the tail replays the same
  // detection decisions (run_impl cross-checks the replayed state).
  if (!journal.health_state.empty()) {
    try {
      config.health = health::HealthMonitor::deserialize(journal.health_state).policy();
    } catch (const health::HealthError& e) {
      throw ckpt::JournalError(
          std::string("resume_run: embedded health state invalid: ") + e.what());
    }
  }
  config.events = events;  // schedule + run_* telemetry of the resumed tail
  config.plan_store = plan_store;  // durable eval cache for mid-run re-plans

  // Re-hydrate the deployed plan. These artifacts live *inside* the
  // CRC-valid journal, so a failure here is journal corruption, not a
  // plan-file problem — re-surface as JournalError.
  strategy::StrategyMap strategy;
  strategy::Grouping grouping;
  faults::FaultPlan fault_plan;
  try {
    strategy = strategy::parse_plan(journal.plan_text, journal.cluster);
    grouping = strategy::Grouping::from_assignment(journal.grouping_assignment);
    if (!journal.fault_plan_json.empty()) {
      fault_plan = faults::parse_fault_plan_json(journal.fault_plan_json);
    }
  } catch (const std::exception& e) {
    throw ckpt::JournalError(std::string("resume_run: embedded artifact invalid: ") +
                             e.what());
  }

  // Recompile the dist graph from the journalled plan — no strategy search
  // is repeated, so resume cost is profile + compile only.
  PlanResult plan = deploy_fixed_plan(training_graph, journal.cluster, config,
                                      std::move(grouping), std::move(strategy));

  DistRunner runner;
  runner.cluster_ = journal.cluster;
  runner.config_ = config;
  runner.training_graph_ = std::move(training_graph);
  runner.hardware_ = std::move(plan.hardware);
  runner.cost_model_ = std::move(plan.cost_model);
  runner.grouping_ = std::move(plan.grouping);
  runner.strategy_ = std::move(plan.strategy);
  runner.search_ = std::move(plan.search);
  runner.compiled_ = std::move(plan.compiled);
  runner.deployment_ = std::move(plan.deployment);
  runner.per_iteration_ms_ = runner.deployment_.per_iteration_ms;
  runner.feasible_ = !runner.deployment_.oom;

  // The resumed run keeps checkpointing: explicit options win, the journal's
  // own directory and cadence are the default.
  ckpt::CheckpointOptions copts = ckpt;
  if (copts.dir.empty()) {
    const std::string parent =
        std::filesystem::path(journal_path).parent_path().string();
    copts.dir = parent.empty() ? std::string(".") : parent;
  }
  if (copts.every <= 0) copts.every = journal.ckpt_every;
  if (copts.meta.empty()) copts.meta = journal.meta;

  log_info() << "resume_run(" << journal_path << "): resuming '"
             << journal.model_name << "' at step " << journal.watermark << "/"
             << journal.total_steps << " with " << journal.recoveries.size()
             << " prior recover" << (journal.recoveries.size() == 1 ? "y" : "ies");

  return runner.run_impl(journal.total_steps, fault_plan, journal.watermark, copts,
                         &journal);
}

}  // namespace heterog
