// HeteroG public API — the C++ analogue of the paper's Fig. 5 programming
// interface.
//
//   auto runner = heterog::get_runner(
//       [] { return my_forward_graph(batch); },   // model_func (single-GPU)
//       cluster::make_paper_testbed_8gpu(),       // device_info
//       heterog::HeteroGConfig{});                // optional config
//   auto stats = runner.run(steps);
//
// get_runner performs the full pipeline: Graph Analyzer (training-graph
// expansion), Profiler (regression cost models over the synthetic hardware),
// Strategy Maker (GNN agent + REINFORCE search + order scheduling) and Graph
// Compiler, returning a DistRunner holding the deployed plan. run() executes
// the plan on the simulated cluster (the execution-engine substitute; see
// DESIGN.md §2) and reports per-iteration statistics.
#pragma once

#include <functional>
#include <memory>

#include "agent/policy.h"
#include "baselines/baselines.h"
#include "ckpt/journal.h"
#include "cluster/cluster.h"
#include "compile/compiler.h"
#include "faults/faults.h"
#include "graph/training.h"
#include "health/health.h"
#include "obs/event_log.h"
#include "profiler/profiler.h"
#include "rl/trainer.h"
#include "sim/plan_eval.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog {

/// Knobs of the detect -> retry -> re-plan loop (DESIGN.md "Fault model &
/// recovery").
struct FaultHandlingConfig {
  /// Transient-fault retry cap; a device still failing after this many
  /// attempts is escalated to a permanent failure (graceful degradation).
  int max_retries = 5;
  /// First retry backoff; doubles per attempt, capped at max_backoff_ms.
  double retry_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
  /// RL episodes for the re-plan after a device failure. 0 = heuristic-only
  /// re-planning (fast; the common choice — a mid-run re-plan should not
  /// stall training on a long search).
  int replan_rl_episodes = 0;
  /// Record wall-clock fields (replan_wall_ms, checkpoint wall_ms) as zero
  /// so identical executions produce byte-identical journals and event logs
  /// — the chaos harness's per-seed determinism contract. Off by default:
  /// real runs want the real walls.
  bool deterministic_wall_times = false;
};

struct HeteroGConfig {
  agent::AgentConfig agent;
  /// Online health monitoring (DESIGN.md "Online health & degraded modes").
  /// When `health.enabled`, fault-aware runs detect failures and stragglers
  /// from measurements only — the recovery loop never reads the injected
  /// FaultPlan (that stays inside sim::FaultInjector). Off = the PR-1 oracle
  /// recovery path.
  health::HealthPolicy health;
  /// Search configuration. `train.threads` fans strategy evaluation across a
  /// worker pool and `train.eval_cache_capacity` memoizes repeated plans —
  /// both change only wall-clock time, never the chosen plan (the search is
  /// bit-identical for any thread count; see DESIGN.md "Parallel evaluation
  /// & memoization").
  rl::TrainConfig train;
  FaultHandlingConfig fault_handling;
  /// Seed for the synthetic profiling noise.
  uint64_t profiler_seed = 42;
  /// Use HeteroG's execution-order scheduling (vs TF FIFO) — the Fig. 5
  /// heterog_config knob evaluated in Table 7.
  bool use_order_scheduling = true;
  /// Skip RL and deploy the best heuristic candidate only (fast mode for
  /// examples and smoke tests).
  bool search_with_rl = true;
  /// Telemetry sink for the runner and deployment layers (non-owning; must
  /// outlive every run). When set, get_runner emits schedule /
  /// device_utilization / link_utilization events for each deployed plan and
  /// DistRunner::run streams run_* events (docs/observability.md). Set
  /// train.events as well to also capture the strategy search. Write-only:
  /// results are bit-identical with or without a sink.
  obs::EventLog* events = nullptr;
  /// Durable cross-run evaluation cache (non-owning; must outlive every
  /// plan/re-plan — docs/persistence.md). get_runner and every mid-run
  /// re-plan consult it read-through/write-behind, keyed with a context hash
  /// of (cluster fingerprint, profiler seed) so entries never leak across
  /// clusters or seeds. Null disables persistence; results are bit-identical
  /// with the store hot, cold, corrupted, or absent.
  store::PlanStore* plan_store = nullptr;
};

/// What one recovery from a permanent device failure cost.
struct RecoveryReport {
  int fault_step = -1;  // step that was in flight when the failure hit
  /// Failed device ids, in the id space of the cluster active at fault time
  /// (equal to the original ids until a previous recovery re-densified them).
  std::vector<cluster::DeviceId> failed_devices;
  int steps_lost = 0;            // in-flight steps re-executed after resume
  double replan_wall_ms = 0.0;   // wall-clock spent re-planning
  double pre_fault_iteration_ms = 0.0;
  double post_fault_iteration_ms = 0.0;
  int surviving_devices = 0;
  bool post_plan_oom = false;
  bool escalated_transient = false;  // failure came from exhausted retries
  /// Online detection only: failed attempts spent confirming this failure
  /// before the re-plan (0 on the oracle path — there detection is a plan
  /// lookup, not an inference).
  int detection_attempts = 0;
  /// The re-plan was degraded to the heuristic path because the circuit
  /// breaker was open or the configured re-plan deadline was exceeded.
  bool degraded = false;
  /// Online domain attribution only: rack the monitor attributed this batch
  /// of failures to (-1 = independent failures). In-memory diagnostic; the
  /// journal's RecoveryRecord format does not carry it.
  int domain_rack = -1;
};

struct RunStats {
  int steps = 0;
  double per_iteration_ms = 0.0;
  double total_ms = 0.0;
  double computation_ms = 0.0;
  double communication_ms = 0.0;
  bool oom = false;

  /// Fault-aware runs only (run(steps, plan)): per-step times, retry
  /// bookkeeping and one report per re-plan. `completed` goes false only
  /// when recovery is impossible (no surviving devices).
  std::vector<double> step_ms;
  int transient_retries = 0;
  double retry_backoff_total_ms = 0.0;
  std::vector<RecoveryReport> recoveries;
  bool completed = true;

  /// The run stopped early at a step boundary because a cooperative shutdown
  /// was requested (common/shutdown: SIGTERM/SIGINT routed through
  /// install_shutdown_handlers, or request_shutdown). A final checkpoint
  /// snapshot was written first when checkpointing is on, so the run is
  /// resumable; `completed` is false. Never set in processes that don't
  /// install the handlers.
  bool interrupted = false;

  /// Online health monitoring only (HeteroGConfig::health.enabled): wall
  /// time spent waiting out heartbeat timeouts while confirming failures
  /// (included in total_ms but kept out of step_ms so per-step times stay
  /// comparable to the oracle path), and the monitor's aggregate outcome.
  /// On a resumed run the summary covers the whole run including the
  /// replayed prefix (the monitor is rebuilt by replay).
  double detection_overhead_ms = 0.0;
  health::HealthSummary health;
};

/// A deployed distributed training model (Fig. 5's dist_runner).
class DistRunner {
 public:
  /// Executes `steps` training iterations on the (simulated) cluster.
  RunStats run(int steps) const;

  /// Fault-aware execution: steps through `plan`, retrying transient faults
  /// with capped exponential backoff and recovering from permanent device
  /// failures by re-planning on the surviving ClusterSpec subset (heuristic
  /// Strategy Maker, plus an optional short RL refinement — see
  /// FaultHandlingConfig::replan_rl_episodes) and resuming from the last
  /// completed step. Each recovery is surfaced as a RecoveryReport.
  RunStats run(int steps, const faults::FaultPlan& plan) const;

  /// Checkpointing variants: same execution, plus a crash-consistent run
  /// journal snapshot every `ckpt.every` completed steps (and at run end).
  /// A process killed at any instant leaves a loadable journal from which
  /// resume_run continues deterministically. Per-step times are recorded
  /// even for an empty fault plan so resumed tails are comparable.
  RunStats run(int steps, const ckpt::CheckpointOptions& ckpt) const;
  RunStats run(int steps, const faults::FaultPlan& plan,
               const ckpt::CheckpointOptions& ckpt) const;

  double per_iteration_ms() const { return per_iteration_ms_; }
  bool feasible() const { return feasible_; }
  const cluster::ClusterSpec& cluster() const { return cluster_; }

  const strategy::StrategyMap& strategy() const { return strategy_; }
  const strategy::Grouping& grouping() const { return grouping_; }
  const graph::GraphDef& training_graph() const { return training_graph_; }
  const compile::DistGraph& dist_graph() const { return compiled_->graph; }
  const rl::SearchResult& search_result() const { return search_; }
  /// Ground-truth evaluation of the deployed plan, including per-device /
  /// per-link busy times and the critical path (collect_utilization is always
  /// on for deployments — benches read utilization columns from here).
  const sim::PlanEvaluation& deployment() const { return deployment_; }

  /// Table 2/3-style per-strategy op fractions of the deployed plan.
  strategy::StrategyBreakdown breakdown() const;

 private:
  friend DistRunner get_runner(const std::function<graph::GraphDef()>&,
                               const cluster::ClusterSpec&, const HeteroGConfig&);
  friend RunStats resume_run(const std::string&,
                             const std::function<graph::GraphDef()>&,
                             const ckpt::CheckpointOptions&, obs::EventLog*,
                             store::PlanStore*);

  /// Shared engine behind every run() overload and resume_run. Steps in
  /// [0, start_step) are *replayed*: every state transition (transient
  /// escalation, device-failure re-planning, fault-plan remapping) is
  /// applied so the execution state at start_step is bit-identical to an
  /// uninterrupted run's, but no time or stats are charged — those steps
  /// already happened before the crash. `prior` carries the journal history
  /// a resumed run extends; null for fresh runs.
  RunStats run_impl(int steps, const faults::FaultPlan& plan, int start_step,
                    const ckpt::CheckpointOptions& ckpt,
                    const ckpt::RunJournal* prior) const;

  cluster::ClusterSpec cluster_;
  HeteroGConfig config_;  // kept for mid-run re-planning
  std::shared_ptr<profiler::HardwareModel> hardware_;
  std::shared_ptr<const profiler::CostModel> cost_model_;
  graph::GraphDef training_graph_;
  strategy::Grouping grouping_;
  strategy::StrategyMap strategy_;
  std::shared_ptr<compile::CompileResult> compiled_;  // against ground truth
  rl::SearchResult search_;
  sim::PlanEvaluation deployment_;
  double per_iteration_ms_ = 0.0;
  bool feasible_ = false;
};

/// The paper's get_runner: converts a single-GPU model into an optimised
/// distributed deployment for the given device set.
DistRunner get_runner(const std::function<graph::GraphDef()>& model_func,
                      const cluster::ClusterSpec& device_info,
                      const HeteroGConfig& config = HeteroGConfig());

/// Streams one `schedule` event plus one `device_utilization` per GPU and
/// one `link_utilization` per busy communication resource for an evaluated
/// plan (docs/observability.md; ratios are against the cold single-iteration
/// makespan, so the evaluation should have been produced with
/// PlanEvalOptions::collect_utilization set). No-op when `events` is null or
/// failed to open. get_runner emits this for every deployment; heterog_cli
/// reuses it for ad-hoc `evaluate --metrics` runs.
void emit_schedule_events(obs::EventLog* events, const sim::PlanEvaluation& eval,
                          int device_count);

/// Deterministic recovery from a checkpointed run (DESIGN.md "Crash
/// consistency & resume"). Loads and CRC-validates the journal, re-validates
/// the cluster fingerprint of the embedded cluster, rebuilds the training
/// graph via `model_func` (cross-checked against the journal's model name
/// and op count), recompiles the dist graph from the journal's deployed
/// plan — no strategy search is repeated — and resumes execution from the
/// completed-step watermark, replaying any pre-watermark fault recoveries so
/// a crash *during* a device-failure recovery resumes mid-recovery.
///
/// Returns the RunStats of the tail (steps [watermark, total)); the
/// journal's own history covers the prefix. The resumed run keeps
/// checkpointing: `ckpt` overrides, defaulting to the journal's directory
/// and cadence. The headline guarantee, enforced by tests/ckpt_test.cpp: a
/// run killed at an arbitrary checkpointed step and resumed produces
/// per-step times bit-identical to the uninterrupted run's tail, with or
/// without an active FaultPlan.
///
/// Throws ckpt::JournalError on a missing/corrupt journal, fingerprint
/// mismatch, or a model_func inconsistent with the journal.
///
/// `events` (non-owning, optional) streams the resumed tail's schedule and
/// run_* telemetry, exactly as HeteroGConfig::events does for a fresh run.
/// `plan_store` (non-owning, optional) attaches the durable evaluation cache
/// to any mid-run re-planning the resumed tail performs, exactly as
/// HeteroGConfig::plan_store does for a fresh run.
RunStats resume_run(const std::string& journal_path,
                    const std::function<graph::GraphDef()>& model_func,
                    const ckpt::CheckpointOptions& ckpt = {},
                    obs::EventLog* events = nullptr,
                    store::PlanStore* plan_store = nullptr);

}  // namespace heterog
