// HeteroG public API — the C++ analogue of the paper's Fig. 5 programming
// interface.
//
//   auto runner = heterog::get_runner(
//       [] { return my_forward_graph(batch); },   // model_func (single-GPU)
//       cluster::make_paper_testbed_8gpu(),       // device_info
//       heterog::HeteroGConfig{});                // optional config
//   auto stats = runner.run(steps);
//
// get_runner performs the full pipeline: Graph Analyzer (training-graph
// expansion), Profiler (regression cost models over the synthetic hardware),
// Strategy Maker (GNN agent + REINFORCE search + order scheduling) and Graph
// Compiler, returning a DistRunner holding the deployed plan. run() executes
// the plan on the simulated cluster (the execution-engine substitute; see
// DESIGN.md §2) and reports per-iteration statistics.
#pragma once

#include <functional>
#include <memory>

#include "agent/policy.h"
#include "baselines/baselines.h"
#include "cluster/cluster.h"
#include "compile/compiler.h"
#include "graph/training.h"
#include "profiler/profiler.h"
#include "rl/trainer.h"
#include "sim/plan_eval.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog {

struct HeteroGConfig {
  agent::AgentConfig agent;
  rl::TrainConfig train;
  /// Seed for the synthetic profiling noise.
  uint64_t profiler_seed = 42;
  /// Use HeteroG's execution-order scheduling (vs TF FIFO) — the Fig. 5
  /// heterog_config knob evaluated in Table 7.
  bool use_order_scheduling = true;
  /// Skip RL and deploy the best heuristic candidate only (fast mode for
  /// examples and smoke tests).
  bool search_with_rl = true;
};

struct RunStats {
  int steps = 0;
  double per_iteration_ms = 0.0;
  double total_ms = 0.0;
  double computation_ms = 0.0;
  double communication_ms = 0.0;
  bool oom = false;
};

/// A deployed distributed training model (Fig. 5's dist_runner).
class DistRunner {
 public:
  /// Executes `steps` training iterations on the (simulated) cluster.
  RunStats run(int steps) const;

  double per_iteration_ms() const { return per_iteration_ms_; }
  bool feasible() const { return feasible_; }

  const strategy::StrategyMap& strategy() const { return strategy_; }
  const strategy::Grouping& grouping() const { return grouping_; }
  const graph::GraphDef& training_graph() const { return training_graph_; }
  const compile::DistGraph& dist_graph() const { return compiled_->graph; }
  const rl::SearchResult& search_result() const { return search_; }

  /// Table 2/3-style per-strategy op fractions of the deployed plan.
  strategy::StrategyBreakdown breakdown() const;

 private:
  friend DistRunner get_runner(const std::function<graph::GraphDef()>&,
                               const cluster::ClusterSpec&, const HeteroGConfig&);

  cluster::ClusterSpec cluster_;
  std::shared_ptr<profiler::HardwareModel> hardware_;
  std::shared_ptr<const profiler::CostModel> cost_model_;
  graph::GraphDef training_graph_;
  strategy::Grouping grouping_;
  strategy::StrategyMap strategy_;
  std::shared_ptr<compile::CompileResult> compiled_;  // against ground truth
  rl::SearchResult search_;
  sim::PlanEvaluation deployment_;
  double per_iteration_ms_ = 0.0;
  bool feasible_ = false;
  bool use_order_scheduling_ = true;
};

/// The paper's get_runner: converts a single-GPU model into an optimised
/// distributed deployment for the given device set.
DistRunner get_runner(const std::function<graph::GraphDef()>& model_func,
                      const cluster::ClusterSpec& device_info,
                      const HeteroGConfig& config = HeteroGConfig());

}  // namespace heterog
