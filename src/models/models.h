// The paper's eight benchmark model families (Sec. 6.1): VGG19, ResNet200,
// Inception-v3, MobileNet-v2, NasNet, Transformer, BERT-large, XLNet-large.
//
// Generators emit structurally faithful forward DAGs; build_training() wraps
// them with backward + apply ops. Workload totals are calibrated to
// published model figures (see builder.h and DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/training.h"

namespace heterog::models {

enum class ModelKind {
  kVgg19,
  kResNet200,
  kInceptionV3,
  kMobileNetV2,
  kNasNet,
  kTransformer,
  kBertLarge,
  kXlnetLarge,
};

const char* model_kind_name(ModelKind kind);

/// CLI/RPC model-name lookup shared by heterog_cli and the plan server:
/// "vgg19", "resnet200", "inception_v3", "mobilenet_v2", "nasnet",
/// "transformer", "bert", "xlnet". On a match fills `kind` and the family's
/// default layer depth (0 for the CNNs); returns false for unknown names.
bool parse_model_name(const std::string& name, ModelKind* kind, int* default_layers);

/// The names parse_model_name accepts, for usage text and docs.
const std::vector<std::string>& known_model_names();

/// Builds the forward graph. `layers` selects depth for the NLP families
/// (Transformer / BERT / XLNet number of encoder layers); it is ignored for
/// the CNNs (pass 0).
graph::GraphDef build_forward(ModelKind kind, int layers, double batch);

/// Forward + backward + apply training DAG.
graph::GraphDef build_training(ModelKind kind, int layers, double batch);

/// One benchmark configuration as it appears in the paper's tables.
struct Benchmark {
  std::string label;    // e.g. "Transformer (6 layers)"
  ModelKind kind = ModelKind::kVgg19;
  int layers = 0;       // 0 = model default
  double batch_8gpu = 0.0;
  double batch_12gpu = 0.0;
};

/// The eight standard rows of Tables 1 / 4 (trainable under pure DP).
std::vector<Benchmark> standard_benchmarks();

/// The six large-model rows (pure DP OOMs; Tables 1 / 3 / 4 bottom).
/// Note: Table 1 labels the Transformer row "24 layers" while Table 3 labels
/// it "48 layers"; we follow Table 3 (48), which is consistent with the
/// memory arithmetic.
std::vector<Benchmark> large_benchmarks();

/// The five CNN rows used in Fig. 3(a) and Table 5.
std::vector<Benchmark> cnn_benchmarks();

}  // namespace heterog::models
