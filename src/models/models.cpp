#include "models/models.h"

#include <cmath>

#include "common/check.h"
#include "models/builder.h"

namespace heterog::models {

namespace {

using graph::OpId;
using graph::OpKind;

constexpr double kBytesPerMB = 1024.0 * 1024.0;

double mb(double height, double width, double channels) {
  return height * width * channels * 4.0 / kBytesPerMB;
}

/// 3x3 (or kxk) convolution workload at output resolution h x w.
struct ConvShape {
  double gflops;
  double out_mb;
  double param_mb;
};

ConvShape conv_shape(double h, double w, double cin, double cout, double k) {
  ConvShape s;
  s.gflops = 2.0 * k * k * cin * cout * h * w / 1e9;
  s.out_mb = mb(h, w, cout);
  s.param_mb = k * k * cin * cout * 4.0 / kBytesPerMB;
  return s;
}

OpId add_conv(ForwardBuilder& b, const std::string& name, const std::vector<OpId>& deps,
              double h, double w, double cin, double cout, double k,
              OpKind kind = OpKind::kConv2D) {
  const ConvShape s = conv_shape(h, w, cin, cout, k);
  return b.op(kind, name, deps, s.gflops, s.out_mb, s.param_mb);
}

OpId add_relu(ForwardBuilder& b, const std::string& name, OpId dep, double out_mb) {
  return b.op(OpKind::kRelu, name, {dep}, out_mb * kBytesPerMB * 2.0 / 1e9 / 4.0, out_mb);
}

OpId add_fc(ForwardBuilder& b, const std::string& name, const std::vector<OpId>& deps,
            double in_dim, double out_dim) {
  return b.op(OpKind::kMatMul, name, deps, 2.0 * in_dim * out_dim / 1e9,
              out_dim * 4.0 / kBytesPerMB, in_dim * out_dim * 4.0 / kBytesPerMB);
}

OpId add_loss(ForwardBuilder& b, OpId logits, double classes) {
  const OpId sm = b.op(OpKind::kSoftmax, "softmax", {logits}, classes * 4.0 / 1e9,
                       classes * 4.0 / kBytesPerMB);
  return b.op(OpKind::kLoss, "loss", {sm}, classes * 2.0 / 1e9, 4.0 / kBytesPerMB);
}

// --------------------------------------------------------------------------
// VGG-19: 16 conv layers in 5 blocks + 3 FC layers.
// Calibration: ~19.6 fwd GFLOPs/sample, ~100 MB activations/sample,
// ~548 MB parameters (the FC layers dominate).
graph::GraphDef build_vgg19(double batch) {
  ForwardBuilder b("vgg19", batch);
  OpId x = b.input(mb(224, 224, 3));
  const int plan[5] = {2, 2, 4, 4, 4};
  const double chans[5] = {64, 128, 256, 512, 512};
  double h = 224, cin = 3;
  for (int blk = 0; blk < 5; ++blk) {
    for (int i = 0; i < plan[blk]; ++i) {
      const std::string tag = "conv" + std::to_string(blk + 1) + "_" + std::to_string(i + 1);
      x = add_conv(b, tag, {x}, h, h, cin, chans[blk], 3);
      x = add_relu(b, tag + "/relu", x, mb(h, h, chans[blk]));
      cin = chans[blk];
    }
    h /= 2;
    x = b.op(OpKind::kPool, "pool" + std::to_string(blk + 1), {x}, 0.01, mb(h, h, cin));
  }
  x = add_fc(b, "fc6", {x}, 7 * 7 * 512, 4096);
  x = add_relu(b, "fc6/relu", x, 4096 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc7", {x}, 4096, 4096);
  x = add_relu(b, "fc7/relu", x, 4096 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc8", {x}, 4096, 1000);
  add_loss(b, x, 1000);
  return b.finalize(19.6, 100.0, 548.0);
}

// --------------------------------------------------------------------------
// ResNet-200: bottleneck stages [3, 24, 36, 3].
// Calibration: ~16 fwd GFLOPs/sample, ~210 MB activations/sample, ~260 MB
// parameters (sets the paper's OOM boundary: batch 192 per 8 GPUs fits,
// batch 384 does not).
graph::GraphDef build_resnet200(double batch) {
  ForwardBuilder b("resnet200", batch);
  OpId x = b.input(mb(224, 224, 3));
  x = add_conv(b, "stem/conv", {x}, 112, 112, 3, 64, 7);
  x = b.op(OpKind::kBatchNorm, "stem/bn", {x}, 0.01, mb(112, 112, 64));
  x = b.op(OpKind::kPool, "stem/pool", {x}, 0.01, mb(56, 56, 64));

  const int blocks[4] = {3, 24, 36, 3};
  const double chans[4] = {256, 512, 1024, 2048};
  const double spatial[4] = {56, 28, 14, 7};
  double cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const double c = chans[stage];
    const double s = spatial[stage];
    for (int blk = 0; blk < blocks[stage]; ++blk) {
      const std::string tag = "s" + std::to_string(stage + 1) + "b" + std::to_string(blk + 1);
      const OpId shortcut = x;
      OpId y = add_conv(b, tag + "/reduce", {x}, s, s, cin, c / 4, 1);
      y = add_conv(b, tag + "/conv3x3", {y}, s, s, c / 4, c / 4, 3);
      y = add_conv(b, tag + "/expand", {y}, s, s, c / 4, c, 1);
      if (std::abs(cin - c) > 0.5) {
        const OpId proj = add_conv(b, tag + "/proj", {shortcut}, s, s, cin, c, 1);
        x = b.op(OpKind::kAdd, tag + "/add", {y, proj}, 0.01, mb(s, s, c));
      } else {
        x = b.op(OpKind::kAdd, tag + "/add", {y, shortcut}, 0.01, mb(s, s, c));
      }
      cin = c;
    }
  }
  x = b.op(OpKind::kPool, "avgpool", {x}, 0.01, 2048 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc", {x}, 2048, 1000);
  add_loss(b, x, 1000);
  return b.finalize(16.0, 210.0, 260.0);
}

// --------------------------------------------------------------------------
// Inception-v3: stem + 11 inception modules with 4-way branching.
// Calibration: ~5.7 fwd GFLOPs/sample, ~120 MB activations/sample, ~95 MB
// parameters.
graph::GraphDef build_inception_v3(double batch) {
  ForwardBuilder b("inception_v3", batch);
  OpId x = b.input(mb(299, 299, 3));
  x = add_conv(b, "stem/conv1", {x}, 149, 149, 3, 32, 3);
  x = add_conv(b, "stem/conv2", {x}, 147, 147, 32, 64, 3);
  x = b.op(OpKind::kPool, "stem/pool", {x}, 0.01, mb(73, 73, 64));
  x = add_conv(b, "stem/conv3", {x}, 71, 71, 64, 192, 3);
  x = b.op(OpKind::kPool, "stem/pool2", {x}, 0.01, mb(35, 35, 192));

  struct Module {
    double s;
    double cin;
    double cout;
  };
  const Module modules[11] = {
      {35, 192, 256},  {35, 256, 288},  {35, 288, 288},  {17, 288, 768},
      {17, 768, 768},  {17, 768, 768},  {17, 768, 768},  {17, 768, 768},
      {8, 768, 1280},  {8, 1280, 2048}, {8, 2048, 2048},
  };
  for (int m = 0; m < 11; ++m) {
    const auto& mod = modules[m];
    const std::string tag = "mixed" + std::to_string(m);
    const double bc = mod.cout / 4;  // per-branch output channels
    const OpId b1 = add_conv(b, tag + "/b1x1", {x}, mod.s, mod.s, mod.cin, bc, 1);
    OpId b2 = add_conv(b, tag + "/b3r", {x}, mod.s, mod.s, mod.cin, bc / 2, 1);
    b2 = add_conv(b, tag + "/b3", {b2}, mod.s, mod.s, bc / 2, bc, 3);
    OpId b3 = add_conv(b, tag + "/b5r", {x}, mod.s, mod.s, mod.cin, bc / 2, 1);
    b3 = add_conv(b, tag + "/b5a", {b3}, mod.s, mod.s, bc / 2, bc, 3);
    b3 = add_conv(b, tag + "/b5b", {b3}, mod.s, mod.s, bc, bc, 3);
    OpId b4 = b.op(OpKind::kPool, tag + "/pool", {x}, 0.01, mb(mod.s, mod.s, mod.cin));
    b4 = add_conv(b, tag + "/bp", {b4}, mod.s, mod.s, mod.cin, bc, 1);
    x = b.op(OpKind::kConcat, tag + "/concat", {b1, b2, b3, b4}, 0.01,
             mb(mod.s, mod.s, mod.cout));
  }
  x = b.op(OpKind::kPool, "avgpool", {x}, 0.01, 2048 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc", {x}, 2048, 1000);
  add_loss(b, x, 1000);
  return b.finalize(5.7, 120.0, 95.0);
}

// --------------------------------------------------------------------------
// MobileNet-v2: 17 inverted-residual blocks (expand / depthwise / project).
// Calibration: ~0.6 fwd GFLOPs/sample, ~80 MB activations/sample, ~14 MB
// parameters.
graph::GraphDef build_mobilenet_v2(double batch) {
  ForwardBuilder b("mobilenet_v2", batch);
  OpId x = b.input(mb(224, 224, 3));
  x = add_conv(b, "stem", {x}, 112, 112, 3, 32, 3);

  struct Block {
    double t;  // expansion
    double c;  // output channels
    int n;     // repeats
    double s;  // output spatial
  };
  const Block blocks[7] = {{1, 16, 1, 112}, {6, 24, 2, 56}, {6, 32, 3, 28},
                           {6, 64, 4, 14},  {6, 96, 3, 14}, {6, 160, 3, 7},
                           {6, 320, 1, 7}};
  double cin = 32;
  int idx = 0;
  for (const auto& blk : blocks) {
    for (int i = 0; i < blk.n; ++i) {
      const std::string tag = "ir" + std::to_string(idx++);
      const double mid = cin * blk.t;
      OpId y = add_conv(b, tag + "/expand", {x}, blk.s, blk.s, cin, mid, 1);
      y = add_conv(b, tag + "/dw", {y}, blk.s, blk.s, 1, mid, 3,
                   OpKind::kDepthwiseConv2D);
      y = add_conv(b, tag + "/project", {y}, blk.s, blk.s, mid, blk.c, 1);
      if (i > 0 && std::abs(cin - blk.c) < 0.5) {
        x = b.op(OpKind::kAdd, tag + "/add", {y, x}, 0.005, mb(blk.s, blk.s, blk.c));
      } else {
        x = y;
      }
      cin = blk.c;
    }
  }
  x = add_conv(b, "head/conv", {x}, 7, 7, 320, 1280, 1);
  x = b.op(OpKind::kPool, "avgpool", {x}, 0.005, 1280 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc", {x}, 1280, 1000);
  add_loss(b, x, 1000);
  return b.finalize(0.6, 80.0, 14.0);
}

// --------------------------------------------------------------------------
// NasNet-A (large): 18 cells, each with 5 separable-conv branch pairs feeding
// a concat — the heavily-branched DAG the paper highlights.
// Calibration: ~12 fwd GFLOPs/sample, ~200 MB activations/sample, ~340 MB
// parameters.
graph::GraphDef build_nasnet(double batch) {
  ForwardBuilder b("nasnet", batch);
  OpId x = b.input(mb(331, 331, 3));
  x = add_conv(b, "stem", {x}, 165, 165, 3, 96, 3);

  OpId prev = x;
  double cin = 96;
  const int cells = 18;
  for (int c = 0; c < cells; ++c) {
    const bool reduction = (c == 6 || c == 12);
    const double s = c < 6 ? 42 : (c < 12 ? 21 : 11);
    const double cout = c < 6 ? 168 : (c < 12 ? 336 : 672);
    const std::string tag = "cell" + std::to_string(c);
    std::vector<OpId> branch_outs;
    for (int p = 0; p < 5; ++p) {
      const std::string bt = tag + "/pair" + std::to_string(p);
      // Separable conv = depthwise + pointwise on each of the two inputs.
      OpId a = add_conv(b, bt + "/dwA", {x}, s, s, 1, cin, 5, OpKind::kDepthwiseConv2D);
      a = add_conv(b, bt + "/pwA", {a}, s, s, cin, cout / 5, 1);
      OpId d = (p % 2 == 0)
                   ? add_conv(b, bt + "/dwB", {prev}, s, s, 1, cin, 3,
                              OpKind::kDepthwiseConv2D)
                   : b.op(OpKind::kPool, bt + "/poolB", {prev}, 0.01, mb(s, s, cin));
      d = add_conv(b, bt + "/pwB", {d}, s, s, cin, cout / 5, 1);
      branch_outs.push_back(
          b.op(OpKind::kAdd, bt + "/add", {a, d}, 0.005, mb(s, s, cout / 5)));
    }
    const OpId cat = b.op(OpKind::kConcat, tag + "/concat", branch_outs, 0.01,
                          mb(s, s, cout));
    prev = x;
    x = cat;
    cin = cout;
    if (reduction) prev = x;  // spatial change: realign the skip input
  }
  x = b.op(OpKind::kPool, "avgpool", {x}, 0.01, 4032 * 4.0 / kBytesPerMB);
  x = add_fc(b, "fc", {x}, 4032, 1000);
  add_loss(b, x, 1000);
  // NasNet's heavy branch fan-in roughly doubles the backward working set
  // relative to the forward activations, so the forward target is kept low
  // enough that batch 192 / 8 GPUs trains under pure DP (Table 1).
  return b.finalize(12.0, 85.0, 340.0);
}

// --------------------------------------------------------------------------
// Transformer encoder stack (translation-scale: d=512, seq=330, 8 heads).
// Per-layer calibration: ~2.3 fwd GFLOPs/sample, 13 MB activations/sample,
// ~12.6 MB parameters; plus embedding + output projection (~130 MB).
struct NlpDims {
  double d_model;
  double seq;
  double heads;
  double vocab;
  double ffn_mult;
};

void add_encoder_layer(ForwardBuilder& b, OpId& x, const NlpDims& dims,
                       const std::string& tag, bool two_stream) {
  const double s = dims.seq, d = dims.d_model, h = dims.heads;
  const double token_mb = s * d * 4.0 / kBytesPerMB;
  const OpId ln1 = b.op(OpKind::kLayerNorm, tag + "/ln1", {x}, s * d * 8 / 1e9, token_mb);
  const OpId qkv = b.op(OpKind::kMatMul, tag + "/qkv", {ln1}, 2 * s * d * 3 * d / 1e9,
                        3 * token_mb, 3 * d * d * 4 / kBytesPerMB);
  OpId score = b.op(OpKind::kAttentionScore, tag + "/score", {qkv}, 2 * s * s * d / 1e9,
                    h * s * s * 4 / kBytesPerMB);
  if (two_stream) {
    // XLNet two-stream attention: a second score path over the query stream.
    const OpId score2 =
        b.op(OpKind::kAttentionScore, tag + "/score_q", {qkv}, 2 * s * s * d / 1e9,
             h * s * s * 4 / kBytesPerMB, d * d * 4 / kBytesPerMB);
    score = b.op(OpKind::kAdd, tag + "/score_merge", {score, score2}, 0.01,
                 h * s * s * 4 / kBytesPerMB);
  }
  const OpId probs = b.op(OpKind::kSoftmax, tag + "/probs", {score}, h * s * s * 4 / 1e9,
                          h * s * s * 4 / kBytesPerMB);
  const OpId ctx = b.op(OpKind::kAttentionContext, tag + "/ctx", {probs, qkv},
                        2 * s * s * d / 1e9, token_mb);
  const OpId proj = b.op(OpKind::kMatMul, tag + "/proj", {ctx}, 2 * s * d * d / 1e9,
                         token_mb, d * d * 4 / kBytesPerMB);
  const OpId add1 = b.op(OpKind::kAdd, tag + "/add1", {proj, x}, s * d * 2 / 1e9, token_mb);
  const OpId ln2 =
      b.op(OpKind::kLayerNorm, tag + "/ln2", {add1}, s * d * 8 / 1e9, token_mb);
  const double dff = d * dims.ffn_mult;
  const OpId ffn1 = b.op(OpKind::kMatMul, tag + "/ffn1", {ln2}, 2 * s * d * dff / 1e9,
                         s * dff * 4 / kBytesPerMB, d * dff * 4 / kBytesPerMB);
  const OpId relu = b.op(OpKind::kRelu, tag + "/gelu", {ffn1}, s * dff * 2 / 1e9,
                         s * dff * 4 / kBytesPerMB);
  const OpId ffn2 = b.op(OpKind::kMatMul, tag + "/ffn2", {relu}, 2 * s * dff * d / 1e9,
                         token_mb, dff * d * 4 / kBytesPerMB);
  x = b.op(OpKind::kAdd, tag + "/add2", {ffn2, add1}, s * d * 2 / 1e9, token_mb);
}

graph::GraphDef build_nlp(const std::string& name, const NlpDims& dims, int layers,
                          double batch, bool two_stream, double act_mb_per_layer,
                          double flops_per_layer, double param_mb_target) {
  ForwardBuilder b(name, batch);
  const double token_mb = dims.seq * dims.d_model * 4.0 / kBytesPerMB;
  OpId x = b.input(dims.seq * 4.0 / kBytesPerMB);
  x = b.op(OpKind::kEmbeddingLookup, "embedding", {x}, dims.seq * dims.d_model / 1e9,
           token_mb, dims.vocab * dims.d_model * 4.0 / kBytesPerMB);
  for (int l = 0; l < layers; ++l) {
    add_encoder_layer(b, x, dims, "layer" + std::to_string(l), two_stream);
  }
  // Output projection is tied to the embedding weights (standard for these
  // LMs), so the embedding stays the single largest parameter op.
  x = b.op(OpKind::kMatMul, "lm_head", {x},
           2 * dims.seq * dims.d_model * dims.vocab / 1e9,
           dims.seq * dims.vocab * 4.0 / kBytesPerMB / 16.0 /* top-k slice kept */);
  add_loss(b, x, dims.vocab / 16.0);
  const double act_target = act_mb_per_layer * layers + 4.0;
  const double flops_target = flops_per_layer * layers + 1.0;
  return b.finalize(flops_target, act_target, param_mb_target);
}

graph::GraphDef build_transformer(int layers, double batch) {
  if (layers <= 0) layers = 6;
  const NlpDims dims{512, 330, 8, 32000, 4.0};
  // Calibration: 13 MB act / 2.3 GF / 12.6 MB params per layer + 130 MB
  // embedding/head parameters.
  return build_nlp("transformer" + std::to_string(layers), dims, layers, batch, false,
                   13.0, 2.3, 12.6 * layers + 130.0);
}

/// The deeper (>24-layer) BERT/XLNet configurations are long-sequence
/// (phase-2 pretraining style, seq 512 instead of 384): the quadratic
/// attention term raises per-layer activation and compute by ~1.55x. This is
/// what puts the 48-layer rows past the OOM boundary at their small batch
/// sizes (Tables 1/3) while the 24-layer rows still train under pure DP.
constexpr double kLongSeqBoost = 1.55;

graph::GraphDef build_bert_large(int layers, double batch) {
  if (layers <= 0) layers = 24;
  const bool long_seq = layers > 24;
  const NlpDims dims{1024, long_seq ? 512.0 : 384.0, 16, 30522, 4.0};
  const double boost = long_seq ? kLongSeqBoost : 1.0;
  // Calibration: 33.3 MB act / 6.5 GF / 50 MB params per layer + 125 MB
  // embeddings -> 24 layers ~= 0.80 GB act/sample, 1.33 GB params.
  return build_nlp("bert" + std::to_string(layers), dims, layers, batch, false,
                   33.3 * boost, 6.5 * boost, 50.0 * layers + 125.0);
}

graph::GraphDef build_xlnet_large(int layers, double batch) {
  if (layers <= 0) layers = 24;
  const bool long_seq = layers > 24;
  const NlpDims dims{1024, long_seq ? 512.0 : 384.0, 16, 32000, 4.0};
  const double boost = long_seq ? kLongSeqBoost : 1.0;
  // Calibration: 33.0 MB act / 7.0 GF / 63.5 MB params per layer + 125 MB
  // embeddings -> 24 layers ~= 0.79 GB act/sample, 1.65 GB params.
  return build_nlp("xlnet" + std::to_string(layers), dims, layers, batch, true,
                   33.0 * boost, 7.0 * boost, 63.5 * layers + 125.0);
}

}  // namespace

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kVgg19:
      return "VGG-19";
    case ModelKind::kResNet200:
      return "ResNet200";
    case ModelKind::kInceptionV3:
      return "Inception_v3";
    case ModelKind::kMobileNetV2:
      return "MobileNet_v2";
    case ModelKind::kNasNet:
      return "NasNet";
    case ModelKind::kTransformer:
      return "Transformer";
    case ModelKind::kBertLarge:
      return "Bert-large";
    case ModelKind::kXlnetLarge:
      return "Xlnet-large";
  }
  return "Unknown";
}

namespace {

struct NamedModel {
  const char* name;
  ModelKind kind;
  int default_layers;
};

constexpr NamedModel kNamedModels[] = {
    {"vgg19", ModelKind::kVgg19, 0},
    {"resnet200", ModelKind::kResNet200, 0},
    {"inception_v3", ModelKind::kInceptionV3, 0},
    {"mobilenet_v2", ModelKind::kMobileNetV2, 0},
    {"nasnet", ModelKind::kNasNet, 0},
    {"transformer", ModelKind::kTransformer, 6},
    {"bert", ModelKind::kBertLarge, 24},
    {"xlnet", ModelKind::kXlnetLarge, 24},
};

}  // namespace

bool parse_model_name(const std::string& name, ModelKind* kind, int* default_layers) {
  for (const auto& m : kNamedModels) {
    if (name == m.name) {
      *kind = m.kind;
      *default_layers = m.default_layers;
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& known_model_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& m : kNamedModels) out.emplace_back(m.name);
    return out;
  }();
  return names;
}

graph::GraphDef build_forward(ModelKind kind, int layers, double batch) {
  check(batch > 0.0, "build_forward: batch must be positive");
  switch (kind) {
    case ModelKind::kVgg19:
      return build_vgg19(batch);
    case ModelKind::kResNet200:
      return build_resnet200(batch);
    case ModelKind::kInceptionV3:
      return build_inception_v3(batch);
    case ModelKind::kMobileNetV2:
      return build_mobilenet_v2(batch);
    case ModelKind::kNasNet:
      return build_nasnet(batch);
    case ModelKind::kTransformer:
      return build_transformer(layers, batch);
    case ModelKind::kBertLarge:
      return build_bert_large(layers, batch);
    case ModelKind::kXlnetLarge:
      return build_xlnet_large(layers, batch);
  }
  check_failed("build_forward: unknown model kind");
}

graph::GraphDef build_training(ModelKind kind, int layers, double batch) {
  return graph::build_training_graph(build_forward(kind, layers, batch));
}

std::vector<Benchmark> standard_benchmarks() {
  return {
      {"VGG-19", ModelKind::kVgg19, 0, 192, 288},
      {"ResNet200", ModelKind::kResNet200, 0, 192, 288},
      {"Inception_v3", ModelKind::kInceptionV3, 0, 192, 288},
      {"MobileNet_v2", ModelKind::kMobileNetV2, 0, 192, 288},
      {"NasNet", ModelKind::kNasNet, 0, 192, 288},
      {"Transformer (6 layers)", ModelKind::kTransformer, 6, 720, 1080},
      {"Bert-large (24 layers)", ModelKind::kBertLarge, 24, 48, 72},
      {"XlNet-large (24 layers)", ModelKind::kXlnetLarge, 24, 48, 72},
  };
}

std::vector<Benchmark> large_benchmarks() {
  return {
      {"ResNet200", ModelKind::kResNet200, 0, 384, 576},
      {"Transformer (48 layers)", ModelKind::kTransformer, 48, 120, 180},
      {"Bert-large (24 layers)", ModelKind::kBertLarge, 24, 96, 144},
      {"XlNet-large (24 layers)", ModelKind::kXlnetLarge, 24, 96, 144},
      {"Bert-large (48 layers)", ModelKind::kBertLarge, 48, 24, 36},
      {"XlNet-large (48 layers)", ModelKind::kXlnetLarge, 48, 24, 36},
  };
}

std::vector<Benchmark> cnn_benchmarks() {
  return {
      {"VGG-19", ModelKind::kVgg19, 0, 192, 288},
      {"ResNet200", ModelKind::kResNet200, 0, 192, 288},
      {"Inception_v3", ModelKind::kInceptionV3, 0, 192, 288},
      {"MobileNet_v2", ModelKind::kMobileNetV2, 0, 192, 288},
      {"NasNet", ModelKind::kNasNet, 0, 192, 288},
  };
}

}  // namespace heterog::models
