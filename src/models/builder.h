// Forward-graph construction helper used by the benchmark model generators.
//
// Substitution note (DESIGN.md §2): we do not parse real TF graphdefs; each
// generator reproduces the model family's *structure* (op kinds, layer
// pattern, branching) with per-op workloads computed from layer shapes, then
// calibrates the totals (forward GFLOPs/sample, activation bytes/sample,
// parameter bytes) to published figures so that the planner sees the same
// compute/memory/communication trade-offs the paper's testbed exposed.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace heterog::models {

class ForwardBuilder {
 public:
  ForwardBuilder(std::string name, double batch);

  /// Adds an input (data-feed) op producing `mb_per_sample` MB per sample.
  graph::OpId input(double mb_per_sample);

  /// Adds an op. Workload units: GFLOPs per sample, MB per sample output,
  /// MB of parameters (batch-independent).
  graph::OpId op(graph::OpKind kind, const std::string& name,
                 const std::vector<graph::OpId>& deps, double gflops_per_sample,
                 double out_mb_per_sample, double param_mb = 0.0,
                 bool batch_divisible = true);

  /// Calibrates totals and returns the finished forward graph:
  /// per-sample flops, per-sample output bytes and parameter bytes are each
  /// scaled uniformly so the graph totals hit the targets (<= 0 disables a
  /// target). Call once.
  graph::GraphDef finalize(double target_fwd_gflops_per_sample,
                           double target_act_mb_per_sample, double target_param_mb);

  graph::GraphDef& graph() { return graph_; }

 private:
  graph::GraphDef graph_;
  bool finalized_ = false;
};

}  // namespace heterog::models
