#include "models/builder.h"

#include <cmath>

#include "common/check.h"

namespace heterog::models {

namespace {
constexpr double kMB = 1024.0 * 1024.0;
}

ForwardBuilder::ForwardBuilder(std::string name, double batch)
    : graph_(std::move(name), batch) {}

graph::OpId ForwardBuilder::input(double mb_per_sample) {
  return op(graph::OpKind::kIdentity, "input", {}, 0.0, mb_per_sample);
}

graph::OpId ForwardBuilder::op(graph::OpKind kind, const std::string& name,
                               const std::vector<graph::OpId>& deps,
                               double gflops_per_sample, double out_mb_per_sample,
                               double param_mb, bool batch_divisible) {
  check(!finalized_, "ForwardBuilder: already finalized");
  check(gflops_per_sample >= 0.0 && out_mb_per_sample >= 0.0 && param_mb >= 0.0,
        "ForwardBuilder: negative workload");
  graph::OpDef def;
  def.name = graph_.name() + "/" + name;
  def.kind = kind;
  def.role = graph::OpRole::kForward;
  def.flops_per_sample = gflops_per_sample * 1e9;
  def.out_bytes_per_sample = static_cast<int64_t>(out_mb_per_sample * kMB);
  def.param_bytes = static_cast<int64_t>(param_mb * kMB);
  def.batch_divisible = batch_divisible;
  const graph::OpId id = graph_.add_op(std::move(def));
  for (graph::OpId d : deps) graph_.add_edge(d, id);
  return id;
}

graph::GraphDef ForwardBuilder::finalize(double target_fwd_gflops_per_sample,
                                         double target_act_mb_per_sample,
                                         double target_param_mb) {
  check(!finalized_, "ForwardBuilder: already finalized");
  finalized_ = true;

  double total_gflops = 0.0, total_act_mb = 0.0, total_param_mb = 0.0;
  for (const auto& o : graph_.ops()) {
    total_gflops += o.flops_per_sample / 1e9;
    total_act_mb += static_cast<double>(o.out_bytes_per_sample) / kMB;
    total_param_mb += static_cast<double>(o.param_bytes) / kMB;
  }

  const double flop_scale =
      (target_fwd_gflops_per_sample > 0.0 && total_gflops > 0.0)
          ? target_fwd_gflops_per_sample / total_gflops
          : 1.0;
  const double act_scale = (target_act_mb_per_sample > 0.0 && total_act_mb > 0.0)
                               ? target_act_mb_per_sample / total_act_mb
                               : 1.0;
  const double param_scale = (target_param_mb > 0.0 && total_param_mb > 0.0)
                                 ? target_param_mb / total_param_mb
                                 : 1.0;

  for (graph::OpId id = 0; id < graph_.op_count(); ++id) {
    auto& o = graph_.mutable_op(id);
    o.flops_per_sample *= flop_scale;
    o.out_bytes_per_sample =
        static_cast<int64_t>(std::llround(static_cast<double>(o.out_bytes_per_sample) *
                                          act_scale));
    o.param_bytes = static_cast<int64_t>(
        std::llround(static_cast<double>(o.param_bytes) * param_scale));
  }

  std::string error;
  check_lazy(graph_.validate(&error), [&] { return "ForwardBuilder: " + error; });
  return std::move(graph_);
}

}  // namespace heterog::models
