#include "analysis/analysis.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace heterog::analysis {

std::string PlanDiff::summary() const {
  std::ostringstream os;
  os << groups_changed << "/" << groups_total << " groups changed ("
     << dp_to_mp << " DP->MP, " << mp_to_dp << " MP->DP, " << device_moves
     << " device moves, " << comm_flips << " PS/AR flips, " << replication_flips
     << " EV/CP flips)";
  return os.str();
}

PlanDiff diff_plans(const strategy::StrategyMap& before,
                    const strategy::StrategyMap& after) {
  check(before.group_actions.size() == after.group_actions.size(),
        "diff_plans: group counts differ");
  PlanDiff diff;
  diff.groups_total = static_cast<int>(before.group_actions.size());
  for (size_t g = 0; g < before.group_actions.size(); ++g) {
    const auto& a = before.group_actions[g];
    const auto& b = after.group_actions[g];
    if (a == b) continue;
    ++diff.groups_changed;
    if (a.is_mp && !b.is_mp) ++diff.mp_to_dp;
    if (!a.is_mp && b.is_mp) ++diff.dp_to_mp;
    if (a.is_mp && b.is_mp && a.mp_device != b.mp_device) ++diff.device_moves;
    if (!a.is_mp && !b.is_mp) {
      if (a.comm != b.comm) ++diff.comm_flips;
      if (a.replication != b.replication) ++diff.replication_flips;
    }
  }
  return diff;
}

UtilizationReport utilization(const compile::DistGraph& graph,
                              const sim::SimResult& result) {
  check(static_cast<int>(result.resource_busy_ms.size()) ==
            graph.resources().resource_count(),
        "utilization: result does not match graph");
  const auto& resources = graph.resources();
  UtilizationReport report;
  report.makespan_ms = result.makespan_ms;
  const double span = std::max(result.makespan_ms, 1e-9);

  double gpu_total = 0.0;
  for (int d = 0; d < resources.device_count(); ++d) {
    DeviceUtilization u;
    u.device = d;
    u.busy_ms = result.resource_busy_ms[static_cast<size_t>(resources.gpu_resource(d))];
    u.busy_fraction = u.busy_ms / span;
    gpu_total += u.busy_fraction;
    report.devices.push_back(u);
  }
  report.mean_gpu_utilization = gpu_total / std::max(resources.device_count(), 1);
  report.nccl_busy_ms =
      result.resource_busy_ms[static_cast<size_t>(resources.nccl_resource())];
  for (int r = 0; r < resources.resource_count(); ++r) {
    if (resources.is_nic_resource(r)) {
      report.max_nic_busy_ms =
          std::max(report.max_nic_busy_ms, result.resource_busy_ms[static_cast<size_t>(r)]);
    }
  }
  return report;
}

std::string UtilizationReport::render() const {
  TextTable table({"device", "busy (ms)", "utilization"});
  for (const auto& u : devices) {
    table.add_row({"G" + std::to_string(u.device), fmt_double(u.busy_ms, 1),
                   fmt_percent(u.busy_fraction)});
  }
  std::ostringstream os;
  os << "makespan " << fmt_double(makespan_ms, 1) << " ms, mean GPU utilization "
     << fmt_percent(mean_gpu_utilization) << ", NCCL busy " << fmt_double(nccl_busy_ms, 1)
     << " ms, busiest NIC " << fmt_double(max_nic_busy_ms, 1) << " ms\n"
     << table.render();
  return os.str();
}

}  // namespace heterog::analysis
