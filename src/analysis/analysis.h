// Plan inspection utilities: diffing two strategies and summarising how a
// simulated schedule used the cluster. Consumed by examples, the CLI and
// operators comparing deployments.
#pragma once

#include <string>
#include <vector>

#include "compile/dist_graph.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog::analysis {

/// Structural difference between two strategies over the same grouping.
struct PlanDiff {
  int groups_total = 0;
  int groups_changed = 0;
  int mp_to_dp = 0;        // groups that left model parallelism
  int dp_to_mp = 0;        // groups that became model parallel
  int device_moves = 0;    // MP groups that changed device
  int comm_flips = 0;      // DP groups that switched PS <-> AllReduce
  int replication_flips = 0;  // DP groups that switched even <-> proportional

  std::string summary() const;
};

PlanDiff diff_plans(const strategy::StrategyMap& before,
                    const strategy::StrategyMap& after);

/// Per-device utilisation of one simulated schedule.
struct DeviceUtilization {
  cluster::DeviceId device = 0;
  double busy_ms = 0.0;
  double busy_fraction = 0.0;  // busy / makespan
};

struct UtilizationReport {
  double makespan_ms = 0.0;
  std::vector<DeviceUtilization> devices;
  double nccl_busy_ms = 0.0;
  double max_nic_busy_ms = 0.0;
  /// Mean GPU busy fraction — the "devices are less efficiently used"
  /// quantity the paper's Sec. 1 motivates improving.
  double mean_gpu_utilization = 0.0;

  std::string render() const;
};

UtilizationReport utilization(const compile::DistGraph& graph,
                              const sim::SimResult& result);

}  // namespace heterog::analysis
