#include "agent/features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heterog::agent {

int feature_dim(int device_count) { return device_count + 8; }

EncodedGraph encode_graph(const graph::GraphDef& graph,
                          const profiler::CostProvider& costs, int max_groups) {
  const auto& cluster = costs.cluster();
  const int m = cluster.device_count();
  const int n = graph.op_count();
  const int dim = feature_dim(m);

  EncodedGraph encoded;
  encoded.graph = &graph;
  encoded.features = nn::Matrix(n, dim);
  encoded.grouping = strategy::Grouping::build(graph, costs, max_groups);

  // Mean transfer bandwidth proxy: average over all ordered pairs of the
  // time to ship this op's output.
  for (graph::OpId id = 0; id < n; ++id) {
    const auto& op = graph.op(id);
    int col = 0;
    for (const auto& dev : cluster.devices()) {
      encoded.features.at(id, col++) =
          std::log1p(costs.op_time_ms(op, graph.global_batch(), dev.id));
    }
    const int64_t out_bytes = op.out_bytes(graph.global_batch());
    double transfer_total = 0.0;
    int pairs = 0;
    for (const auto& a : cluster.devices()) {
      for (const auto& b : cluster.devices()) {
        if (a.id == b.id) continue;
        transfer_total += costs.transfer_time_ms(out_bytes, a.id, b.id);
        ++pairs;
      }
    }
    encoded.features.at(id, col++) = std::log1p(transfer_total / std::max(pairs, 1));
    encoded.features.at(id, col++) = std::log1p(static_cast<double>(out_bytes));
    encoded.features.at(id, col++) = std::log1p(static_cast<double>(op.param_bytes));
    encoded.features.at(id, col++) = op.batch_divisible ? 1.0 : 0.0;
    encoded.features.at(id, col++) = graph::is_compute_intensive(op.kind) ? 1.0 : 0.0;
    encoded.features.at(id, col++) = op.role == graph::OpRole::kForward ? 1.0 : 0.0;
    encoded.features.at(id, col++) = op.role == graph::OpRole::kBackward ? 1.0 : 0.0;
    encoded.features.at(id, col++) = op.role == graph::OpRole::kApply ? 1.0 : 0.0;
    check(col == dim, "encode_graph: feature width mismatch");
  }

  // Column normalisation to [0, 1] (max-abs), keeping flags intact.
  for (int c = 0; c < dim; ++c) {
    double max_abs = 0.0;
    for (int r = 0; r < n; ++r) {
      max_abs = std::max(max_abs, std::abs(encoded.features.at(r, c)));
    }
    if (max_abs > 1.0) {
      for (int r = 0; r < n; ++r) encoded.features.at(r, c) /= max_abs;
    }
  }

  // Edge list: both directions plus self loops (paper: N_o includes o).
  encoded.edge_src.reserve(static_cast<size_t>(graph.edge_count()) * 2 + n);
  encoded.edge_dst.reserve(encoded.edge_src.capacity());
  for (graph::OpId id = 0; id < n; ++id) {
    for (graph::OpId s : graph.successors(id)) {
      encoded.edge_src.push_back(id);
      encoded.edge_dst.push_back(s);
      encoded.edge_src.push_back(s);
      encoded.edge_dst.push_back(id);
    }
    encoded.edge_src.push_back(id);
    encoded.edge_dst.push_back(id);
  }
  return encoded;
}

}  // namespace heterog::agent
