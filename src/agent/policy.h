// The Agent's policy network (paper Sec. 4.1, Fig. 6):
//
//   node features --GAT--> per-node embeddings --grouping--> per-group
//   embeddings --Transformer strategy network--> N x (M+4) logits --softmax
//   --> one action per group.
//
// Scaled-down defaults relative to the paper (12x8-head GAT, 8-layer
// Transformer-XL, N=2000) for CPU-only training; every size is configurable
// (see DESIGN.md §6). A standard Transformer encoder replaces Transformer-XL
// — at our group counts no segment recurrence is needed.
#pragma once

#include <memory>
#include <vector>

#include "agent/features.h"
#include "common/rng.h"
#include "nn/layers.h"

namespace heterog::agent {

struct AgentConfig {
  // GAT encoder.
  int gat_layers = 3;
  int gat_heads = 4;
  int gat_dim_per_head = 8;  // concat -> 32-dim node embeddings

  // Strategy network.
  int strategy_dim = 64;
  int strategy_layers = 2;
  int strategy_heads = 4;
  int strategy_ffn_dim = 128;

  // Grouping (paper: N = 2000).
  int max_groups = 48;

  double sample_temperature = 1.0;
  uint64_t seed = 1;
};

/// Output of one policy forward pass: per-group logits plus bookkeeping to
/// build the REINFORCE loss on the same tape.
struct PolicyForward {
  nn::Var logits;  // [group_count x (M+4)]
};

/// The GAT + Transformer policy over the M+4 action space: for each op
/// group, actions [0, M) place the whole group on that device (model
/// parallelism) and actions M..M+3 replicate it data-parallel — the cross
/// product of {even, capacity-proportional} replication x {parameter server,
/// AllReduce} synchronisation (strategy.h). Methods are const but NOT
/// thread-safe against concurrent parameter mutation (the optimizer step);
/// one search drives one network from one thread.
class PolicyNetwork {
 public:
  /// `device_count` is M, fixing the action space at M+4 logit columns.
  PolicyNetwork(int device_count, AgentConfig config);

  /// One differentiable pass: [group_count x (M+4)] logits on `tape`
  /// (unitless log-odds; the REINFORCE loss backprops through them).
  PolicyForward forward(nn::Tape& tape, const EncodedGraph& encoded) const;

  /// Samples one action index in [0, M+4) per group from
  /// softmax(logits / temperature); deterministic given `rng`'s state.
  std::vector<int> sample_actions(const nn::Matrix& logits, Rng& rng,
                                  double temperature) const;
  /// Greedy (argmax) action index in [0, M+4) per group.
  std::vector<int> greedy_actions(const nn::Matrix& logits) const;

  /// M + 4: one MP placement per device plus the four DP variants.
  int action_count() const { return device_count_ + 4; }
  int device_count() const { return device_count_; }
  const AgentConfig& config() const { return config_; }

  nn::ParameterSet& params() { return params_; }
  const nn::ParameterSet& params() const { return params_; }

  /// Deep copy of all parameter values (for pre-train / fine-tune studies).
  std::vector<nn::Matrix> snapshot_params() const;
  /// Restores a snapshot_params() copy; shapes must match this network's.
  void restore_params(const std::vector<nn::Matrix>& snapshot);

 private:
  int device_count_;
  AgentConfig config_;
  nn::ParameterSet params_;
  Rng init_rng_;

  std::vector<nn::GatLayer> gat_layers_;
  std::unique_ptr<nn::Linear> group_projection_;
  std::vector<nn::TransformerBlock> strategy_blocks_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace heterog::agent
