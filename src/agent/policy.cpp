#include "agent/policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heterog::agent {

PolicyNetwork::PolicyNetwork(int device_count, AgentConfig config)
    : device_count_(device_count), config_(config), init_rng_(config.seed) {
  check(device_count >= 1, "PolicyNetwork: need at least one device");
  check(config_.gat_layers >= 1 && config_.strategy_layers >= 0,
        "PolicyNetwork: bad layer counts");

  int in_dim = feature_dim(device_count);
  for (int l = 0; l < config_.gat_layers; ++l) {
    gat_layers_.emplace_back(params_, in_dim, config_.gat_dim_per_head,
                             config_.gat_heads, init_rng_);
    in_dim = config_.gat_dim_per_head * config_.gat_heads;
  }
  group_projection_ =
      std::make_unique<nn::Linear>(params_, in_dim, config_.strategy_dim, init_rng_);
  for (int l = 0; l < config_.strategy_layers; ++l) {
    strategy_blocks_.emplace_back(params_, config_.strategy_dim, config_.strategy_heads,
                                  config_.strategy_ffn_dim, init_rng_);
  }
  head_ = std::make_unique<nn::Linear>(params_, config_.strategy_dim,
                                       device_count_ + 4, init_rng_);
}

PolicyForward PolicyNetwork::forward(nn::Tape& tape, const EncodedGraph& encoded) const {
  check(encoded.features.cols() == feature_dim(device_count_),
        "PolicyNetwork: encoded graph built for a different cluster size");
  nn::Var h = tape.leaf(encoded.features, /*requires_grad=*/false);
  for (const auto& layer : gat_layers_) {
    h = layer.forward(tape, h, encoded.edge_src, encoded.edge_dst,
                      encoded.node_count());
  }
  // Per-group embeddings: g_n = sigma(W * mean over member nodes) — the
  // paper's sum-pool composed with a learned transform.
  nn::Var groups = tape.segment_mean_rows(h, encoded.grouping.assignment(),
                                          encoded.group_count());
  nn::Var z = tape.tanh_act(group_projection_->forward(tape, groups));
  for (const auto& block : strategy_blocks_) {
    z = block.forward(tape, z);
  }
  PolicyForward out;
  out.logits = head_->forward(tape, z);
  return out;
}

std::vector<int> PolicyNetwork::sample_actions(const nn::Matrix& logits, Rng& rng,
                                               double temperature) const {
  check(logits.cols() == action_count(), "sample_actions: logits width mismatch");
  check(temperature > 0.0, "sample_actions: temperature must be positive");
  std::vector<int> actions(static_cast<size_t>(logits.rows()));
  std::vector<double> probs(static_cast<size_t>(logits.cols()));
  for (int g = 0; g < logits.rows(); ++g) {
    double row_max = -1e300;
    for (int a = 0; a < logits.cols(); ++a) {
      row_max = std::max(row_max, logits.at(g, a) / temperature);
    }
    double total = 0.0;
    for (int a = 0; a < logits.cols(); ++a) {
      probs[static_cast<size_t>(a)] = std::exp(logits.at(g, a) / temperature - row_max);
      total += probs[static_cast<size_t>(a)];
    }
    for (double& p : probs) p /= total;
    actions[static_cast<size_t>(g)] = rng.sample_categorical(probs);
  }
  return actions;
}

std::vector<int> PolicyNetwork::greedy_actions(const nn::Matrix& logits) const {
  std::vector<int> actions(static_cast<size_t>(logits.rows()));
  for (int g = 0; g < logits.rows(); ++g) {
    int best = 0;
    for (int a = 1; a < logits.cols(); ++a) {
      if (logits.at(g, a) > logits.at(g, best)) best = a;
    }
    actions[static_cast<size_t>(g)] = best;
  }
  return actions;
}

std::vector<nn::Matrix> PolicyNetwork::snapshot_params() const {
  std::vector<nn::Matrix> snapshot;
  snapshot.reserve(params_.all().size());
  for (const auto& p : params_.all()) snapshot.push_back(p.value());
  return snapshot;
}

void PolicyNetwork::restore_params(const std::vector<nn::Matrix>& snapshot) {
  check(snapshot.size() == params_.all().size(), "restore_params: size mismatch");
  for (size_t i = 0; i < snapshot.size(); ++i) {
    nn::Var param = params_.all()[i];  // handle copy shares the storage
    check(snapshot[i].same_shape(param.value()), "restore_params: shape mismatch");
    param.mutable_value() = snapshot[i];
  }
}

}  // namespace heterog::agent
