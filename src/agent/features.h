// Model feature encoding for the GNN agent (paper Sec. 4.1.1).
//
// "The GAT takes as input the DAG of the DNN model, in the form of: (1) a
//  node feature matrix, where each row contains the operation's attributes
//  (e.g., execution time when running on different devices, the input and
//  output sizes, the average tensor transfer time between each pair of
//  devices); (2) an adjacency matrix describing data dependencies."
//
// The adjacency is carried as an edge list (undirected + self loops), the
// sparse form our GAT layer consumes.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "nn/matrix.h"
#include "profiler/cost_provider.h"
#include "strategy/strategy.h"

namespace heterog::agent {

struct EncodedGraph {
  nn::Matrix features;        // [op_count x feature_dim], column-normalised
  std::vector<int> edge_src;  // both directions + self loops
  std::vector<int> edge_dst;
  strategy::Grouping grouping;
  const graph::GraphDef* graph = nullptr;

  int node_count() const { return features.rows(); }
  int group_count() const { return grouping.group_count(); }
};

/// Feature width for a cluster with `device_count` GPUs:
/// per-device execution times (M) + avg transfer time + output bytes +
/// parameter bytes + batch-divisible flag + compute-intensive flag + role
/// one-hot (3) = M + 8.
int feature_dim(int device_count);

/// Encodes a training graph against profiled costs, grouping ops per the
/// paper's nearest-neighbour scheme.
EncodedGraph encode_graph(const graph::GraphDef& graph,
                          const profiler::CostProvider& costs, int max_groups);

}  // namespace heterog::agent
