#include "rl/eval_engine.h"

#include "common/check.h"
#include "common/hash.h"

namespace heterog::rl {

EvalEngine::EvalEngine(const profiler::CostProvider& costs, EvalEngineOptions options)
    : costs_(&costs), options_(options) {
  check(options_.threads >= 1, "EvalEngine: thread count must be >= 1");
  if (options_.threads > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
}

uint64_t EvalEngine::plan_key(const graph::GraphDef& graph,
                              const strategy::Grouping& grouping,
                              const strategy::StrategyMap& strategy,
                              const sim::PlanEvalOptions& options) {
  Hash64 h;
  // Graph identity: the model builders give every graph a distinct name and
  // the grouping assignment below covers the op structure the evaluation
  // depends on, so (name, op count, batch, assignment) identifies the input.
  h.mix_string(graph.name());
  h.mix_signed(graph.op_count());
  h.mix_double(graph.global_batch());
  for (strategy::GroupId g : grouping.assignment()) {
    h.mix_signed(g);
  }
  for (const auto& a : strategy.group_actions) {
    if (a.is_mp) {
      h.mix_signed(1 + static_cast<int64_t>(a.mp_device));
    } else {
      h.mix_signed(-1 - (static_cast<int64_t>(a.replication) * 2 +
                         static_cast<int64_t>(a.comm)));
    }
  }
  // Everything in PlanEvalOptions / CompilerOptions that changes the result.
  // options.sim_impl is deliberately absent: the reference and data-oriented
  // simulators are bit-identical (tests/sim_diff_test.cpp), so a memoized
  // result answers both. Likewise collect_utilization (cache-bypassing
  // deployment path only) and the engine's PlanEvalScratch (pure memoization).
  h.mix_signed(static_cast<int64_t>(options.policy));
  h.mix_signed(options.unroll_iterations);
  h.mix_double(options.usable_memory_fraction);
  h.mix_signed(options.compiler.allreduce_fusion_bytes);
  h.mix_double(options.compiler.ps_rpc_overhead_ms);
  h.mix_signed(options.compiler.forced_ps_device);
  // Mixed only when set so keys (and durable-store entries) from runs
  // predating the flag stay valid for the default behaviour.
  if (options.skip_unroll_on_oom) h.mix(0x6f6f6d736b6970ULL);  // "oomskip"
  return h.digest();
}

uint64_t EvalEngine::store_key(uint64_t key) const {
  return Hash64().mix(options_.store_context).mix(key).digest();
}

bool EvalEngine::lookup_lru(uint64_t key, sim::PlanEvaluation* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cache_enabled()) return false;
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *out = it->second->second;
  return true;
}

bool EvalEngine::lookup(uint64_t key, sim::PlanEvaluation* out) {
  if (lookup_lru(key, out)) return true;
  // LRU miss: consult the durable cross-run tier (own mutex; never held
  // together with mu_). A store hit promotes into the LRU so repeats stay
  // in-process.
  if (options_.plan_store != nullptr &&
      options_.plan_store->lookup(store_key(key), out)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    ++stats_.store_hits;
    if (cache_enabled()) insert_lru_locked(key, *out);
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.plan_store != nullptr) ++stats_.store_misses;
  ++stats_.misses;  // misses count full evaluations (cache on or off)
  return false;
}

void EvalEngine::insert(uint64_t key, const sim::PlanEvaluation& eval,
                        bool from_store) {
  // Write-behind into the durable tier (its own lock; cheap append
  // buffering). Entries read *from* the store are not echoed back.
  if (!from_store && options_.plan_store != nullptr) {
    options_.plan_store->put(store_key(key), eval);
  }
  if (!cache_enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  insert_lru_locked(key, eval);
}

void EvalEngine::insert_lru_locked(uint64_t key, const sim::PlanEvaluation& eval) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Another worker computed the same key concurrently; results are
    // identical (evaluate_plan is pure), keep the resident entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, eval);
  index_[key] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

sim::PlanEvaluation EvalEngine::evaluate(const graph::GraphDef& graph,
                                         const strategy::Grouping& grouping,
                                         const strategy::StrategyMap& strategy,
                                         const sim::PlanEvalOptions& options) {
  const uint64_t key = plan_key(graph, grouping, strategy, options);
  sim::PlanEvaluation cached;
  if (lookup(key, &cached)) return cached;
  sim::PlanEvaluation eval = sim::evaluate_plan(
      *costs_, graph, grouping, strategy, options,
      options_.use_scratch ? &scratch_ : nullptr);
  insert(key, eval, /*from_store=*/false);
  return eval;
}

std::vector<sim::PlanEvaluation> EvalEngine::evaluate_batch(
    const graph::GraphDef& graph, const strategy::Grouping& grouping,
    const std::vector<strategy::StrategyMap>& strategies,
    const sim::PlanEvalOptions& options) {
  std::vector<sim::PlanEvaluation> results(strategies.size());
  parallel_for(strategies.size(), [&](size_t i) {
    results[i] = evaluate(graph, grouping, strategies[i], options);
  });
  return results;
}

void EvalEngine::parallel_for(size_t n, const std::function<void(size_t)>& body) {
  if (pool_ != nullptr) {
    pool_->parallel_for(n, body);
  } else {
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

void EvalEngine::poison(uint64_t key, const sim::PlanEvaluation& eval) {
  check(cache_enabled(), "EvalEngine::poison: cache is disabled");
  // LRU tier only: a poisoned test entry must never become durable.
  insert(key, eval, /*from_store=*/true);
}

EvalEngineStats EvalEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void EvalEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace heterog::rl
