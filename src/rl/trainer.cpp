#include "rl/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/log.h"
#include "sim/plan_eval.h"

namespace heterog::rl {

namespace {

using strategy::Action;
using strategy::CommMethod;
using strategy::ReplicationMode;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

Trainer::Trainer(const profiler::CostProvider& costs, TrainConfig config)
    : costs_(&costs), config_(config) {
  check(config_.episodes >= 0 && config_.samples_per_episode >= 1,
        "Trainer: bad episode configuration");
  check(config_.threads >= 1, "Trainer: thread count must be >= 1");
  EvalEngineOptions engine_options;
  engine_options.threads = config_.threads;
  engine_options.cache_capacity = config_.eval_cache_capacity;
  engine_options.plan_store = config_.plan_store;
  engine_options.store_context = config_.plan_store_context;
  engine_options.use_scratch = config_.eval_scratch;
  engine_ = std::make_unique<EvalEngine>(costs, engine_options);
}

double Trainer::reward_from(double time_ms, bool oom) const {
  // R = -sqrt(T seconds); x penalty factor when the plan overflows memory.
  double reward = -std::sqrt(std::max(time_ms, 0.0) / 1000.0);
  if (oom) reward *= config_.oom_penalty_factor;
  return reward;
}

Evaluation Trainer::to_evaluation(const sim::PlanEvaluation& plan) const {
  Evaluation eval;
  eval.time_ms = plan.per_iteration_ms;
  eval.oom = plan.oom;
  eval.reward = reward_from(plan.per_iteration_ms, plan.oom);
  return eval;
}

Evaluation Trainer::evaluate(const graph::GraphDef& graph,
                             const strategy::Grouping& grouping,
                             const strategy::StrategyMap& strategy) const {
  sim::PlanEvalOptions options;
  options.compiler = config_.compiler;
  options.sim_impl = config_.sim_impl;
  options.skip_unroll_on_oom = config_.skip_unroll_on_oom;
  return to_evaluation(engine_->evaluate(graph, grouping, strategy, options));
}

std::vector<Evaluation> Trainer::evaluate_batch(
    const graph::GraphDef& graph, const strategy::Grouping& grouping,
    const std::vector<strategy::StrategyMap>& strategies) const {
  sim::PlanEvalOptions options;
  options.compiler = config_.compiler;
  options.sim_impl = config_.sim_impl;
  options.skip_unroll_on_oom = config_.skip_unroll_on_oom;
  const auto plans = engine_->evaluate_batch(graph, grouping, strategies, options);
  std::vector<Evaluation> evals;
  evals.reserve(plans.size());
  for (const auto& plan : plans) evals.push_back(to_evaluation(plan));
  return evals;
}

std::vector<strategy::StrategyMap> Trainer::heuristic_candidates(
    const graph::GraphDef& graph, const strategy::Grouping& grouping) const {
  const auto& cluster = costs_->cluster();
  const int groups = grouping.group_count();
  std::vector<strategy::StrategyMap> candidates;

  // The four uniform DP strategies.
  for (ReplicationMode mode : {ReplicationMode::kEven, ReplicationMode::kProportional}) {
    for (CommMethod comm : {CommMethod::kPS, CommMethod::kAllReduce}) {
      candidates.push_back(strategy::StrategyMap::uniform(groups, Action::dp(mode, comm)));
    }
  }

  // Capacity-balanced MP: greedily pack groups onto devices in proportion to
  // memory capacity (feasibility fallback for models where DP overflows).
  {
    std::vector<std::pair<double, strategy::GroupId>> weights;  // bytes, group
    for (strategy::GroupId g = 0; g < groups; ++g) {
      double bytes = 0.0;
      for (graph::OpId op : grouping.members(g)) {
        bytes += static_cast<double>(graph.op(op).out_bytes(graph.global_batch()));
        bytes += 2.0 * static_cast<double>(graph.op(op).param_bytes);
      }
      weights.emplace_back(bytes, g);
    }
    std::sort(weights.rbegin(), weights.rend());
    std::vector<double> free_bytes;
    for (const auto& d : cluster.devices()) {
      free_bytes.push_back(0.92 * static_cast<double>(d.memory_bytes));
    }
    strategy::StrategyMap mp_map = strategy::StrategyMap::uniform(groups, Action::mp(0));
    for (const auto& [bytes, g] : weights) {
      // Device with the most free memory, weighted mildly by compute power.
      int best = 0;
      double best_key = -1e300;
      for (const auto& d : cluster.devices()) {
        const double key = free_bytes[static_cast<size_t>(d.id)] +
                           1e6 * cluster.relative_power(d.id);
        if (key > best_key) {
          best_key = key;
          best = d.id;
        }
      }
      free_bytes[static_cast<size_t>(best)] -= bytes;
      mp_map.group_actions[static_cast<size_t>(g)] = Action::mp(best);
    }
    candidates.push_back(std::move(mp_map));
  }

  // Contiguous capacity split: walk groups in graph order and cut them into
  // contiguous spans whose activation+parameter footprint is proportional to
  // device memory. Keeps adjacent layers co-located (few transfers) while
  // fitting models whose DP replicas overflow — the dominant pattern in the
  // paper's Table 3 plans.
  {
    std::vector<double> group_bytes(static_cast<size_t>(groups), 0.0);
    std::vector<double> group_min_topo(static_cast<size_t>(groups), 1e18);
    const auto topo = graph.topological_order();
    std::vector<double> topo_pos(static_cast<size_t>(graph.op_count()), 0.0);
    for (size_t i = 0; i < topo.size(); ++i) {
      topo_pos[static_cast<size_t>(topo[i])] = static_cast<double>(i);
    }
    double total_bytes = 0.0;
    for (strategy::GroupId g = 0; g < groups; ++g) {
      for (graph::OpId op : grouping.members(g)) {
        group_bytes[static_cast<size_t>(g)] +=
            static_cast<double>(graph.op(op).out_bytes(graph.global_batch())) +
            2.0 * static_cast<double>(graph.op(op).param_bytes);
        group_min_topo[static_cast<size_t>(g)] = std::min(
            group_min_topo[static_cast<size_t>(g)], topo_pos[static_cast<size_t>(op)]);
      }
      total_bytes += group_bytes[static_cast<size_t>(g)];
    }
    std::vector<strategy::GroupId> order(static_cast<size_t>(groups));
    for (strategy::GroupId g = 0; g < groups; ++g) order[static_cast<size_t>(g)] = g;
    std::sort(order.begin(), order.end(), [&](strategy::GroupId a, strategy::GroupId b) {
      return group_min_topo[static_cast<size_t>(a)] < group_min_topo[static_cast<size_t>(b)];
    });
    double capacity_total = 0.0;
    for (const auto& d : cluster.devices()) {
      capacity_total += static_cast<double>(d.memory_bytes);
    }
    // Assign each group to the device whose cumulative-capacity window
    // contains the group's weight midpoint; proportional by construction and
    // immune to a single oversized group starving later devices.
    std::vector<double> capacity_prefix;
    double capacity_acc = 0.0;
    for (const auto& d : cluster.devices()) {
      capacity_acc += static_cast<double>(d.memory_bytes);
      capacity_prefix.push_back(capacity_acc / capacity_total);
    }
    strategy::StrategyMap contiguous = strategy::StrategyMap::uniform(groups, Action::mp(0));
    double weight_acc = 0.0;
    size_t device_index = 0;
    for (strategy::GroupId g : order) {
      const double midpoint =
          (weight_acc + 0.5 * group_bytes[static_cast<size_t>(g)]) / total_bytes;
      while (device_index + 1 < capacity_prefix.size() &&
             midpoint > capacity_prefix[device_index]) {
        ++device_index;
      }
      contiguous.group_actions[static_cast<size_t>(g)] =
          Action::mp(static_cast<int>(device_index));
      weight_acc += group_bytes[static_cast<size_t>(g)];
    }
    // Mixed MP/DP family: keep a contiguous MP span (memory relief) and data-
    // parallelise the rest (compute parallelism) — the mixture Table 3
    // reports for the large models. Several span fractions are offered; the
    // evaluator picks whichever fits and runs fastest.
    for (double mp_fraction : {0.25, 0.5, 0.75}) {
      for (CommMethod comm : {CommMethod::kAllReduce, CommMethod::kPS}) {
        strategy::StrategyMap mixed = contiguous;
        const auto span = static_cast<size_t>(mp_fraction * groups);
        for (size_t i = span; i < order.size(); ++i) {
          mixed.group_actions[static_cast<size_t>(order[i])] =
              Action::dp(ReplicationMode::kProportional, comm);
        }
        candidates.push_back(std::move(mixed));
      }
    }
    candidates.push_back(std::move(contiguous));
  }

  // Alternating PS/AllReduce: gradient sync alternates between the NCCL
  // channel and the parameter-server links group by group, halving the load
  // on the serialised NCCL channel while PS traffic hides in its waiting
  // stages — the hybrid the paper observes in Table 2.
  for (ReplicationMode mode : {ReplicationMode::kEven, ReplicationMode::kProportional}) {
    strategy::StrategyMap alternating = strategy::StrategyMap::uniform(
        groups, Action::dp(mode, CommMethod::kAllReduce));
    for (strategy::GroupId g = 0; g < groups; g += 2) {
      alternating.group_actions[static_cast<size_t>(g)] =
          Action::dp(mode, CommMethod::kPS);
    }
    candidates.push_back(std::move(alternating));
  }

  // Hybrid: CP-AR everywhere, but pin parameter-heavy groups (no gradient
  // aggregation) to the fastest device — the pattern Table 2 reports.
  {
    strategy::StrategyMap hybrid = strategy::StrategyMap::uniform(
        groups, Action::dp(ReplicationMode::kProportional, CommMethod::kAllReduce));
    int fastest = 0;
    for (const auto& d : cluster.devices()) {
      if (d.gflops_per_ms > cluster.device(fastest).gflops_per_ms) fastest = d.id;
    }
    constexpr int64_t kHeavyParams = 64LL << 20;
    for (strategy::GroupId g = 0; g < groups; ++g) {
      int64_t params = 0;
      for (graph::OpId op : grouping.members(g)) params += graph.op(op).param_bytes;
      if (params > kHeavyParams) {
        hybrid.group_actions[static_cast<size_t>(g)] = Action::mp(fastest);
      }
    }
    candidates.push_back(std::move(hybrid));
  }

  return candidates;
}

std::pair<strategy::StrategyMap, Evaluation> Trainer::repair_oom(
    const graph::GraphDef& graph, const strategy::Grouping& grouping,
    strategy::StrategyMap map, int max_iterations) const {
  const auto& cluster = costs_->cluster();
  const int groups = grouping.group_count();

  std::vector<double> group_weight(static_cast<size_t>(groups), 0.0);
  for (strategy::GroupId g = 0; g < groups; ++g) {
    for (graph::OpId op : grouping.members(g)) {
      group_weight[static_cast<size_t>(g)] +=
          static_cast<double>(graph.op(op).out_bytes(graph.global_batch())) +
          2.0 * static_cast<double>(graph.op(op).param_bytes);
    }
  }

  Evaluation eval;
  sim::PlanEvalOptions repair_opts;
  repair_opts.compiler = config_.compiler;
  repair_opts.sim_impl = config_.sim_impl;
  repair_opts.unroll_iterations = 1;  // memory is what matters here
  // Repair against a slightly tighter memory bound than the real check so
  // the final plan carries slack instead of sitting on the knife edge.
  repair_opts.usable_memory_fraction = 0.90;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Memoized like every evaluation: repeated repairs of similar candidates
    // share intermediate results (the repair options are part of the key).
    const auto result = engine_->evaluate(graph, grouping, map, repair_opts);
    eval.time_ms = result.per_iteration_ms;
    eval.oom = result.oom;
    eval.reward = reward_from(result.per_iteration_ms, result.oom);
    if (!result.oom) return {std::move(map), eval};

    // Calibrate the static weight proxy against the simulated peaks (the
    // proxy misses backward working sets and transfer staging).
    double peak_total = 0.0, proxy_total = 0.0;
    for (const auto& d : cluster.devices()) {
      peak_total += static_cast<double>(
          result.peak_memory_bytes[static_cast<size_t>(d.id)]);
    }
    for (double w : group_weight) proxy_total += w;
    const double scale = proxy_total > 0.0 ? peak_total / proxy_total : 1.0;

    std::vector<double> headroom(static_cast<size_t>(cluster.device_count()), 0.0);
    for (const auto& d : cluster.devices()) {
      headroom[static_cast<size_t>(d.id)] =
          0.90 * static_cast<double>(d.memory_bytes) -
          static_cast<double>(result.peak_memory_bytes[static_cast<size_t>(d.id)]);
    }

    bool moved = false;
    for (cluster::DeviceId oom_dev : result.oom_devices) {
      const double overflow = -headroom[static_cast<size_t>(oom_dev)];
      // Victim: among MP groups on the overflowing device, the lightest one
      // that alone covers the overflow; otherwise the heaviest. If no MP
      // group lives there, demote the heaviest DP group to MP.
      strategy::GroupId victim = -1;
      strategy::GroupId heaviest = -1;
      for (strategy::GroupId g = 0; g < groups; ++g) {
        const auto& a = map.group_actions[static_cast<size_t>(g)];
        if (!(a.is_mp && a.mp_device == oom_dev)) continue;
        const double w = group_weight[static_cast<size_t>(g)] * scale;
        if (heaviest < 0 ||
            group_weight[static_cast<size_t>(g)] > group_weight[static_cast<size_t>(heaviest)]) {
          heaviest = g;
        }
        if (w >= overflow &&
            (victim < 0 || group_weight[static_cast<size_t>(g)] <
                               group_weight[static_cast<size_t>(victim)])) {
          victim = g;
        }
      }
      if (victim < 0) victim = heaviest;
      bool victim_is_mp = victim >= 0;
      if (victim < 0) {
        for (strategy::GroupId g = 0; g < groups; ++g) {
          if (map.group_actions[static_cast<size_t>(g)].is_mp) continue;
          if (victim < 0 || group_weight[static_cast<size_t>(g)] >
                                group_weight[static_cast<size_t>(victim)]) {
            victim = g;
          }
        }
      }
      if (victim < 0) continue;
      const double victim_bytes = group_weight[static_cast<size_t>(victim)] * scale;

      // Target: the device with the most headroom after the move; prefer
      // devices the victim actually fits on.
      int target = -1;
      double best_remaining = -1e300;
      for (const auto& d : cluster.devices()) {
        if (victim_is_mp && d.id == oom_dev) continue;
        const double remaining = headroom[static_cast<size_t>(d.id)] - victim_bytes;
        if (remaining > best_remaining) {
          best_remaining = remaining;
          target = d.id;
        }
      }
      if (target < 0) continue;
      map.group_actions[static_cast<size_t>(victim)] = strategy::Action::mp(target);
      headroom[static_cast<size_t>(target)] -= victim_bytes;
      headroom[static_cast<size_t>(oom_dev)] += victim_bytes;
      moved = true;
    }
    if (!moved) break;
  }
  return {std::move(map), eval};
}

EpisodeStats Trainer::reinforce_step(agent::PolicyNetwork& policy,
                                     const agent::EncodedGraph& encoded,
                                     MovingAverage& baseline, Rng& rng,
                                     SearchResult* result) {
  nn::Tape tape;
  const auto forward = policy.forward(tape, encoded);
  const nn::Matrix& logits_value = forward.logits.value();

  const nn::Var log_probs = tape.log_softmax_rows(forward.logits);
  const nn::Var probs = tape.softmax_rows(forward.logits);
  // Entropy H = -sum p log p, averaged over groups.
  const nn::Var entropy = tape.scale(
      tape.sum_all(tape.hadamard(probs, log_probs)),
      -1.0 / static_cast<double>(encoded.group_count()));

  // Sample every strategy first (the RNG is consumed in sample order, same
  // as a fully serial loop — evaluation draws nothing from it), fan the
  // evaluations out across the engine's workers, then reduce in sample
  // order: baseline updates, incumbent updates and loss terms see results
  // in exactly the serial sequence, so the search is bit-identical whatever
  // the thread count.
  std::vector<std::vector<int>> sampled(static_cast<size_t>(config_.samples_per_episode));
  std::vector<strategy::StrategyMap> maps(static_cast<size_t>(config_.samples_per_episode));
  for (int s = 0; s < config_.samples_per_episode; ++s) {
    sampled[static_cast<size_t>(s)] =
        policy.sample_actions(logits_value, rng, policy.config().sample_temperature);
    auto& map = maps[static_cast<size_t>(s)];
    map.group_actions.reserve(sampled[static_cast<size_t>(s)].size());
    for (int a : sampled[static_cast<size_t>(s)]) {
      map.group_actions.push_back(Action::from_index(a, policy.device_count()));
    }
  }
  const std::vector<Evaluation> evals =
      evaluate_batch(*encoded.graph, encoded.grouping, maps);

  EpisodeStats episode_stats;
  nn::Var policy_loss;
  for (int s = 0; s < config_.samples_per_episode; ++s) {
    const std::vector<int>& actions = sampled[static_cast<size_t>(s)];
    const strategy::StrategyMap& map = maps[static_cast<size_t>(s)];
    const Evaluation& eval = evals[static_cast<size_t>(s)];
    const double prev_baseline =
        baseline.initialised() ? baseline.value() : eval.reward;
    const double advantage = eval.reward - prev_baseline;
    baseline.update(eval.reward);
    episode_stats.mean_reward += eval.reward / config_.samples_per_episode;
    if (eval.oom) ++episode_stats.oom_samples;

    if (result != nullptr) {
      const bool better = !eval.oom && (!result->best_feasible ||
                                        eval.time_ms < result->best_time_ms);
      if (better || result->best_strategy.group_actions.empty()) {
        result->best_strategy = map;
        result->best_time_ms = eval.time_ms;
        result->best_feasible = !eval.oom;
        result->episode_of_best = result->episodes_run;
      }
    }

    // -advantage * mean_g log pi(a_g)
    const nn::Var picked = tape.pick_per_row(log_probs, actions);
    const nn::Var mean_logp =
        tape.scale(tape.sum_all(picked), 1.0 / static_cast<double>(actions.size()));
    const nn::Var sample_loss =
        tape.scale(mean_logp, -advantage / config_.samples_per_episode);
    policy_loss = policy_loss.defined() ? tape.add(policy_loss, sample_loss) : sample_loss;
  }

  const nn::Var loss =
      tape.subtract(policy_loss, tape.scale(entropy, config_.entropy_weight));
  tape.backward(loss);
  optimizer_->step();

  episode_stats.baseline = baseline.value();
  episode_stats.entropy = entropy.scalar();
  return episode_stats;
}

SearchResult Trainer::search(agent::PolicyNetwork& policy,
                             const agent::EncodedGraph& encoded) {
  check(encoded.graph != nullptr, "search: encoded graph missing source");
  if (optimizer_ == nullptr || bound_policy_ != &policy) {
    nn::AdamOptimizer::Options opts;
    opts.learning_rate = config_.learning_rate;
    optimizer_ = std::make_unique<nn::AdamOptimizer>(policy.params(), opts);
    bound_policy_ = &policy;
  }

  SearchResult result;
  Rng rng(config_.seed);
  const EvalEngineStats stats_before = engine_->stats();
  const auto search_t0 = std::chrono::steady_clock::now();

  // Telemetry is write-only: events carry copies of values the search
  // computes anyway, so the result is bit-identical with or without a log.
  obs::EventLog* events = config_.events;
  const auto cache_traffic = [&](uint64_t* hits, uint64_t* misses) {
    const EvalEngineStats now = engine_->stats();
    *hits = now.hits - stats_before.hits;
    *misses = now.misses - stats_before.misses;
  };
  if (events != nullptr) {
    events->emit(obs::Event("search_start")
                     .with("model", encoded.graph->name())
                     .with("groups", encoded.group_count())
                     .with("devices", policy.device_count())
                     .with("episode_budget", config_.episodes)
                     .with("samples_per_episode", config_.samples_per_episode)
                     .with("threads", config_.threads)
                     .with("cache_capacity",
                           static_cast<int64_t>(config_.eval_cache_capacity)));
  }

  if (config_.seed_heuristics) {
    const auto phase_t0 = std::chrono::steady_clock::now();
    auto consider = [&](const strategy::StrategyMap& candidate, const Evaluation& eval) {
      const bool better = !eval.oom && (!result.best_feasible ||
                                        eval.time_ms < result.best_time_ms);
      if (better || result.best_strategy.group_actions.empty()) {
        result.best_strategy = candidate;
        result.best_time_ms = eval.time_ms;
        result.best_feasible = !eval.oom;
      }
    };
    // Evaluate every warm-start candidate as one parallel batch, then reduce
    // in candidate order — the incumbent after this loop is the one the
    // serial path would have picked.
    std::vector<strategy::StrategyMap> candidates =
        heuristic_candidates(*encoded.graph, encoded.grouping);
    const std::vector<Evaluation> evals =
        evaluate_batch(*encoded.graph, encoded.grouping, candidates);
    std::vector<std::pair<double, strategy::StrategyMap>> oom_candidates;
    for (size_t i = 0; i < candidates.size(); ++i) {
      consider(candidates[i], evals[i]);
      if (evals[i].oom) {
        oom_candidates.emplace_back(evals[i].time_ms, std::move(candidates[i]));
      }
    }
    // Memory-repair the most promising infeasible candidates (greedy moves
    // guided by simulated peaks) — this is what rescues the large models
    // whose every heuristic overflows somewhere.
    std::sort(oom_candidates.begin(), oom_candidates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Even with a feasible incumbent, repairing the fastest infeasible
    // candidates can yield better hybrids (e.g. CP-PS that only overflows
    // the V100s). When nothing is feasible yet, repair generously — the
    // large models depend on it.
    const size_t repair_budget = std::min(
        result.best_feasible ? size_t{2} : oom_candidates.size(), oom_candidates.size());
    // Repairs are independent per candidate (each is a deterministic local
    // fixpoint that never reads the incumbent), so fan them out across the
    // pool — workers call engine_->evaluate() inline, never parallel_for —
    // and consider the repaired plans in candidate order afterwards.
    std::vector<std::pair<strategy::StrategyMap, Evaluation>> repaired_slots(repair_budget);
    std::vector<Evaluation> refined_slots(repair_budget);
    engine_->parallel_for(repair_budget, [&](size_t i) {
      repaired_slots[i] =
          repair_oom(*encoded.graph, encoded.grouping, oom_candidates[i].second, 40);
      if (!repaired_slots[i].second.oom) {
        // Re-evaluate at full fidelity (steady-state unrolling).
        refined_slots[i] =
            evaluate(*encoded.graph, encoded.grouping, repaired_slots[i].first);
      }
    });
    for (size_t i = 0; i < repair_budget; ++i) {
      if (repaired_slots[i].second.oom) continue;
      consider(repaired_slots[i].first, refined_slots[i]);
    }
    if (events != nullptr) {
      events->emit(obs::Event("search_phase")
                       .with("phase", "heuristics")
                       .with("wall_ms", wall_ms_since(phase_t0))
                       .with("candidates", static_cast<int64_t>(evals.size()))
                       .with("repaired", static_cast<int64_t>(repair_budget))
                       .with("best_ms", result.best_time_ms)
                       .with("best_feasible", result.best_feasible));
    }
  }

  MovingAverage baseline(config_.baseline_decay);
  int stale = 0;
  double last_best = result.best_feasible ? result.best_time_ms : 1e300;
  for (int episode = 0; episode < config_.episodes; ++episode) {
    result.episodes_run = episode + 1;
    const auto episode_t0 = std::chrono::steady_clock::now();
    const EpisodeStats ep = reinforce_step(policy, encoded, baseline, rng, &result);
    result.episode_best_ms.push_back(result.best_feasible ? result.best_time_ms : -1.0);
    if (events != nullptr) {
      uint64_t hits = 0, misses = 0;
      cache_traffic(&hits, &misses);
      events->emit(obs::Event("search_episode")
                       .with("episode", episode + 1)
                       .with("best_ms", result.best_time_ms)
                       .with("best_feasible", result.best_feasible)
                       .with("best_reward",
                             reward_from(result.best_time_ms, !result.best_feasible))
                       .with("mean_reward", ep.mean_reward)
                       .with("baseline", ep.baseline)
                       .with("entropy", ep.entropy)
                       .with("oom_samples", ep.oom_samples)
                       .with("cache_hits", hits)
                       .with("cache_misses", misses)
                       .with("wall_ms", wall_ms_since(episode_t0)));
    }
    if (result.best_feasible && result.best_time_ms < last_best - 1e-9) {
      last_best = result.best_time_ms;
      stale = 0;
    } else if (config_.patience > 0 && ++stale >= config_.patience) {
      break;
    }
  }

  // Final polish: greedy single-group moves on the incumbent. Each move
  // re-assigns one group to a random alternative action and keeps the change
  // only when the plan stays feasible and gets faster. The moves are drawn
  // up front (every move consumes its (g, a) pair from the RNG whether or
  // not it is accepted, so the draw sequence is fixed), then evaluated in
  // speculative batches against the current incumbent: the first improving
  // move in scan order is accepted, and the rest of its batch — evaluated
  // against a now-stale incumbent — is discarded and redrawn from the move
  // list. That reproduces the serial hill climb exactly: a candidate after
  // an accepted move never contributes a result computed off the old base.
  if (result.best_feasible && config_.polish_moves > 0 &&
      !result.best_strategy.group_actions.empty()) {
    const auto polish_t0 = std::chrono::steady_clock::now();
    int accepted = 0;
    Rng polish_rng(config_.seed ^ 0x9E3779B9);
    const int groups = static_cast<int>(result.best_strategy.group_actions.size());
    const int actions = strategy::Action::action_count(costs_->cluster().device_count());
    std::vector<std::pair<int, int>> moves;
    moves.reserve(static_cast<size_t>(config_.polish_moves));
    for (int move = 0; move < config_.polish_moves; ++move) {
      const int g = polish_rng.uniform_int(0, groups - 1);
      const int a = polish_rng.uniform_int(0, actions - 1);
      moves.emplace_back(g, a);
    }
    const size_t batch_size = static_cast<size_t>(std::max(config_.threads, 1));
    size_t next = 0;
    while (next < moves.size()) {
      const size_t n = std::min(batch_size, moves.size() - next);
      std::vector<strategy::StrategyMap> batch;
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        strategy::StrategyMap candidate = result.best_strategy;
        candidate.group_actions[static_cast<size_t>(moves[next + i].first)] =
            strategy::Action::from_index(moves[next + i].second,
                                         costs_->cluster().device_count());
        batch.push_back(std::move(candidate));
      }
      const std::vector<Evaluation> evals =
          evaluate_batch(*encoded.graph, encoded.grouping, batch);
      size_t advanced = n;
      for (size_t i = 0; i < n; ++i) {
        if (!evals[i].oom && evals[i].time_ms < result.best_time_ms - 1e-9) {
          result.best_strategy = std::move(batch[i]);
          result.best_time_ms = evals[i].time_ms;
          ++accepted;
          advanced = i + 1;  // later slots were speculated off the old base
          break;
        }
      }
      next += advanced;
    }
    if (events != nullptr) {
      events->emit(obs::Event("search_phase")
                       .with("phase", "polish")
                       .with("wall_ms", wall_ms_since(polish_t0))
                       .with("moves", config_.polish_moves)
                       .with("accepted", accepted)
                       .with("best_ms", result.best_time_ms)
                       .with("best_feasible", result.best_feasible));
    }
  }

  const EvalEngineStats stats_after = engine_->stats();
  result.eval_cache_hits = stats_after.hits - stats_before.hits;
  result.eval_cache_misses = stats_after.misses - stats_before.misses;
  result.eval_store_hits = stats_after.store_hits - stats_before.store_hits;
  result.eval_store_misses = stats_after.store_misses - stats_before.store_misses;
  result.best_reward = reward_from(result.best_time_ms, !result.best_feasible);

  if (events != nullptr) {
    events->emit(obs::Event("search_end")
                     .with("model", encoded.graph->name())
                     .with("episodes_run", result.episodes_run)
                     .with("best_ms", result.best_time_ms)
                     .with("best_reward", result.best_reward)
                     .with("best_feasible", result.best_feasible)
                     .with("episode_of_best", result.episode_of_best)
                     .with("cache_hits", result.eval_cache_hits)
                     .with("cache_misses", result.eval_cache_misses)
                     .with("wall_ms", wall_ms_since(search_t0)));
  }

  log_info() << "search(" << encoded.graph->name() << "): best "
             << result.best_time_ms << " ms after " << result.episodes_run
             << " episodes (feasible=" << result.best_feasible << ", eval cache "
             << result.eval_cache_hits << " hits / " << result.eval_cache_misses
             << " misses)";
  return result;
}

double Trainer::pretrain_round(agent::PolicyNetwork& policy,
                               const std::vector<const agent::EncodedGraph*>& graphs) {
  check(!graphs.empty(), "pretrain_round: no graphs");
  if (optimizer_ == nullptr || bound_policy_ != &policy) {
    nn::AdamOptimizer::Options opts;
    opts.learning_rate = config_.learning_rate;
    optimizer_ = std::make_unique<nn::AdamOptimizer>(policy.params(), opts);
    bound_policy_ = &policy;
  }
  Rng rng(config_.seed ^ 0xABCDEF);
  double total_reward = 0.0;
  int samples = 0;
  for (const auto* encoded : graphs) {
    nn::Tape tape;
    const auto forward = policy.forward(tape, *encoded);
    const nn::Var log_probs = tape.log_softmax_rows(forward.logits);
    const nn::Var probs = tape.softmax_rows(forward.logits);
    const nn::Var entropy =
        tape.scale(tape.sum_all(tape.hadamard(probs, log_probs)),
                   -1.0 / static_cast<double>(encoded->group_count()));

    const auto actions = policy.sample_actions(forward.logits.value(), rng,
                                               policy.config().sample_temperature);
    strategy::StrategyMap map;
    for (int a : actions) {
      map.group_actions.push_back(Action::from_index(a, policy.device_count()));
    }
    const Evaluation eval = evaluate(*encoded->graph, encoded->grouping, map);
    total_reward += eval.reward;
    ++samples;
    const double prev = pretrain_baseline_.initialised() ? pretrain_baseline_.value()
                                                         : eval.reward;
    const double advantage = eval.reward - prev;
    pretrain_baseline_.update(eval.reward);

    const nn::Var picked = tape.pick_per_row(log_probs, actions);
    const nn::Var mean_logp = tape.scale(
        tape.sum_all(picked), 1.0 / static_cast<double>(actions.size()));
    const nn::Var loss =
        tape.subtract(tape.scale(mean_logp, -advantage),
                      tape.scale(entropy, config_.entropy_weight));
    tape.backward(loss);
    optimizer_->step();
  }
  const double mean_reward = total_reward / samples;
  if (config_.events != nullptr) {
    config_.events->emit(obs::Event("pretrain_round")
                             .with("graphs", static_cast<int64_t>(graphs.size()))
                             .with("mean_reward", mean_reward));
  }
  return mean_reward;
}

}  // namespace heterog::rl
