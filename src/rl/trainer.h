// REINFORCE training of the policy network (paper Sec. 4.1.3).
//
//   reward R = -sqrt(T)        (simulated per-iteration time)
//              x10 on OOM      (strategies that overflow device memory)
//   J(theta) = E[R] + lambda * H(pi)       (entropy-regularised)
//   theta <- theta + alpha * grad log pi(a) (r - R_bar) + lambda grad H
//
// where R_bar is a per-graph moving average of rewards.
//
// The trainer also evaluates a small set of heuristic warm-start candidates
// (the four uniform DP strategies, a capacity-balanced MP packing and a
// parameter-heavy-MP hybrid) and keeps the best feasible plan seen anywhere
// as the incumbent — the plan HeteroG finally deploys is the best found
// during search, exactly as in the paper's workflow.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "agent/policy.h"
#include "common/rng.h"
#include "common/stats.h"
#include "compile/compiler.h"
#include "obs/event_log.h"
#include "rl/eval_engine.h"
#include "sim/simulator.h"

namespace heterog::rl {

struct TrainConfig {
  int episodes = 150;             // episodes per search
  /// Compiler behaviour used for every evaluation (collective fusion, PS RPC
  /// overhead) — defaults to the paper's per-tensor collectives.
  compile::CompilerOptions compiler;
  int samples_per_episode = 4;    // strategies sampled per policy update
  double learning_rate = 1e-3;
  double entropy_weight = 0.03;
  double baseline_decay = 0.9;
  double oom_penalty_factor = 10.0;
  bool seed_heuristics = true;    // evaluate warm-start candidates
  /// Greedy single-group polish moves applied to the incumbent after the
  /// episode budget (cheap hill climbing; particularly effective on the
  /// memory-repaired large-model plans). <= 0 disables.
  int polish_moves = 48;
  /// Stop early when the incumbent has not improved for this many episodes
  /// (<= 0 disables early stopping).
  int patience = 60;
  uint64_t seed = 7;
  /// Worker threads for strategy evaluation (per-episode samples, heuristic
  /// seeds, OOM repair, polish lookahead). 1 = serial. Results are
  /// bit-identical whatever the value — tests/eval_engine_test.cpp pins it.
  int threads = 1;
  /// Memoized evaluations kept in the engine's LRU cache (0 disables);
  /// re-sampled strategies skip compile+simulate entirely.
  size_t eval_cache_capacity = 4096;
  /// Simulator implementation used by every evaluation. The two are
  /// bit-identical (tests/sim_diff_test.cpp walls it); kReference exists for
  /// differential testing and as the perf baseline in bench_eval_engine.
  sim::SimImpl sim_impl = sim::SimImpl::kDataOriented;
  /// Skip the steady-state unroll for OOM strategies, reporting the cold
  /// makespan instead (sim::PlanEvalOptions::skip_unroll_on_oom). Changes
  /// time_ms/reward for infeasible strategies, so the RL search leaves it
  /// off; heterog::make_plan's heuristic-only path — which reads only the
  /// feasible winner's time — turns it on to halve the cost of rejected
  /// candidates on large clusters.
  bool skip_unroll_on_oom = false;
  /// Reuse the engine's cross-evaluation unroll scratch. Off reproduces the
  /// scratch-free engine for perf baselines; results are identical either
  /// way (the scratch is pure memoization, not part of any cache key).
  bool eval_scratch = true;
  /// Durable cross-run evaluation cache (non-owning; must outlive the
  /// Trainer). Null disables the tier. When set, plan_store_context MUST
  /// carry the cluster/cost-model identity hash (heterog::make_plan derives
  /// it from the cluster fingerprint + profiler seed) — see
  /// rl::EvalEngineOptions::store_context.
  store::PlanStore* plan_store = nullptr;
  uint64_t plan_store_context = 0;
  /// Telemetry sink (non-owning; must outlive the Trainer). When set, every
  /// search streams search_start / search_phase / search_episode /
  /// search_end JSONL events (docs/observability.md). Write-only: attaching
  /// a log never changes the search result — tests/obs_test.cpp pins
  /// bit-identical results with events on and off.
  obs::EventLog* events = nullptr;
};

/// Per-episode telemetry of one REINFORCE update (the search_episode event
/// payload; all rewards unitless, entropy in nats).
struct EpisodeStats {
  double mean_reward = 0.0;  // mean reward over the episode's samples
  double baseline = 0.0;     // moving-average baseline after the update
  double entropy = 0.0;      // mean per-group policy entropy
  int oom_samples = 0;       // samples whose plan overflowed device memory
};

/// Evaluation of one concrete strategy.
struct Evaluation {
  double time_ms = 0.0;
  bool oom = false;
  double reward = 0.0;
};

struct SearchResult {
  strategy::StrategyMap best_strategy;
  double best_time_ms = 0.0;
  /// Reward of the incumbent under the trainer's reward model
  /// (-sqrt(T seconds), x oom_penalty_factor when infeasible).
  double best_reward = 0.0;
  bool best_feasible = false;
  int episodes_run = 0;
  int episode_of_best = 0;
  std::vector<double> episode_best_ms;  // incumbent trace per episode
  /// Evaluation-cache traffic of this search (hits = evaluations answered
  /// without compile+simulate; misses = full evaluations performed).
  uint64_t eval_cache_hits = 0;
  uint64_t eval_cache_misses = 0;
  /// Durable-store traffic (zero unless TrainConfig::plan_store is set):
  /// store hits are cross-run cache hits — evaluations answered from disk.
  uint64_t eval_store_hits = 0;
  uint64_t eval_store_misses = 0;
};

class Trainer {
 public:
  Trainer(const profiler::CostProvider& costs, TrainConfig config);

  /// Evaluates a strategy end-to-end (compile + rank-order simulate + OOM
  /// check) and converts the result to a reward. Memoized: identical
  /// (graph, grouping, strategy) tuples are answered from the engine cache.
  Evaluation evaluate(const graph::GraphDef& graph, const strategy::Grouping& grouping,
                      const strategy::StrategyMap& strategy) const;

  /// Evaluates `strategies` concurrently across the engine's worker pool;
  /// result i corresponds to strategies[i] (deterministic reduce order).
  std::vector<Evaluation> evaluate_batch(
      const graph::GraphDef& graph, const strategy::Grouping& grouping,
      const std::vector<strategy::StrategyMap>& strategies) const;

  /// Trains `policy` on one graph until the episode budget (or patience) is
  /// exhausted; returns the incumbent best plan.
  SearchResult search(agent::PolicyNetwork& policy, const agent::EncodedGraph& encoded);

  /// One multi-graph pre-training round (Sec. 4.1.3 samples a set of graphs
  /// per update). Returns the mean reward across graphs.
  double pretrain_round(agent::PolicyNetwork& policy,
                        const std::vector<const agent::EncodedGraph*>& graphs);

  /// Heuristic warm-start candidates for a graph (public for tests/benches).
  std::vector<strategy::StrategyMap> heuristic_candidates(
      const graph::GraphDef& graph, const strategy::Grouping& grouping) const;

  /// Greedy memory repair: while the plan OOMs, move the heaviest MP group
  /// (or demote the heaviest DP group to MP) off each overflowing device onto
  /// the device with the most simulated headroom. Returns the repaired map
  /// and its evaluation; gives up after `max_iterations`.
  std::pair<strategy::StrategyMap, Evaluation> repair_oom(
      const graph::GraphDef& graph, const strategy::Grouping& grouping,
      strategy::StrategyMap map, int max_iterations = 16) const;

  const TrainConfig& config() const { return config_; }

  /// The evaluation engine behind evaluate()/search() (cache stats, test
  /// hooks). One engine — and therefore one cache — per Trainer, scoped to
  /// its CostProvider; a cluster change means a new Trainer and fresh cache.
  EvalEngine& eval_engine() const { return *engine_; }

 private:
  double reward_from(double time_ms, bool oom) const;
  Evaluation to_evaluation(const sim::PlanEvaluation& plan) const;
  EpisodeStats reinforce_step(agent::PolicyNetwork& policy,
                              const agent::EncodedGraph& encoded,
                              MovingAverage& baseline, Rng& rng, SearchResult* result);

  const profiler::CostProvider* costs_;
  TrainConfig config_;
  /// Internally synchronised; mutable so the logically-const evaluate() can
  /// record cache traffic.
  mutable std::unique_ptr<EvalEngine> engine_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;  // bound to the first policy used
  agent::PolicyNetwork* bound_policy_ = nullptr;
  MovingAverage pretrain_baseline_;
};

}  // namespace heterog::rl
