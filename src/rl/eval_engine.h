// Parallel, memoized plan evaluation for the RL search.
//
// Trainer::search evaluates every sampled strategy and every heuristic
// warm-start candidate with a full compile + rank-order simulation — a
// serial hot path even though the evaluations are mutually independent. The
// EvalEngine is that hot path made concurrent and cached:
//
//   * fan-out — evaluate_batch runs independent evaluations across a
//     fixed-size ThreadPool (compile + simulate share no mutable state; see
//     the thread-safety notes in compiler.h / simulator.h);
//   * memoization — results are kept in a bounded LRU cache keyed by a
//     64-bit hash of (graph identity, grouping, strategy, compiler +
//     evaluation options), so re-sampled strategies skip compile+simulate
//     entirely;
//   * determinism — results are written to per-index slots and reduced in
//     input order, and evaluate_plan itself is a pure function, so rewards,
//     baselines and the incumbent trace are bit-identical to the serial
//     path whatever the thread count. tests/eval_engine_test.cpp pins this.
//
// The cache is scoped to one engine and therefore to one CostProvider (one
// cluster + cost model): Trainer owns an engine per instance, and a cluster
// change means a new CostProvider, a new Trainer, and hence a fresh cache —
// stale cross-cluster hits are impossible by construction.
//
// An optional store::PlanStore adds a durable cross-run tier behind the LRU
// (read-through on miss, write-behind on every full evaluation). Because
// plan_key deliberately omits cluster / cost-model identity (the LRU is
// scoped by construction, above), store keys mix in `store_context` — a
// caller-supplied hash of exactly that identity (heterog::make_plan derives
// it from the cluster fingerprint + profiler seed) — so persisted entries
// can never leak across clusters or cost models.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "profiler/cost_provider.h"
#include "sim/plan_eval.h"
#include "store/plan_store.h"
#include "strategy/strategy.h"

namespace heterog::rl {

struct EvalEngineOptions {
  /// Worker threads for evaluate_batch / parallel_for; <= 1 runs inline.
  int threads = 1;
  /// Maximum memoized evaluations (LRU-evicted beyond); 0 disables caching.
  size_t cache_capacity = 4096;
  /// Durable cross-run cache tier (non-owning; must outlive the engine).
  /// Consulted on LRU miss; every full evaluation is written behind. Null
  /// disables the tier — behaviour is then bit-for-bit the pre-store engine.
  store::PlanStore* plan_store = nullptr;
  /// Salt mixed into every store key, carrying the cost-model identity that
  /// plan_key omits (see the header comment). Callers wiring a store MUST
  /// set this to a hash of the cluster + cost-model configuration.
  uint64_t store_context = 0;
  /// Share one PlanEvalScratch (unrolled-graph cache) across evaluations.
  /// Results are bit-identical on or off; off exists for perf baselines.
  bool use_scratch = true;
};

struct EvalEngineStats {
  uint64_t hits = 0;      // answered without compile+simulate (either tier)
  uint64_t misses = 0;    // == full compile+simulate evaluations
  uint64_t evictions = 0;
  uint64_t store_hits = 0;    // subset of hits answered by the durable store
  uint64_t store_misses = 0;  // store probes that fell through to evaluation
};

class EvalEngine {
 public:
  EvalEngine(const profiler::CostProvider& costs, EvalEngineOptions options);

  /// Evaluates one strategy, consulting the cache first. Thread-safe.
  sim::PlanEvaluation evaluate(const graph::GraphDef& graph,
                               const strategy::Grouping& grouping,
                               const strategy::StrategyMap& strategy,
                               const sim::PlanEvalOptions& options);

  /// Evaluates a batch of strategies across the pool; result i corresponds
  /// to strategies[i] regardless of completion order.
  std::vector<sim::PlanEvaluation> evaluate_batch(
      const graph::GraphDef& graph, const strategy::Grouping& grouping,
      const std::vector<strategy::StrategyMap>& strategies,
      const sim::PlanEvalOptions& options);

  /// Generic fan-out over the engine's pool (serial when threads <= 1).
  /// Used by Trainer for independent multi-evaluation jobs (OOM repair of
  /// several candidates); `body` may call evaluate() but not parallel_for.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// The cache key: a 64-bit hash of graph identity (name, op count, global
  /// batch), the grouping assignment, every group action, and the options
  /// that change the result (order policy, unroll, memory fraction,
  /// collective fusion, PS RPC overhead, forced PS device). Exposed so
  /// tests can verify keys distinguish near-identical strategies.
  static uint64_t plan_key(const graph::GraphDef& graph,
                           const strategy::Grouping& grouping,
                           const strategy::StrategyMap& strategy,
                           const sim::PlanEvalOptions& options);

  /// Test hook: plants `eval` under `key`, as a real result would be. Used
  /// to prove the cache is actually consulted (a poisoned entry surfaces)
  /// and that near-identical strategies do not collide (they do not surface
  /// the poison).
  void poison(uint64_t key, const sim::PlanEvaluation& eval);

  EvalEngineStats stats() const;
  void clear_cache();

  int threads() const { return options_.threads; }
  bool cache_enabled() const { return options_.cache_capacity > 0; }
  store::PlanStore* plan_store() const { return options_.plan_store; }

  /// The durable-tier key for a plan_key: store_context mixed in so entries
  /// from different clusters / cost models can never collide meaningfully.
  uint64_t store_key(uint64_t key) const;

 private:
  bool lookup(uint64_t key, sim::PlanEvaluation* out);
  bool lookup_lru(uint64_t key, sim::PlanEvaluation* out);
  void insert(uint64_t key, const sim::PlanEvaluation& eval, bool from_store);
  void insert_lru_locked(uint64_t key, const sim::PlanEvaluation& eval);

  const profiler::CostProvider* costs_;
  EvalEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads <= 1

  // Cross-evaluation scratch for evaluate_plan (unrolled-graph cache; own
  // lock, thread-safe). Like SimImpl, deliberately NOT part of plan_key:
  // results are bit-identical with and without it.
  sim::PlanEvalScratch scratch_;

  // LRU cache: most-recently-used at the front of lru_.
  mutable std::mutex mu_;
  std::list<std::pair<uint64_t, sim::PlanEvaluation>> lru_;
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, sim::PlanEvaluation>>::iterator>
      index_;
  EvalEngineStats stats_;
};

}  // namespace heterog::rl
