// Fixed-size worker pool for fan-out/fan-in parallelism.
//
// The pool exists for the RL search's evaluation engine: per-episode strategy
// samples and heuristic warm-start candidates are mutually independent
// compile+simulate jobs, so they fan out across workers and reduce back in
// input order. The API is deliberately tiny — parallel_for with a blocking
// barrier is the only shape the library needs, and keeping the barrier
// inside the pool keeps every call site trivially deterministic (workers
// write to disjoint slots; the caller reads only after the barrier).
//
// Thread-safety contract: `body` runs concurrently on worker threads and
// must only touch state that is either local to its index or internally
// synchronised. Exceptions thrown by `body` are captured and the first one
// (by task index) is rethrown on the calling thread after all tasks drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace heterog {

class ThreadPool {
 public:
  /// Whether a single-thread pool runs work inline on the caller (the
  /// parallel_for fan-out shape, zero-overhead when serial) or still spawns
  /// a real worker (the submit() shape: a server's accept loop must never
  /// execute a request inline, or one slow request stalls all admission).
  enum class Mode { kInlineWhenSingle, kAlwaysSpawn };

  /// Spawns `threads` workers. In kInlineWhenSingle mode (the default)
  /// `threads <= 1` spawns none: parallel_for then runs inline on the
  /// caller, so a serial pool is zero-overhead and the call sites need no
  /// special casing. kAlwaysSpawn spawns max(1, threads) real workers.
  explicit ThreadPool(int threads, Mode mode = Mode::kInlineWhenSingle);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 for an inline pool).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs body(0) .. body(n-1) across the workers and blocks until every
  /// call returned. Rethrows the lowest-index exception, if any. Must not be
  /// called from inside a pool task (the caller blocks; nested batches could
  /// starve the workers they wait on).
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// Enqueues one fire-and-forget task for the workers (the plan server's
  /// per-request dispatch). Requires a pool with real workers (size() > 0 —
  /// construct with Mode::kAlwaysSpawn); throws CheckError on an inline
  /// pool, because "submit" on a worker-less pool could only run the task on
  /// the caller, which is exactly what submitters exist to avoid. The task
  /// must not throw: there is no barrier to rethrow on, so an escaped
  /// exception would terminate the worker. Completion (and any back-pressure
  /// accounting) is the caller's to synchronise.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::queue<std::function<void()>> tasks_;
  bool shutting_down_ = false;
};

}  // namespace heterog
