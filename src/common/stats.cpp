#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heterog {

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  check(x.size() == y.size(), "fit_linear: size mismatch");
  check(x.size() >= 2, "fit_linear: need at least two samples");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ybar = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.predict(x[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  fit.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double mean(const std::vector<double>& values) {
  check(!values.empty(), "mean: empty");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

double percentile(std::vector<double> values, double p) {
  check(!values.empty(), "percentile: empty");
  check(p >= 0.0 && p <= 100.0, "percentile: p out of range");
  std::sort(values.begin(), values.end());
  const double idx = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace heterog
