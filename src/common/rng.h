// Deterministic random-number utilities.
//
// Everything stochastic in HeteroG (synthetic profiling noise, policy
// sampling, MCMC proposals, weight init) draws from an explicitly-seeded
// Rng instance so runs are reproducible bit-for-bit. No global RNG exists.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace heterog {

/// Seedable RNG wrapper around a 64-bit Mersenne twister, with the handful
/// of draw shapes the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    check(lo <= hi, "uniform: lo > hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    check(lo <= hi, "uniform_int: lo > hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Samples an index from an (unnormalised) non-negative weight vector.
  int sample_weighted(const std::vector<double>& weights);

  /// Samples an index from a probability vector that sums to ~1.
  int sample_categorical(const std::vector<double>& probabilities);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child stream; deterministic in (seed, salt).
  Rng fork(uint64_t salt) const {
    return Rng(seed_mix_ ^ (salt * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_mix_ = engine_();
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace heterog
