#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace heterog {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << "[heterog " << level_tag(level) << "] " << message << "\n";
}

}  // namespace heterog
