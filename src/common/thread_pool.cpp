#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/check.h"

namespace heterog {

ThreadPool::ThreadPool(int threads, Mode mode) {
  if (mode == Mode::kInlineWhenSingle && threads <= 1) return;
  const int spawn = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down, queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  check(!workers_.empty(),
        "ThreadPool::submit needs real workers (construct with Mode::kAlwaysSpawn)");
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Per-batch barrier state. Tasks pull indices from a shared counter so a
  // long task never strands queued short ones behind it.
  struct Batch {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::exception_ptr error;
    size_t error_index = 0;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = n;

  auto run_one = [batch, &body, n]() {
    const size_t i = batch->next.fetch_add(1);
    if (i < n) {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mu);
        if (!batch->error || i < batch->error_index) {
          batch->error = std::current_exception();
          batch->error_index = i;
        }
      }
    }
    std::lock_guard<std::mutex> lock(batch->mu);
    if (--batch->remaining == 0) batch->done.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) tasks_.push(run_one);
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace heterog
