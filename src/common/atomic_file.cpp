#include "common/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace heterog {

namespace {

void set_error(std::string* error, const char* step, int err) {
  if (error == nullptr) return;
  *error = std::string(step) + " failed: " + std::strerror(err) + " (errno " +
           std::to_string(err) + ")";
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string* error) {
  if (error != nullptr) error->clear();
  // PID-qualified temp name: concurrent writers to the same path race only
  // at the final rename, where last-rename-wins still leaves a complete file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    set_error(error, "open temp file", errno);
    return false;
  }

  // Record the *first* failing step and its errno — the later fclose would
  // otherwise clobber the interesting errno with its own.
  const char* failed_step = nullptr;
  int failed_errno = 0;
  const auto step = [&](bool ok, const char* name) {
    if (!ok && failed_step == nullptr) {
      failed_step = name;
      failed_errno = errno;
    }
  };

  step(content.empty() ||
           std::fwrite(content.data(), 1, content.size(), f) == content.size(),
       "write");
  if (failed_step == nullptr) step(std::fflush(f) == 0, "flush");
  if (failed_step == nullptr) {
    step(::fsync(::fileno(f)) == 0, "fsync");  // data durable before the rename
  }
  step(std::fclose(f) == 0, "close");
  if (failed_step == nullptr) {
    step(std::rename(tmp.c_str(), path.c_str()) == 0, "rename");
  }
  if (failed_step != nullptr) {
    std::remove(tmp.c_str());  // never leave *.tmp litter behind a failed save
    set_error(error, failed_step, failed_errno);
    return false;
  }

  // Best-effort directory fsync so the rename itself survives power loss.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  std::FILE* d = std::fopen(dir.c_str(), "rb");
  if (d) {
    ::fsync(::fileno(d));
    std::fclose(d);
  }
  return true;
}

}  // namespace heterog
