#include "common/atomic_file.h"

#include <unistd.h>

#include <cstdio>

namespace heterog {

bool write_file_atomic(const std::string& path, std::string_view content) {
  // PID-qualified temp name: concurrent writers to the same path race only
  // at the final rename, where last-rename-wins still leaves a complete file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;

  bool ok = content.empty() ||
            std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(::fileno(f)) == 0;  // data durable before the rename
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }

  // Best-effort directory fsync so the rename itself survives power loss.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  std::FILE* d = std::fopen(dir.c_str(), "rb");
  if (d) {
    ::fsync(::fileno(d));
    std::fclose(d);
  }
  return true;
}

}  // namespace heterog
