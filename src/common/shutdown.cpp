#include "common/shutdown.h"

#include <atomic>
#include <csignal>

namespace heterog {

namespace {

// A lock-free std::atomic is both async-signal-safe (the handler may store
// to it) and thread-safe (the serve loop polls it from a worker thread,
// while tests set it from another) — volatile sig_atomic_t only gives the
// former.
std::atomic<int> g_shutdown_flag{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void on_shutdown_signal(int) {
  g_shutdown_flag.store(1, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action = {};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocking read/accept should return EINTR so the poll
  // point is reached promptly instead of after the next client byte.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool shutdown_requested() {
  return g_shutdown_flag.load(std::memory_order_relaxed) != 0;
}

void request_shutdown() { g_shutdown_flag.store(1, std::memory_order_relaxed); }

void reset_shutdown_for_tests() {
  g_shutdown_flag.store(0, std::memory_order_relaxed);
}

}  // namespace heterog
