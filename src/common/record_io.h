// Shared CRC-checked record framing for append-only journals.
//
// Two protocols live here, both built on common/crc32:
//
//  1. Per-record framing — each record is
//         "rec <payload-len> <crc32-hex>\n" <payload> "\n"
//     (length-prefixed so binary payloads survive, CRC over the payload so a
//     torn append or bit flip is detected per record, not per file). A
//     RecordScanner walks a byte buffer record by record and *resynchronises*
//     after corruption: a bad frame is reported with its extent and reason,
//     and scanning resumes at the next "\nrec " boundary — one flipped byte
//     quarantines one record, not the rest of the journal. Used by
//     store::PlanStore.
//
//  2. Whole-document CRC trailer — "crc <hex>\n" as the final line, verified
//     (by string comparison, so flips inside the stored checksum are caught
//     too) before any field of the document is parsed. Lifted from
//     ckpt/journal.cpp so the run journal and the plan/eval store share one
//     implementation; mirrors the v2 plan format in strategy/serialize.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace heterog {

/// Hard ceiling on a framed record's payload: a crafted length prefix must
/// not be able to drive a gigantic allocation. Generous next to the store's
/// sub-kilobyte eval records.
inline constexpr size_t kMaxRecordPayload = 16u << 20;  // 16 MiB

/// Frames `payload` as one record: "rec <len> <crc32-hex>\n<payload>\n".
std::string frame_record(std::string_view payload);

/// Longest header line ("rec <len> <crc>\n") a well-formed frame can carry:
/// 4 + 20 digits + 1 + 8 hex + newline, rounded up. Streaming readers (the
/// plan server) stop reading an unterminated header at this bound so a
/// client feeding an endless first line cannot grow a buffer.
inline constexpr size_t kMaxFrameHeaderBytes = 40;

/// Why a frame header was rejected. The distinctions matter to the server's
/// rejection taxonomy: an oversized *declared* length is refused before any
/// payload allocation, which is the whole point of parsing the header on its
/// own.
enum class FrameHeaderStatus {
  kOk,
  kBadMagic,     // line does not start with "rec "
  kMissingCrc,   // no space-separated checksum field
  kBadLength,    // length field empty, non-numeric, or > 20 digits (overflow)
  kZeroLength,   // declared length 0 where the caller requires a payload
  kOversized,    // declared length exceeds the caller's cap
  kBadCrcField,  // checksum field is not 8 hex digits
};

struct FrameHeader {
  size_t payload_len = 0;
  std::string crc_hex;  // exactly 8 lowercase hex digits when kOk
};

/// Parses one "rec <len> <crc32-hex>" header line (no trailing newline).
/// Rejects a declared length above `max_payload` or below `min_payload`
/// BEFORE the caller allocates anything — the hardening contract for reads
/// from untrusted sockets. Overflow-safe: a 30-digit length is kBadLength,
/// never a wrapped size_t. Never throws.
FrameHeaderStatus parse_frame_header(std::string_view line, size_t max_payload,
                                     size_t min_payload, FrameHeader* out);

/// Human-readable reason for each non-kOk status (stable strings; the server
/// embeds them in typed rejection replies and the scanner in quarantine
/// reasons).
const char* frame_header_status_name(FrameHeaderStatus status);

/// True iff `payload` matches the header's stored checksum (string-compared,
/// so a flip inside the stored checksum itself is still a mismatch).
bool verify_frame_payload(const FrameHeader& header, std::string_view payload);

struct ScannedRecord {
  enum class Status {
    kOk,       // payload points into the scanned buffer
    kCorrupt,  // frame damaged; offset/length cover the skipped bytes
    kEnd,      // no bytes left
  };
  Status status = Status::kEnd;
  std::string_view payload;  // valid only for kOk
  size_t offset = 0;         // byte offset of the frame (or damage) start
  size_t length = 0;         // bytes consumed from `offset`
  std::string reason;        // human-readable, only for kCorrupt
};

/// Sequential scanner over a buffer of framed records. The buffer must
/// outlive the scanner and every payload string_view it hands out.
class RecordScanner {
 public:
  explicit RecordScanner(std::string_view data, size_t max_payload = kMaxRecordPayload)
      : data_(data), max_payload_(max_payload) {}

  /// Returns the next record, a corruption report, or kEnd. Never throws:
  /// any malformed frame — bad header, oversized or non-numeric length,
  /// truncated payload, CRC mismatch, missing terminator — comes back as
  /// kCorrupt with scanning resynchronised past it.
  ScannedRecord next();

 private:
  std::string_view data_;
  size_t pos_ = 0;
  size_t max_payload_;
};

/// Appends the "crc <hex>\n" trailer line over `body` (which should already
/// end in a newline) and returns the finished document.
std::string with_crc_trailer(std::string body);

struct CrcTrailerResult {
  bool ok = false;
  std::string body;   // the checksummed body, trailer stripped (ok only)
  std::string error;  // why verification failed (!ok only)
};

/// Verifies and strips the final "crc <hex>" line. Returns the body on
/// success; on any framing or checksum problem returns ok=false with a
/// reason, so callers can wrap the failure in their own typed error.
CrcTrailerResult strip_crc_trailer(const std::string& text);

}  // namespace heterog
