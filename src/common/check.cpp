#include "common/check.h"

#include <sstream>

namespace heterog {

void check_failed(std::string_view message, std::source_location loc) {
  std::ostringstream os;
  os << "check failed at " << loc.file_name() << ":" << loc.line() << " ("
     << loc.function_name() << "): " << message;
  throw CheckError(os.str());
}

}  // namespace heterog
