// Small statistics helpers used by the profiler (regression fits) and the
// benches (summaries over repeated runs).
#pragma once

#include <cstddef>
#include <vector>

namespace heterog {

/// Ordinary least squares fit of y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 1.0;

  double predict(double x) const { return slope * x + intercept; }
};

/// Fits a line through (x, y) samples. Requires >= 2 samples; with all-equal
/// x the fit degenerates to slope 0 / intercept mean(y).
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);
double median(std::vector<double> values);
double percentile(std::vector<double> values, double p);  // p in [0, 100]

/// Exponential moving average, used as the RL reward baseline.
class MovingAverage {
 public:
  explicit MovingAverage(double decay = 0.9) : decay_(decay) {}

  double update(double value) {
    if (!initialised_) {
      value_ = value;
      initialised_ = true;
    } else {
      value_ = decay_ * value_ + (1.0 - decay_) * value;
    }
    return value_;
  }

  double value() const { return value_; }
  bool initialised() const { return initialised_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialised_ = false;
};

}  // namespace heterog
