// Cooperative process shutdown for long-running entry points.
//
// install_shutdown_handlers() routes SIGTERM and SIGINT into a process-wide
// flag instead of the default die-mid-write behaviour. Long loops (the CLI's
// run/resume step loop, the plan server's accept loop) poll
// shutdown_requested() at safe points and wind down cleanly: checkpoints and
// journals get a final snapshot, the plan store's write-behind buffer is
// flushed, sockets are drained, and the process exits through destructors
// rather than through signal-default termination.
//
// The handler itself only stores into a sig_atomic_t (async-signal-safe); a
// second delivery of the same signal keeps the flag set, so an impatient
// double Ctrl-C still exits at the next poll point, never mid-write. Nothing
// here installs anything at static-init time: a process that never calls
// install_shutdown_handlers() keeps default signal behaviour, so library
// users and the existing tests see no change.
#pragma once

namespace heterog {

/// Installs SIGTERM + SIGINT handlers that set the shutdown flag. Idempotent;
/// call once near the top of main() before entering a long-running loop.
void install_shutdown_handlers();

/// True once SIGTERM or SIGINT was delivered after
/// install_shutdown_handlers() (or after request_shutdown()).
bool shutdown_requested();

/// Sets the flag programmatically — the in-process equivalent of a signal,
/// used by tests and by servers that want stop() to share the drain path.
void request_shutdown();

/// Clears the flag (tests that exercise the drain path repeatedly).
void reset_shutdown_for_tests();

}  // namespace heterog
