// Runtime invariant checks for the HeteroG library.
//
// All preconditions and internal invariants are enforced through check() /
// check_msg(); violations throw heterog::CheckError carrying the source
// location, so library misuse surfaces as a catchable exception rather than
// an abort. Hot paths may use check() freely: the predicates are trivially
// cheap compared to graph compilation / simulation work.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace heterog {

/// Exception thrown when a library invariant or precondition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(
    std::string_view message,
    std::source_location loc = std::source_location::current());

/// Throws CheckError when `condition` is false.
inline void check(bool condition,
                  std::string_view message = "invariant violated",
                  std::source_location loc = std::source_location::current()) {
  if (!condition) check_failed(message, loc);
}

/// check() with lazily-built message; `fn` is only invoked on failure.
template <typename MessageFn>
void check_lazy(bool condition, MessageFn&& fn,
                std::source_location loc = std::source_location::current()) {
  if (!condition) check_failed(fn(), loc);
}

}  // namespace heterog
