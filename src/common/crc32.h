// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
// by the versioned plan format (strategy/serialize) and the run journal
// (ckpt/journal) to detect torn writes and bit rot. Table-driven, no
// dependencies; not a cryptographic hash and not meant to be one.
#pragma once

#include <cstdint>
#include <string_view>

namespace heterog {

/// Continues a CRC-32 over `data` from a previous partial value (pass the
/// result of a prior call to checksum a stream in pieces). The initial call
/// should use the default `prior` of 0.
uint32_t crc32(std::string_view data, uint32_t prior = 0);

/// Canonical 8-hex-digit lowercase rendering ("%08x") — the format embedded
/// in plan / journal files. Parsers compare this *string* (not the parsed
/// value) so that any byte flip inside a stored checksum is itself detected.
std::string crc32_hex(uint32_t crc);

}  // namespace heterog
