// 64-bit incremental hashing for memoization keys.
//
// Hash64 is a splitmix64-based accumulator: every mixed word passes through
// the full splitmix finaliser, so single-bit input differences avalanche
// across the whole state. Used by the RL evaluation cache to key
// (graph, grouping, strategy, options) tuples; tests/eval_engine_test.cpp
// pins that strategies differing in exactly one group's action never
// collide on the seed models.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace heterog {

class Hash64 {
 public:
  /// splitmix64 finaliser (Steele et al.); bijective, full avalanche.
  static uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  Hash64& mix(uint64_t value) {
    state_ = mix64(state_ ^ value);
    return *this;
  }

  Hash64& mix_signed(int64_t value) { return mix(static_cast<uint64_t>(value)); }

  Hash64& mix_double(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return mix(bits);
  }

  Hash64& mix_string(std::string_view s) {
    mix(s.size());
    uint64_t word = 0;
    int filled = 0;
    for (unsigned char c : s) {
      word = (word << 8) | c;
      if (++filled == 8) {
        mix(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled > 0) mix(word);
    return *this;
  }

  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0x243F6A8885A308D3ULL;  // pi, for lack of opinions
};

}  // namespace heterog
