#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace heterog {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  os << render_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_bytes(long long bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(value < 10 ? 2 : 1) << value << " " << units[unit];
  return os.str();
}

}  // namespace heterog
