// Crash-consistent file replacement.
//
// write_file_atomic publishes `content` at `path` with the classic
// write-temp / flush / fsync / rename protocol: a crash (or SIGKILL, or a
// full disk) at any instant leaves either the previous file or the complete
// new one — never a truncated hybrid. Readers concurrently opening `path`
// always see a complete file because rename(2) is atomic on POSIX.
#pragma once

#include <string>
#include <string_view>

namespace heterog {

/// Atomically replaces `path` with `content`. The temporary file is created
/// in the same directory (rename must not cross filesystems). Returns false
/// — leaving any existing file at `path` untouched — on any failure:
/// unwritable directory, short write, failed flush/fsync or failed rename.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace heterog
