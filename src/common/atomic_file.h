// Crash-consistent file replacement.
//
// write_file_atomic publishes `content` at `path` with the classic
// write-temp / flush / fsync / rename protocol: a crash (or SIGKILL, or a
// full disk) at any instant leaves either the previous file or the complete
// new one — never a truncated hybrid. Readers concurrently opening `path`
// always see a complete file because rename(2) is atomic on POSIX.
#pragma once

#include <string>
#include <string_view>

namespace heterog {

/// Atomically replaces `path` with `content`. The temporary file is created
/// in the same directory (rename must not cross filesystems). Returns false
/// — leaving any existing file at `path` untouched and the temporary file
/// unlinked — on any failure: unwritable directory, short write, failed
/// flush/fsync or failed rename. When `error` is non-null it receives the
/// failed step and its errno context (e.g. "fsync failed: No space left on
/// device (errno 28)"); cleared to empty on success.
///
/// A SIGKILL *during* the write can still orphan the PID-qualified
/// "<path>.tmp.<pid>" file — nothing in-process can prevent that — so
/// long-lived directories owned by a component (e.g. store::PlanStore)
/// sweep stale temp files from dead processes at open.
bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string* error = nullptr);

}  // namespace heterog
