#include "common/rng.h"

#include <numeric>

namespace heterog {

int Rng::sample_weighted(const std::vector<double>& weights) {
  check(!weights.empty(), "sample_weighted: empty weights");
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "sample_weighted: negative weight");
    total += w;
  }
  check(total > 0.0, "sample_weighted: all-zero weights");
  double r = uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::sample_categorical(const std::vector<double>& probabilities) {
  return sample_weighted(probabilities);
}

}  // namespace heterog
