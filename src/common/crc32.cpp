#include "common/crc32.h"

#include <array>
#include <string>

namespace heterog {

namespace {

constexpr std::array<uint32_t, 256> make_crc32_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = make_crc32_table();

}  // namespace

uint32_t crc32(std::string_view data, uint32_t prior) {
  uint32_t c = prior ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(uint32_t crc) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace heterog
