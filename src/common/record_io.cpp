#include "common/record_io.h"

#include <cstdint>
#include <cstdio>

#include "common/crc32.h"

namespace heterog {

namespace {

constexpr std::string_view kRecPrefix = "rec ";

/// Parses a bounded non-negative decimal from [begin, end); returns false on
/// empty input, non-digits, or a value above `max` (overflow-safe).
bool parse_bounded(std::string_view text, size_t max, size_t* out) {
  if (text.empty() || text.size() > 20) return false;
  size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
    if (value > max) return false;
  }
  *out = value;
  return true;
}

}  // namespace

FrameHeaderStatus parse_frame_header(std::string_view line, size_t max_payload,
                                     size_t min_payload, FrameHeader* out) {
  if (line.substr(0, kRecPrefix.size()) != kRecPrefix) {
    return FrameHeaderStatus::kBadMagic;
  }
  const std::string_view fields = line.substr(kRecPrefix.size());
  const size_t space = fields.find(' ');
  if (space == std::string_view::npos) return FrameHeaderStatus::kMissingCrc;
  size_t len = 0;
  if (!parse_bounded(fields.substr(0, space), SIZE_MAX / 16, &len)) {
    return FrameHeaderStatus::kBadLength;
  }
  // Cap checks come after syntactic validity but before anything is
  // allocated: the declared length is attacker-controlled.
  if (len > max_payload) return FrameHeaderStatus::kOversized;
  if (len < min_payload) return FrameHeaderStatus::kZeroLength;
  const std::string_view crc = fields.substr(space + 1);
  if (crc.size() != 8) return FrameHeaderStatus::kBadCrcField;
  for (const char c : crc) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return FrameHeaderStatus::kBadCrcField;
  }
  out->payload_len = len;
  out->crc_hex.assign(crc.data(), crc.size());
  return FrameHeaderStatus::kOk;
}

const char* frame_header_status_name(FrameHeaderStatus status) {
  switch (status) {
    case FrameHeaderStatus::kOk: return "ok";
    case FrameHeaderStatus::kBadMagic: return "missing \"rec\" frame header";
    case FrameHeaderStatus::kMissingCrc: return "frame header missing checksum";
    case FrameHeaderStatus::kBadLength: return "bad or overflowing payload length";
    case FrameHeaderStatus::kZeroLength: return "zero-length payload";
    case FrameHeaderStatus::kOversized: return "oversized payload length";
    case FrameHeaderStatus::kBadCrcField: return "malformed checksum field";
  }
  return "unknown";
}

bool verify_frame_payload(const FrameHeader& header, std::string_view payload) {
  return payload.size() == header.payload_len &&
         header.crc_hex == crc32_hex(crc32(payload));
}

std::string frame_record(std::string_view payload) {
  std::string out = "rec ";
  out += std::to_string(payload.size());
  out += ' ';
  out += crc32_hex(crc32(payload));
  out += '\n';
  out.append(payload.data(), payload.size());
  out += '\n';
  return out;
}

ScannedRecord RecordScanner::next() {
  ScannedRecord rec;
  if (pos_ >= data_.size()) {
    rec.status = ScannedRecord::Status::kEnd;
    return rec;
  }
  const size_t start = pos_;
  rec.offset = start;

  // On any framing failure, skip to the next "\nrec " boundary (or the end)
  // so one damaged record never swallows its intact successors.
  const auto corrupt = [&](const char* why) {
    const size_t next_frame = data_.find("\nrec ", start);
    const size_t resume = next_frame == std::string_view::npos
                              ? data_.size()
                              : next_frame + 1;  // past the '\n'
    pos_ = resume > start ? resume : data_.size();
    rec.status = ScannedRecord::Status::kCorrupt;
    rec.length = pos_ - start;
    rec.reason = why;
    return rec;
  };

  const size_t header_end = data_.find('\n', start);
  if (header_end == std::string_view::npos) {
    return corrupt("truncated frame header");
  }
  // Shared typed header parse (also the server's socket-read path): the
  // declared length is validated against the cap before the payload is even
  // located. Journals may legitimately carry empty payloads (min 0).
  FrameHeader header;
  const FrameHeaderStatus status = parse_frame_header(
      data_.substr(start, header_end - start), max_payload_, 0, &header);
  if (status != FrameHeaderStatus::kOk) {
    return corrupt(frame_header_status_name(status));
  }
  const size_t len = header.payload_len;
  const size_t payload_start = header_end + 1;
  if (payload_start + len + 1 > data_.size()) {
    return corrupt("truncated payload");
  }
  if (data_[payload_start + len] != '\n') {
    return corrupt("missing record terminator");
  }
  const std::string_view payload = data_.substr(payload_start, len);
  // String comparison, mirroring the journal trailer: a flip inside the
  // stored checksum itself is still a mismatch.
  if (!verify_frame_payload(header, payload)) {
    return corrupt("payload checksum mismatch");
  }
  pos_ = payload_start + len + 1;
  rec.status = ScannedRecord::Status::kOk;
  rec.payload = payload;
  rec.length = pos_ - start;
  return rec;
}

std::string with_crc_trailer(std::string body) {
  body += "crc " + crc32_hex(crc32(body)) + "\n";
  return body;
}

CrcTrailerResult strip_crc_trailer(const std::string& text) {
  CrcTrailerResult r;
  const auto fail = [&](std::string why) {
    r.ok = false;
    r.error = std::move(why);
    return r;
  };
  // Strict framing: writers always end in a newline, so a document that
  // doesn't has lost at least its final byte.
  if (text.empty() || text.back() != '\n') {
    return fail("does not end in a newline");
  }
  std::string trimmed = text;
  trimmed.pop_back();
  const size_t nl = trimmed.find_last_of('\n');
  const std::string last = nl == std::string::npos ? trimmed : trimmed.substr(nl + 1);
  if (last.rfind("crc ", 0) != 0) return fail("missing crc trailer line");
  if (nl == std::string::npos) return fail("document is only a crc line");
  std::string body = text.substr(0, nl + 1);
  const std::string expected = crc32_hex(crc32(body));
  if (last.substr(4) != expected) {
    return fail("checksum mismatch (stored \"" + last.substr(4) + "\", computed \"" +
                expected + "\") — the document is corrupt or was torn mid-write");
  }
  r.ok = true;
  r.body = std::move(body);
  return r;
}

}  // namespace heterog
