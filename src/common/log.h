// Minimal leveled logger. The library logs sparingly (search progress,
// plan summaries); benches and examples raise the level for narration.
#pragma once

#include <sstream>
#include <string>

namespace heterog {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal

inline internal::LogLine log_debug() { return internal::LogLine(LogLevel::kDebug); }
inline internal::LogLine log_info() { return internal::LogLine(LogLevel::kInfo); }
inline internal::LogLine log_warn() { return internal::LogLine(LogLevel::kWarn); }
inline internal::LogLine log_error() { return internal::LogLine(LogLevel::kError); }

}  // namespace heterog
