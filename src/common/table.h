// ASCII table renderer used by the bench harnesses to print rows in the same
// layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace heterog {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table with column-aligned cells and a header separator.
  std::string render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 3), e.g. "0.462".
std::string fmt_double(double value, int precision = 3);

/// Formats a ratio as a percentage string, e.g. 0.963 -> "96.3%".
std::string fmt_percent(double fraction, int precision = 1);

/// Formats a byte count human-readably ("1.4 GB").
std::string fmt_bytes(long long bytes);

}  // namespace heterog
