// Execution-order scheduling (paper Sec. 4.2).
//
// The scheduler assigns every node of the distributed graph a priority
//   rank(o) = p(o) + max_{s in succ(o)} rank(s)
// (upward rank with zero-cost edges — edge costs are explicit transfer nodes
// in our IR). Each resource (GPU, link, NCCL channel) then executes its
// ready nodes in descending rank order; the simulator realises that policy.
//
// The paper proves T_LS <= (M + M^2) T* and exhibits a matching worst case;
// tests/bench_appendix_bound reproduce both.
#pragma once

#include <vector>

#include "compile/dist_graph.h"

namespace heterog::sched {

/// Upward ranks over the distributed graph, in milliseconds (the unit of
/// node durations). rank[i] >= duration[i] > 0 for every node with positive
/// duration, and max_i rank[i] is the schedule's critical-path length.
/// `extra_edges` (from, to) augment the graph's edges for ranking only (they
/// must not create a cycle). Pure function — safe to call concurrently.
std::vector<double> compute_ranks(
    const compile::DistGraph& graph,
    const std::vector<std::pair<compile::DistNodeId, compile::DistNodeId>>& extra_edges =
        {});

/// As above, with a caller-supplied topological order of `graph` — avoids
/// recomputing it when the caller already has one (sim::evaluate_plan ranks
/// the same compiled graph several ways). `topo` must be a topological order
/// of exactly this graph; results are identical to the overload above.
std::vector<double> compute_ranks(
    const compile::DistGraph& graph, const std::vector<compile::DistNodeId>& topo,
    const std::vector<std::pair<compile::DistNodeId, compile::DistNodeId>>& extra_edges);

enum class OrderPolicy {
  kRankPriority,  // HeteroG's list schedule
  kFifo,          // TensorFlow's default: ready order (paper Sec. 6.6 baseline)
};

/// Priorities realising the rank policy, in milliseconds of upward rank
/// (higher runs first). Pure function — safe to call concurrently.
///
/// Collectives all occupy the single NCCL channel and therefore serialise;
/// plain upward ranks are blind to that, which defers gradient-producing ops
/// behind the backward chain and starves the channel. Ranks are therefore
/// computed on a graph augmented with virtual edges chaining the collectives
/// in their natural (gradient-availability) order, so that an early
/// gradient's rank carries the whole remaining AllReduce backlog and
/// gradient ops interleave with backward compute — maximising the paper's
/// computation/communication overlap objective.
std::vector<double> rank_priorities(const compile::DistGraph& graph);

/// As above, with a caller-supplied topological order (see compute_ranks).
std::vector<double> rank_priorities(const compile::DistGraph& graph,
                                    const std::vector<compile::DistNodeId>& topo);

}  // namespace heterog::sched
