#include "sched/scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace heterog::sched {

std::vector<double> compute_ranks(
    const compile::DistGraph& graph,
    const std::vector<std::pair<compile::DistNodeId, compile::DistNodeId>>& extra_edges) {
  return compute_ranks(graph, graph.topological_order(), extra_edges);
}

std::vector<double> compute_ranks(
    const compile::DistGraph& graph, const std::vector<compile::DistNodeId>& topo,
    const std::vector<std::pair<compile::DistNodeId, compile::DistNodeId>>& extra_edges) {
  const int n = graph.node_count();
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);

  std::vector<std::vector<compile::DistNodeId>> extra_succ;
  if (!extra_edges.empty()) {
    extra_succ.assign(static_cast<size_t>(n), {});
    for (const auto& [from, to] : extra_edges) {
      check(from >= 0 && from < n && to >= 0 && to < n, "compute_ranks: bad extra edge");
      extra_succ[static_cast<size_t>(from)].push_back(to);
    }
  }

  // Reverse topological sweep. Extra edges are assumed consistent with some
  // topological order of the augmented graph; we process nodes in reverse
  // order of (graph topo order + extra-edge targets appearing later), which
  // holds for the collective chains rank_priorities builds (chained in topo
  // order). A final fixpoint pass guards against ordering violations.
  const auto& order = topo;
  auto relax = [&](compile::DistNodeId id) {
    double max_succ = 0.0;
    for (auto s : graph.successors(id)) {
      max_succ = std::max(max_succ, ranks[static_cast<size_t>(s)]);
    }
    if (!extra_succ.empty()) {
      for (auto s : extra_succ[static_cast<size_t>(id)]) {
        max_succ = std::max(max_succ, ranks[static_cast<size_t>(s)]);
      }
    }
    const double updated = graph.node(id).duration_ms + max_succ;
    const bool changed = updated > ranks[static_cast<size_t>(id)] + 1e-12;
    ranks[static_cast<size_t>(id)] = updated;
    return changed;
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) relax(*it);
  if (!extra_edges.empty()) {
    // Fixpoint sweeps (extra edges may cut across the base topo order).
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
      changed = false;
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        changed = relax(*it) || changed;
      }
    }
  }
  return ranks;
}

std::vector<double> rank_priorities(const compile::DistGraph& graph) {
  return rank_priorities(graph, graph.topological_order());
}

std::vector<double> rank_priorities(const compile::DistGraph& graph,
                                    const std::vector<compile::DistNodeId>& topo) {
  // Chain the communication nodes of each serialised resource (every
  // directed link and the single NCCL channel) in topological order, so a
  // node's rank carries the remaining backlog of its resource; see header
  // comment. Without this, gradient pushes / pulls / collectives have tiny
  // upward ranks and bunch up after the backward chain instead of streaming
  // out as gradients become available.
  const auto& resources = graph.resources();
  std::vector<std::pair<compile::DistNodeId, compile::DistNodeId>> chains;
  // Keyed map instead of a dense per-resource vector: resource_count() is
  // O(D^2) in cluster size (every ordered device pair is a link resource),
  // so a 1000-GPU cluster would allocate and zero ~1M slots per call even
  // though only the handful of resources with communication nodes matter.
  std::unordered_map<int, compile::DistNodeId> prev_on_resource;
  for (const auto id : topo) {
    const auto& node = graph.node(id);
    if (!node.is_communication()) continue;
    const int res = resources.resource_of(node);
    const auto [it, inserted] = prev_on_resource.try_emplace(res, id);
    if (!inserted) {
      chains.emplace_back(it->second, id);
      it->second = id;
    }
  }
  return compute_ranks(graph, topo, chains);
}

}  // namespace heterog::sched
