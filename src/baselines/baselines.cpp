#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "sim/plan_eval.h"

namespace heterog::baselines {

namespace {

using strategy::Action;
using strategy::CommMethod;
using strategy::ReplicationMode;

double samples_per_second(double batch, double time_ms) {
  return time_ms > 0.0 ? batch / (time_ms / 1000.0) : 0.0;
}

}  // namespace

PlanOutcome Evaluator::evaluate(const graph::GraphDef& graph,
                                const strategy::Grouping& grouping,
                                const strategy::StrategyMap& map,
                                sched::OrderPolicy policy,
                                compile::CompilerOptions compiler_options) const {
  sim::PlanEvalOptions options;
  options.policy = policy;
  options.compiler = compiler_options;
  const auto result = sim::evaluate_plan(*costs_, graph, grouping, map, options);
  PlanOutcome outcome;
  outcome.map = map;
  outcome.time_ms = result.per_iteration_ms;
  outcome.oom = result.oom;
  outcome.samples_per_second =
      samples_per_second(graph.global_batch(), result.per_iteration_ms);
  outcome.evaluations = 1;
  return outcome;
}

PlanOutcome run_uniform_dp(const Evaluator& evaluator, const graph::GraphDef& graph,
                           const strategy::Grouping& grouping,
                           strategy::ReplicationMode mode, strategy::CommMethod comm,
                           sched::OrderPolicy policy) {
  const auto map =
      strategy::StrategyMap::uniform(grouping.group_count(), Action::dp(mode, comm));
  return evaluator.evaluate(graph, grouping, map, policy);
}

PlanOutcome run_horovod(const Evaluator& evaluator, const graph::GraphDef& graph,
                        const strategy::Grouping& grouping) {
  const auto map = strategy::StrategyMap::uniform(
      grouping.group_count(), Action::dp(ReplicationMode::kEven, CommMethod::kAllReduce));
  compile::CompilerOptions horovod_options;
  horovod_options.allreduce_fusion_bytes = 64LL << 20;  // Horovod tensor fusion
  return evaluator.evaluate(graph, grouping, map, sched::OrderPolicy::kFifo,
                            horovod_options);
}

PlanOutcome run_flexflow(const Evaluator& evaluator, const graph::GraphDef& graph,
                         const strategy::Grouping& grouping, FlexFlowOptions options) {
  Rng rng(options.seed);
  const int m = evaluator.costs().cluster().device_count();

  // FlexFlow's config space: per-group device placement or replication
  // degree; AllReduce gradient sync only, no order optimisation.
  std::vector<Action> palette;
  for (int d = 0; d < m; ++d) palette.push_back(Action::mp(d));
  palette.push_back(Action::dp(ReplicationMode::kEven, CommMethod::kAllReduce));
  palette.push_back(Action::dp(ReplicationMode::kProportional, CommMethod::kAllReduce));

  auto cost_of = [&](const strategy::StrategyMap& map) {
    const auto outcome = evaluator.evaluate(graph, grouping, map,
                                            sched::OrderPolicy::kFifo, options.compiler);
    double cost = std::sqrt(std::max(outcome.time_ms, 0.0) / 1000.0);
    if (outcome.oom) cost *= 10.0;
    return std::make_pair(cost, outcome);
  };

  strategy::StrategyMap current = strategy::StrategyMap::uniform(
      grouping.group_count(), Action::dp(ReplicationMode::kEven, CommMethod::kAllReduce));
  auto [current_cost, current_outcome] = cost_of(current);
  PlanOutcome best = current_outcome;
  int evaluations = 1;

  for (int it = 0; it < options.iterations; ++it) {
    const double temperature =
        options.initial_temperature *
        (1.0 - static_cast<double>(it) / std::max(options.iterations, 1));
    strategy::StrategyMap proposal = current;
    const int g = rng.uniform_int(0, grouping.group_count() - 1);
    proposal.group_actions[static_cast<size_t>(g)] =
        palette[static_cast<size_t>(rng.uniform_int(0, static_cast<int>(palette.size()) - 1))];
    auto [cost, outcome] = cost_of(proposal);
    ++evaluations;
    const double delta = cost - current_cost;
    if (delta < 0.0 ||
        (temperature > 0.0 && rng.uniform() < std::exp(-delta / temperature))) {
      current = std::move(proposal);
      current_cost = cost;
      current_outcome = outcome;
    }
    const bool better =
        !outcome.oom && (best.oom || outcome.time_ms < best.time_ms);
    if (better || (best.oom && !outcome.oom)) best = outcome;
  }
  best.evaluations = evaluations;
  return best;
}

PlanOutcome run_post(const Evaluator& evaluator, const graph::GraphDef& graph,
                     const strategy::Grouping& grouping, PostOptions options) {
  Rng rng(options.seed);
  const int m = evaluator.costs().cluster().device_count();
  const int groups = grouping.group_count();

  // Per-group categorical distribution over devices (placement only),
  // warm-started toward a contiguous capacity-proportional split so the
  // search begins from a locality-preserving placement.
  std::vector<std::vector<double>> probs(
      static_cast<size_t>(groups), std::vector<double>(static_cast<size_t>(m), 1.0 / m));
  if (options.locality_bias > 0.0) {
    const auto& cluster = evaluator.costs().cluster();
    double capacity_total = 0.0;
    for (const auto& d : cluster.devices()) {
      capacity_total += static_cast<double>(d.memory_bytes);
    }
    std::vector<double> capacity_prefix;
    double acc = 0.0;
    for (const auto& d : cluster.devices()) {
      acc += static_cast<double>(d.memory_bytes);
      capacity_prefix.push_back(acc / capacity_total);
    }
    size_t device_index = 0;
    for (int g = 0; g < groups; ++g) {
      const double fraction = (g + 0.5) / groups;
      while (device_index + 1 < capacity_prefix.size() &&
             fraction > capacity_prefix[device_index]) {
        ++device_index;
      }
      auto& p = probs[static_cast<size_t>(g)];
      for (double& v : p) v = (1.0 - options.locality_bias) / m;
      p[device_index] += options.locality_bias;
    }
  }

  PlanOutcome best;
  best.oom = true;
  best.time_ms = 1e300;
  int evaluations = 0;

  for (int round = 0; round < options.rounds; ++round) {
    struct Sample {
      std::vector<int> placement;
      double cost;
      PlanOutcome outcome;
    };
    std::vector<Sample> samples;
    for (int s = 0; s < options.samples_per_round; ++s) {
      Sample sample;
      sample.placement.resize(static_cast<size_t>(groups));
      strategy::StrategyMap map;
      map.group_actions.reserve(static_cast<size_t>(groups));
      for (int g = 0; g < groups; ++g) {
        const int d = rng.sample_categorical(probs[static_cast<size_t>(g)]);
        sample.placement[static_cast<size_t>(g)] = d;
        map.group_actions.push_back(Action::mp(d));
      }
      sample.outcome = evaluator.evaluate(graph, grouping, map,
                                          sched::OrderPolicy::kFifo, options.compiler);
      ++evaluations;
      sample.cost = std::sqrt(std::max(sample.outcome.time_ms, 0.0) / 1000.0);
      if (sample.outcome.oom) sample.cost *= 10.0;
      const bool better = !sample.outcome.oom &&
                          (best.oom || sample.outcome.time_ms < best.time_ms);
      if (better || (best.oom && best.time_ms > 1e299)) best = sample.outcome;
      samples.push_back(std::move(sample));
    }
    // Elite update.
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.cost < b.cost; });
    const int elites = std::max(1, static_cast<int>(options.elite_fraction *
                                                    options.samples_per_round));
    for (int g = 0; g < groups; ++g) {
      std::vector<double> counts(static_cast<size_t>(m), 1e-3);
      for (int e = 0; e < elites; ++e) {
        counts[static_cast<size_t>(samples[static_cast<size_t>(e)]
                                       .placement[static_cast<size_t>(g)])] += 1.0;
      }
      double total = 0.0;
      for (double c : counts) total += c;
      for (int d = 0; d < m; ++d) {
        auto& p = probs[static_cast<size_t>(g)][static_cast<size_t>(d)];
        p = options.smoothing * p + (1.0 - options.smoothing) * counts[static_cast<size_t>(d)] / total;
      }
    }
  }
  best.evaluations = evaluations;
  return best;
}

PlanOutcome run_hetpipe(const profiler::CostProvider& costs,
                        const std::function<graph::GraphDef(double batch)>& build_training,
                        double global_batch, HetPipeOptions options) {
  const auto& cluster = costs.cluster();

  // Virtual workers = physical hosts (HetPipe groups whimpy GPUs into VWs).
  struct VirtualWorker {
    std::vector<cluster::DeviceId> devices;
    double power = 0.0;
  };
  std::vector<VirtualWorker> workers;
  for (int h = 0; h < cluster.host_count(); ++h) {
    VirtualWorker vw;
    vw.devices = cluster.devices_on_host(h);
    if (vw.devices.empty()) continue;
    for (auto d : vw.devices) vw.power += cluster.relative_power(d);
    workers.push_back(std::move(vw));
  }
  check(!workers.empty(), "run_hetpipe: empty cluster");
  double total_power = 0.0;
  for (const auto& vw : workers) total_power += vw.power;

  // Per-VW: batch share proportional to VW power; layers partitioned across
  // the VW's GPUs balanced by compute power (layer-level model parallelism).
  double slowest_vw_ms = 0.0;
  bool oom = false;
  int64_t params = 0;
  for (const auto& vw : workers) {
    const double share = global_batch * vw.power / total_power;
    graph::GraphDef sub = build_training(std::max(share, 1.0));
    params = sub.total_param_bytes();
    const auto grouping = strategy::Grouping::build(sub, costs, 64);

    // Balanced layer assignment: walk groups in id order (graph order) and
    // cut into contiguous spans proportional to device power.
    strategy::StrategyMap map;
    map.group_actions.resize(static_cast<size_t>(grouping.group_count()));
    double vw_power_seen = 0.0;
    size_t device_index = 0;
    for (strategy::GroupId g = 0; g < grouping.group_count(); ++g) {
      const double progress = static_cast<double>(g) / grouping.group_count();
      while (device_index + 1 < vw.devices.size() &&
             progress >= (vw_power_seen + cluster.relative_power(
                                              vw.devices[device_index])) /
                             vw.power) {
        vw_power_seen += cluster.relative_power(vw.devices[device_index]);
        ++device_index;
      }
      map.group_actions[static_cast<size_t>(g)] =
          Action::mp(vw.devices[device_index]);
    }
    sim::PlanEvalOptions eval_options;
    eval_options.compiler = options.compiler;
    const auto result = sim::evaluate_plan(costs, sub, grouping, map, eval_options);
    slowest_vw_ms = std::max(slowest_vw_ms, result.per_iteration_ms);
    oom = oom || result.oom;
  }

  // PS synchronisation across VW chiefs: push + pull of the full parameter
  // set over the slowest chief link, partially hidden by pipelining.
  double sync_ms = 0.0;
  if (workers.size() > 1) {
    const cluster::DeviceId ps = workers.front().devices.front();
    for (size_t w = 1; w < workers.size(); ++w) {
      const cluster::DeviceId chief = workers[w].devices.front();
      sync_ms = std::max(sync_ms, costs.transfer_time_ms(params, chief, ps) +
                                      costs.transfer_time_ms(params, ps, chief));
    }
  }

  PlanOutcome outcome;
  outcome.time_ms = slowest_vw_ms + (1.0 - options.sync_overlap) * sync_ms;
  outcome.oom = oom;
  outcome.samples_per_second = samples_per_second(global_batch, outcome.time_ms);
  outcome.evaluations = static_cast<int>(workers.size());
  return outcome;
}

}  // namespace heterog::baselines
