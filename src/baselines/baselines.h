// Baseline deployment schemes the paper compares against (Sec. 6.1, 6.8).
//
// All baselines are evaluated through the same compile + simulate harness as
// HeteroG, but each is restricted to the decision space of the original
// system (Fig. 9 discussion):
//   * EV-PS / EV-AR / CP-PS / CP-AR — uniform data parallelism;
//   * Horovod — EV-AR (ring/hierarchical AllReduce), TF default FIFO order;
//   * FlexFlow — MCMC search over per-group parallelisation configs (MP
//     placements and replication degree) with AllReduce only, no gradient-
//     communication-method choice and no execution-order optimisation;
//   * Post — cross-entropy-method search over operation placement only (no
//     replication decisions);
//   * HetPipe — hosts become virtual workers; layers are partitioned across
//     a VW's GPUs, data parallelism with PS across VWs (approximation
//     documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>

#include "compile/compiler.h"
#include "profiler/cost_provider.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog::baselines {

struct PlanOutcome {
  strategy::StrategyMap map;  // empty for HetPipe (not expressible as a map)
  double time_ms = 0.0;
  bool oom = false;
  double samples_per_second = 0.0;
  int evaluations = 0;  // search cost, where applicable
};

/// Shared compile + simulate harness.
class Evaluator {
 public:
  explicit Evaluator(const profiler::CostProvider& costs)
      : costs_(&costs), compiler_(costs) {}

  PlanOutcome evaluate(const graph::GraphDef& graph, const strategy::Grouping& grouping,
                       const strategy::StrategyMap& map,
                       sched::OrderPolicy policy = sched::OrderPolicy::kRankPriority,
                       compile::CompilerOptions compiler_options =
                           compile::CompilerOptions()) const;

  const profiler::CostProvider& costs() const { return *costs_; }
  const compile::GraphCompiler& compiler() const { return compiler_; }

 private:
  const profiler::CostProvider* costs_;
  compile::GraphCompiler compiler_;
};

/// Uniform data parallelism (the Table 1/4 baselines). Runs under the given
/// order policy (the paper's DP baselines use TF's FIFO executor).
PlanOutcome run_uniform_dp(const Evaluator& evaluator, const graph::GraphDef& graph,
                           const strategy::Grouping& grouping,
                           strategy::ReplicationMode mode, strategy::CommMethod comm,
                           sched::OrderPolicy policy = sched::OrderPolicy::kFifo);

/// Horovod: EV-AR under FIFO, with Horovod's 64 MB tensor fusion (unlike the
/// paper's per-tensor NCCL collectives).
PlanOutcome run_horovod(const Evaluator& evaluator, const graph::GraphDef& graph,
                        const strategy::Grouping& grouping);

struct FlexFlowOptions {
  int iterations = 400;
  double initial_temperature = 0.05;  // on sqrt-seconds deltas
  uint64_t seed = 11;
  compile::CompilerOptions compiler;
};

/// FlexFlow-style MCMC over {MP(d), EV-AR, CP-AR} per group, FIFO order.
PlanOutcome run_flexflow(const Evaluator& evaluator, const graph::GraphDef& graph,
                         const strategy::Grouping& grouping,
                         FlexFlowOptions options = FlexFlowOptions());

struct PostOptions {
  int rounds = 12;
  int samples_per_round = 24;
  double elite_fraction = 0.2;
  double smoothing = 0.7;
  uint64_t seed = 13;
  compile::CompilerOptions compiler;
  /// Bias the initial placement distribution toward a contiguous
  /// capacity-proportional split (Post's warm start); 0 = uniform.
  double locality_bias = 0.5;
};

/// Post-style cross-entropy search over per-group device placement (MP only).
PlanOutcome run_post(const Evaluator& evaluator, const graph::GraphDef& graph,
                     const strategy::Grouping& grouping, PostOptions options = PostOptions());

struct HetPipeOptions {
  /// Fraction of the parameter-synchronisation time hidden by HetPipe's
  /// pipelining / WSP overlap.
  double sync_overlap = 0.5;
  compile::CompilerOptions compiler;
};

/// HetPipe approximation: per-host virtual workers, intra-VW layer
/// partitioning, PS across VWs. `build_training` must return the training
/// graph of the model at a given global batch (HetPipe shards the batch
/// across virtual workers, so sub-graphs at fractional batches are needed).
PlanOutcome run_hetpipe(const profiler::CostProvider& costs,
                        const std::function<graph::GraphDef(double batch)>& build_training,
                        double global_batch, HetPipeOptions options = HetPipeOptions());

}  // namespace heterog::baselines
