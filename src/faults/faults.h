// Fault model for heterogeneous clusters (robustness extension; see
// DESIGN.md "Fault model & recovery").
//
// A FaultPlan is a schedule of adverse events injected into a (simulated)
// training run: permanent device failures, straggler slowdowns, link
// bandwidth degradation and transient compute/OOM hiccups. Each event has an
// onset step and an optional recovery step. The plan is consumed at three
// layers:
//   * sim/fault_sim.h    — fault-aware execution: per-step makespans under
//                          the active fault set;
//   * core/heterog.h     — DistRunner's detect -> retry -> re-plan loop;
//   * this module        — derivation of a degraded ClusterSpec for
//                          re-planning on the surviving/slowed hardware.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace heterog::faults {

/// Thrown for malformed fault plans (bad JSON, unknown kinds, events that
/// reference devices outside the target cluster, non-positive factors).
class FaultPlanError : public std::runtime_error {
 public:
  explicit FaultPlanError(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind : uint8_t {
  kDeviceFailure,    // device drops out of the cluster (permanent for the
                     // runner; the fault-aware simulator honours recovery)
  kStraggler,        // compute on `device` slows by `slowdown`
  kLinkDegradation,  // bandwidth on the host path between `device_a` and
                     // `device_b` scales by `bandwidth_factor`
  kTransient,        // transient hiccup: the first `failed_attempts` tries of
                     // step `onset_step` on `device` fail, then succeed
  // Correlated fault domains (require a cluster with switch topology).
  kRackFailure,        // every device in rack `rack` fails at once
  kSwitchOutage,       // switch (level, switch_index) dies: every device whose
                       // only path to the rest of the cluster crosses it is
                       // isolated (cut off, not slowed) for the window
  kSwitchDegradation,  // switch (level, switch_index) forwards at
                       // `bandwidth_factor` of nominal: every host-pair path
                       // crossing it is scaled
};
/// Stable lower-case name of a kind ("device_failure", ...) — the JSON
/// vocabulary below. Pure function; safe from any thread.
const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kTransient;
  cluster::DeviceId device = -1;    // failure / straggler / transient target
  cluster::DeviceId device_a = -1;  // link degradation endpoints; the fault
  cluster::DeviceId device_b = -1;  // hits the host-pair path between them
  int onset_step = 0;               // first affected step (0-based)
  int recovery_step = -1;           // first unaffected step; -1 = never
  double slowdown = 1.0;            // straggler compute-time multiplier (> 1)
  double bandwidth_factor = 1.0;    // link / switch degradation factor in (0, 1)
  int failed_attempts = 1;          // transient: attempts failing at onset
  int level = -1;                   // switch events: 0 = ToR, k = tier k-1
  int switch_index = -1;            // switch events: index within the level
  int rack = -1;                    // rack failure: the rack that goes down

  /// Whether the event is in its [onset, recovery) window at `step`
  /// (steps are 0-based counts, not times). Const and pure.
  bool active_at(int step) const {
    return step >= onset_step && (recovery_step < 0 || step < recovery_step);
  }

  /// Human-readable one-liner for logs ("straggler on G1 x2.5 ...").
  std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// True when no events are scheduled; an empty plan is always valid.
  bool empty() const { return events.empty(); }

  /// Throws FaultPlanError if any event is internally inconsistent or
  /// references a device outside `cluster`.
  void validate(const cluster::ClusterSpec& cluster) const;
};

/// One entry of active link degradation, in device-endpoint form.
struct LinkDegradation {
  cluster::DeviceId a = -1;
  cluster::DeviceId b = -1;
  double factor = 1.0;
};

/// One entry of active switch degradation, in (level, index) coordinates.
struct SwitchDegradation {
  int level = -1;
  int index = -1;
  double factor = 1.0;  // in (0, 1)
};

/// The net effect of all faults active at one step, resolved against a
/// concrete cluster: per-device compute slowdown, degraded links and the set
/// of failed devices.
struct FaultScaling {
  /// Step this scaling was resolved at (scaling_at sets it; -1 for
  /// hand-built scalings). Diagnostic only: excluded from signature() so
  /// identical fault sets at different steps still share one memo entry.
  int step = -1;

  std::vector<double> compute_slowdown;  // per device, >= 1.0
  std::vector<LinkDegradation> links;
  std::vector<cluster::DeviceId> failed;  // sorted, unique
  std::vector<SwitchDegradation> switches;
  // Devices cut off by an active switch outage: unreachable but not failed —
  // they miss heartbeats, block steps that use them and come back if the
  // outage recovers. Sorted, unique, disjoint handling from `failed`.
  std::vector<cluster::DeviceId> isolated;

  /// True when any slowdown, degradation, failure or isolation is in effect.
  bool any() const;
  /// Membership test against the sorted `failed` set (binary search).
  bool is_failed(cluster::DeviceId d) const;
  /// Membership test against the sorted `isolated` set (binary search).
  bool is_isolated(cluster::DeviceId d) const;

  /// Combined bandwidth factor (<= 1) applying to the (x -> y) link: the
  /// product of all degradations whose endpoint host pair matches x/y's,
  /// times the factor of every degraded switch on the host-pair path.
  double link_factor(const cluster::ClusterSpec& cluster, cluster::DeviceId x,
                     cluster::DeviceId y) const;

  /// Stable cache key for memoising simulations of identical fault sets.
  /// Throws FaultPlanError (naming `step` and the offending device) on a
  /// malformed scaling — a corrupt cache key would silently alias distinct
  /// fault sets.
  std::string signature() const;
};

/// Resolves `plan` at `step` against `cluster`. Transient events do not
/// contribute (they are handled by the runner's retry loop, not by scaling).
FaultScaling scaling_at(const FaultPlan& plan, const cluster::ClusterSpec& cluster,
                        int step);

/// Devices belonging to the fault domain of `e` in `cluster` (sorted):
/// every device in the rack for kRackFailure, every device whose rack hangs
/// under the switch for kSwitchOutage, empty for every other kind
/// (kSwitchDegradation slows paths but strands no one). Requires the event
/// to validate against `cluster`; throws FaultPlanError otherwise.
std::vector<cluster::DeviceId> domain_devices(const cluster::ClusterSpec& cluster,
                                              const FaultEvent& e);

/// Rewrites every device reference through `new_id_of` (old id -> new id, -1
/// for removed devices); events whose target vanished are dropped. Used by
/// the runner after re-planning onto a survivor cluster re-densifies ids.
/// Domain events carry no device ids and are kept as-is.
FaultPlan remap_plan(const FaultPlan& plan, const std::vector<int>& new_id_of);

/// As above, but additionally drops domain events that no longer validate
/// against `survivors` (e.g. a rack whose last host was removed, or a switch
/// whose outage would now isolate everyone left). Prefer this overload when a
/// survivor cluster is at hand — keeping a dangling domain event would poison
/// every later validate() call.
FaultPlan remap_plan(const FaultPlan& plan, const std::vector<int>& new_id_of,
                     const cluster::ClusterSpec& survivors);

/// ClusterSpec reflecting `scaling`: failed and isolated devices removed,
/// straggler devices' compute scaled down, degraded links and switches
/// applied (switch degradations re-price the inter-host bandwidth table via
/// ClusterSpec::degrade_switch). The result is what re-planning should
/// target. Throws ClusterSpecError if no device survives.
cluster::ClusterSpec degraded_cluster(const cluster::ClusterSpec& base,
                                      const FaultScaling& scaling);

/// JSON (de)serialisation -------------------------------------------------
///
/// Accepted schema (top-level object with "faults", or a bare array):
///   {"faults": [
///     {"kind": "device_failure",   "device": 3, "onset_step": 5},
///     {"kind": "straggler",        "device": 1, "onset_step": 0,
///      "recovery_step": 10, "slowdown": 2.5},
///     {"kind": "link_degradation", "device_a": 0, "device_b": 2,
///      "onset_step": 3, "bandwidth_factor": 0.25},
///     {"kind": "transient",        "device": 2, "onset_step": 4,
///      "failed_attempts": 2},
///     {"kind": "rack_failure",     "rack": 1, "onset_step": 5},
///     {"kind": "switch_outage",    "level": 0, "switch": 1, "onset_step": 5,
///      "recovery_step": 9},
///     {"kind": "switch_degradation", "level": 1, "switch": 0,
///      "onset_step": 3, "bandwidth_factor": 0.5}
///   ]}
/// Domain events (the last three) only validate against clusters that carry
/// a switch topology; "switch" maps to FaultEvent::switch_index.
FaultPlan parse_fault_plan_json(const std::string& text);

/// Reads and parses `path`; throws FaultPlanError when unreadable.
FaultPlan load_fault_plan(const std::string& path);

/// Serialises `plan` back to the schema above (round-trips with the parser).
std::string fault_plan_to_json(const FaultPlan& plan);

/// Every field name the fault-plan JSON schema accepts, for the
/// docs/faults.md cross-check (mirrors cluster::topo_json_fields()).
const std::vector<std::string>& fault_json_fields();

}  // namespace heterog::faults
