#include "faults/chaos.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace heterog::faults {

void ChaosOptions::validate() const {
  auto fail = [](const std::string& why) { throw FaultPlanError("chaos options: " + why); };
  if (steps < 1) fail("steps must be >= 1");
  if (device_count < 1) fail("device_count must be >= 1");
  if (min_survivors < 1) fail("min_survivors must be >= 1");
  if (max_failures < 0 || max_stragglers < 0 || max_link_degradations < 0 ||
      max_transients < 0 || max_rack_failures < 0 || max_switch_outages < 0 ||
      max_switch_degradations < 0) {
    fail("event caps must be >= 0");
  }
  if (!(min_slowdown > 1.0) || min_slowdown > max_slowdown) {
    fail("slowdown range must satisfy 1 < min <= max");
  }
  if (!(min_bandwidth_factor > 0.0) || min_bandwidth_factor > max_bandwidth_factor ||
      max_bandwidth_factor >= 1.0) {
    fail("bandwidth factor range must satisfy 0 < min <= max < 1");
  }
  if (max_failed_attempts < 1) fail("max_failed_attempts must be >= 1");
}

namespace {

/// Flat per-device / per-link draws, shared verbatim by both generators so
/// a topology-free cluster gets byte-identical schedules per seed. Consumes
/// `rng`'s stream in a fixed order: failures, stragglers, transients, links.
void draw_flat_events(Rng& rng, const ChaosOptions& opts, std::set<int>& failed,
                      FaultPlan& plan) {
  // Failures first: they constrain which devices other events may target
  // (events on a dead device would be unreachable noise).
  const int allowed_failures =
      std::min(opts.max_failures, opts.device_count - opts.min_survivors);
  if (allowed_failures > 0) {
    const int n = rng.uniform_int(0, allowed_failures);
    while (static_cast<int>(failed.size()) < n) {
      failed.insert(rng.uniform_int(0, opts.device_count - 1));
    }
    for (const int d : failed) {
      FaultEvent e;
      e.kind = FaultKind::kDeviceFailure;
      e.device = d;
      // Onset after step 0 so there is always a healthy baseline window, and
      // before the final step so the recovery actually runs.
      e.onset_step = rng.uniform_int(1, std::max(1, opts.steps - 2));
      plan.events.push_back(e);
    }
  }

  auto pick_survivor = [&]() {
    int d = rng.uniform_int(0, opts.device_count - 1);
    while (failed.count(d) != 0) d = rng.uniform_int(0, opts.device_count - 1);
    return d;
  };

  if (static_cast<int>(failed.size()) < opts.device_count) {
    const int n_stragglers = rng.uniform_int(0, opts.max_stragglers);
    for (int i = 0; i < n_stragglers; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kStraggler;
      e.device = pick_survivor();
      e.onset_step = rng.uniform_int(0, std::max(0, opts.steps - 2));
      const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
      e.recovery_step =
          rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
      e.slowdown = rng.uniform(opts.min_slowdown, opts.max_slowdown);
      plan.events.push_back(e);
    }

    const int n_transients = rng.uniform_int(0, opts.max_transients);
    for (int i = 0; i < n_transients; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kTransient;
      e.device = pick_survivor();
      e.onset_step = rng.uniform_int(0, opts.steps - 1);
      e.failed_attempts = rng.uniform_int(1, opts.max_failed_attempts);
      plan.events.push_back(e);
    }
  }

  if (opts.device_count >= 2) {
    const int n_links = rng.uniform_int(0, opts.max_link_degradations);
    for (int i = 0; i < n_links; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kLinkDegradation;
      e.device_a = rng.uniform_int(0, opts.device_count - 1);
      e.device_b = rng.uniform_int(0, opts.device_count - 1);
      while (e.device_b == e.device_a) {
        e.device_b = rng.uniform_int(0, opts.device_count - 1);
      }
      e.onset_step = rng.uniform_int(0, std::max(0, opts.steps - 2));
      const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
      e.recovery_step =
          rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
      e.bandwidth_factor =
          rng.uniform(opts.min_bandwidth_factor, opts.max_bandwidth_factor);
      plan.events.push_back(e);
    }
  }
}

/// Stable plan-text order. Domain coordinates only break ties among domain
/// events (they are -1 everywhere else), so flat plans sort exactly as
/// before the domain kinds existed.
void sort_events(FaultPlan& plan) {
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     if (x.onset_step != y.onset_step) return x.onset_step < y.onset_step;
                     if (x.kind != y.kind) {
                       return static_cast<int>(x.kind) < static_cast<int>(y.kind);
                     }
                     if (x.device != y.device) return x.device < y.device;
                     if (x.device_a != y.device_a) return x.device_a < y.device_a;
                     if (x.level != y.level) return x.level < y.level;
                     if (x.switch_index != y.switch_index) {
                       return x.switch_index < y.switch_index;
                     }
                     return x.rack < y.rack;
                   });
}

}  // namespace

FaultPlan make_chaos_plan(const ChaosOptions& opts) {
  opts.validate();
  Rng rng(opts.seed);
  FaultPlan plan;
  std::set<int> failed;
  draw_flat_events(rng, opts, failed, plan);
  sort_events(plan);
  return plan;
}

FaultPlan make_chaos_plan(const cluster::ClusterSpec& cluster,
                          const ChaosOptions& opts) {
  opts.validate();
  if (opts.device_count != cluster.device_count()) {
    throw FaultPlanError("chaos options: device_count " +
                         std::to_string(opts.device_count) +
                         " does not match the target cluster's " +
                         std::to_string(cluster.device_count()) + " devices");
  }
  Rng rng(opts.seed);
  FaultPlan plan;
  // `lost` = devices unreachable at some point of the schedule (flat
  // failures plus every committed domain expansion); the survivability
  // invariant is enforced against it.
  std::set<int> lost;
  draw_flat_events(rng, opts, lost, plan);
  if (!cluster.has_topology()) {
    // No switch graph to target: identical RNG consumption to the flat
    // generator, so the plan is byte-identical per seed.
    sort_events(plan);
    return plan;
  }

  const cluster::TopologySpec& topo = cluster.topology();
  auto rack_devices = [&](int rack) {
    std::vector<cluster::DeviceId> out;
    for (const auto& d : cluster.devices()) {
      if (topo.rack_of_host[static_cast<size_t>(d.host)] == rack) out.push_back(d.id);
    }
    return out;
  };
  auto subtree_devices = [&](int level, int index) {
    std::vector<cluster::DeviceId> out;
    for (const auto& d : cluster.devices()) {
      const int rack = topo.rack_of_host[static_cast<size_t>(d.host)];
      if (topo.group_of_rack(rack, level) == index) out.push_back(d.id);
    }
    return out;
  };
  auto survivable = [&](const std::vector<cluster::DeviceId>& domain) {
    std::set<int> merged = lost;
    for (auto d : domain) merged.insert(d);
    return opts.device_count - static_cast<int>(merged.size()) >= opts.min_survivors;
  };
  auto commit = [&](const std::vector<cluster::DeviceId>& domain) {
    for (auto d : domain) lost.insert(d);
  };

  // Rack-correlated failure bursts. A draw that would breach min_survivors
  // (or hit an empty rack) is skipped — its RNG draws are still consumed so
  // later draws stay aligned across option tweaks.
  const int n_racks = rng.uniform_int(0, opts.max_rack_failures);
  for (int i = 0; i < n_racks; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kRackFailure;
    e.rack = rng.uniform_int(0, topo.rack_count() - 1);
    e.onset_step = rng.uniform_int(1, std::max(1, opts.steps - 2));
    const auto domain = rack_devices(e.rack);
    if (domain.empty() || !survivable(domain)) continue;
    commit(domain);
    plan.events.push_back(e);
  }

  // Switch outages (any level; level 0 = a rack's ToR). Recovery is drawn
  // like link degradations, but the cut devices still count as lost — the
  // runner will have replanned around them before the switch comes back.
  const int n_outages = rng.uniform_int(0, opts.max_switch_outages);
  for (int i = 0; i < n_outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSwitchOutage;
    e.level = rng.uniform_int(0, topo.level_count() - 1);
    e.switch_index = rng.uniform_int(0, std::max(1, topo.switch_count(e.level)) - 1);
    e.onset_step = rng.uniform_int(1, std::max(1, opts.steps - 2));
    const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
    e.recovery_step =
        rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
    const auto domain = subtree_devices(e.level, e.switch_index);
    if (domain.empty() || static_cast<int>(domain.size()) >= opts.device_count ||
        !survivable(domain)) {
      continue;
    }
    commit(domain);
    plan.events.push_back(e);
  }

  // Switch degradations slow paths but strand no one, so every draw lands.
  const int n_degradations = rng.uniform_int(0, opts.max_switch_degradations);
  for (int i = 0; i < n_degradations; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSwitchDegradation;
    e.level = rng.uniform_int(0, topo.level_count() - 1);
    e.switch_index = rng.uniform_int(0, std::max(1, topo.switch_count(e.level)) - 1);
    e.onset_step = rng.uniform_int(0, std::max(0, opts.steps - 2));
    const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
    e.recovery_step =
        rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
    e.bandwidth_factor =
        rng.uniform(opts.min_bandwidth_factor, opts.max_bandwidth_factor);
    plan.events.push_back(e);
  }

  sort_events(plan);
  return plan;
}

}  // namespace heterog::faults
