#include "faults/chaos.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace heterog::faults {

void ChaosOptions::validate() const {
  auto fail = [](const std::string& why) { throw FaultPlanError("chaos options: " + why); };
  if (steps < 1) fail("steps must be >= 1");
  if (device_count < 1) fail("device_count must be >= 1");
  if (min_survivors < 1) fail("min_survivors must be >= 1");
  if (max_failures < 0 || max_stragglers < 0 || max_link_degradations < 0 ||
      max_transients < 0) {
    fail("event caps must be >= 0");
  }
  if (!(min_slowdown > 1.0) || min_slowdown > max_slowdown) {
    fail("slowdown range must satisfy 1 < min <= max");
  }
  if (!(min_bandwidth_factor > 0.0) || min_bandwidth_factor > max_bandwidth_factor ||
      max_bandwidth_factor >= 1.0) {
    fail("bandwidth factor range must satisfy 0 < min <= max < 1");
  }
  if (max_failed_attempts < 1) fail("max_failed_attempts must be >= 1");
}

FaultPlan make_chaos_plan(const ChaosOptions& opts) {
  opts.validate();
  Rng rng(opts.seed);
  FaultPlan plan;

  // Failures first: they constrain which devices other events may target
  // (events on a dead device would be unreachable noise).
  const int allowed_failures =
      std::min(opts.max_failures, opts.device_count - opts.min_survivors);
  std::set<int> failed;
  if (allowed_failures > 0) {
    const int n = rng.uniform_int(0, allowed_failures);
    while (static_cast<int>(failed.size()) < n) {
      failed.insert(rng.uniform_int(0, opts.device_count - 1));
    }
    for (const int d : failed) {
      FaultEvent e;
      e.kind = FaultKind::kDeviceFailure;
      e.device = d;
      // Onset after step 0 so there is always a healthy baseline window, and
      // before the final step so the recovery actually runs.
      e.onset_step = rng.uniform_int(1, std::max(1, opts.steps - 2));
      plan.events.push_back(e);
    }
  }

  auto pick_survivor = [&]() {
    int d = rng.uniform_int(0, opts.device_count - 1);
    while (failed.count(d) != 0) d = rng.uniform_int(0, opts.device_count - 1);
    return d;
  };

  if (static_cast<int>(failed.size()) < opts.device_count) {
    const int n_stragglers = rng.uniform_int(0, opts.max_stragglers);
    for (int i = 0; i < n_stragglers; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kStraggler;
      e.device = pick_survivor();
      e.onset_step = rng.uniform_int(0, std::max(0, opts.steps - 2));
      const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
      e.recovery_step =
          rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
      e.slowdown = rng.uniform(opts.min_slowdown, opts.max_slowdown);
      plan.events.push_back(e);
    }

    const int n_transients = rng.uniform_int(0, opts.max_transients);
    for (int i = 0; i < n_transients; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kTransient;
      e.device = pick_survivor();
      e.onset_step = rng.uniform_int(0, opts.steps - 1);
      e.failed_attempts = rng.uniform_int(1, opts.max_failed_attempts);
      plan.events.push_back(e);
    }
  }

  if (opts.device_count >= 2) {
    const int n_links = rng.uniform_int(0, opts.max_link_degradations);
    for (int i = 0; i < n_links; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kLinkDegradation;
      e.device_a = rng.uniform_int(0, opts.device_count - 1);
      e.device_b = rng.uniform_int(0, opts.device_count - 1);
      while (e.device_b == e.device_a) {
        e.device_b = rng.uniform_int(0, opts.device_count - 1);
      }
      e.onset_step = rng.uniform_int(0, std::max(0, opts.steps - 2));
      const int span = rng.uniform_int(2, std::max(2, opts.steps / 2));
      e.recovery_step =
          rng.uniform() < 0.3 ? -1 : std::min(opts.steps, e.onset_step + span);
      e.bandwidth_factor =
          rng.uniform(opts.min_bandwidth_factor, opts.max_bandwidth_factor);
      plan.events.push_back(e);
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     if (x.onset_step != y.onset_step) return x.onset_step < y.onset_step;
                     if (x.kind != y.kind) {
                       return static_cast<int>(x.kind) < static_cast<int>(y.kind);
                     }
                     if (x.device != y.device) return x.device < y.device;
                     return x.device_a < y.device_a;
                   });
  return plan;
}

}  // namespace heterog::faults
