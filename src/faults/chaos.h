// Seed-driven chaos schedules (robustness extension; see DESIGN.md "Online
// health & degraded modes").
//
// make_chaos_plan turns a (seed, run shape) pair into a randomized but fully
// deterministic FaultPlan: same seed, same options -> byte-identical plan.
// The chaos harness (tests/chaos_test.cpp, `heterog_cli run --chaos-seed`)
// feeds these plans to the simulator-side injector and asserts the
// measurement-only recovery loop survives them.
//
// Plans are generated injection-side on purpose: the health monitor never
// sees them; only sim::FaultInjector does.
#pragma once

#include <cstdint>

#include "faults/faults.h"

namespace heterog::faults {

/// Shape of a randomized fault schedule. Defaults produce mixed schedules
/// that stress every fault kind while always leaving the run survivable.
struct ChaosOptions {
  uint64_t seed = 0;
  int steps = 20;        // run length the schedule is generated for
  int device_count = 4;  // devices in the target cluster

  /// Upper bound on events per kind (actual counts are drawn per seed).
  int max_failures = 1;
  int max_stragglers = 2;
  int max_link_degradations = 2;
  int max_transients = 3;

  /// Caps for correlated domain events. Only the topology-aware overload
  /// draws these, and only when the cluster carries a switch topology;
  /// the flat generator ignores them entirely.
  int max_rack_failures = 1;
  int max_switch_outages = 1;
  int max_switch_degradations = 2;

  /// At least this many devices are never failed, so every schedule is
  /// survivable by construction.
  int min_survivors = 2;

  /// Straggler slowdown is drawn from [min, max].
  double min_slowdown = 1.8;
  double max_slowdown = 4.0;
  /// Link bandwidth factor is drawn from [min, max].
  double min_bandwidth_factor = 0.15;
  double max_bandwidth_factor = 0.6;
  /// Transient events fail the first 1..max_failed_attempts tries.
  int max_failed_attempts = 3;

  /// Throws FaultPlanError when the shape is unsatisfiable (for example
  /// min_survivors >= device_count with max_failures > 0 is fine — failures
  /// are skipped — but device_count < 1 is not).
  void validate() const;
};

/// Deterministically generates a randomized fault schedule for `opts`.
/// Events are sorted by (onset_step, kind, device) so the plan text is
/// stable, and the result validates against any cluster with
/// `opts.device_count` devices.
FaultPlan make_chaos_plan(const ChaosOptions& opts);

/// Topology-aware overload: the flat schedule above (drawn from the same RNG
/// stream, so clusters without a switch topology get byte-identical plans
/// per seed) plus rack-correlated failure bursts, switch outages and switch
/// degradations drawn against `cluster`'s topology. Every schedule stays
/// survivable by construction: a domain draw that would leave fewer than
/// `min_survivors` reachable devices is skipped. Throws FaultPlanError when
/// `opts.device_count` disagrees with `cluster.device_count()`.
FaultPlan make_chaos_plan(const cluster::ClusterSpec& cluster,
                          const ChaosOptions& opts);

}  // namespace heterog::faults
