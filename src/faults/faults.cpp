#include "faults/faults.h"

#include <algorithm>
#include <sstream>

namespace heterog::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceFailure:
      return "device_failure";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kLinkDegradation:
      return "link_degradation";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kRackFailure:
      return "rack_failure";
    case FaultKind::kSwitchOutage:
      return "switch_outage";
    case FaultKind::kSwitchDegradation:
      return "switch_degradation";
  }
  return "unknown";
}

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kDeviceFailure:
      os << " G" << device;
      break;
    case FaultKind::kStraggler:
      os << " G" << device << " x" << slowdown;
      break;
    case FaultKind::kLinkDegradation:
      os << " G" << device_a << "<->G" << device_b << " x" << bandwidth_factor;
      break;
    case FaultKind::kTransient:
      os << " G" << device << " (" << failed_attempts << " failed attempts)";
      break;
    case FaultKind::kRackFailure:
      os << " rack" << rack;
      break;
    case FaultKind::kSwitchOutage:
      os << " L" << level << "/S" << switch_index;
      break;
    case FaultKind::kSwitchDegradation:
      os << " L" << level << "/S" << switch_index << " x" << bandwidth_factor;
      break;
  }
  os << " @step " << onset_step;
  if (recovery_step >= 0) os << "..." << recovery_step;
  return os.str();
}

namespace {

// Devices whose only path to the rest of the cluster crosses the event's
// fault domain. Assumes coordinates already validated (see validate_event).
std::vector<cluster::DeviceId> domain_devices_unchecked(
    const cluster::ClusterSpec& cluster, const FaultEvent& e) {
  std::vector<cluster::DeviceId> out;
  if (!cluster.has_topology()) return out;
  const cluster::TopologySpec& topo = cluster.topology();
  for (const auto& d : cluster.devices()) {
    const int rack = topo.rack_of_host[static_cast<size_t>(d.host)];
    const bool inside =
        e.kind == FaultKind::kRackFailure
            ? rack == e.rack
            : e.kind == FaultKind::kSwitchOutage &&
                  topo.group_of_rack(rack, e.level) == e.switch_index;
    if (inside) out.push_back(d.id);
  }
  return out;
}

void validate_event(const FaultEvent& e, const cluster::ClusterSpec& cluster) {
  auto fail = [&](const std::string& why) {
    throw FaultPlanError("fault plan: " + why + " in event [" + e.describe() + "]");
  };
  if (e.onset_step < 0) fail("negative onset_step");
  if (e.recovery_step >= 0 && e.recovery_step <= e.onset_step) {
    fail("recovery_step must be after onset_step");
  }
  auto check_device = [&](cluster::DeviceId d, const char* field) {
    if (d < 0 || d >= cluster.device_count()) {
      fail(std::string(field) + " out of range for a " +
           std::to_string(cluster.device_count()) + "-device cluster");
    }
  };
  auto check_switch = [&]() {
    if (!cluster.has_topology()) {
      fail("switch event requires a cluster with switch topology");
    }
    const cluster::TopologySpec& topo = cluster.topology();
    if (e.level < 0 || e.level >= topo.level_count()) {
      fail("switch level " + std::to_string(e.level) + " out of range [0, " +
           std::to_string(topo.level_count()) + ")");
    }
    const int count = topo.switch_count(e.level);
    if (e.switch_index < 0 || e.switch_index >= count) {
      fail("switch index " + std::to_string(e.switch_index) +
           " out of range [0, " + std::to_string(count) + ") at level " +
           std::to_string(e.level));
    }
  };
  switch (e.kind) {
    case FaultKind::kDeviceFailure:
      check_device(e.device, "device");
      break;
    case FaultKind::kStraggler:
      check_device(e.device, "device");
      if (e.slowdown <= 1.0) fail("straggler slowdown must be > 1");
      break;
    case FaultKind::kLinkDegradation:
      check_device(e.device_a, "device_a");
      check_device(e.device_b, "device_b");
      if (e.device_a == e.device_b) fail("link endpoints must differ");
      if (e.bandwidth_factor <= 0.0 || e.bandwidth_factor >= 1.0) {
        fail("bandwidth_factor must be in (0, 1)");
      }
      break;
    case FaultKind::kTransient:
      check_device(e.device, "device");
      if (e.failed_attempts < 1) fail("failed_attempts must be >= 1");
      break;
    case FaultKind::kRackFailure: {
      if (!cluster.has_topology()) {
        fail("rack event requires a cluster with switch topology");
      }
      const cluster::TopologySpec& topo = cluster.topology();
      if (e.rack < 0 || e.rack >= topo.rack_count()) {
        fail("rack " + std::to_string(e.rack) + " out of range for a " +
             std::to_string(topo.rack_count()) + "-rack topology");
      }
      if (domain_devices_unchecked(cluster, e).empty()) {
        fail("rack " + std::to_string(e.rack) + " has no devices");
      }
      break;
    }
    case FaultKind::kSwitchOutage: {
      check_switch();
      const auto cut = domain_devices_unchecked(cluster, e);
      if (static_cast<int>(cut.size()) >= cluster.device_count()) {
        fail("switch outage would isolate every device in the cluster");
      }
      break;
    }
    case FaultKind::kSwitchDegradation:
      check_switch();
      if (e.bandwidth_factor <= 0.0 || e.bandwidth_factor >= 1.0) {
        fail("bandwidth_factor must be in (0, 1)");
      }
      break;
  }
}

}  // namespace

void FaultPlan::validate(const cluster::ClusterSpec& cluster) const {
  for (const auto& e : events) validate_event(e, cluster);
}

bool FaultScaling::any() const {
  if (!failed.empty() || !links.empty() || !switches.empty() || !isolated.empty()) {
    return true;
  }
  return std::any_of(compute_slowdown.begin(), compute_slowdown.end(),
                     [](double s) { return s > 1.0; });
}

bool FaultScaling::is_failed(cluster::DeviceId d) const {
  return std::binary_search(failed.begin(), failed.end(), d);
}

bool FaultScaling::is_isolated(cluster::DeviceId d) const {
  return std::binary_search(isolated.begin(), isolated.end(), d);
}

double FaultScaling::link_factor(const cluster::ClusterSpec& cluster,
                                 cluster::DeviceId x, cluster::DeviceId y) const {
  if (links.empty() && switches.empty()) return 1.0;
  const int hx = cluster.device(x).host;
  const int hy = cluster.device(y).host;
  const auto key = std::minmax(hx, hy);
  double factor = 1.0;
  for (const auto& l : links) {
    const auto lk = std::minmax(cluster.device(l.a).host, cluster.device(l.b).host);
    if (lk == key) factor *= l.factor;
  }
  if (!switches.empty() && hx != hy) {
    for (const auto& hop : cluster.switches_on_path(hx, hy)) {
      for (const auto& s : switches) {
        if (s.level == hop.first && s.index == hop.second) factor *= s.factor;
      }
    }
  }
  return factor;
}

namespace {

[[noreturn]] void scaling_fail(const char* where, int step, const std::string& why) {
  throw FaultPlanError(std::string(where) + ": " + why + " at step " +
                       std::to_string(step));
}

}  // namespace

std::string FaultScaling::signature() const {
  std::ostringstream os;
  for (size_t d = 0; d < compute_slowdown.size(); ++d) {
    if (compute_slowdown[d] < 1.0) {
      scaling_fail("FaultScaling::signature", step,
                   "compute slowdown " + std::to_string(compute_slowdown[d]) +
                       " < 1 on device " + std::to_string(d));
    }
    if (compute_slowdown[d] > 1.0) os << "s" << d << ":" << compute_slowdown[d] << ";";
  }
  for (const auto& l : links) {
    if (l.factor <= 0.0 || l.factor >= 1.0) {
      scaling_fail("FaultScaling::signature", step,
                   "bandwidth factor " + std::to_string(l.factor) +
                       " outside (0, 1) on link G" + std::to_string(l.a) + "<->G" +
                       std::to_string(l.b));
    }
    os << "l" << l.a << "-" << l.b << ":" << l.factor << ";";
  }
  for (auto d : failed) {
    if (d < 0) {
      scaling_fail("FaultScaling::signature", step,
                   "negative failed device id " + std::to_string(d));
    }
    os << "f" << d << ";";
  }
  // Domain terms come last so signatures of flat fault sets are unchanged.
  for (const auto& s : switches) {
    if (s.factor <= 0.0 || s.factor >= 1.0) {
      scaling_fail("FaultScaling::signature", step,
                   "switch factor " + std::to_string(s.factor) +
                       " outside (0, 1) on switch L" + std::to_string(s.level) +
                       "/S" + std::to_string(s.index));
    }
    os << "w" << s.level << "-" << s.index << ":" << s.factor << ";";
  }
  for (auto d : isolated) {
    if (d < 0) {
      scaling_fail("FaultScaling::signature", step,
                   "negative isolated device id " + std::to_string(d));
    }
    os << "i" << d << ";";
  }
  return os.str();
}

FaultScaling scaling_at(const FaultPlan& plan, const cluster::ClusterSpec& cluster,
                        int step) {
  FaultScaling out;
  out.step = step;
  out.compute_slowdown.assign(static_cast<size_t>(cluster.device_count()), 1.0);
  for (const auto& e : plan.events) {
    if (!e.active_at(step)) continue;
    switch (e.kind) {
      case FaultKind::kDeviceFailure:
        if (e.device >= 0 && e.device < cluster.device_count()) {
          out.failed.push_back(e.device);
        }
        break;
      case FaultKind::kStraggler:
        if (e.device >= 0 && e.device < cluster.device_count()) {
          out.compute_slowdown[static_cast<size_t>(e.device)] *= e.slowdown;
        }
        break;
      case FaultKind::kLinkDegradation:
        out.links.push_back({e.device_a, e.device_b, e.bandwidth_factor});
        break;
      case FaultKind::kTransient:
        break;  // handled by the runner's retry loop
      case FaultKind::kRackFailure:
        for (auto d : domain_devices_unchecked(cluster, e)) out.failed.push_back(d);
        break;
      case FaultKind::kSwitchOutage:
        for (auto d : domain_devices_unchecked(cluster, e)) out.isolated.push_back(d);
        break;
      case FaultKind::kSwitchDegradation:
        out.switches.push_back({e.level, e.switch_index, e.bandwidth_factor});
        break;
    }
  }
  std::sort(out.failed.begin(), out.failed.end());
  out.failed.erase(std::unique(out.failed.begin(), out.failed.end()), out.failed.end());
  std::sort(out.isolated.begin(), out.isolated.end());
  out.isolated.erase(std::unique(out.isolated.begin(), out.isolated.end()),
                     out.isolated.end());
  // A device that failed outright is not additionally "isolated" — failure
  // dominates so the two sets stay disjoint for consumers.
  out.isolated.erase(std::remove_if(out.isolated.begin(), out.isolated.end(),
                                    [&](cluster::DeviceId d) {
                                      return out.is_failed(d);
                                    }),
                     out.isolated.end());
  return out;
}

std::vector<cluster::DeviceId> domain_devices(const cluster::ClusterSpec& cluster,
                                              const FaultEvent& e) {
  validate_event(e, cluster);
  return domain_devices_unchecked(cluster, e);
}

namespace {

bool is_domain_kind(FaultKind kind) {
  return kind == FaultKind::kRackFailure || kind == FaultKind::kSwitchOutage ||
         kind == FaultKind::kSwitchDegradation;
}

}  // namespace

FaultPlan remap_plan(const FaultPlan& plan, const std::vector<int>& new_id_of) {
  auto remap = [&](cluster::DeviceId d) -> cluster::DeviceId {
    if (d < 0 || static_cast<size_t>(d) >= new_id_of.size()) return -1;
    return new_id_of[static_cast<size_t>(d)];
  };
  FaultPlan out;
  for (const auto& e : plan.events) {
    FaultEvent copy = e;
    if (is_domain_kind(e.kind)) {
      // Rack / switch coordinates are host-id-independent and racks are
      // never re-densified, so domain events survive remapping untouched.
    } else if (e.kind == FaultKind::kLinkDegradation) {
      copy.device_a = remap(e.device_a);
      copy.device_b = remap(e.device_b);
      if (copy.device_a < 0 || copy.device_b < 0) continue;
    } else {
      copy.device = remap(e.device);
      if (copy.device < 0) continue;
    }
    out.events.push_back(copy);
  }
  return out;
}

FaultPlan remap_plan(const FaultPlan& plan, const std::vector<int>& new_id_of,
                     const cluster::ClusterSpec& survivors) {
  FaultPlan out = remap_plan(plan, new_id_of);
  out.events.erase(std::remove_if(out.events.begin(), out.events.end(),
                                  [&](const FaultEvent& e) {
                                    if (!is_domain_kind(e.kind)) return false;
                                    try {
                                      validate_event(e, survivors);
                                      return false;
                                    } catch (const FaultPlanError&) {
                                      return true;  // domain no longer exists
                                    }
                                  }),
                   out.events.end());
  return out;
}

cluster::ClusterSpec degraded_cluster(const cluster::ClusterSpec& base,
                                      const FaultScaling& scaling) {
  // Isolated devices are unreachable from the survivors, so re-planning must
  // exclude them exactly like failed ones.
  std::vector<cluster::DeviceId> lost = scaling.failed;
  lost.insert(lost.end(), scaling.isolated.begin(), scaling.isolated.end());
  std::sort(lost.begin(), lost.end());
  lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
  for (const auto d : lost) {
    if (d < 0 || d >= base.device_count()) {
      scaling_fail("degraded_cluster", scaling.step,
                   "failed device " + std::to_string(d) + " out of range for a " +
                       std::to_string(base.device_count()) + "-device cluster");
    }
  }
  if (static_cast<int>(lost.size()) >= base.device_count()) {
    throw cluster::ClusterSpecError(
        "degraded_cluster: no device survives at step " +
        std::to_string(scaling.step) + " (all " +
        std::to_string(base.device_count()) + " devices failed or isolated)");
  }
  std::vector<cluster::HostSpec> hosts = base.hosts();
  std::vector<cluster::DeviceSpec> devices = base.devices();
  for (auto& d : devices) {
    const auto idx = static_cast<size_t>(d.id);
    if (idx < scaling.compute_slowdown.size()) {
      if (scaling.compute_slowdown[idx] < 1.0) {
        scaling_fail("degraded_cluster", scaling.step,
                     "compute slowdown " + std::to_string(scaling.compute_slowdown[idx]) +
                         " < 1 on device " + std::to_string(d.id));
      }
      if (scaling.compute_slowdown[idx] > 1.0) {
        d.gflops_per_ms /= scaling.compute_slowdown[idx];
      }
    }
  }
  // Rebuild with the base cluster's accumulated link degradations and switch
  // topology intact — dropping them here silently un-degraded previously
  // degraded clusters and flattened generated multi-rack fabrics.
  cluster::ClusterSpec out(std::move(hosts), std::move(devices), base.switch_gbps(),
                           base.host_link_scales());
  if (base.has_topology()) {
    out = out.with_topology(base.topology());
    // with_topology drops switch scales (coordinates belong to the replaced
    // topology); re-apply the base cluster's accumulated ones, which target
    // the identical topology here.
    for (const auto& [coord, scale] : base.switch_scales()) {
      out = out.degrade_switch(coord.first, coord.second, scale);
    }
  }
  for (const auto& l : scaling.links) {
    if (l.a < 0 || l.a >= base.device_count() || l.b < 0 || l.b >= base.device_count()) {
      scaling_fail("degraded_cluster", scaling.step,
                   "degraded link G" + std::to_string(l.a) + "<->G" +
                       std::to_string(l.b) + " references a device outside the " +
                       std::to_string(base.device_count()) + "-device cluster");
    }
    out = out.degrade_link(l.a, l.b, l.factor);
  }
  // Active switch degradations re-price the whole inter-host bandwidth table
  // so the rack-aware hierarchical AllReduce sees the narrowed fabric.
  for (const auto& s : scaling.switches) {
    if (!out.has_topology()) {
      scaling_fail("degraded_cluster", scaling.step,
                   "switch degradation L" + std::to_string(s.level) + "/S" +
                       std::to_string(s.index) +
                       " targets a cluster without switch topology");
    }
    out = out.degrade_switch(s.level, s.index, s.factor);
  }
  // Remove failed + isolated devices last (highest id first so lower ids
  // stay stable while iterating; degraded-link host pairs and switch scales
  // are carried through).
  std::sort(lost.rbegin(), lost.rend());
  for (auto d : lost) out = out.remove_device(d);
  return out;
}

}  // namespace heterog::faults
