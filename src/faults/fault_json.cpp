// Minimal JSON reader for FaultPlan files (schema in faults.h). Hand-rolled
// recursive descent — the container bakes no JSON dependency in, and the
// schema is small enough that a ~150-line parser is the honest cost.
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "faults/faults.h"

namespace heterog::faults {

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw FaultPlanError("fault plan JSON: " + why + " (at offset " +
                         std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    // Depth cap: a crafted file of nothing but '[' must fail typed, not
    // overflow the stack.
    if (depth_ >= 256) fail("nesting too deep");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    fail("unexpected character");
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      v.object[key.str] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            fail("unsupported escape sequence");
        }
      }
      v.str.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

double get_number(const JsonValue& obj, const std::string& key, double fallback,
                  bool required = false) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    if (required) throw FaultPlanError("fault plan: missing field \"" + key + "\"");
    return fallback;
  }
  if (it->second.type != JsonValue::Type::kNumber) {
    throw FaultPlanError("fault plan: field \"" + key + "\" must be a number");
  }
  return it->second.number;
}

int get_int(const JsonValue& obj, const std::string& key, int fallback,
            bool required = false) {
  const double d = get_number(obj, key, fallback, required);
  // The range check matters as much as the integrality check: casting an
  // out-of-int-range double is undefined behaviour, not just a wrong value.
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    throw FaultPlanError("fault plan: field \"" + key + "\" must be an int");
  }
  return static_cast<int>(d);
}

FaultEvent parse_event(const JsonValue& obj) {
  if (obj.type != JsonValue::Type::kObject) {
    throw FaultPlanError("fault plan: each fault must be a JSON object");
  }
  const auto kind_it = obj.object.find("kind");
  if (kind_it == obj.object.end() || kind_it->second.type != JsonValue::Type::kString) {
    throw FaultPlanError("fault plan: fault missing string field \"kind\"");
  }
  const std::string& kind = kind_it->second.str;

  FaultEvent e;
  e.onset_step = get_int(obj, "onset_step", 0, /*required=*/true);
  e.recovery_step = get_int(obj, "recovery_step", -1);
  if (kind == "device_failure") {
    e.kind = FaultKind::kDeviceFailure;
    e.device = get_int(obj, "device", -1, /*required=*/true);
  } else if (kind == "straggler") {
    e.kind = FaultKind::kStraggler;
    e.device = get_int(obj, "device", -1, /*required=*/true);
    e.slowdown = get_number(obj, "slowdown", 2.0);
  } else if (kind == "link_degradation") {
    e.kind = FaultKind::kLinkDegradation;
    e.device_a = get_int(obj, "device_a", -1, /*required=*/true);
    e.device_b = get_int(obj, "device_b", -1, /*required=*/true);
    e.bandwidth_factor = get_number(obj, "bandwidth_factor", 0.5);
  } else if (kind == "transient") {
    e.kind = FaultKind::kTransient;
    e.device = get_int(obj, "device", -1, /*required=*/true);
    e.failed_attempts = get_int(obj, "failed_attempts", 1);
  } else if (kind == "rack_failure") {
    e.kind = FaultKind::kRackFailure;
    e.rack = get_int(obj, "rack", -1, /*required=*/true);
  } else if (kind == "switch_outage") {
    e.kind = FaultKind::kSwitchOutage;
    e.level = get_int(obj, "level", -1, /*required=*/true);
    e.switch_index = get_int(obj, "switch", -1, /*required=*/true);
  } else if (kind == "switch_degradation") {
    e.kind = FaultKind::kSwitchDegradation;
    e.level = get_int(obj, "level", -1, /*required=*/true);
    e.switch_index = get_int(obj, "switch", -1, /*required=*/true);
    e.bandwidth_factor = get_number(obj, "bandwidth_factor", 0.5);
  } else {
    throw FaultPlanError("fault plan: unknown fault kind \"" + kind + "\"");
  }
  return e;
}

}  // namespace

FaultPlan parse_fault_plan_json(const std::string& text) {
  JsonParser parser(text);
  const JsonValue root = parser.parse();

  const JsonValue* list = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    list = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    const auto it = root.object.find("faults");
    if (it == root.object.end() || it->second.type != JsonValue::Type::kArray) {
      throw FaultPlanError("fault plan: top-level object needs a \"faults\" array");
    }
    list = &it->second;
  } else {
    throw FaultPlanError("fault plan: top level must be an object or array");
  }

  FaultPlan plan;
  for (const auto& entry : list->array) plan.events.push_back(parse_event(entry));
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FaultPlanError("cannot read fault plan file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fault_plan_json(buffer.str());
}

namespace {

/// %.17g round-trips doubles exactly; the default ostream precision (6
/// significant digits) does not, and a resumed run re-parsing the journalled
/// plan would simulate subtly different fault scalings than the original.
std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

std::string fault_plan_to_json(const FaultPlan& plan) {
  std::ostringstream os;
  os << "{\"faults\": [";
  for (size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    if (i) os << ", ";
    os << "{\"kind\": \"" << fault_kind_name(e.kind) << "\"";
    switch (e.kind) {
      case FaultKind::kDeviceFailure:
        os << ", \"device\": " << e.device;
        break;
      case FaultKind::kStraggler:
        os << ", \"device\": " << e.device << ", \"slowdown\": " << json_number(e.slowdown);
        break;
      case FaultKind::kLinkDegradation:
        os << ", \"device_a\": " << e.device_a << ", \"device_b\": " << e.device_b
           << ", \"bandwidth_factor\": " << json_number(e.bandwidth_factor);
        break;
      case FaultKind::kTransient:
        os << ", \"device\": " << e.device
           << ", \"failed_attempts\": " << e.failed_attempts;
        break;
      case FaultKind::kRackFailure:
        os << ", \"rack\": " << e.rack;
        break;
      case FaultKind::kSwitchOutage:
        os << ", \"level\": " << e.level << ", \"switch\": " << e.switch_index;
        break;
      case FaultKind::kSwitchDegradation:
        os << ", \"level\": " << e.level << ", \"switch\": " << e.switch_index
           << ", \"bandwidth_factor\": " << json_number(e.bandwidth_factor);
        break;
    }
    os << ", \"onset_step\": " << e.onset_step;
    if (e.recovery_step >= 0) os << ", \"recovery_step\": " << e.recovery_step;
    os << "}";
  }
  os << "]}";
  return os.str();
}

const std::vector<std::string>& fault_json_fields() {
  static const std::vector<std::string> fields = {
      "kind",        "device",           "device_a",       "device_b",
      "onset_step",  "recovery_step",    "slowdown",       "bandwidth_factor",
      "failed_attempts", "level",        "switch",         "rack",
  };
  return fields;
}

}  // namespace heterog::faults
