// The Profiler and the regression CostModel (paper Sec. 3.3).
//
// "We run the given DNN model on each device with different representative
//  batch sizes ... so that we can build a linear regression model to predict
//  computation time of a specific operation at other batch sizes ... We
//  transfer data with different sizes between each pair of devices, record
//  the transfer time and build a linear regression model for transfer time
//  prediction over each link."
//
// Measurements are taken from the synthetic HardwareModel with deterministic
// multiplicative noise (seeded Rng) standing in for real kernel-time jitter.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "graph/graph.h"
#include "profiler/cost_provider.h"
#include "profiler/hardware_model.h"

namespace heterog::profiler {

struct ProfilerOptions {
  /// Batch fractions (of the graph's global batch) at which ops are timed.
  std::vector<double> batch_fractions{1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0};
  /// Repetitions per measurement point (measurements are averaged).
  int repetitions = 3;
  /// Multiplicative measurement noise stddev (e.g. 0.03 = 3%).
  double noise_stddev = 0.02;
  /// Transfer probe sizes in bytes.
  std::vector<int64_t> transfer_probe_bytes{64 * 1024, 1 * 1024 * 1024,
                                            16 * 1024 * 1024, 128 * 1024 * 1024};
};

/// Regression-fitted cost model over a profiled graph + cluster.
///
/// Per-op, per-device fits over batch size serve replicas of profiled ops;
/// per-kind, per-device fits over flop count serve ops the Graph Compiler
/// synthesises (Split/Concat/aggregation); per-link fits over bytes serve
/// transfers.
class CostModel final : public CostProvider {
 public:
  double op_time_ms(const graph::OpDef& op, double batch,
                    cluster::DeviceId dev) const override;
  double transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                          cluster::DeviceId to) const override;
  const cluster::ClusterSpec& cluster() const override { return *cluster_; }

  /// The fit for a specific profiled op on a device (tests / inspection).
  const LinearFit& op_fit(graph::OpId id, cluster::DeviceId dev) const;
  const LinearFit& link_fit(cluster::DeviceId from, cluster::DeviceId to) const;

 private:
  friend class Profiler;

  const cluster::ClusterSpec* cluster_ = nullptr;
  int profiled_op_count_ = 0;
  int device_count_ = 0;
  // [op * device_count + device] -> time(batch) fit. Flat storage: at 1000
  // devices the per-row vector indirection costs a cache miss per lookup in
  // the compile hot path.
  std::vector<LinearFit> op_fits_;
  // [kind][device] -> time(flops) fit, fallback for synthesised ops.
  std::map<std::pair<int, int>, LinearFit> kind_fits_;
  // [from * device_count + to] -> time(bytes) fit, flat for the same reason.
  std::vector<LinearFit> link_fits_;
};

/// Profiles a training graph against the (synthetic) hardware and fits the
/// CostModel. Deterministic given the seed.
class Profiler {
 public:
  Profiler(const HardwareModel& hardware, uint64_t seed,
           ProfilerOptions options = ProfilerOptions());

  /// Measures every op at the configured batch fractions on every device,
  /// probes every link, and returns the fitted cost model.
  std::shared_ptr<const CostModel> profile(const graph::GraphDef& graph);

 private:
  const HardwareModel* hardware_;
  Rng rng_;
  ProfilerOptions options_;
};

}  // namespace heterog::profiler
