#include "profiler/cost_provider.h"

namespace heterog::profiler {

double CostProvider::average_op_time_ms(const graph::OpDef& op, double batch) const {
  const auto& c = cluster();
  double total = 0.0;
  for (const auto& d : c.devices()) total += op_time_ms(op, batch, d.id);
  return total / static_cast<double>(c.device_count());
}

}  // namespace heterog::profiler
