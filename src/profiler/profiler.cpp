#include "profiler/profiler.h"

#include <algorithm>

#include "common/check.h"

namespace heterog::profiler {

double CostModel::op_time_ms(const graph::OpDef& op, double batch,
                             cluster::DeviceId dev) const {
  check(dev >= 0 && dev < device_count_, "op_time_ms: bad device");
  if (op.id >= 0 && op.id < profiled_op_count_) {
    const double t =
        op_fits_[static_cast<size_t>(op.id) * static_cast<size_t>(device_count_) +
                 static_cast<size_t>(dev)]
            .predict(batch);
    return std::max(t, 0.0);
  }
  // Synthesised op: fall back to the per-kind flops fit.
  const auto it = kind_fits_.find({static_cast<int>(op.kind), dev});
  const double flops = std::max(op.flops(batch), 0.0);
  if (it != kind_fits_.end()) {
    return std::max(it->second.predict(flops), 0.0);
  }
  // Kind never observed during profiling: use a conservative generic rate
  // derived from the device's base compute throughput.
  const auto& d = cluster_->device(dev);
  return 0.004 + flops / (d.gflops_per_ms * 1e9 * 0.25);
}

double CostModel::transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                                   cluster::DeviceId to) const {
  if (from == to) return 0.0;
  const double t = link_fit(from, to).predict(static_cast<double>(bytes));
  return std::max(t, 0.0);
}

const LinearFit& CostModel::op_fit(graph::OpId id, cluster::DeviceId dev) const {
  check(id >= 0 && id < profiled_op_count_, "op_fit: unprofiled op");
  check(dev >= 0 && dev < device_count_, "op_fit: bad device");
  return op_fits_[static_cast<size_t>(id) * static_cast<size_t>(device_count_) +
                  static_cast<size_t>(dev)];
}

const LinearFit& CostModel::link_fit(cluster::DeviceId from, cluster::DeviceId to) const {
  check(from != to, "link_fit: same device");
  check(from >= 0 && from < device_count_, "link_fit: bad from");
  check(to >= 0 && to < device_count_, "link_fit: bad to");
  return link_fits_[static_cast<size_t>(from) * static_cast<size_t>(device_count_) +
                    static_cast<size_t>(to)];
}

Profiler::Profiler(const HardwareModel& hardware, uint64_t seed, ProfilerOptions options)
    : hardware_(&hardware), rng_(seed), options_(std::move(options)) {
  check(options_.batch_fractions.size() >= 2,
        "Profiler: need >= 2 batch fractions for a regression fit");
  check(options_.repetitions >= 1, "Profiler: repetitions must be >= 1");
}

std::shared_ptr<const CostModel> Profiler::profile(const graph::GraphDef& graph) {
  const auto& cluster = hardware_->cluster();
  const int n = cluster.device_count();
  auto model = std::make_shared<CostModel>();
  model->cluster_ = &cluster;
  model->profiled_op_count_ = graph.op_count();
  model->device_count_ = cluster.device_count();
  model->op_fits_.assign(static_cast<size_t>(graph.op_count()) *
                             static_cast<size_t>(cluster.device_count()),
                         LinearFit{});

  // Per-kind accumulation for the synthesised-op fallback fits.
  std::map<std::pair<int, int>, std::pair<std::vector<double>, std::vector<double>>>
      kind_samples;  // (kind, device) -> (flops, times)

  for (const auto& op : graph.ops()) {
    for (const auto& dev : cluster.devices()) {
      std::vector<double> xs, ys;
      xs.reserve(options_.batch_fractions.size());
      ys.reserve(options_.batch_fractions.size());
      for (double fraction : options_.batch_fractions) {
        const double batch = graph.global_batch() * fraction;
        double total = 0.0;
        for (int r = 0; r < options_.repetitions; ++r) {
          const double truth = hardware_->op_time_ms(op, batch, dev.id);
          const double noise = 1.0 + rng_.normal(0.0, options_.noise_stddev);
          total += truth * std::max(noise, 0.5);
        }
        const double measured = total / options_.repetitions;
        xs.push_back(batch);
        ys.push_back(measured);
        auto& bucket = kind_samples[{static_cast<int>(op.kind), dev.id}];
        bucket.first.push_back(std::max(op.flops(batch), 0.0));
        bucket.second.push_back(measured);
      }
      model->op_fits_[static_cast<size_t>(op.id) * static_cast<size_t>(n) +
                      static_cast<size_t>(dev.id)] = fit_linear(xs, ys);
    }
  }

  for (const auto& [key, samples] : kind_samples) {
    if (samples.first.size() >= 2) {
      model->kind_fits_[key] = fit_linear(samples.first, samples.second);
    }
  }

  // Link probes.
  model->link_fits_.assign(static_cast<size_t>(n) * static_cast<size_t>(n),
                           LinearFit{});
  for (const auto& a : cluster.devices()) {
    for (const auto& b : cluster.devices()) {
      if (a.id == b.id) continue;
      std::vector<double> xs, ys;
      for (int64_t bytes : options_.transfer_probe_bytes) {
        double total = 0.0;
        for (int r = 0; r < options_.repetitions; ++r) {
          const double truth = hardware_->transfer_time_ms(bytes, a.id, b.id);
          const double noise = 1.0 + rng_.normal(0.0, options_.noise_stddev);
          total += truth * std::max(noise, 0.5);
        }
        xs.push_back(static_cast<double>(bytes));
        ys.push_back(total / options_.repetitions);
      }
      model->link_fits_[static_cast<size_t>(a.id) * static_cast<size_t>(n) +
                        static_cast<size_t>(b.id)] = fit_linear(xs, ys);
    }
  }

  return model;
}

}  // namespace heterog::profiler
