// Abstract cost oracle consumed by the Graph Compiler and the Simulator.
//
// Two implementations exist:
//   * GroundTruthCosts — adapts HardwareModel; plays the role of running on
//     the real cluster (used to evaluate final plans).
//   * CostModel (profiler.h) — the linear-regression fits the paper's
//     Profiler produces; the planner and the RL reward loop use this one.
#pragma once

#include "cluster/cluster.h"
#include "graph/op.h"
#include "profiler/hardware_model.h"

namespace heterog::profiler {

class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Predicted execution time of `op` at the given batch on device `dev`.
  virtual double op_time_ms(const graph::OpDef& op, double batch,
                            cluster::DeviceId dev) const = 0;

  /// Predicted time to move `bytes` across the (from -> to) link.
  virtual double transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                                  cluster::DeviceId to) const = 0;

  virtual const cluster::ClusterSpec& cluster() const = 0;

  /// Average op time over all devices; used for grouping and GNN features.
  double average_op_time_ms(const graph::OpDef& op, double batch) const;
};

/// CostProvider backed directly by the synthetic ground truth.
class GroundTruthCosts final : public CostProvider {
 public:
  explicit GroundTruthCosts(const HardwareModel& hw) : hw_(&hw) {}

  double op_time_ms(const graph::OpDef& op, double batch,
                    cluster::DeviceId dev) const override {
    return hw_->op_time_ms(op, batch, dev);
  }
  double transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                          cluster::DeviceId to) const override {
    return hw_->transfer_time_ms(bytes, from, to);
  }
  const cluster::ClusterSpec& cluster() const override { return hw_->cluster(); }

 private:
  const HardwareModel* hw_;
};

}  // namespace heterog::profiler
