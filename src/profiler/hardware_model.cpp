#include "profiler/hardware_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heterog::profiler {

namespace {

using cluster::GpuModel;
using graph::OpKind;

/// Coarse op classes with distinct hardware behaviour.
enum class OpClass { kMatMul, kConv, kConvBpFilter, kConvBpInput, kConv1D, kDepthwise, kMemoryBound, kOther };

OpClass classify(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
    case OpKind::kAttentionScore:
    case OpKind::kAttentionContext:
      return OpClass::kMatMul;
    case OpKind::kConv2D:
      return OpClass::kConv;
    case OpKind::kConv2DBpFilter:
      return OpClass::kConvBpFilter;
    case OpKind::kConv2DBpInput:
      return OpClass::kConvBpInput;
    case OpKind::kConv1D:
      return OpClass::kConv1D;
    case OpKind::kDepthwiseConv2D:
      return OpClass::kDepthwise;
    case OpKind::kRelu:
    case OpKind::kAdd:
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
    case OpKind::kSoftmax:
    case OpKind::kPool:
    case OpKind::kSplit:
    case OpKind::kConcat:
    case OpKind::kIdentity:
      return OpClass::kMemoryBound;
    default:
      return OpClass::kOther;
  }
}

/// Sustained GFLOPs/ms per (model, class). Calibrated so that V100 / 1080Ti
/// time ratios land at Fig. 3(b)'s per-op-type values: MatMul ~1.9,
/// Conv2D ~1.6, Conv1D ~1.3, Conv2DBpFilter ~1.5, Conv2DBpInput ~1.7, and
/// memory-bound ops ~1.2 (bandwidth-limited).
double class_rate(GpuModel model, OpClass cls) {
  switch (model) {
    case GpuModel::kV100:
      switch (cls) {
        case OpClass::kMatMul:
          return 14.0;
        case OpClass::kConv:
          return 13.0;
        case OpClass::kConvBpFilter:
          return 12.4;
        case OpClass::kConvBpInput:
          return 13.2;
        case OpClass::kConv1D:
          return 10.0;
        case OpClass::kDepthwise:
          return 5.6;
        case OpClass::kMemoryBound:
          return 3.0;
        case OpClass::kOther:
          return 4.5;
      }
      break;
    case GpuModel::kGtx1080Ti:
      switch (cls) {
        case OpClass::kMatMul:
          return 14.0 / 1.9;
        case OpClass::kConv:
          return 13.0 / 1.75;
        case OpClass::kConvBpFilter:
          return 12.4 / 1.7;
        case OpClass::kConvBpInput:
          return 13.2 / 1.8;
        case OpClass::kConv1D:
          return 10.0 / 1.45;
        case OpClass::kDepthwise:
          return 5.6 / 1.55;
        case OpClass::kMemoryBound:
          return 3.0 / 1.35;
        case OpClass::kOther:
          return 4.5 / 1.55;
      }
      break;
    case GpuModel::kP100:
      switch (cls) {
        case OpClass::kMatMul:
          return 14.0 / 1.75;
        case OpClass::kConv:
          return 13.0 / 1.6;
        case OpClass::kConvBpFilter:
          return 12.4 / 1.55;
        case OpClass::kConvBpInput:
          return 13.2 / 1.65;
        case OpClass::kConv1D:
          return 10.0 / 1.35;
        case OpClass::kDepthwise:
          return 5.6 / 1.4;
        case OpClass::kMemoryBound:
          return 3.0 / 1.25;
        case OpClass::kOther:
          return 4.5 / 1.4;
      }
      break;
    case GpuModel::kA100:
      // ~2x V100 on tensor-core classes, less on memory-bound ops (HBM2e
      // bandwidth grows ~1.7x, not 2x).
      switch (cls) {
        case OpClass::kMatMul:
          return 14.0 * 2.0;
        case OpClass::kConv:
          return 13.0 * 2.0;
        case OpClass::kConvBpFilter:
          return 12.4 * 2.0;
        case OpClass::kConvBpInput:
          return 13.2 * 2.0;
        case OpClass::kConv1D:
          return 10.0 * 2.0;
        case OpClass::kDepthwise:
          return 5.6 * 2.0;
        case OpClass::kMemoryBound:
          return 3.0 * 1.7;
        case OpClass::kOther:
          return 4.5 * 2.0;
      }
      break;
  }
  return 1.0;
}

/// Kernel-size saturation: a fast GPU only reaches its sustained rate on
/// large kernels. `knee` is the flop count at which utilisation reaches 50%.
/// Faster GPUs have larger knees, which makes the observed V100 speed-up
/// shrink on small inputs — the intra-op-type variance the paper reports.
double saturation_knee_flops(GpuModel model) {
  switch (model) {
    case GpuModel::kV100:
      return 6.0e6;
    case GpuModel::kGtx1080Ti:
      return 2.5e6;
    case GpuModel::kP100:
      return 3.0e6;
    case GpuModel::kA100:
      return 1.2e7;
  }
  return 2.0e6;
}

constexpr double kKernelLaunchMs = 0.004;

}  // namespace

double HardwareModel::sustained_gflops_per_ms(GpuModel model, OpKind kind) {
  return class_rate(model, classify(kind));
}

double HardwareModel::op_time_ms(const graph::OpDef& op, double batch,
                                 cluster::DeviceId dev) const {
  check(batch >= 0.0, "op_time_ms: negative batch");
  const double flops = std::max(op.flops(batch), 0.0);
  if (flops <= 0.0) return kKernelLaunchMs;
  const auto& d = cluster_->device(dev);
  // The per-class rate table assumes the model's nominal compute power; a
  // DeviceSpec carrying a different gflops_per_ms (straggler-degraded
  // clusters, user-tuned specs) derates every class proportionally.
  const double derate =
      d.gflops_per_ms > 0.0
          ? d.gflops_per_ms / cluster::base_gflops_per_ms(d.model)
          : 1.0;
  const double rate = class_rate(d.model, classify(op.kind)) * derate;  // GFLOPs/ms
  const double knee = saturation_knee_flops(d.model);
  const double utilisation = flops / (flops + knee);
  const double effective_rate = rate * 1e9 * std::max(utilisation, 0.02);
  return kKernelLaunchMs + flops / effective_rate;
}

double HardwareModel::transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                                       cluster::DeviceId to) const {
  check(bytes >= 0, "transfer_time_ms: negative bytes");
  if (from == to) return 0.0;
  const double bw = cluster_->link_bandwidth_bytes_per_ms(from, to);
  return cluster_->link_latency_ms(from, to) + static_cast<double>(bytes) / bw;
}

}  // namespace heterog::profiler
