// Synthetic hardware ground truth.
//
// Substitution for the real testbed (see DESIGN.md): the paper profiles op
// kernel times with TensorFlow's tracer on real GPUs; we generate them from
// a parametric model calibrated to the paper's published heterogeneity
// measurements (Fig. 3(b)): the V100 / 1080Ti speed-up varies by op type
// from ~1.1 to ~1.9 and additionally varies with input size (small kernels
// under-utilise the faster GPU).
//
// This model plays the role of "the cluster": the Profiler takes noisy
// measurements from it, and a ground-truth simulation evaluates final plans
// against it.
#pragma once

#include "cluster/cluster.h"
#include "graph/op.h"

namespace heterog::profiler {

/// Ground-truth cost oracle for a given cluster.
class HardwareModel {
 public:
  explicit HardwareModel(const cluster::ClusterSpec& cluster) : cluster_(&cluster) {}

  /// Execution time of `op` processing `batch` samples on device `dev`.
  double op_time_ms(const graph::OpDef& op, double batch, cluster::DeviceId dev) const;

  /// Time to move `bytes` over the (from -> to) link.
  double transfer_time_ms(int64_t bytes, cluster::DeviceId from,
                          cluster::DeviceId to) const;

  const cluster::ClusterSpec& cluster() const { return *cluster_; }

  /// Sustained rate (GFLOPs/ms) of `model` on ops of `kind` at full
  /// utilisation; exposed for tests and the Fig. 3(b) bench.
  static double sustained_gflops_per_ms(cluster::GpuModel model, graph::OpKind kind);

 private:
  const cluster::ClusterSpec* cluster_;
};

}  // namespace heterog::profiler
