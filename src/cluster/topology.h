// Seeded cluster-topology generator: scales the planner's scenario space
// past the paper's 12-GPU testbed to rack/pod-structured clusters with
// hundreds of machines, mixed GPU SKUs and mixed link classes, while staying
// bit-reproducible (same options -> byte-identical cluster).
//
// The generator's knobs load from a small JSON document (schema documented
// field-by-field in docs/topology.md, mirroring the faults::FaultPlan
// loader) and every draw comes from one explicitly-seeded Rng, so a
// generated cluster is a pure function of its options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace heterog::cluster {

/// Thrown on malformed generator options / JSON. Derives ClusterSpecError
/// (and therefore CheckError) so existing catch sites keep working.
class TopoSpecError : public ClusterSpecError {
 public:
  explicit TopoSpecError(const std::string& what) : ClusterSpecError(what) {}
};

/// Options of one generated topology. Defaults describe a small 2-rack pod.
/// Weights need not be normalised; a map with a single entry pins the choice.
struct TopoGenOptions {
  /// PRNG seed; every stochastic choice below derives from it.
  uint64_t seed = 1;
  /// Physical layout: racks x hosts_per_rack machines, gpus_per_host each.
  int racks = 2;
  int hosts_per_rack = 2;
  int gpus_per_host = 4;
  /// Top-of-rack switch bandwidth (Gbps).
  double tor_gbps = 100.0;
  /// Bandwidth taper per switch level above the ToR: each level carries
  /// tor_gbps / oversubscription^level. 1.0 = non-blocking fabric.
  double oversubscription = 1.0;
  /// Racks joined by one aggregation switch. 0 = no aggregation tier (all
  /// racks meet at the core). Values >= racks also collapse to core-only.
  int racks_per_pod = 0;
  /// GPU SKU mix: weight per model name ("v100", "1080ti", "p100", "a100").
  /// One SKU is drawn per host (whole machines are homogeneous).
  std::map<std::string, double> gpu_mix = {{"v100", 1.0}, {"1080ti", 1.0}};
  /// Intra-host fabric class mix: "nvlink" (320 Gbps) vs "pcie" (96 Gbps).
  std::map<std::string, double> link_classes = {{"nvlink", 1.0}, {"pcie", 1.0}};
  /// NIC class mix: "roce100" (100 Gbps), "roce50" (50), "roce25" (25).
  std::map<std::string, double> nic_classes = {{"roce100", 1.0}, {"roce50", 1.0}};

  int host_count() const { return racks * hosts_per_rack; }
  int device_count() const { return host_count() * gpus_per_host; }

  /// Throws TopoSpecError on out-of-range values (non-positive counts /
  /// bandwidths, oversubscription < 1, unknown mix keys, negative weights,
  /// all-zero weight maps).
  void validate() const;
};

/// Deterministically generates the cluster described by `options`: same
/// options -> byte-identical cluster (cluster_to_json) and equal
/// cluster_fingerprint. Throws TopoSpecError on invalid options.
ClusterSpec generate_cluster(const TopoGenOptions& options);

/// Canonical JSON for the generator options; parse_topo_gen_json round-trips
/// it byte-identically (doubles via %.17g).
std::string topo_gen_to_json(const TopoGenOptions& options);

/// Parses generator options from JSON (schema in docs/topology.md). Unknown
/// fields, wrong types, bad nesting and trailing bytes all throw
/// TopoSpecError ("topology spec JSON: <why> (at offset N)").
TopoGenOptions parse_topo_gen_json(const std::string& text);

/// Reads and parses a JSON options file; TopoSpecError when unreadable.
TopoGenOptions load_topo_gen_options(const std::string& path);

/// Canonical, deterministic JSON description of a (generated or hand-built)
/// cluster: hosts, devices, link scales and switch topology. This is the
/// byte-identity wall bench_topology_scale gates on; it is a description,
/// not a loadable format.
std::string cluster_to_json(const ClusterSpec& cluster);

/// The JSON field names parse_topo_gen_json accepts, in canonical emit
/// order. docs/topology.md documents exactly these (cross-checked by the
/// topo test suite, like docs/observability.md <-> all_event_types()).
const std::vector<std::string>& topo_json_fields();

/// Named generator presets for the CLI (--cluster-gen NAME) and benches:
/// "rack16" (16 GPUs), "pod64", "pod256", "dc1000" (100 machines / 1000
/// GPUs). nullopt for unknown names.
std::optional<TopoGenOptions> topo_preset(const std::string& name);
const std::vector<std::string>& topo_preset_names();

}  // namespace heterog::cluster
