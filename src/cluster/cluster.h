// Heterogeneous cluster description.
//
// Mirrors the paper's testbed (Sec. 6.1): five machines — one with 4x Tesla
// V100 (16 GB) and a 100 GbE RDMA NIC, two with 2x GTX 1080 Ti (11 GB) and
// 50 GbE NICs, two with 2x Tesla P100 (12 GB) and 50 GbE NICs — joined by a
// 100 Gbps switch. The scheduler treats every ordered GPU pair as a "link
// device"; bandwidth of a link is the min of the path segments it crosses
// (intra-host fabric, either NIC, the switch).
//
// Units: time in milliseconds, bandwidth in bytes/ms, memory in bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace heterog::cluster {

/// Thrown when a ClusterSpec is constructed from malformed inputs (empty
/// device list, non-positive bandwidth/memory, dangling host ids) or a
/// derivation (remove_device / degrade_link) is invalid. Derives CheckError
/// so existing catch sites keep working.
class ClusterSpecError : public CheckError {
 public:
  explicit ClusterSpecError(const std::string& what) : CheckError(what) {}
};

using DeviceId = int32_t;

enum class GpuModel : uint8_t { kV100, kGtx1080Ti, kP100 };

const char* gpu_model_name(GpuModel model);

/// Peak effective compute of a GPU model in GFLOPs per millisecond.
/// Calibrated so that V100 : 1080Ti effective speed is roughly 2 : 1 as
/// measured in the paper (Sec. 2.3), with per-op-type modulation applied by
/// the synthetic hardware model in src/profiler.
double base_gflops_per_ms(GpuModel model);

/// Device memory capacity in bytes.
int64_t memory_capacity_bytes(GpuModel model);

struct HostSpec {
  int id = 0;
  std::string name;
  double nic_gbps = 50.0;    // NIC line rate
  double intra_gbps = 96.0;  // intra-host GPU-GPU fabric (PCIe / NVLink)
};

struct DeviceSpec {
  DeviceId id = 0;
  std::string name;
  GpuModel model = GpuModel::kGtx1080Ti;
  int host = 0;
  double gflops_per_ms = 0.0;
  int64_t memory_bytes = 0;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;
  ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
              double switch_gbps);

  /// Full reconstruction, including accumulated link degradations keyed by
  /// unordered host pair — the ckpt journal uses this to round-trip a
  /// cluster (possibly already degraded mid-run) through a restart. Throws
  /// ClusterSpecError on dangling host ids or factors outside (0, 1].
  ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
              double switch_gbps, std::map<std::pair<int, int>, double> link_scales);

  int device_count() const { return static_cast<int>(devices_.size()); }
  int host_count() const { return static_cast<int>(hosts_.size()); }
  const DeviceSpec& device(DeviceId id) const;
  const HostSpec& host(int id) const;
  const std::vector<DeviceSpec>& devices() const { return devices_; }
  const std::vector<HostSpec>& hosts() const { return hosts_; }
  double switch_gbps() const { return switch_gbps_; }

  bool same_host(DeviceId a, DeviceId b) const;
  std::vector<DeviceId> devices_on_host(int host) const;

  /// Effective bandwidth of the (a -> b) link in bytes per millisecond.
  double link_bandwidth_bytes_per_ms(DeviceId a, DeviceId b) const;

  /// One-way latency of the (a -> b) link in milliseconds.
  double link_latency_ms(DeviceId a, DeviceId b) const;

  /// Compute power of `id` relative to the slowest device (>= 1.0). Used for
  /// the paper's proportional ("CP") replica allocation.
  double relative_power(DeviceId id) const;

  /// Sum of relative powers; proportional share of device d is
  /// relative_power(d) / total_relative_power().
  double total_relative_power() const;

  /// Minimum link bandwidth over all ordered device pairs (ring AllReduce
  /// bottleneck term).
  double min_link_bandwidth_bytes_per_ms() const;

  std::string summary() const;

  /// Accumulated degrade_link factors by unordered host pair (1.0 pairs are
  /// not stored). Exposed for serialisation; see the four-argument ctor.
  const std::map<std::pair<int, int>, double>& host_link_scales() const {
    return link_scale_;
  }

  /// Derivation builders ---------------------------------------------------

  /// Copy of this cluster without device `id`. Device and host ids are
  /// re-densified (hosts left without devices are dropped); link degradations
  /// on surviving host pairs are carried over. Throws ClusterSpecError for an
  /// unknown id or when removal would leave the cluster empty.
  ClusterSpec remove_device(DeviceId id) const;

  /// Copy of this cluster with the bandwidth of the path between `a`'s and
  /// `b`'s hosts scaled by `factor` in (0, 1] — the intra-host fabric when
  /// they share a host, the NIC/switch path otherwise. Degradations compose
  /// multiplicatively. Throws ClusterSpecError on a bad factor or device id.
  ClusterSpec degrade_link(DeviceId a, DeviceId b, double factor) const;

 private:
  std::vector<HostSpec> hosts_;
  std::vector<DeviceSpec> devices_;
  double switch_gbps_ = 100.0;
  /// Bandwidth scale per unordered host pair (degrade_link), default 1.0.
  std::map<std::pair<int, int>, double> link_scale_;
};

/// Convenience: converts Gbps (network convention, bits) to bytes per ms.
double gbps_to_bytes_per_ms(double gbps);

/// CRC-32 fingerprint of everything that affects planning: per-device model,
/// host, compute power and memory; per-host NIC / intra-host bandwidth;
/// switch bandwidth; accumulated link degradations. Cosmetic names are
/// excluded. Two clusters with equal fingerprints are interchangeable for
/// plan deployment; the v2 plan format and the run journal embed this value
/// so a plan can refuse to deploy onto hardware it was not made for.
uint32_t cluster_fingerprint(const ClusterSpec& cluster);

/// Builders -------------------------------------------------------------

/// Named testbed lookup shared by heterog_cli and the plan server: "8gpu",
/// "12gpu", "fig3", "homog8". nullopt for an unknown name (callers turn that
/// into their own usage error / typed rejection).
std::optional<ClusterSpec> cluster_from_name(const std::string& name);

/// The names cluster_from_name accepts, for usage text and docs.
const std::vector<std::string>& known_cluster_names();

/// The paper's 8-GPU configuration: G0,G1 = V100; G2..G5 = 1080Ti; G6,G7 =
/// P100 (Table 2 header).
ClusterSpec make_paper_testbed_8gpu();

/// The paper's full 12-GPU testbed: 4x V100 + 4x 1080Ti + 4x P100.
ClusterSpec make_paper_testbed_12gpu();

/// A homogeneous n-GPU cluster of the given model, `per_host` GPUs per host.
ClusterSpec make_homogeneous(int n, GpuModel model, int per_host = 4);

/// The 4-GPU cluster used in Fig. 3(a): 2x V100 + 2x 1080Ti.
ClusterSpec make_fig3_testbed();

/// A 3-GPU cluster with compute power ratio 1:2:2, one GPU per host
/// (Fig. 1 / 2).
ClusterSpec make_motivation_cluster();

/// Copy of `base` with every NIC and switch bandwidth scaled by `factor`
/// (intra-host fabric unchanged). Used for bandwidth-sensitivity studies —
/// the paper notes that strategies must change when bandwidth changes.
ClusterSpec scale_network_bandwidth(const ClusterSpec& base, double factor);

}  // namespace heterog::cluster
