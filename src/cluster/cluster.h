// Heterogeneous cluster description.
//
// Mirrors the paper's testbed (Sec. 6.1): five machines — one with 4x Tesla
// V100 (16 GB) and a 100 GbE RDMA NIC, two with 2x GTX 1080 Ti (11 GB) and
// 50 GbE NICs, two with 2x Tesla P100 (12 GB) and 50 GbE NICs — joined by a
// 100 Gbps switch. The scheduler treats every ordered GPU pair as a "link
// device"; bandwidth of a link is the min of the path segments it crosses
// (intra-host fabric, either NIC, the switch).
//
// Units: time in milliseconds, bandwidth in bytes/ms, memory in bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace heterog::cluster {

/// Thrown when a ClusterSpec is constructed from malformed inputs (empty
/// device list, non-positive bandwidth/memory, dangling host ids) or a
/// derivation (remove_device / degrade_link) is invalid. Derives CheckError
/// so existing catch sites keep working.
class ClusterSpecError : public CheckError {
 public:
  explicit ClusterSpecError(const std::string& what) : CheckError(what) {}
};

using DeviceId = int32_t;

enum class GpuModel : uint8_t { kV100, kGtx1080Ti, kP100, kA100 };

/// Number of GpuModel enumerators; serialisers validate stored model ids
/// against this instead of naming the last enumerator.
inline constexpr int kGpuModelCount = 4;

const char* gpu_model_name(GpuModel model);

/// Peak effective compute of a GPU model in GFLOPs per millisecond.
/// Calibrated so that V100 : 1080Ti effective speed is roughly 2 : 1 as
/// measured in the paper (Sec. 2.3), with per-op-type modulation applied by
/// the synthetic hardware model in src/profiler.
double base_gflops_per_ms(GpuModel model);

/// Device memory capacity in bytes.
int64_t memory_capacity_bytes(GpuModel model);

struct HostSpec {
  int id = 0;
  std::string name;
  double nic_gbps = 50.0;    // NIC line rate
  double intra_gbps = 96.0;  // intra-host GPU-GPU fabric (PCIe / NVLink)
};

struct DeviceSpec {
  DeviceId id = 0;
  std::string name;
  GpuModel model = GpuModel::kGtx1080Ti;
  int host = 0;
  double gflops_per_ms = 0.0;
  int64_t memory_bytes = 0;
};

/// One switch tier above the top-of-rack layer, nearest-to-rack first. A
/// switch at tier i joins `group_size` groups of tier i-1 (tier 0 groups
/// racks); traffic crossing it is capped at `gbps`. Oversubscribed fabrics
/// have decreasing gbps as tiers go up.
struct SwitchTierSpec {
  double gbps = 100.0;
  int group_size = 2;
};

/// Optional multi-level switch topology. When attached to a ClusterSpec the
/// inter-host path bandwidth becomes min(NICs, ToR, every tier crossed up to
/// the lowest common switch) instead of min(NICs, flat switch). An empty
/// topology (no rack assignment) preserves the flat single-switch model.
struct TopologySpec {
  /// Rack id of each host (indexed by host id). Empty = flat cluster.
  std::vector<int> rack_of_host;
  /// Bandwidth of the per-rack (top-of-rack) switch in Gbps.
  double tor_gbps = 100.0;
  /// Switch tiers above the racks; may be empty, in which case inter-rack
  /// traffic goes through the ClusterSpec's flat switch ("core").
  std::vector<SwitchTierSpec> tiers;

  bool empty() const { return rack_of_host.empty(); }
  int rack_count() const;
  /// Tier index (0-based) of the lowest common switch above two racks, or
  /// -1 when they only meet at the root (the flat core switch).
  int common_tier(int rack_a, int rack_b) const;

  /// Addressable switch levels: level 0 is the per-rack ToR layer, level k in
  /// [1, tiers.size()] is tiers[k-1]. The flat core switch beyond the last
  /// tier is not addressable (it has no (level, index) coordinate).
  int level_count() const { return 1 + static_cast<int>(tiers.size()); }
  /// Number of switches at `level`: rack_count() ToRs at level 0, one switch
  /// per tier-(level-1) group above. 0 for an out-of-range level.
  int switch_count(int level) const;
  /// Group index of `rack` at `level` — i.e. which level-`level` switch its
  /// northbound traffic crosses. `rack` itself at level 0.
  int group_of_rack(int rack, int level) const;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;
  ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
              double switch_gbps);

  /// Full reconstruction, including accumulated link degradations keyed by
  /// unordered host pair — the ckpt journal uses this to round-trip a
  /// cluster (possibly already degraded mid-run) through a restart. Throws
  /// ClusterSpecError on dangling host ids or factors outside (0, 1].
  ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
              double switch_gbps, std::map<std::pair<int, int>, double> link_scales);

  int device_count() const { return static_cast<int>(devices_.size()); }
  int host_count() const { return static_cast<int>(hosts_.size()); }
  const DeviceSpec& device(DeviceId id) const;
  const HostSpec& host(int id) const;
  const std::vector<DeviceSpec>& devices() const { return devices_; }
  const std::vector<HostSpec>& hosts() const { return hosts_; }
  double switch_gbps() const { return switch_gbps_; }

  bool same_host(DeviceId a, DeviceId b) const;
  std::vector<DeviceId> devices_on_host(int host) const;

  /// Multi-level switch topology (empty for flat clusters). Attached via
  /// with_topology; carried through remove_device / degrade_link.
  const TopologySpec& topology() const { return topology_; }
  bool has_topology() const { return !topology_.empty(); }

  /// Copy of this cluster with the given switch topology attached (or
  /// detached, when `topo` is empty). Throws ClusterSpecError when the rack
  /// assignment does not cover every host, a rack id is negative, or a
  /// tier/ToR bandwidth or group size is non-positive. Accumulated
  /// degrade_switch scales are dropped — they are coordinates into the old
  /// topology; re-apply them against the new one if needed.
  ClusterSpec with_topology(TopologySpec topo) const;

  /// Accumulated degrade_switch factors keyed by (level, index); 1.0 entries
  /// are not stored. Exposed for serialisation and fingerprinting.
  const std::map<std::pair<int, int>, double>& switch_scales() const {
    return switch_scale_;
  }
  /// Effective bandwidth scale of the (level, index) switch (1.0 when
  /// undegraded). Does not validate the coordinate.
  double switch_scale(int level, int index) const;

  /// The (level, index) switches the host-pair path crosses, in walk order:
  /// both ToRs, then one switch per side per tier up to (and including) the
  /// lowest common switch. Empty for same-host pairs and flat clusters.
  /// Throws ClusterSpecError on bad host ids.
  std::vector<std::pair<int, int>> switches_on_path(int host_a, int host_b) const;

  /// Effective bandwidth of the (a -> b) link in bytes per millisecond.
  double link_bandwidth_bytes_per_ms(DeviceId a, DeviceId b) const;

  /// One-way latency of the (a -> b) link in milliseconds.
  double link_latency_ms(DeviceId a, DeviceId b) const;

  /// Compute power of `id` relative to the slowest device (>= 1.0). Used for
  /// the paper's proportional ("CP") replica allocation. O(1): the slowest
  /// device is cached at construction (the Graph Compiler calls this per
  /// device per op, which was O(D^2) per op with the original linear scan).
  double relative_power(DeviceId id) const;

  /// Sum of relative powers; proportional share of device d is
  /// relative_power(d) / total_relative_power(). O(1) (cached).
  double total_relative_power() const;

  /// Minimum link bandwidth over all ordered device pairs (ring AllReduce
  /// bottleneck term). O(1): cached at construction from an O(H^2) host-pair
  /// sweep (bandwidth only depends on the host pair, not the device pair).
  double min_link_bandwidth_bytes_per_ms() const;

  std::string summary() const;

  /// Accumulated degrade_link factors by unordered host pair (1.0 pairs are
  /// not stored). Exposed for serialisation; see the four-argument ctor.
  const std::map<std::pair<int, int>, double>& host_link_scales() const {
    return link_scale_;
  }

  /// Derivation builders ---------------------------------------------------

  /// Copy of this cluster without device `id`. Device and host ids are
  /// re-densified (hosts left without devices are dropped); link degradations
  /// on surviving host pairs are carried over. Throws ClusterSpecError for an
  /// unknown id or when removal would leave the cluster empty.
  ClusterSpec remove_device(DeviceId id) const;

  /// Copy of this cluster with the bandwidth of the path between `a`'s and
  /// `b`'s hosts scaled by `factor` in (0, 1] — the intra-host fabric when
  /// they share a host, the NIC/switch path otherwise. Degradations compose
  /// multiplicatively. Throws ClusterSpecError on a bad factor or device id.
  ClusterSpec degrade_link(DeviceId a, DeviceId b, double factor) const;

  /// Copy of this cluster with the (level, index) switch's bandwidth scaled
  /// by `factor` in (0, 1]. The whole inter-host bandwidth table is
  /// recomputed for the degraded switch graph: every path crossing the
  /// switch is re-priced as min over its hops with the hop's effective
  /// (scaled) bandwidth, so only traffic actually routed through the switch
  /// slows down. Degradations compose multiplicatively. Throws
  /// ClusterSpecError when the cluster has no topology, the coordinate is
  /// out of range, or the factor is outside (0, 1].
  ClusterSpec degrade_switch(int level, int index, double factor) const;

 private:
  /// Recomputes the cached derived values (slowest device, total relative
  /// power, min link bandwidth). Must be called after any mutation of
  /// devices_ / hosts_ / link_scale_ / topology_ outside the 3-arg ctor.
  void recompute_derived();
  /// Bandwidth of the switch path between two (validated) host ids in Gbps,
  /// before degrade_link scaling: the flat switch, or the topology walk.
  /// Served from the precomputed host-pair table once recompute_derived ran.
  double inter_host_path_gbps(int host_a, int host_b) const;
  /// The uncached tier walk behind inter_host_path_gbps.
  double compute_inter_host_path_gbps(int host_a, int host_b) const;

  std::vector<HostSpec> hosts_;
  std::vector<DeviceSpec> devices_;
  double switch_gbps_ = 100.0;
  /// Bandwidth scale per unordered host pair (degrade_link), default 1.0.
  std::map<std::pair<int, int>, double> link_scale_;
  /// Bandwidth scale per (level, index) switch (degrade_switch), default 1.0.
  std::map<std::pair<int, int>, double> switch_scale_;
  TopologySpec topology_;

  // Derived caches (recompute_derived).
  double slowest_gflops_ = 1.0;
  double total_relative_power_ = 0.0;
  double min_link_bandwidth_ = -1.0;
  // [a * host_count + b] -> inter_host_path_gbps(a, b): the NIC/switch-tier
  // min-walk, precomputed so per-transfer bandwidth lookups in the profiler
  // and compiler are O(1) even on multi-tier topologies.
  std::vector<double> inter_host_gbps_;
};

/// Convenience: converts Gbps (network convention, bits) to bytes per ms.
double gbps_to_bytes_per_ms(double gbps);

/// CRC-32 fingerprint of everything that affects planning: per-device model,
/// host, compute power and memory; per-host NIC / intra-host bandwidth;
/// switch bandwidth; accumulated link degradations. Cosmetic names are
/// excluded. Two clusters with equal fingerprints are interchangeable for
/// plan deployment; the v2 plan format and the run journal embed this value
/// so a plan can refuse to deploy onto hardware it was not made for.
uint32_t cluster_fingerprint(const ClusterSpec& cluster);

/// Builders -------------------------------------------------------------

/// Named testbed lookup shared by heterog_cli and the plan server: "8gpu",
/// "12gpu", "fig3", "homog8". nullopt for an unknown name (callers turn that
/// into their own usage error / typed rejection).
std::optional<ClusterSpec> cluster_from_name(const std::string& name);

/// The names cluster_from_name accepts, for usage text and docs.
const std::vector<std::string>& known_cluster_names();

/// The paper's 8-GPU configuration: G0,G1 = V100; G2..G5 = 1080Ti; G6,G7 =
/// P100 (Table 2 header).
ClusterSpec make_paper_testbed_8gpu();

/// The paper's full 12-GPU testbed: 4x V100 + 4x 1080Ti + 4x P100.
ClusterSpec make_paper_testbed_12gpu();

/// A homogeneous n-GPU cluster of the given model, `per_host` GPUs per host.
ClusterSpec make_homogeneous(int n, GpuModel model, int per_host = 4);

/// The 4-GPU cluster used in Fig. 3(a): 2x V100 + 2x 1080Ti.
ClusterSpec make_fig3_testbed();

/// A 3-GPU cluster with compute power ratio 1:2:2, one GPU per host
/// (Fig. 1 / 2).
ClusterSpec make_motivation_cluster();

/// Copy of `base` with every NIC and switch bandwidth scaled by `factor`
/// (intra-host fabric unchanged). Used for bandwidth-sensitivity studies —
/// the paper notes that strategies must change when bandwidth changes.
ClusterSpec scale_network_bandwidth(const ClusterSpec& base, double factor);

}  // namespace heterog::cluster
