#include "cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/crc32.h"

namespace heterog::cluster {

const char* gpu_model_name(GpuModel model) {
  switch (model) {
    case GpuModel::kV100:
      return "Tesla V100";
    case GpuModel::kGtx1080Ti:
      return "GTX 1080Ti";
    case GpuModel::kP100:
      return "Tesla P100";
    case GpuModel::kA100:
      return "A100";
  }
  return "Unknown GPU";
}

double base_gflops_per_ms(GpuModel model) {
  // GFLOPs per ms == TFLOPS. Effective (not peak-datasheet) figures chosen so
  // the average V100 : 1080Ti speed-up over the paper's op mix lands near the
  // measured ~2:1 after per-op-type efficiency modulation.
  switch (model) {
    case GpuModel::kV100:
      return 14.0;
    case GpuModel::kGtx1080Ti:
      return 7.0;
    case GpuModel::kP100:
      return 7.8;
    case GpuModel::kA100:
      return 28.0;
  }
  return 1.0;
}

int64_t memory_capacity_bytes(GpuModel model) {
  constexpr int64_t kGiB = 1024LL * 1024 * 1024;
  switch (model) {
    case GpuModel::kV100:
      return 16 * kGiB;
    case GpuModel::kGtx1080Ti:
      return 11 * kGiB;
    case GpuModel::kP100:
      return 12 * kGiB;
    case GpuModel::kA100:
      return 40 * kGiB;
  }
  return 8 * kGiB;
}

int TopologySpec::rack_count() const {
  int max_rack = -1;
  for (const int r : rack_of_host) max_rack = std::max(max_rack, r);
  return max_rack + 1;
}

int TopologySpec::switch_count(int level) const {
  if (empty() || level < 0 || level > static_cast<int>(tiers.size())) return 0;
  // Group index of rack r at tier t is r / prod(group_size[0..t]); iterated
  // ceil-division gives the group count exactly.
  int groups = rack_count();
  for (int t = 0; t < level; ++t) {
    const int gs = std::max(1, tiers[static_cast<size_t>(t)].group_size);
    groups = (groups + gs - 1) / gs;
  }
  return groups;
}

int TopologySpec::group_of_rack(int rack, int level) const {
  int group = rack;
  for (int t = 0; t < level && t < static_cast<int>(tiers.size()); ++t) {
    group /= std::max(1, tiers[static_cast<size_t>(t)].group_size);
  }
  return group;
}

int TopologySpec::common_tier(int rack_a, int rack_b) const {
  if (rack_a == rack_b) return -1;  // ToR-local; callers handle separately
  int group_a = rack_a;
  int group_b = rack_b;
  for (size_t t = 0; t < tiers.size(); ++t) {
    group_a /= tiers[t].group_size;
    group_b /= tiers[t].group_size;
    if (group_a == group_b) return static_cast<int>(t);
  }
  return -1;  // only meet at the root (flat core switch)
}

double gbps_to_bytes_per_ms(double gbps) {
  // gbps * 1e9 bits/s = gbps * 1e9 / 8 bytes/s = gbps * 1.25e5 bytes/ms.
  return gbps * 1.25e5;
}

ClusterSpec::ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
                         double switch_gbps)
    : hosts_(std::move(hosts)), devices_(std::move(devices)), switch_gbps_(switch_gbps) {
  if (devices_.empty()) throw ClusterSpecError("ClusterSpec: no devices");
  if (hosts_.empty()) throw ClusterSpecError("ClusterSpec: no hosts");
  if (switch_gbps_ <= 0.0) {
    throw ClusterSpecError("ClusterSpec: switch bandwidth must be positive, got " +
                           std::to_string(switch_gbps_));
  }
  for (size_t i = 0; i < hosts_.size(); ++i) {
    const auto& h = hosts_[i];
    if (h.id != static_cast<int>(i)) {
      throw ClusterSpecError("ClusterSpec: host ids must be dense (host " +
                             std::to_string(i) + " has id " + std::to_string(h.id) + ")");
    }
    if (h.nic_gbps <= 0.0 || h.intra_gbps <= 0.0) {
      throw ClusterSpecError("ClusterSpec: host " + std::to_string(h.id) +
                             " has non-positive NIC/fabric bandwidth");
    }
  }
  for (size_t i = 0; i < devices_.size(); ++i) {
    auto& d = devices_[i];
    if (d.id != static_cast<DeviceId>(i)) {
      throw ClusterSpecError("ClusterSpec: device ids must be dense (device " +
                             std::to_string(i) + " has id " + std::to_string(d.id) + ")");
    }
    if (d.host < 0 || d.host >= host_count()) {
      throw ClusterSpecError("ClusterSpec: device G" + std::to_string(d.id) +
                             " references dangling host id " + std::to_string(d.host));
    }
    // Zero means "unset — fill from the model table"; negative is malformed.
    if (d.gflops_per_ms < 0.0) {
      throw ClusterSpecError("ClusterSpec: device G" + std::to_string(d.id) +
                             " has negative compute power");
    }
    if (d.memory_bytes < 0) {
      throw ClusterSpecError("ClusterSpec: device G" + std::to_string(d.id) +
                             " has negative memory capacity");
    }
    if (d.gflops_per_ms == 0.0) d.gflops_per_ms = base_gflops_per_ms(d.model);
    if (d.memory_bytes == 0) d.memory_bytes = memory_capacity_bytes(d.model);
  }
  recompute_derived();
}

ClusterSpec::ClusterSpec(std::vector<HostSpec> hosts, std::vector<DeviceSpec> devices,
                         double switch_gbps,
                         std::map<std::pair<int, int>, double> link_scales)
    : ClusterSpec(std::move(hosts), std::move(devices), switch_gbps) {
  for (const auto& [pair, scale] : link_scales) {
    host(pair.first);   // validates the id
    host(pair.second);  // (throws ClusterSpecError on dangling hosts)
    if (scale <= 0.0 || scale > 1.0) {
      throw ClusterSpecError("ClusterSpec: link scale for hosts (" +
                             std::to_string(pair.first) + ", " +
                             std::to_string(pair.second) + ") must be in (0, 1], got " +
                             std::to_string(scale));
    }
    if (pair.first > pair.second) {
      throw ClusterSpecError("ClusterSpec: link scale host pairs must be ordered");
    }
  }
  link_scale_ = std::move(link_scales);
  recompute_derived();
}

ClusterSpec ClusterSpec::with_topology(TopologySpec topo) const {
  if (!topo.empty()) {
    if (static_cast<int>(topo.rack_of_host.size()) != host_count()) {
      throw ClusterSpecError(
          "with_topology: rack assignment covers " +
          std::to_string(topo.rack_of_host.size()) + " hosts, cluster has " +
          std::to_string(host_count()));
    }
    for (size_t h = 0; h < topo.rack_of_host.size(); ++h) {
      if (topo.rack_of_host[h] < 0) {
        throw ClusterSpecError("with_topology: host " + std::to_string(h) +
                               " has negative rack id");
      }
    }
    if (topo.tor_gbps <= 0.0) {
      throw ClusterSpecError("with_topology: ToR bandwidth must be positive, got " +
                             std::to_string(topo.tor_gbps));
    }
    for (size_t t = 0; t < topo.tiers.size(); ++t) {
      if (topo.tiers[t].gbps <= 0.0 || topo.tiers[t].group_size < 1) {
        throw ClusterSpecError("with_topology: switch tier " + std::to_string(t) +
                               " needs positive bandwidth and group size >= 1");
      }
    }
  }
  ClusterSpec out = *this;
  out.topology_ = std::move(topo);
  // Switch degradations are coordinates into the topology being replaced;
  // carrying them onto a different switch graph would scale the wrong
  // switches silently.
  out.switch_scale_.clear();
  out.recompute_derived();
  return out;
}

double ClusterSpec::switch_scale(int level, int index) const {
  const auto it = switch_scale_.find({level, index});
  return it != switch_scale_.end() ? it->second : 1.0;
}

std::vector<std::pair<int, int>> ClusterSpec::switches_on_path(int host_a,
                                                               int host_b) const {
  host(host_a);  // validates (throws ClusterSpecError on bad ids)
  host(host_b);
  std::vector<std::pair<int, int>> out;
  if (topology_.empty() || host_a == host_b) return out;
  const int rack_a = topology_.rack_of_host[static_cast<size_t>(host_a)];
  const int rack_b = topology_.rack_of_host[static_cast<size_t>(host_b)];
  out.emplace_back(0, rack_a);
  if (rack_a == rack_b) return out;
  out.emplace_back(0, rack_b);
  const int top = topology_.common_tier(rack_a, rack_b);
  const size_t crossed =
      top >= 0 ? static_cast<size_t>(top) + 1 : topology_.tiers.size();
  int group_a = rack_a;
  int group_b = rack_b;
  for (size_t t = 0; t < crossed; ++t) {
    group_a /= std::max(1, topology_.tiers[t].group_size);
    group_b /= std::max(1, topology_.tiers[t].group_size);
    out.emplace_back(static_cast<int>(t) + 1, group_a);
    if (group_a != group_b) out.emplace_back(static_cast<int>(t) + 1, group_b);
  }
  return out;
}

const DeviceSpec& ClusterSpec::device(DeviceId id) const {
  if (id < 0 || id >= device_count()) {
    throw ClusterSpecError("ClusterSpec: device id " + std::to_string(id) +
                           " out of range [0, " + std::to_string(device_count()) + ")");
  }
  return devices_[static_cast<size_t>(id)];
}

const HostSpec& ClusterSpec::host(int id) const {
  if (id < 0 || id >= host_count()) {
    throw ClusterSpecError("ClusterSpec: host id " + std::to_string(id) +
                           " out of range [0, " + std::to_string(host_count()) + ")");
  }
  return hosts_[static_cast<size_t>(id)];
}

bool ClusterSpec::same_host(DeviceId a, DeviceId b) const {
  return device(a).host == device(b).host;
}

std::vector<DeviceId> ClusterSpec::devices_on_host(int host_id) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.host == host_id) out.push_back(d.id);
  }
  return out;
}

double ClusterSpec::inter_host_path_gbps(int host_a, int host_b) const {
  if (!inter_host_gbps_.empty()) {
    return inter_host_gbps_[static_cast<size_t>(host_a) * hosts_.size() +
                            static_cast<size_t>(host_b)];
  }
  return compute_inter_host_path_gbps(host_a, host_b);
}

double ClusterSpec::compute_inter_host_path_gbps(int host_a, int host_b) const {
  double switch_path = switch_gbps_;
  if (!topology_.empty()) {
    const int rack_a = topology_.rack_of_host[static_cast<size_t>(host_a)];
    const int rack_b = topology_.rack_of_host[static_cast<size_t>(host_b)];
    // Each hop runs at its nominal bandwidth times its degrade_switch scale
    // (1.0 when undegraded, so undegraded clusters price bit-identically).
    switch_path = topology_.tor_gbps * switch_scale(0, rack_a);
    if (rack_a != rack_b) {
      switch_path =
          std::min(switch_path, topology_.tor_gbps * switch_scale(0, rack_b));
      // Traffic leaves both racks' ToR switches and crosses every tier up to
      // the lowest common switch; the path is capped by the narrowest hop.
      const int top = topology_.common_tier(rack_a, rack_b);
      const size_t crossed =
          top >= 0 ? static_cast<size_t>(top) + 1 : topology_.tiers.size();
      int group_a = rack_a;
      int group_b = rack_b;
      for (size_t t = 0; t < crossed; ++t) {
        group_a /= std::max(1, topology_.tiers[t].group_size);
        group_b /= std::max(1, topology_.tiers[t].group_size);
        const int level = static_cast<int>(t) + 1;
        switch_path = std::min(
            switch_path, topology_.tiers[t].gbps * switch_scale(level, group_a));
        if (group_a != group_b) {
          switch_path = std::min(
              switch_path, topology_.tiers[t].gbps * switch_scale(level, group_b));
        }
      }
      // Racks that only meet at the root go through the flat core switch.
      if (top < 0) switch_path = std::min(switch_path, switch_gbps_);
    }
  }
  return std::min({host(host_a).nic_gbps, host(host_b).nic_gbps, switch_path});
}

double ClusterSpec::link_bandwidth_bytes_per_ms(DeviceId a, DeviceId b) const {
  check(a != b, "link_bandwidth: same device");
  const DeviceSpec& da = device(a);  // throws ClusterSpecError on bad ids
  const DeviceSpec& db = device(b);
  double scale = 1.0;
  const auto it = link_scale_.find(std::minmax(da.host, db.host));
  if (it != link_scale_.end()) scale = it->second;
  if (da.host == db.host) {
    return gbps_to_bytes_per_ms(host(da.host).intra_gbps) * scale;
  }
  return gbps_to_bytes_per_ms(inter_host_path_gbps(da.host, db.host)) * scale;
}

double ClusterSpec::link_latency_ms(DeviceId a, DeviceId b) const {
  return same_host(a, b) ? 0.01 : 0.05;
}

double ClusterSpec::relative_power(DeviceId id) const {
  return device(id).gflops_per_ms / slowest_gflops_;
}

double ClusterSpec::total_relative_power() const { return total_relative_power_; }

double ClusterSpec::min_link_bandwidth_bytes_per_ms() const {
  check(min_link_bandwidth_ > 0.0, "min_link_bandwidth: cluster has a single device");
  return min_link_bandwidth_;
}

void ClusterSpec::recompute_derived() {
  // Host-pair path table first: the min-bandwidth walk below reads it.
  inter_host_gbps_.assign(hosts_.size() * hosts_.size(), 0.0);
  for (const auto& ha : hosts_) {
    for (const auto& hb : hosts_) {
      inter_host_gbps_[static_cast<size_t>(ha.id) * hosts_.size() +
                       static_cast<size_t>(hb.id)] =
          compute_inter_host_path_gbps(ha.id, hb.id);
    }
  }

  double slowest = devices_.front().gflops_per_ms;
  for (const auto& d : devices_) slowest = std::min(slowest, d.gflops_per_ms);
  slowest_gflops_ = slowest;
  double total = 0.0;
  for (const auto& d : devices_) total += d.gflops_per_ms / slowest;
  total_relative_power_ = total;

  // Min link bandwidth over device pairs == min over host pairs with a
  // device-pair witness: intra-host pairs need a host with >= 2 devices,
  // inter-host pairs any two populated hosts. O(H^2 + D) instead of O(D^2).
  std::vector<int> devices_on(hosts_.size(), 0);
  for (const auto& d : devices_) ++devices_on[static_cast<size_t>(d.host)];
  double min_bw = -1.0;
  const auto consider = [&](double bw) {
    if (min_bw < 0.0 || bw < min_bw) min_bw = bw;
  };
  for (const auto& h : hosts_) {
    if (devices_on[static_cast<size_t>(h.id)] < 2) continue;
    double scale = 1.0;
    const auto it = link_scale_.find({h.id, h.id});
    if (it != link_scale_.end()) scale = it->second;
    consider(gbps_to_bytes_per_ms(h.intra_gbps) * scale);
  }
  for (const auto& ha : hosts_) {
    if (devices_on[static_cast<size_t>(ha.id)] == 0) continue;
    for (const auto& hb : hosts_) {
      if (hb.id <= ha.id || devices_on[static_cast<size_t>(hb.id)] == 0) continue;
      double scale = 1.0;
      const auto it = link_scale_.find({ha.id, hb.id});
      if (it != link_scale_.end()) scale = it->second;
      consider(gbps_to_bytes_per_ms(inter_host_path_gbps(ha.id, hb.id)) * scale);
    }
  }
  min_link_bandwidth_ = min_bw;
}

ClusterSpec ClusterSpec::remove_device(DeviceId id) const {
  device(id);  // validates id
  if (device_count() == 1) {
    throw ClusterSpecError("remove_device: removing G" + std::to_string(id) +
                           " would leave the cluster empty");
  }

  std::vector<DeviceSpec> devices;
  devices.reserve(devices_.size() - 1);
  for (const auto& d : devices_) {
    if (d.id != id) devices.push_back(d);
  }

  // Drop hosts left without devices and re-densify host ids.
  std::vector<int> host_map(hosts_.size(), -1);
  std::vector<HostSpec> hosts;
  for (const auto& h : hosts_) {
    const bool populated = std::any_of(devices.begin(), devices.end(),
                                       [&](const DeviceSpec& d) { return d.host == h.id; });
    if (!populated) continue;
    host_map[static_cast<size_t>(h.id)] = static_cast<int>(hosts.size());
    HostSpec copy = h;
    copy.id = static_cast<int>(hosts.size());
    hosts.push_back(copy);
  }
  for (size_t i = 0; i < devices.size(); ++i) {
    devices[i].id = static_cast<DeviceId>(i);
    devices[i].host = host_map[static_cast<size_t>(devices[i].host)];
  }

  const int new_host_count = static_cast<int>(hosts.size());
  ClusterSpec out(std::move(hosts), std::move(devices), switch_gbps_);
  for (const auto& [pair, scale] : link_scale_) {
    const int ha = host_map[static_cast<size_t>(pair.first)];
    const int hb = host_map[static_cast<size_t>(pair.second)];
    if (ha < 0 || hb < 0) continue;
    out.link_scale_[std::minmax(ha, hb)] = scale;
  }
  if (!topology_.empty()) {
    // Surviving hosts keep their rack (and therefore their switch path);
    // rack ids are not re-densified so tier grouping stays stable.
    TopologySpec topo = topology_;
    topo.rack_of_host.assign(static_cast<size_t>(new_host_count), 0);
    for (size_t old_host = 0; old_host < host_map.size(); ++old_host) {
      const int new_id = host_map[old_host];
      if (new_id < 0) continue;
      topo.rack_of_host[static_cast<size_t>(new_id)] = topology_.rack_of_host[old_host];
    }
    out.topology_ = std::move(topo);
    // Switch coordinates key off rack ids, which survive unchanged.
    out.switch_scale_ = switch_scale_;
  }
  out.recompute_derived();
  return out;
}

ClusterSpec ClusterSpec::degrade_link(DeviceId a, DeviceId b, double factor) const {
  if (factor <= 0.0 || factor > 1.0) {
    throw ClusterSpecError("degrade_link: factor must be in (0, 1], got " +
                           std::to_string(factor));
  }
  if (a == b) {
    throw ClusterSpecError("degrade_link: endpoints must differ (got G" +
                           std::to_string(a) + " twice)");
  }
  const auto key = std::minmax(device(a).host, device(b).host);
  ClusterSpec out = *this;
  auto [it, inserted] = out.link_scale_.try_emplace(key, factor);
  if (!inserted) it->second *= factor;
  out.recompute_derived();
  return out;
}

ClusterSpec ClusterSpec::degrade_switch(int level, int index, double factor) const {
  if (!has_topology()) {
    throw ClusterSpecError("degrade_switch: cluster has no switch topology");
  }
  if (factor <= 0.0 || factor > 1.0) {
    throw ClusterSpecError("degrade_switch: factor must be in (0, 1], got " +
                           std::to_string(factor));
  }
  if (level < 0 || level >= topology_.level_count()) {
    throw ClusterSpecError("degrade_switch: level " + std::to_string(level) +
                           " out of range [0, " +
                           std::to_string(topology_.level_count()) + ")");
  }
  const int count = topology_.switch_count(level);
  if (index < 0 || index >= count) {
    throw ClusterSpecError("degrade_switch: switch index " + std::to_string(index) +
                           " out of range [0, " + std::to_string(count) +
                           ") at level " + std::to_string(level));
  }
  ClusterSpec out = *this;
  auto [it, inserted] =
      out.switch_scale_.try_emplace(std::pair<int, int>{level, index}, factor);
  if (!inserted) it->second *= factor;
  out.recompute_derived();
  return out;
}

std::string ClusterSpec::summary() const {
  std::ostringstream os;
  os << device_count() << " GPUs on " << host_count() << " hosts";
  if (has_topology()) {
    os << " in " << topology_.rack_count() << " racks ("
       << (topology_.tiers.size() + 1) << " switch levels)";
  }
  os << ":";
  for (const auto& d : devices_) {
    os << " G" << d.id << "=" << gpu_model_name(d.model) << "(host" << d.host << ")";
  }
  return os.str();
}

uint32_t cluster_fingerprint(const ClusterSpec& cluster) {
  // Canonical text over capability + topology (names excluded: renaming a
  // host must not invalidate a plan). %.17g round-trips doubles exactly.
  std::ostringstream os;
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  };
  os << "switch=";
  num(cluster.switch_gbps());
  for (const auto& h : cluster.hosts()) {
    os << ";h" << h.id << ":";
    num(h.nic_gbps);
    os << ":";
    num(h.intra_gbps);
  }
  for (const auto& d : cluster.devices()) {
    os << ";d" << d.id << ":" << static_cast<int>(d.model) << ":" << d.host << ":";
    num(d.gflops_per_ms);
    os << ":" << d.memory_bytes;
  }
  for (const auto& [pair, scale] : cluster.host_link_scales()) {
    os << ";l" << pair.first << "-" << pair.second << ":";
    num(scale);
  }
  // Topology section only when attached, so flat-cluster fingerprints (and
  // every plan/journal written before topologies existed) stay stable.
  if (cluster.has_topology()) {
    const TopologySpec& topo = cluster.topology();
    os << ";tor=";
    num(topo.tor_gbps);
    for (size_t h = 0; h < topo.rack_of_host.size(); ++h) {
      os << ";r" << h << ":" << topo.rack_of_host[h];
    }
    for (size_t t = 0; t < topo.tiers.size(); ++t) {
      os << ";t" << t << ":";
      num(topo.tiers[t].gbps);
      os << ":" << topo.tiers[t].group_size;
    }
    // Only degraded switches contribute, so undegraded fingerprints (and
    // every plan/journal written before switch faults existed) stay stable.
    for (const auto& [coord, scale] : cluster.switch_scales()) {
      os << ";w" << coord.first << "-" << coord.second << ":";
      num(scale);
    }
  }
  return crc32(os.str());
}

namespace {

DeviceSpec make_device(DeviceId id, GpuModel model, int host) {
  DeviceSpec d;
  d.id = id;
  d.name = "G" + std::to_string(id);
  d.model = model;
  d.host = host;
  d.gflops_per_ms = base_gflops_per_ms(model);
  d.memory_bytes = memory_capacity_bytes(model);
  return d;
}

HostSpec make_host(int id, double nic_gbps, double intra_gbps) {
  HostSpec h;
  h.id = id;
  h.name = "host" + std::to_string(id);
  h.nic_gbps = nic_gbps;
  h.intra_gbps = intra_gbps;
  return h;
}

}  // namespace

ClusterSpec make_paper_testbed_8gpu() {
  // host0: V100 machine (NVLink-class fabric, 100 GbE); hosts 1-2: 1080Ti
  // machines; host 3: P100 machine. Matches Table 2's G0..G7 ordering.
  std::vector<HostSpec> hosts = {
      make_host(0, 100.0, 320.0),
      make_host(1, 50.0, 96.0),
      make_host(2, 50.0, 96.0),
      make_host(3, 50.0, 96.0),
  };
  std::vector<DeviceSpec> devices = {
      make_device(0, GpuModel::kV100, 0),      make_device(1, GpuModel::kV100, 0),
      make_device(2, GpuModel::kGtx1080Ti, 1), make_device(3, GpuModel::kGtx1080Ti, 1),
      make_device(4, GpuModel::kGtx1080Ti, 2), make_device(5, GpuModel::kGtx1080Ti, 2),
      make_device(6, GpuModel::kP100, 3),      make_device(7, GpuModel::kP100, 3),
  };
  return ClusterSpec(std::move(hosts), std::move(devices), 100.0);
}

ClusterSpec make_paper_testbed_12gpu() {
  std::vector<HostSpec> hosts = {
      make_host(0, 100.0, 320.0),
      make_host(1, 50.0, 96.0),
      make_host(2, 50.0, 96.0),
      make_host(3, 50.0, 96.0),
      make_host(4, 50.0, 96.0),
  };
  std::vector<DeviceSpec> devices = {
      make_device(0, GpuModel::kV100, 0),       make_device(1, GpuModel::kV100, 0),
      make_device(2, GpuModel::kV100, 0),       make_device(3, GpuModel::kV100, 0),
      make_device(4, GpuModel::kGtx1080Ti, 1),  make_device(5, GpuModel::kGtx1080Ti, 1),
      make_device(6, GpuModel::kGtx1080Ti, 2),  make_device(7, GpuModel::kGtx1080Ti, 2),
      make_device(8, GpuModel::kP100, 3),       make_device(9, GpuModel::kP100, 3),
      make_device(10, GpuModel::kP100, 4),      make_device(11, GpuModel::kP100, 4),
  };
  return ClusterSpec(std::move(hosts), std::move(devices), 100.0);
}

ClusterSpec make_homogeneous(int n, GpuModel model, int per_host) {
  check(n > 0, "make_homogeneous: n must be positive");
  check(per_host > 0, "make_homogeneous: per_host must be positive");
  const int host_count = (n + per_host - 1) / per_host;
  std::vector<HostSpec> hosts;
  for (int h = 0; h < host_count; ++h) hosts.push_back(make_host(h, 100.0, 96.0));
  std::vector<DeviceSpec> devices;
  for (int i = 0; i < n; ++i) devices.push_back(make_device(i, model, i / per_host));
  return ClusterSpec(std::move(hosts), std::move(devices), 100.0);
}

ClusterSpec make_fig3_testbed() {
  std::vector<HostSpec> hosts = {
      make_host(0, 100.0, 320.0),
      make_host(1, 50.0, 96.0),
  };
  std::vector<DeviceSpec> devices = {
      make_device(0, GpuModel::kV100, 0),
      make_device(1, GpuModel::kV100, 0),
      make_device(2, GpuModel::kGtx1080Ti, 1),
      make_device(3, GpuModel::kGtx1080Ti, 1),
  };
  return ClusterSpec(std::move(hosts), std::move(devices), 100.0);
}

ClusterSpec make_motivation_cluster() {
  // Fig. 1/2: GPU0 half the compute power of GPU1/GPU2, one GPU per machine
  // (gradient aggregation crosses the network, as in the figures' timelines
  // where communication is a first-order cost).
  std::vector<HostSpec> hosts = {
      make_host(0, 50.0, 96.0),
      make_host(1, 50.0, 96.0),
      make_host(2, 50.0, 96.0),
  };
  std::vector<DeviceSpec> devices = {
      make_device(0, GpuModel::kGtx1080Ti, 0),
      make_device(1, GpuModel::kV100, 1),
      make_device(2, GpuModel::kV100, 2),
  };
  return ClusterSpec(std::move(hosts), std::move(devices), 100.0);
}

std::optional<ClusterSpec> cluster_from_name(const std::string& name) {
  if (name == "8gpu") return make_paper_testbed_8gpu();
  if (name == "12gpu") return make_paper_testbed_12gpu();
  if (name == "fig3") return make_fig3_testbed();
  if (name == "homog8") return make_homogeneous(8, GpuModel::kGtx1080Ti, 2);
  return std::nullopt;
}

const std::vector<std::string>& known_cluster_names() {
  static const std::vector<std::string> names = {"8gpu", "12gpu", "fig3", "homog8"};
  return names;
}

ClusterSpec scale_network_bandwidth(const ClusterSpec& base, double factor) {
  check(factor > 0.0, "scale_network_bandwidth: factor must be positive");
  std::vector<HostSpec> hosts = base.hosts();
  for (auto& h : hosts) h.nic_gbps *= factor;
  // Accumulated degradations are part of the network being scaled — dropping
  // them silently (the original behaviour) made a degraded-then-scaled
  // cluster look healthy.
  ClusterSpec out(std::move(hosts), base.devices(), base.switch_gbps() * factor,
                  base.host_link_scales());
  if (base.has_topology()) {
    TopologySpec topo = base.topology();
    topo.tor_gbps *= factor;
    for (auto& tier : topo.tiers) tier.gbps *= factor;
    out = out.with_topology(std::move(topo));
  }
  return out;
}

}  // namespace heterog::cluster
