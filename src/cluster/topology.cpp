#include "cluster/topology.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace heterog::cluster {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader (same hand-rolled recursive-descent shape as the
// FaultPlan loader in src/faults/fault_json.cpp — the schema is small enough
// that a private parser is the honest cost of keeping the container free of
// a JSON dependency).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw TopoSpecError("topology spec JSON: " + why + " (at offset " +
                        std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    // Depth cap: a crafted file of nothing but '[' must fail typed, not
    // overflow the stack.
    if (depth_ >= 256) fail("nesting too deep");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    fail("unexpected character");
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      v.object[key.str] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            fail("unsupported escape sequence");
        }
      }
      v.str.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Schema plumbing.

/// %.17g round-trips doubles exactly (same convention as the fault-plan and
/// fingerprint serialisers).
std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

double get_number(const JsonValue& obj, const std::string& key, double fallback) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) return fallback;
  if (it->second.type != JsonValue::Type::kNumber) {
    throw TopoSpecError("topology spec: field \"" + key + "\" must be a number");
  }
  return it->second.number;
}

int get_int(const JsonValue& obj, const std::string& key, int fallback) {
  const double d = get_number(obj, key, fallback);
  // Integrality and range both matter: casting an out-of-int-range double is
  // undefined behaviour, not just a wrong value.
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    throw TopoSpecError("topology spec: field \"" + key + "\" must be an int");
  }
  return static_cast<int>(d);
}

uint64_t get_seed(const JsonValue& obj, const std::string& key, uint64_t fallback) {
  const double d = get_number(obj, key, static_cast<double>(fallback));
  // Seeds must survive the JSON double round trip exactly: cap at 2^53.
  if (d != std::floor(d) || d < 0.0 || d > 9007199254740992.0) {
    throw TopoSpecError("topology spec: field \"" + key +
                        "\" must be an integer in [0, 2^53]");
  }
  return static_cast<uint64_t>(d);
}

std::map<std::string, double> get_mix(const JsonValue& obj, const std::string& key,
                                      const std::map<std::string, double>& fallback) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) return fallback;
  if (it->second.type != JsonValue::Type::kObject) {
    throw TopoSpecError("topology spec: field \"" + key +
                        "\" must be an object of name -> weight");
  }
  std::map<std::string, double> mix;
  for (const auto& [name, weight] : it->second.object) {
    if (weight.type != JsonValue::Type::kNumber) {
      throw TopoSpecError("topology spec: weight of \"" + name + "\" in \"" + key +
                          "\" must be a number");
    }
    mix[name] = weight.number;
  }
  return mix;
}

void emit_mix(std::ostringstream& os, const char* key,
              const std::map<std::string, double>& mix) {
  os << "\"" << key << "\": {";
  bool first = true;
  for (const auto& [name, weight] : mix) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << json_number(weight);
  }
  os << "}";
}

struct GpuSku {
  const char* key;
  GpuModel model;
};
constexpr GpuSku kGpuSkus[] = {
    {"v100", GpuModel::kV100},
    {"1080ti", GpuModel::kGtx1080Ti},
    {"p100", GpuModel::kP100},
    {"a100", GpuModel::kA100},
};

struct NamedGbps {
  const char* key;
  double gbps;
};
constexpr NamedGbps kLinkClasses[] = {{"nvlink", 320.0}, {"pcie", 96.0}};
constexpr NamedGbps kNicClasses[] = {
    {"roce100", 100.0}, {"roce50", 50.0}, {"roce25", 25.0}};

template <typename Table, size_t N>
const Table* find_class(const Table (&table)[N], const std::string& key) {
  for (const auto& entry : table) {
    if (key == entry.key) return &entry;
  }
  return nullptr;
}

/// Validates a weight map against its class table: known keys, non-negative
/// weights, at least one positive weight.
template <typename Table, size_t N>
void validate_mix(const std::map<std::string, double>& mix, const Table (&table)[N],
                  const char* field) {
  double total = 0.0;
  for (const auto& [key, weight] : mix) {
    if (find_class(table, key) == nullptr) {
      throw TopoSpecError(std::string("topology spec: unknown ") + field + " key \"" +
                          key + "\"");
    }
    if (weight < 0.0 || !std::isfinite(weight)) {
      throw TopoSpecError(std::string("topology spec: ") + field + " weight of \"" +
                          key + "\" must be finite and >= 0");
    }
    total += weight;
  }
  if (!(total > 0.0)) {
    throw TopoSpecError(std::string("topology spec: ") + field +
                        " needs at least one positive weight");
  }
}

/// Draws one key from a weight map. Map iteration is sorted by key, so the
/// draw is deterministic in (mix, rng state).
std::string draw_from_mix(Rng& rng, const std::map<std::string, double>& mix) {
  std::vector<std::string> keys;
  std::vector<double> weights;
  for (const auto& [key, weight] : mix) {
    keys.push_back(key);
    weights.push_back(weight);
  }
  return keys[static_cast<size_t>(rng.sample_weighted(weights))];
}

}  // namespace

void TopoGenOptions::validate() const {
  auto fail = [](const std::string& why) { throw TopoSpecError("topology spec: " + why); };
  if (racks < 1) fail("racks must be >= 1");
  if (hosts_per_rack < 1) fail("hosts_per_rack must be >= 1");
  if (gpus_per_host < 1) fail("gpus_per_host must be >= 1");
  if (!(tor_gbps > 0.0) || !std::isfinite(tor_gbps)) fail("tor_gbps must be positive");
  if (!(oversubscription >= 1.0) || !std::isfinite(oversubscription)) {
    fail("oversubscription must be >= 1");
  }
  if (racks_per_pod < 0) fail("racks_per_pod must be >= 0");
  validate_mix(gpu_mix, kGpuSkus, "gpu_mix");
  validate_mix(link_classes, kLinkClasses, "link_classes");
  validate_mix(nic_classes, kNicClasses, "nic_classes");
}

ClusterSpec generate_cluster(const TopoGenOptions& options) {
  options.validate();
  Rng rng(options.seed);

  // Switch levels above the ToR: an aggregation tier joining racks_per_pod
  // racks when configured, then the core (the ClusterSpec's flat switch).
  // Each level up carries tor / oversubscription^level.
  const bool has_agg = options.racks_per_pod >= 2 && options.racks_per_pod < options.racks;
  TopologySpec topo;
  topo.tor_gbps = options.tor_gbps;
  double core_gbps = options.tor_gbps;
  if (options.racks > 1) {
    core_gbps = options.tor_gbps / options.oversubscription;
    if (has_agg) {
      topo.tiers.push_back({core_gbps, options.racks_per_pod});
      core_gbps /= options.oversubscription;
    }
  }

  std::vector<HostSpec> hosts;
  std::vector<DeviceSpec> devices;
  topo.rack_of_host.reserve(static_cast<size_t>(options.host_count()));
  for (int h = 0; h < options.host_count(); ++h) {
    // Whole machines are homogeneous: one SKU / link class / NIC class per
    // host, drawn in a fixed order so the byte stream is seed-stable.
    const GpuSku* sku = find_class(kGpuSkus, draw_from_mix(rng, options.gpu_mix));
    const NamedGbps* fabric =
        find_class(kLinkClasses, draw_from_mix(rng, options.link_classes));
    const NamedGbps* nic = find_class(kNicClasses, draw_from_mix(rng, options.nic_classes));

    HostSpec host;
    host.id = h;
    host.name = "host" + std::to_string(h);
    host.nic_gbps = nic->gbps;
    host.intra_gbps = fabric->gbps;
    hosts.push_back(std::move(host));
    topo.rack_of_host.push_back(h / options.hosts_per_rack);

    for (int g = 0; g < options.gpus_per_host; ++g) {
      DeviceSpec d;
      d.id = static_cast<DeviceId>(devices.size());
      d.name = "G" + std::to_string(d.id);
      d.model = sku->model;
      d.host = h;
      d.gflops_per_ms = base_gflops_per_ms(sku->model);
      d.memory_bytes = memory_capacity_bytes(sku->model);
      devices.push_back(std::move(d));
    }
  }

  return ClusterSpec(std::move(hosts), std::move(devices), core_gbps)
      .with_topology(std::move(topo));
}

std::string topo_gen_to_json(const TopoGenOptions& options) {
  std::ostringstream os;
  os << "{\"seed\": " << options.seed;
  os << ", \"racks\": " << options.racks;
  os << ", \"hosts_per_rack\": " << options.hosts_per_rack;
  os << ", \"gpus_per_host\": " << options.gpus_per_host;
  os << ", \"tor_gbps\": " << json_number(options.tor_gbps);
  os << ", \"oversubscription\": " << json_number(options.oversubscription);
  os << ", \"racks_per_pod\": " << options.racks_per_pod;
  os << ", ";
  emit_mix(os, "gpu_mix", options.gpu_mix);
  os << ", ";
  emit_mix(os, "link_classes", options.link_classes);
  os << ", ";
  emit_mix(os, "nic_classes", options.nic_classes);
  os << "}";
  return os.str();
}

TopoGenOptions parse_topo_gen_json(const std::string& text) {
  JsonParser parser(text);
  const JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kObject) {
    throw TopoSpecError("topology spec: top level must be a JSON object");
  }
  for (const auto& [key, value] : root.object) {
    (void)value;
    const auto& fields = topo_json_fields();
    if (std::find(fields.begin(), fields.end(), key) == fields.end()) {
      throw TopoSpecError("topology spec: unknown field \"" + key + "\"");
    }
  }

  TopoGenOptions defaults;
  TopoGenOptions o;
  o.seed = get_seed(root, "seed", defaults.seed);
  o.racks = get_int(root, "racks", defaults.racks);
  o.hosts_per_rack = get_int(root, "hosts_per_rack", defaults.hosts_per_rack);
  o.gpus_per_host = get_int(root, "gpus_per_host", defaults.gpus_per_host);
  o.tor_gbps = get_number(root, "tor_gbps", defaults.tor_gbps);
  o.oversubscription = get_number(root, "oversubscription", defaults.oversubscription);
  o.racks_per_pod = get_int(root, "racks_per_pod", defaults.racks_per_pod);
  o.gpu_mix = get_mix(root, "gpu_mix", defaults.gpu_mix);
  o.link_classes = get_mix(root, "link_classes", defaults.link_classes);
  o.nic_classes = get_mix(root, "nic_classes", defaults.nic_classes);
  o.validate();
  return o;
}

TopoGenOptions load_topo_gen_options(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TopoSpecError("cannot read topology spec file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_topo_gen_json(buffer.str());
}

std::string cluster_to_json(const ClusterSpec& cluster) {
  std::ostringstream os;
  os << "{\"switch_gbps\": " << json_number(cluster.switch_gbps());
  os << ", \"hosts\": [";
  for (const auto& h : cluster.hosts()) {
    if (h.id) os << ", ";
    os << "{\"id\": " << h.id << ", \"nic_gbps\": " << json_number(h.nic_gbps)
       << ", \"intra_gbps\": " << json_number(h.intra_gbps);
    if (cluster.has_topology()) {
      os << ", \"rack\": " << cluster.topology().rack_of_host[static_cast<size_t>(h.id)];
    }
    os << "}";
  }
  os << "], \"devices\": [";
  for (const auto& d : cluster.devices()) {
    if (d.id) os << ", ";
    os << "{\"id\": " << d.id << ", \"host\": " << d.host << ", \"model\": \""
       << gpu_model_name(d.model) << "\", \"gflops_per_ms\": "
       << json_number(d.gflops_per_ms) << ", \"memory_bytes\": " << d.memory_bytes
       << "}";
  }
  os << "], \"link_scales\": [";
  bool first = true;
  for (const auto& [pair, scale] : cluster.host_link_scales()) {
    if (!first) os << ", ";
    first = false;
    os << "[" << pair.first << ", " << pair.second << ", " << json_number(scale) << "]";
  }
  os << "]";
  if (cluster.has_topology()) {
    const TopologySpec& topo = cluster.topology();
    os << ", \"topology\": {\"tor_gbps\": " << json_number(topo.tor_gbps)
       << ", \"tiers\": [";
    for (size_t t = 0; t < topo.tiers.size(); ++t) {
      if (t) os << ", ";
      os << "[" << json_number(topo.tiers[t].gbps) << ", " << topo.tiers[t].group_size
         << "]";
    }
    os << "]";
    // Emitted only when a switch has been degraded, so freshly generated
    // clusters serialize byte-identically to before switch faults existed.
    if (!cluster.switch_scales().empty()) {
      os << ", \"switch_scales\": [";
      bool first_sw = true;
      for (const auto& [coord, scale] : cluster.switch_scales()) {
        if (!first_sw) os << ", ";
        first_sw = false;
        os << "[" << coord.first << ", " << coord.second << ", "
           << json_number(scale) << "]";
      }
      os << "]";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

const std::vector<std::string>& topo_json_fields() {
  static const std::vector<std::string> fields = {
      "seed",        "racks",           "hosts_per_rack", "gpus_per_host",
      "tor_gbps",    "oversubscription", "racks_per_pod",  "gpu_mix",
      "link_classes", "nic_classes",
  };
  return fields;
}

std::optional<TopoGenOptions> topo_preset(const std::string& name) {
  TopoGenOptions o;
  if (name == "rack16") {
    // Two non-blocking racks of two 4-GPU machines: the smallest topology
    // with an inter-rack hop. V100/1080Ti mix over PCIe, 50 GbE.
    o.racks = 2;
    o.hosts_per_rack = 2;
    o.gpus_per_host = 4;
    o.tor_gbps = 100.0;
    o.link_classes = {{"pcie", 1.0}};
    o.nic_classes = {{"roce50", 1.0}};
    return o;
  }
  if (name == "pod64") {
    // One pod of four racks, 2:1 oversubscribed toward the core.
    o.racks = 4;
    o.hosts_per_rack = 4;
    o.gpus_per_host = 4;
    o.tor_gbps = 100.0;
    o.oversubscription = 2.0;
    o.racks_per_pod = 2;
    o.gpu_mix = {{"v100", 2.0}, {"1080ti", 1.0}, {"p100", 1.0}};
    return o;
  }
  if (name == "pod256") {
    o.racks = 8;
    o.hosts_per_rack = 8;
    o.gpus_per_host = 4;
    o.tor_gbps = 200.0;
    o.oversubscription = 2.0;
    o.racks_per_pod = 4;
    o.gpu_mix = {{"a100", 1.0}, {"v100", 2.0}, {"p100", 1.0}};
    o.nic_classes = {{"roce100", 2.0}, {"roce50", 1.0}};
    return o;
  }
  if (name == "dc1000") {
    // 100 machines / 1000 GPUs across ten racks with an aggregation tier and
    // 3:1 oversubscription — the ROADMAP's production-scale target scenario.
    o.racks = 10;
    o.hosts_per_rack = 10;
    o.gpus_per_host = 10;
    o.tor_gbps = 200.0;
    o.oversubscription = 3.0;
    o.racks_per_pod = 5;
    o.gpu_mix = {{"a100", 1.0}, {"v100", 2.0}, {"1080ti", 1.0}};
    o.nic_classes = {{"roce100", 2.0}, {"roce50", 1.0}};
    return o;
  }
  return std::nullopt;
}

const std::vector<std::string>& topo_preset_names() {
  static const std::vector<std::string> names = {"rack16", "pod64", "pod256", "dc1000"};
  return names;
}

}  // namespace heterog::cluster
