// Table 1: per-iteration training time of the benchmark DNNs on 8 GPUs —
// HeteroG vs the four uniform-DP baselines, plus the six large
// configurations where every DP variant runs out of memory.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

// Paper values (seconds) for side-by-side comparison.
struct PaperRow {
  const char* label;
  double heterog, ev_ps, ev_ar, cp_ps, cp_ar;  // <0 = OOM
};
const PaperRow kPaperStandard[] = {
    {"VGG-19", 0.462, 0.907, 0.653, 0.853, 0.591},
    {"ResNet200", 0.693, 1.431, 0.955, 1.273, 0.897},
    {"Inception_v3", 0.528, 0.933, 0.701, 0.911, 0.659},
    {"MobileNet_v2", 0.232, 0.413, 0.368, 0.394, 0.325},
    {"NasNet", 0.862, 1.244, 1.028, 1.203, 1.116},
    {"Transformer (6 layers)", 0.298, 0.961, 0.496, 0.931, 0.361},
    {"Bert-large (24 layers)", 0.451, 0.612, 1.064, 0.795, 1.049},
    {"XlNet-large (24 layers)", 0.851, 1.232, 1.551, 1.283, 1.566},
};
const PaperRow kPaperLarge[] = {
    {"ResNet200 (384)", 2.285, -1, -1, -1, -1},
    {"Transformer (48 layers)", 1.147, -1, -1, -1, -1},
    {"Bert-large (24 layers, 96)", 2.241, -1, -1, -1, -1},
    {"XlNet-large (24 layers, 96)", 4.254, -1, -1, -1, -1},
    {"Bert-large (48 layers)", 1.892, -1, -1, -1, -1},
    {"XlNet-large (48 layers)", 3.468, -1, -1, -1, -1},
};

}  // namespace

int main() {
  print_header(
      "Table 1: per-iteration time (s), 8 GPUs: HeteroG vs DP baselines "
      "(cells: time / HeteroG speed-up)",
      "HeteroG outperforms every DP baseline (19.2%-222.4% speed-ups); the six "
      "large configs OOM under all DP variants but HeteroG deploys them");

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  TextTable table({"Model (batch)", "HeteroG", "EV-PS/spd", "EV-AR/spd", "CP-PS/spd",
                   "CP-AR/spd", "paper HeteroG"});

  auto run_row = [&](const models::Benchmark& bench, const PaperRow& paper) {
    const double batch = bench.batch_8gpu;
    const auto graph = models::build_training(bench.kind, bench.layers, batch);
    const auto plan = heterog_plan(rig, bench, batch,
                                   "t1_" + std::to_string(static_cast<int>(bench.kind)) +
                                       "_" + std::to_string(bench.layers) + "_" +
                                       std::to_string(static_cast<int>(batch)) + "_8gpu");

    std::vector<std::string> cells;
    cells.push_back(bench.label + " (" + std::to_string(static_cast<int>(batch)) + ")");
    cells.push_back(plan.feasible ? fmt_double(plan.per_iteration_ms / 1000.0) : "OOM");

    const strategy::ReplicationMode modes[] = {strategy::ReplicationMode::kEven,
                                               strategy::ReplicationMode::kEven,
                                               strategy::ReplicationMode::kProportional,
                                               strategy::ReplicationMode::kProportional};
    const strategy::CommMethod comms[] = {strategy::CommMethod::kPS,
                                          strategy::CommMethod::kAllReduce,
                                          strategy::CommMethod::kPS,
                                          strategy::CommMethod::kAllReduce};
    for (int b = 0; b < 4; ++b) {
      const auto outcome = baselines::run_uniform_dp(*rig.evaluator, graph, plan.grouping,
                                                     modes[b], comms[b]);
      cells.push_back(baseline_cell(outcome.time_ms, plan.per_iteration_ms, outcome.oom));
    }
    cells.push_back(fmt_double(paper.heterog));
    table.add_row(cells);
  };

  const auto standard = models::standard_benchmarks();
  for (size_t i = 0; i < standard.size(); ++i) run_row(standard[i], kPaperStandard[i]);
  const auto large = models::large_benchmarks();
  for (size_t i = 0; i < large.size(); ++i) run_row(large[i], kPaperLarge[i]);

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: HeteroG fastest everywhere; AllReduce beats PS for the CNNs\n"
      "and Transformer, PS beats AllReduce for BERT/XLNet; all large rows OOM under\n"
      "DP while HeteroG deploys them.\n");
  write_bench_json("table1");
  return 0;
}
