// Appendix: the list-scheduling bound T_LS <= (M + M^2) T* and the crafted
// worst-case instance (Fig. A3) where a no-backfill list schedule degrades to
// T_LS / T* ~= M + M^2.
//
// The instance: H - 1 chains, each k rounds of H operations round-robined
// across H schedulable resources; one operation per chain per round is
// expensive (p), the rest negligible (e -> 0); plus k independent expensive
// ops parked on the last resource. Under classic no-backfill list scheduling
// (tasks committed to their resource in priority order, no later task may
// slip into an idle gap) the appendix derives
//     T_LS = (k-1)((H-1)p + (2H-3)e) + (H-1)e + kp   ~=   ((k-1)H + 1) p
// against the pipelined optimum T* = k(p + (H-1)e) + (H-2)e ~= kp, i.e. a
// ratio of ~H (= M + M^2 with links counted as devices).
//
// Our executor is work-conserving (a free resource always starts its highest
// priority READY op, i.e. it backfills), so it sidesteps the construction:
// this bench shows the simulated schedule staying near T* on the very
// instance that defeats no-backfill list scheduling.
#include "bench_util.h"
#include "sim/simulator.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

compile::DistGraph build_worst_case(int h, int k, double p, double e) {
  compile::DistGraph g(h);
  auto add_op = [&](int device, double duration) {
    compile::DistNode n;
    n.name = "op";
    n.kind = compile::NodeKind::kCompute;
    n.device = device;
    n.duration_ms = duration;
    return g.add_node(std::move(n));
  };
  for (int c = 0; c < h - 1; ++c) {
    compile::DistNodeId prev = -1;
    for (int r = 0; r < k; ++r) {
      for (int pos = 0; pos < h; ++pos) {
        const auto id = add_op(pos, pos == c ? p : e);
        if (prev >= 0) g.add_edge(prev, id);
        prev = id;
      }
    }
  }
  for (int i = 0; i < k; ++i) add_op(h - 1, p);
  return g;
}

}  // namespace

int main() {
  print_header(
      "Appendix: list-scheduling bound T_LS <= (M + M^2) T* and worst case",
      "Theorem 1: T_LS <= (M + M^2) T*; Theorem 2: an instance exists with "
      "T_LS / T* ~= M + M^2 (links counted as devices)");

  // Part 1: empirical bound check on random small graphs -- the rank list
  // schedule never exceeds (M + M^2) T*_exhaustive (and is usually optimal).
  {
    Rng rng(17);
    TextTable table({"instance", "M", "T_LS", "T*", "ratio", "bound M+M^2"});
    for (int trial = 0; trial < 6; ++trial) {
      const int m = 2 + trial % 2;  // 2..3 devices
      compile::DistGraph g(m);
      const int nodes = 7;
      for (int i = 0; i < nodes; ++i) {
        compile::DistNode n;
        n.name = "n" + std::to_string(i);
        n.kind = compile::NodeKind::kCompute;
        n.device = rng.uniform_int(0, m - 1);
        n.duration_ms = rng.uniform(0.5, 3.0);
        g.add_node(std::move(n));
      }
      for (int i = 0; i < nodes; ++i) {
        for (int j = i + 1; j < nodes; ++j) {
          if (rng.uniform() < 0.25) g.add_edge(i, j);
        }
      }
      const double t_ls = sim::simulate_iteration_ms(g);
      const double t_opt = sim::optimal_makespan_exhaustive(g);
      table.add_row({"random-" + std::to_string(trial), std::to_string(m),
                     fmt_double(t_ls, 2), fmt_double(t_opt, 2),
                     fmt_double(t_ls / t_opt, 2), std::to_string(m + m * m)});
    }
    std::printf("Theorem 1 (random instances, exhaustive optimum):\n%s\n",
                table.render().c_str());
  }

  // Part 2: the crafted worst-case instance. The appendix ratio applies to
  // no-backfill list scheduling; our work-conserving executor stays near the
  // optimum on the same DAG.
  {
    TextTable table({"H", "k", "paper T_LS (no backfill)", "T* (optimal)",
                     "paper ratio", "our simulator", "our ratio"});
    for (int h : {3, 4, 5, 6}) {
      const int k = 40;
      const double p = 1.0, e = 1e-6;
      const auto g = build_worst_case(h, k, p, e);
      sim::SimOptions options;
      options.track_memory = false;
      sim::Simulator simulator(options);
      const double t_sim = simulator.run(g).makespan_ms;  // rank priorities
      const double t_ls_paper =
          (k - 1) * ((h - 1) * p + (2 * h - 3) * e) + (h - 1) * e + k * p;
      const double t_opt = k * (p + (h - 1) * e) + (h - 2) * e;
      table.add_row({std::to_string(h), std::to_string(k), fmt_double(t_ls_paper, 1),
                     fmt_double(t_opt, 1), fmt_double(t_ls_paper / t_opt, 2),
                     fmt_double(t_sim, 1), fmt_double(t_sim / t_opt, 2)});
    }
    std::printf("Theorem 2 (crafted worst case, e -> 0):\n%s\n", table.render().c_str());
  }
  std::printf(
      "Expected shape: random-instance ratios stay far below the M+M^2 bound. On the\n"
      "crafted instance, the appendix\'s no-backfill list schedule pays ~H x the\n"
      "optimum, while our work-conserving executor (which backfills idle resources)\n"
      "stays close to T* -- a strict improvement over the analysed worst case.\n");
  write_bench_json("appendix_bound");
  return 0;
}
