// Table 7: per-iteration time with HeteroG's execution-order scheduling vs
// TensorFlow's default FIFO order, on HeteroG's plans (8 GPUs).
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

int main() {
  print_header(
      "Table 7: HeteroG order scheduling vs FIFO (8 GPUs, HeteroG plans)",
      "Rank-based order scheduling accelerates training by ~10-20%");

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  TextTable table({"Model (batch)", "HeteroG schedule (s)", "FIFO schedule (s)",
                   "speed-up", "paper speed-up"});
  const double paper_speedup[] = {10.8, 9.8, 14.1, 15.9, 14.8, 11.4, 13.9, 18.1};

  const auto standard = models::standard_benchmarks();
  for (size_t i = 0; i < standard.size(); ++i) {
    const auto& bench = standard[i];
    const double batch = bench.batch_8gpu;
    const auto graph = models::build_training(bench.kind, bench.layers, batch);
    const auto plan = heterog_plan(rig, bench, batch,
                                   "t1_" + std::to_string(static_cast<int>(bench.kind)) +
                                       "_" + std::to_string(bench.layers) + "_" +
                                       std::to_string(static_cast<int>(batch)) + "_8gpu");
    sim::PlanEvalOptions rank_opts;
    const auto rank = sim::evaluate_plan(*rig.costs, graph, plan.grouping, plan.map,
                                         rank_opts);
    sim::PlanEvalOptions fifo_opts;
    fifo_opts.policy = sched::OrderPolicy::kFifo;
    const auto fifo = sim::evaluate_plan(*rig.costs, graph, plan.grouping, plan.map,
                                         fifo_opts);
    const double speedup =
        100.0 * (fifo.per_iteration_ms - rank.per_iteration_ms) / rank.per_iteration_ms;
    table.add_row({bench.label + " (" + std::to_string(static_cast<int>(batch)) + ")",
                   fmt_double(rank.per_iteration_ms / 1000.0),
                   fmt_double(fifo.per_iteration_ms / 1000.0),
                   fmt_double(speedup, 1) + "%",
                   fmt_double(paper_speedup[i], 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: the rank-based order is never slower than FIFO. Note: our\n"
      "deterministic simulator's FIFO dispatches in arrival order per resource,\n"
      "which is a stronger baseline than TensorFlow's executor; the measured gap is\n"
      "therefore smaller than the paper's 10-20%% (see EXPERIMENTS.md).\n");
  write_bench_json("table7");
  return 0;
}
