// Figures 1 and 2: the motivating micro-examples — three backward ops with
// gradient aggregation on a 3-GPU cluster with compute power 1:2:2 (one GPU
// per machine).
//
// The paper's four panels illustrate four distinct opportunities, each in
// its own regime; this bench reproduces each panel on a micro-workload in
// that regime:
//   Fig. 1:    heterogeneity stretches AllReduce synchronisation.
//   Fig. 2(a): colocating the PS with the *slowest* worker beats hosting it
//              on a fast worker (the slow GPU's sync traffic disappears and
//              its long compute hides the remaining communication).
//   Fig. 2(b): proportional replicas re-balance computation (compute-bound).
//   Fig. 2(c): MP placement removes gradient sync (parameter-bound).
#include "bench_util.h"
#include "graph/training.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

/// Three-conv toy forward chain (BP1..BP3 after training expansion).
graph::GraphDef micro_model(double batch, double flops_per_sample, double param_mb) {
  graph::GraphDef fwd("micro", batch);
  graph::OpId prev = graph::kInvalidOp;
  for (int i = 0; i < 3; ++i) {
    graph::OpDef op;
    op.name = "conv" + std::to_string(i + 1);
    op.kind = graph::OpKind::kConv2D;
    op.flops_per_sample = flops_per_sample;
    op.out_bytes_per_sample = 1 << 20;
    op.param_bytes = static_cast<int64_t>(param_mb * (1 << 20));
    const auto id = fwd.add_op(op);
    if (prev != graph::kInvalidOp) fwd.add_edge(prev, id);
    prev = id;
  }
  return graph::build_training_graph(fwd);
}

double run(const profiler::CostProvider& costs, const graph::GraphDef& graph,
           const strategy::StrategyMap& map, const strategy::Grouping& grouping,
           compile::CompilerOptions compiler_options = compile::CompilerOptions()) {
  sim::PlanEvalOptions options;
  options.compiler = compiler_options;
  return sim::evaluate_plan(costs, graph, grouping, map, options).per_iteration_ms;
}

strategy::StrategyMap uniform(int groups, strategy::ReplicationMode mode,
                              strategy::CommMethod comm) {
  return strategy::StrategyMap::uniform(groups, strategy::Action::dp(mode, comm));
}

}  // namespace

int main() {
  print_header(
      "Figures 1 / 2: training-expedition approaches on a 1:2:2 micro-cluster",
      "AllReduce on heterogeneous devices is slower than on homogeneous ones; "
      "PS-on-slowest, proportional replication and partial MP each recover time");

  using strategy::CommMethod;
  using strategy::ReplicationMode;
  BenchRig hetero(cluster::make_motivation_cluster());
  TextTable table({"Scenario", "baseline (ms)", "approach (ms)", "gain"});
  auto gain = [](double base, double better) {
    return fmt_double(100.0 * (base - better) / better, 1) + "%";
  };

  // Fig. 1: AllReduce, homogeneous vs heterogeneous.
  {
    const auto graph = micro_model(96, 1.5e9, 24);
    BenchRig homo(cluster::make_homogeneous(3, cluster::GpuModel::kV100, 1));
    const auto hg = strategy::Grouping::build(graph, *homo.costs, 16);
    const double homo_ar = run(*homo.costs, graph,
                               uniform(hg.group_count(), ReplicationMode::kEven,
                                       CommMethod::kAllReduce),
                               hg);
    const auto gg = strategy::Grouping::build(graph, *hetero.costs, 16);
    const double hetero_ar = run(*hetero.costs, graph,
                                 uniform(gg.group_count(), ReplicationMode::kEven,
                                         CommMethod::kAllReduce),
                                 gg);
    table.add_row({"Fig.1: AllReduce hetero vs homogeneous 3xV100",
                   fmt_double(hetero_ar, 1), fmt_double(homo_ar, 1),
                   gain(hetero_ar, homo_ar)});
  }

  // Fig. 2(a): PS colocated with the slowest worker vs a fast worker.
  {
    const auto graph = micro_model(96, 1.5e9, 24);
    const auto gg = strategy::Grouping::build(graph, *hetero.costs, 16);
    const auto map = uniform(gg.group_count(), ReplicationMode::kEven, CommMethod::kPS);
    compile::CompilerOptions on_fast;
    on_fast.forced_ps_device = 1;  // a fast V100 worker
    compile::CompilerOptions on_slow;
    on_slow.forced_ps_device = 0;  // the slow GPU0, as in Fig. 2(a)
    const double ps_fast = run(*hetero.costs, graph, map, gg, on_fast);
    const double ps_slow = run(*hetero.costs, graph, map, gg, on_slow);
    table.add_row({"Fig.2(a): PS on slowest GPU vs PS on fast GPU",
                   fmt_double(ps_fast, 1), fmt_double(ps_slow, 1),
                   gain(ps_fast, ps_slow)});
  }

  // Fig. 2(b): proportional replicas vs even (compute-bound regime).
  {
    const auto graph = micro_model(96, 2.0e9, 16);
    const auto gg = strategy::Grouping::build(graph, *hetero.costs, 16);
    const double even = run(*hetero.costs, graph,
                            uniform(gg.group_count(), ReplicationMode::kEven,
                                    CommMethod::kAllReduce),
                            gg);
    const double prop = run(*hetero.costs, graph,
                            uniform(gg.group_count(), ReplicationMode::kProportional,
                                    CommMethod::kAllReduce),
                            gg);
    table.add_row({"Fig.2(b): proportional vs even replicas", fmt_double(even, 1),
                   fmt_double(prop, 1), gain(even, prop)});
  }

  // Fig. 2(c): BP2/BP3 model-parallel on GPU1 (parameter-bound regime).
  {
    const auto graph = micro_model(96, 0.5e9, 128);
    const auto gg = strategy::Grouping::build(graph, *hetero.costs, 16);
    const double ev_ar = run(*hetero.costs, graph,
                             uniform(gg.group_count(), ReplicationMode::kEven,
                                     CommMethod::kAllReduce),
                             gg);
    auto mp_map = uniform(gg.group_count(), ReplicationMode::kEven,
                          CommMethod::kAllReduce);
    for (graph::OpId id = 0; id < graph.op_count(); ++id) {
      if (graph.op(id).name.find("conv2") != std::string::npos ||
          graph.op(id).name.find("conv3") != std::string::npos) {
        mp_map.group_actions[static_cast<size_t>(gg.group_of(id))] =
            strategy::Action::mp(1);
      }
    }
    const double mp = run(*hetero.costs, graph, mp_map, gg);
    table.add_row({"Fig.2(c): BP2/BP3 model-parallel on GPU1", fmt_double(ev_ar, 1),
                   fmt_double(mp, 1), gain(ev_ar, mp)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: every row's \"approach\" beats its baseline — heterogeneity\n"
      "hurts AllReduce (Fig.1), and PS-on-slowest / proportional replicas / partial\n"
      "MP each recover time in their regime (Fig.2).\n");
  write_bench_json("fig1_2");
  return 0;
}
