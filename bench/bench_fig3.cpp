// Figure 3: (a) per-iteration time of whole-model even vs proportional
// replica allocation on the 4-GPU mixed cluster (2x V100 + 2x 1080Ti);
// (b) normalised per-op execution time of representative operations on the
// 1080Ti relative to the V100.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

int main() {
  print_header(
      "Figure 3: proportional whole-model replication and per-op heterogeneity",
      "(a) proportional allocation is only ~9-27% faster than even allocation; "
      "(b) V100 speed-up varies by op type between ~1.1x and ~1.9x and with "
      "input size");

  // (a) even vs proportional on 2x V100 + 2x 1080Ti.
  BenchRig rig(cluster::make_fig3_testbed());
  TextTable table_a({"Model", "even (s)", "proportional (s)", "speed-up"});
  for (const auto& bench : models::cnn_benchmarks()) {
    const double batch = 128.0;
    const auto graph = models::build_training(bench.kind, bench.layers, batch);
    const auto grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());
    const auto even = baselines::run_uniform_dp(
        *rig.evaluator, graph, grouping, strategy::ReplicationMode::kEven,
        strategy::CommMethod::kAllReduce);
    const auto prop = baselines::run_uniform_dp(
        *rig.evaluator, graph, grouping, strategy::ReplicationMode::kProportional,
        strategy::CommMethod::kAllReduce);
    table_a.add_row({bench.label, fmt_double(even.time_ms / 1000.0),
                     fmt_double(prop.time_ms / 1000.0),
                     fmt_double(100.0 * (even.time_ms - prop.time_ms) / prop.time_ms, 1) +
                         "%"});
  }
  // Transformer row of Fig. 3(a).
  {
    const auto graph = models::build_training(models::ModelKind::kTransformer, 6, 360);
    const auto grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());
    const auto even = baselines::run_uniform_dp(
        *rig.evaluator, graph, grouping, strategy::ReplicationMode::kEven,
        strategy::CommMethod::kAllReduce);
    const auto prop = baselines::run_uniform_dp(
        *rig.evaluator, graph, grouping, strategy::ReplicationMode::kProportional,
        strategy::CommMethod::kAllReduce);
    table_a.add_row({"Transformer", fmt_double(even.time_ms / 1000.0),
                     fmt_double(prop.time_ms / 1000.0),
                     fmt_double(100.0 * (even.time_ms - prop.time_ms) / prop.time_ms, 1) +
                         "%"});
  }
  std::printf("Fig. 3(a): even vs proportional whole-model replicas\n%s\n",
              table_a.render().c_str());

  // (b) normalised op execution times (V100 = 1.0) at two input sizes.
  profiler::HardwareModel hw(rig.cluster);
  TextTable table_b(
      {"Operation", "1080Ti / V100 (large input)", "1080Ti / V100 (small input)"});
  struct OpSpec {
    const char* name;
    graph::OpKind kind;
  };
  const OpSpec ops[] = {
      {"Conv2D", graph::OpKind::kConv2D},
      {"MatMul", graph::OpKind::kMatMul},
      {"Conv1D", graph::OpKind::kConv1D},
      {"Conv2DBpFilter", graph::OpKind::kConv2DBpFilter},
      {"Conv2DBpInput", graph::OpKind::kConv2DBpInput},
  };
  for (const auto& spec : ops) {
    graph::OpDef big;
    big.kind = spec.kind;
    big.flops_per_sample = 2.0e9;
    graph::OpDef small = big;
    small.flops_per_sample = 0.0002e9;  // ~13 MFLOP kernel: under-utilises the V100
    const double ratio_big = hw.op_time_ms(big, 64, 2) / hw.op_time_ms(big, 64, 0);
    const double ratio_small = hw.op_time_ms(small, 64, 2) / hw.op_time_ms(small, 64, 0);
    table_b.add_row({spec.name, fmt_double(ratio_big, 2), fmt_double(ratio_small, 2)});
  }
  std::printf("Fig. 3(b): normalised average execution time (V100 = 1.0)\n%s\n",
              table_b.render().c_str());
  std::printf(
      "Expected shape: (a) proportional beats even by a modest margin; (b) ratios\n"
      "span roughly 1.1-1.9 across op types and shrink on small inputs.\n");
  write_bench_json("fig3");
  return 0;
}
