// Table 4: per-iteration training time on the full 12-GPU testbed.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

struct PaperRow {
  double heterog;
};
const double kPaperStandard[] = {0.503, 0.745, 0.641, 0.255, 0.915, 0.419, 0.538, 0.972};
const double kPaperLarge[] = {3.031, 1.544, 2.611, 5.043, 2.367, 3.812};

}  // namespace

int main() {
  print_header(
      "Table 4: per-iteration time (s), 12 GPUs: HeteroG vs DP baselines "
      "(cells: time / HeteroG speed-up)",
      "Same shape as Table 1 at a larger scale; communication takes a larger "
      "share so HeteroG's gains grow for communication-bound models");

  BenchRig rig(cluster::make_paper_testbed_12gpu());
  TextTable table({"Model (batch)", "HeteroG", "EV-PS/spd", "EV-AR/spd", "CP-PS/spd",
                   "CP-AR/spd", "paper HeteroG"});

  auto run_row = [&](const models::Benchmark& bench, double paper) {
    const double batch = bench.batch_12gpu;
    const auto graph = models::build_training(bench.kind, bench.layers, batch);
    const auto plan = heterog_plan(rig, bench, batch,
                                   "t4_" + std::to_string(static_cast<int>(bench.kind)) +
                                       "_" + std::to_string(bench.layers) + "_" +
                                       std::to_string(static_cast<int>(batch)) + "_12gpu");
    std::vector<std::string> cells;
    cells.push_back(bench.label + " (" + std::to_string(static_cast<int>(batch)) + ")");
    cells.push_back(plan.feasible ? fmt_double(plan.per_iteration_ms / 1000.0) : "OOM");
    const strategy::ReplicationMode modes[] = {strategy::ReplicationMode::kEven,
                                               strategy::ReplicationMode::kEven,
                                               strategy::ReplicationMode::kProportional,
                                               strategy::ReplicationMode::kProportional};
    const strategy::CommMethod comms[] = {strategy::CommMethod::kPS,
                                          strategy::CommMethod::kAllReduce,
                                          strategy::CommMethod::kPS,
                                          strategy::CommMethod::kAllReduce};
    for (int b = 0; b < 4; ++b) {
      const auto outcome = baselines::run_uniform_dp(*rig.evaluator, graph, plan.grouping,
                                                     modes[b], comms[b]);
      cells.push_back(baseline_cell(outcome.time_ms, plan.per_iteration_ms, outcome.oom));
    }
    cells.push_back(fmt_double(paper));
    table.add_row(cells);
  };

  const auto standard = models::standard_benchmarks();
  for (size_t i = 0; i < standard.size(); ++i) run_row(standard[i], kPaperStandard[i]);
  const auto large = models::large_benchmarks();
  for (size_t i = 0; i < large.size(); ++i) run_row(large[i], kPaperLarge[i]);

  std::printf("%s\n", table.render().c_str());
  write_bench_json("table4");
  return 0;
}
