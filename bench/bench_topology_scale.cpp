// Topology-generator scaling gate: wall-clock of the heuristic planning path
// versus generated cluster size, plus the determinism wall.
//
// For each generator preset (rack16 -> dc1000 = 100 machines / 1000 GPUs)
// this bench:
//   1. generates the cluster twice from the same options and asserts the
//      canonical JSON descriptions are byte-identical (and the planning
//      fingerprints equal) — the "same seed, same cluster" wall;
//   2. runs the CLI's heuristic planning path (profile -> encode ->
//      heuristic candidates -> batch evaluate -> compile -> evaluate) twice
//      and asserts the serialized winning plans are bit-identical;
//   3. times one planning pass and gates the largest preset at < 10 s —
//      the budget that keeps `heterog_cli plan --cluster-gen dc1000`
//      interactive. Exit code is nonzero on any violation.
//
// Smoke mode (HETEROG_BENCH_FAST=1, the CI configuration) runs the two
// small presets only; the wall-clock gate applies to whichever preset is
// largest in the selected set. HETEROG_BENCH_JSON carries the per-size
// gauges (bench.topo_plan_wall_<preset>.ms).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/topology.h"
#include "compile/compiler.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PlanOutcome {
  std::string plan_text;
  double time_ms = 0.0;
  bool feasible = false;
};

/// The heuristic (zero-episode) planning path, mirroring core/heterog.cpp's
/// make_plan: deterministic in (graph, cluster, seed).
PlanOutcome heuristic_plan(const cluster::ClusterSpec& cluster,
                           const graph::GraphDef& graph) {
  profiler::HardwareModel hardware(cluster);
  profiler::Profiler prof(hardware, /*seed=*/1);
  const auto cost_model = prof.profile(graph);

  const agent::EncodedGraph encoded = agent::encode_graph(graph, *cost_model, max_groups());
  rl::TrainConfig config;
  config.skip_unroll_on_oom = true;  // as make_plan's heuristic-only path
  rl::Trainer trainer(*cost_model, config);
  const std::vector<strategy::StrategyMap> candidates =
      trainer.heuristic_candidates(graph, encoded.grouping);
  const std::vector<rl::Evaluation> evals =
      trainer.evaluate_batch(graph, encoded.grouping, candidates);

  PlanOutcome out;
  strategy::StrategyMap best;
  double best_ms = 0.0;
  bool best_feasible = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto& eval = evals[i];
    const bool better = !eval.oom && (!best_feasible || eval.time_ms < best_ms);
    if (better || best.group_actions.empty()) {
      best = candidates[i];
      best_ms = eval.time_ms;
      best_feasible = !eval.oom;
    }
  }

  // Deployment compile + evaluation against ground truth (the step a real
  // `plan` invocation pays before printing its summary).
  profiler::GroundTruthCosts ground_truth(hardware);
  sim::PlanEvalOptions options;
  const sim::PlanEvaluation deployment =
      sim::evaluate_plan(ground_truth, graph, encoded.grouping, best, options);

  out.plan_text = strategy::to_text(best, cluster);
  out.time_ms = deployment.per_iteration_ms;
  out.feasible = !deployment.oom;
  return out;
}

std::string gauge_name(const std::string& preset) {
  return "bench.topo_plan_wall_" + preset + ".ms";
}

}  // namespace

int main() {
  print_header("Topology generator scaling: heuristic planning wall-clock vs GPU count",
               "cluster/comm model (DESIGN.md §5j, docs/topology.md)");

  const std::vector<std::string> presets =
      fast_mode() ? std::vector<std::string>{"rack16", "pod64"}
                  : std::vector<std::string>{"rack16", "pod64", "pod256", "dc1000"};
  constexpr double kWallBudgetMs = 10000.0;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  TextTable table({"preset", "GPUs", "hosts", "racks", "plan wall (ms)",
                   "iteration (ms)", "deterministic"});
  bool ok = true;
  double largest_wall_ms = 0.0;
  std::string largest_preset;

  for (const std::string& preset : presets) {
    const auto options = cluster::topo_preset(preset);
    if (!options) {
      std::fprintf(stderr, "FAIL: unknown preset %s\n", preset.c_str());
      return 1;
    }

    // Wall 1: same options -> byte-identical generated cluster.
    const cluster::ClusterSpec cluster = cluster::generate_cluster(*options);
    const cluster::ClusterSpec again = cluster::generate_cluster(*options);
    bool deterministic = cluster::cluster_to_json(cluster) == cluster::cluster_to_json(again) &&
                         cluster::cluster_fingerprint(cluster) ==
                             cluster::cluster_fingerprint(again);
    if (!deterministic) {
      std::fprintf(stderr, "FAIL: %s: same seed produced different clusters\n",
                   preset.c_str());
      ok = false;
    }

    // Batch scales with the cluster so every device can hold a replica.
    const double batch = 2.0 * cluster.device_count();
    const auto graph = models::build_training(models::ModelKind::kVgg19, 0, batch);

    const auto t0 = std::chrono::steady_clock::now();
    const PlanOutcome first = heuristic_plan(cluster, graph);
    const double wall_ms = wall_ms_since(t0);

    // Wall 2: repeat planning -> bit-identical serialized plan.
    const PlanOutcome second = heuristic_plan(cluster, graph);
    if (first.plan_text != second.plan_text) {
      std::fprintf(stderr, "FAIL: %s: repeated planning produced different plans\n",
                   preset.c_str());
      deterministic = false;
      ok = false;
    }

    metrics.set(gauge_name(preset), wall_ms);
    if (wall_ms > largest_wall_ms || largest_preset.empty()) {
      // The presets grow monotonically; remember the largest for the gate.
    }
    largest_wall_ms = wall_ms;
    largest_preset = preset;

    table.add_row({preset, std::to_string(cluster.device_count()),
                   std::to_string(cluster.host_count()),
                   std::to_string(cluster.has_topology()
                                      ? cluster.topology().rack_count()
                                      : 1),
                   fmt_double(wall_ms, 1), fmt_double(first.time_ms, 2),
                   deterministic && first.feasible ? "yes" : "NO"});
    if (!first.feasible) {
      std::fprintf(stderr, "FAIL: %s: heuristic plan is infeasible (OOM)\n",
                   preset.c_str());
      ok = false;
    }
  }

  std::printf("%s\n", table.render().c_str());

  // Wall 3: the largest selected preset must plan inside the budget.
  if (largest_wall_ms > kWallBudgetMs) {
    std::fprintf(stderr, "FAIL: %s planned in %.0f ms (budget %.0f ms)\n",
                 largest_preset.c_str(), largest_wall_ms, kWallBudgetMs);
    ok = false;
  } else {
    std::printf("gate: %s planned in %.0f ms (budget %.0f ms)\n",
                largest_preset.c_str(), largest_wall_ms, kWallBudgetMs);
  }

  write_bench_json("topology_scale",
                   {{"fast", fast_mode() ? "true" : "false"},
                    {"presets", config_str(presets.front() + ".." + presets.back())},
                    {"wall_budget_ms", std::to_string(kWallBudgetMs)}});
  return ok ? 0 : 1;
}
