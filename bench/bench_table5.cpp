// Table 5: end-to-end training time (minutes) to the target accuracy for the
// CNN models, 8 and 12 GPUs — HeteroG vs CP-PS and CP-AR.
//
// HeteroG's graph transformation preserves synchronous-SGD semantics, so the
// number of iterations to converge is strategy-independent; end-to-end time
// is iterations x per-iteration time. Samples-to-convergence are derived
// from the paper's Table 5 / Table 1 figures (minutes * 60 / per-iter-s *
// batch) and are consistent between the 8- and 12-GPU columns there.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

struct ConvergenceSpec {
  models::ModelKind kind;
  double samples_to_converge;  // derived from the paper (see header comment)
  double paper_minutes_8gpu;
};
const ConvergenceSpec kSpecs[] = {
    {models::ModelKind::kVgg19, 12.79e6, 513.1},
    {models::ModelKind::kResNet200, 10.53e6, 633.1},
    {models::ModelKind::kInceptionV3, 18.21e6, 834.6},
    {models::ModelKind::kMobileNetV2, 10.99e6, 221.4},
    {models::ModelKind::kNasNet, 15.92e6, 1191.3},
};

}  // namespace

int main() {
  print_header(
      "Table 5: end-to-end training time (minutes) to target accuracy",
      "End-to-end speed-ups mirror the per-iteration speed-ups because the "
      "modified graph is mathematically equivalent to single-GPU training");

  for (const bool twelve : {false, true}) {
    BenchRig rig(twelve ? cluster::make_paper_testbed_12gpu()
                        : cluster::make_paper_testbed_8gpu());
    TextTable table({"Model", "HeteroG (min)", "CP-PS (min)/spd", "CP-AR (min)/spd",
                     "paper HeteroG (8 GPU)"});
    for (const auto& spec : kSpecs) {
      models::Benchmark bench;
      for (const auto& b : models::cnn_benchmarks()) {
        if (b.kind == spec.kind) bench = b;
      }
      const double batch = twelve ? bench.batch_12gpu : bench.batch_8gpu;
      const double iterations = spec.samples_to_converge / batch;
      const auto graph = models::build_training(bench.kind, bench.layers, batch);
      const auto plan = heterog_plan(
          rig, bench, batch,
          std::string(twelve ? "t4_" : "t1_") + std::to_string(static_cast<int>(bench.kind)) +
              "_" + std::to_string(bench.layers) + "_" +
              std::to_string(static_cast<int>(batch)) + (twelve ? "_12gpu" : "_8gpu"));

      auto minutes = [&](double per_iter_ms) {
        return per_iter_ms / 1000.0 * iterations / 60.0;
      };
      const double heterog_min = minutes(plan.per_iteration_ms);
      const auto cp_ps = baselines::run_uniform_dp(
          *rig.evaluator, graph, plan.grouping, strategy::ReplicationMode::kProportional,
          strategy::CommMethod::kPS);
      const auto cp_ar = baselines::run_uniform_dp(
          *rig.evaluator, graph, plan.grouping, strategy::ReplicationMode::kProportional,
          strategy::CommMethod::kAllReduce);

      auto cell = [&](const baselines::PlanOutcome& outcome) {
        const double m = minutes(outcome.time_ms);
        return fmt_double(m, 1) + " / " +
               fmt_double(100.0 * (m - heterog_min) / heterog_min, 1) + "%";
      };
      table.add_row({bench.label, fmt_double(heterog_min, 1), cell(cp_ps), cell(cp_ar),
                     fmt_double(spec.paper_minutes_8gpu, 1)});
    }
    std::printf("%s GPUs:\n%s\n", twelve ? "12" : "8", table.render().c_str());
  }
  std::printf(
      "Expected shape: HeteroG finishes first; the end-to-end speed-ups equal the\n"
      "per-iteration speed-ups of Tables 1/4 because iteration counts are\n"
      "strategy-independent.\n");
  write_bench_json("table5");
  return 0;
}
