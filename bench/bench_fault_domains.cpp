// Fault-domain bench: correlated failures at generated-topology scale.
//
// Pins the acceptance criteria of the correlated-fault-domain work, exiting
// nonzero when a gate fails so CI catches regressions:
//   * a ToR switch degradation on pod64 measurably lengthens the steps whose
//     cross-rack AllReduce traffic crosses it (and only those steps);
//   * the health monitor attributes a staggered rack burst to the rack
//     domain from heartbeat evidence alone, and the runner replans around
//     the whole domain in ONE recovery where per-device attribution pays one
//     replan per burst wave (one-shot vs serial);
//   * a rack burst at pod256 completes with a sane post-fault makespan;
//   * dc1000 smoke: domain expansion and survivor-cluster derivation at
//     1000 GPUs stay cheap (no runner, just the cluster math);
//   * determinism: warm repeats are bit-identical, and a crash at a
//     checkpoint mid-burst resumes to the byte-identical journal.
//
// deterministic_wall_times is on throughout, so every column is bit-stable
// run to run.
#include "bench_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/journal.h"
#include "cluster/topology.h"
#include "core/heterog.h"
#include "faults/faults.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

constexpr int kSteps = 14;

int failures = 0;

void gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "GATE FAILED: %s\n", what);
    ++failures;
  }
}

graph::GraphDef bench_model() {
  return models::build_forward(models::ModelKind::kMobileNetV2, 0, 96);
}

HeteroGConfig domain_config(bool domain_attribution) {
  HeteroGConfig config;
  config.search_with_rl = false;
  config.train.episodes = 0;
  config.agent.max_groups = max_groups();
  config.fault_handling.deterministic_wall_times = true;
  config.health.enabled = true;
  config.health.domain_attribution = domain_attribution;
  return config;
}

faults::FaultEvent device_failure(cluster::DeviceId device, int onset) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kDeviceFailure;
  e.device = device;
  e.onset_step = onset;
  return e;
}

faults::FaultEvent rack_failure(int rack, int onset) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kRackFailure;
  e.rack = rack;
  e.onset_step = onset;
  return e;
}

faults::FaultEvent switch_degradation(int level, int index, double factor,
                                      int onset, int recovery) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kSwitchDegradation;
  e.level = level;
  e.switch_index = index;
  e.bandwidth_factor = factor;
  e.onset_step = onset;
  e.recovery_step = recovery;
  return e;
}

faults::FaultEvent switch_outage(int level, int index, int onset) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kSwitchOutage;
  e.level = level;
  e.switch_index = index;
  e.onset_step = onset;
  return e;
}

std::vector<cluster::DeviceId> devices_in_rack(const cluster::ClusterSpec& c,
                                               int rack) {
  std::vector<cluster::DeviceId> out;
  for (const auto& d : c.devices()) {
    if (c.topology().rack_of_host[static_cast<size_t>(d.host)] == rack) {
      out.push_back(d.id);
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A staggered rack-0 burst: 60%+ of the rack at `onset`, the rest two steps
/// later — inside the monitor's attribution window, but two separate waves
/// for a per-device detector.
faults::FaultPlan staggered_burst(const cluster::ClusterSpec& c, int onset) {
  const auto rack0 = devices_in_rack(c, 0);
  const size_t first_wave = (rack0.size() * 2 + 2) / 3;  // ~2/3 > 0.6 fraction
  faults::FaultPlan plan;
  for (size_t i = 0; i < rack0.size(); ++i) {
    plan.events.push_back(
        device_failure(rack0[i], i < first_wave ? onset : onset + 2));
  }
  return plan;
}

}  // namespace

int main() {
  print_header(
      "Fault-domain bench: correlated faults at generated-topology scale",
      "DESIGN.md \"Correlated fault domains\" — switch faults re-price the "
      "comm model, rack bursts are attributed from heartbeats alone, and "
      "domain-wide recovery replans once, not once per device");

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  TextTable table({"Scenario", "Cluster", "Result", "Gate"});

  // --- 1. ToR degradation lengthens cross-rack steps (pod64) ---------------
  const auto pod64 = cluster::generate_cluster(*cluster::topo_preset("pod64"));
  {
    const DistRunner runner = get_runner(bench_model, pod64, domain_config(true));
    faults::FaultPlan plan;
    plan.events = {switch_degradation(0, 0, 0.1, 4, 8)};
    const RunStats stats = runner.run(kSteps, plan);
    gate(stats.completed, "pod64 ToR-degradation run completes");
    const double healthy = stats.step_ms[0];
    const double degraded = stats.step_ms[5];
    const double after = stats.step_ms[10];
    gate(degraded > healthy * 1.001,
         "ToR at 10% measurably lengthens cross-rack steps on pod64");
    gate(after == healthy, "step time recovers when the ToR does");
    metrics.set("bench.fault_domains.pod64_healthy_step.ms", healthy);
    metrics.set("bench.fault_domains.pod64_degraded_step.ms", degraded);
    table.add_row({"ToR x0.1 window", "pod64",
                   fmt_double(healthy, 2) + " -> " + fmt_double(degraded, 2) +
                       " ms/step",
                   degraded > healthy ? "slower, recovers" : "FAIL"});
  }

  // --- 2. One-shot domain replan vs serial per-wave replans (pod64) --------
  double detect_latency_mean = 0.0;
  {
    const faults::FaultPlan burst = staggered_burst(pod64, 5);
    const DistRunner on_runner = get_runner(bench_model, pod64, domain_config(true));
    const DistRunner off_runner =
        get_runner(bench_model, pod64, domain_config(false));
    const RunStats on = on_runner.run(kSteps, burst);
    const RunStats off = off_runner.run(kSteps, burst);
    gate(on.completed && off.completed, "pod64 rack-burst runs complete");
    gate(on.health.domain_suspicions >= 1,
         "monitor attributes the staggered burst to the rack domain");
    gate(on.health.domain_failures > 0,
         "attribution fails the rest of the rack without waiting for phi");
    gate(!on.recoveries.empty() && on.recoveries.front().domain_rack == 0,
         "recovery report carries the attributed rack");
    gate(on.recoveries.size() < off.recoveries.size(),
         "domain attribution replans once where serial detection replans per wave");

    double latency_sum = 0.0;
    int counted = 0;
    for (const auto& d : on.health.detections) {
      if (d.kind == "domain") continue;  // attributed, not individually timed
      latency_sum += static_cast<double>(d.confirmed_step - d.onset_step);
      ++counted;
    }
    detect_latency_mean =
        counted == 0 ? 0.0 : latency_sum / static_cast<double>(counted);
    metrics.set("bench.fault_domains.detection_latency_mean.steps",
                detect_latency_mean);
    metrics.set("bench.fault_domains.replans_one_shot.count",
                static_cast<double>(on.recoveries.size()));
    metrics.set("bench.fault_domains.replans_serial.count",
                static_cast<double>(off.recoveries.size()));
    metrics.set("bench.fault_domains.domain_suspicions.count",
                static_cast<double>(on.health.domain_suspicions));
    double replan_wall_on = 0.0, replan_wall_off = 0.0;
    for (const auto& r : on.recoveries) replan_wall_on += r.replan_wall_ms;
    for (const auto& r : off.recoveries) replan_wall_off += r.replan_wall_ms;
    metrics.set("bench.fault_domains.replan_wall_one_shot.ms", replan_wall_on);
    metrics.set("bench.fault_domains.replan_wall_serial.ms", replan_wall_off);
    table.add_row({"staggered rack burst", "pod64",
                   std::to_string(on.recoveries.size()) + " vs " +
                       std::to_string(off.recoveries.size()) + " replans, " +
                       fmt_double(detect_latency_mean, 1) + " step latency",
                   on.recoveries.size() < off.recoveries.size() ? "one-shot"
                                                                : "FAIL"});

    // Determinism: a warm repeat of the attribution run is bit-identical.
    const RunStats warm = on_runner.run(kSteps, burst);
    bool identical = warm.total_ms == on.total_ms &&
                     warm.step_ms.size() == on.step_ms.size();
    for (size_t i = 0; identical && i < warm.step_ms.size(); ++i) {
      identical = warm.step_ms[i] == on.step_ms[i];
    }
    gate(identical, "warm repeat of the domain-recovery run is bit-identical");
  }

  // --- 3. Crash at a checkpoint mid-burst, resume to identical bytes ------
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "heterog_bench_fault_domains";
    fs::remove_all(dir);
    fs::create_directories(dir / "full");
    fs::create_directories(dir / "crash");
    const faults::FaultPlan burst = staggered_burst(pod64, 5);
    const DistRunner runner = get_runner(bench_model, pod64, domain_config(true));

    ckpt::CheckpointOptions full_opts;
    full_opts.dir = (dir / "full").string();
    full_opts.every = 2;
    const RunStats full = runner.run(kSteps, burst, full_opts);
    gate(full.completed, "uninterrupted checkpointed run completes");

    struct Crash {};
    ckpt::CheckpointOptions crash_opts;
    crash_opts.dir = (dir / "crash").string();
    crash_opts.every = 2;
    constexpr int kCrashStep = 10;
    crash_opts.after_checkpoint = [](int completed, const std::string&) {
      if (completed == kCrashStep) throw Crash();
    };
    bool crashed = false;
    try {
      runner.run(kSteps, burst, crash_opts);
    } catch (const Crash&) {
      crashed = true;
    }
    gate(crashed, "simulated crash fires at the mid-burst checkpoint");
    const RunStats tail =
        resume_run((dir / "crash" / "journal.heterog").string(), bench_model);
    gate(tail.completed, "resumed run completes");
    const std::string full_bytes = read_file((dir / "full" / "journal.heterog").string());
    const std::string crash_bytes =
        read_file((dir / "crash" / "journal.heterog").string());
    gate(!full_bytes.empty() && full_bytes == crash_bytes,
         "crash + resume leaves a byte-identical journal");
    table.add_row({"crash at ckpt 10 + resume", "pod64",
                   std::to_string(full_bytes.size()) + " journal bytes",
                   full_bytes == crash_bytes ? "bit-identical" : "FAIL"});
    fs::remove_all(dir);
  }

  // --- 4. Post-fault makespan after a rack burst (pod256) ------------------
  {
    const auto pod256 =
        cluster::generate_cluster(*cluster::topo_preset("pod256"));
    const DistRunner runner = get_runner(bench_model, pod256, domain_config(true));
    faults::FaultPlan plan;
    plan.events = {rack_failure(1, 5)};
    const RunStats stats = runner.run(kSteps, plan);
    gate(stats.completed, "pod256 rack-failure run completes");
    gate(!stats.recoveries.empty(), "pod256 rack failure triggers a recovery");
    const auto& rec = stats.recoveries.front();
    gate(rec.surviving_devices ==
             pod256.device_count() -
                 static_cast<int>(devices_in_rack(pod256, 1).size()),
         "the whole rack left the cluster in one recovery");
    metrics.set("bench.fault_domains.pod256_pre_fault_iteration.ms",
                rec.pre_fault_iteration_ms);
    metrics.set("bench.fault_domains.pod256_post_fault_iteration.ms",
                rec.post_fault_iteration_ms);
    metrics.set("bench.fault_domains.pod256_replan_wall.ms", rec.replan_wall_ms);
    table.add_row({"rack burst", "pod256",
                   fmt_double(rec.pre_fault_iteration_ms, 2) + " -> " +
                       fmt_double(rec.post_fault_iteration_ms, 2) + " ms/iter",
                   stats.completed ? "completes" : "FAIL"});
  }

  // --- 5. dc1000 smoke: expansion + survivor derivation only ---------------
  {
    const auto dc =
        cluster::generate_cluster(*cluster::topo_preset("dc1000"));
    const faults::FaultEvent outage = switch_outage(1, 0, 3);
    const auto domain = faults::domain_devices(dc, outage);
    gate(!domain.empty() && static_cast<int>(domain.size()) < dc.device_count(),
         "dc1000 aggregation-switch outage strands a proper subset");
    faults::FaultPlan plan;
    plan.events = {outage};
    const auto scaling = faults::scaling_at(plan, dc, 3);
    const auto survivors = faults::degraded_cluster(dc, scaling);
    gate(survivors.device_count() ==
             dc.device_count() - static_cast<int>(domain.size()),
         "dc1000 survivor cluster drops exactly the stranded domain");
    metrics.set("bench.fault_domains.dc1000_domain.count",
                static_cast<double>(domain.size()));
    table.add_row({"L1 switch outage (expansion only)", "dc1000",
                   std::to_string(domain.size()) + " of 1000 GPUs stranded",
                   survivors.device_count() > 0 ? "ok" : "FAIL"});
  }

  std::printf("%s\n", table.render().c_str());

  BenchConfig config;
  config.emplace_back("steps", std::to_string(kSteps));
  config.emplace_back("max_groups", std::to_string(max_groups()));
  config.emplace_back("deterministic_wall_times", "true");
  config.emplace_back("clusters", "[\"pod64\",\"pod256\",\"dc1000\"]");
  write_bench_json("fault_domains", config);

  if (failures != 0) {
    std::fprintf(stderr, "bench_fault_domains: %d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("bench_fault_domains: all gates passed\n");
  return 0;
}
