// Recovery bench: online health monitoring vs the PR-1 oracle path.
//
// Three fault mixes are driven through DistRunner twice — once with the
// oracle recovery path (the runner is told the fault plan's verdicts) and
// once with the online HealthMonitor (the runner sees only per-attempt
// measurements). Reported per mix: detection latency in steps from fault
// onset to the monitor's verdict, and the total-time overhead the
// measurement-only path pays over the oracle (heartbeat timeouts spent
// confirming failures; per-step times themselves have parity).
//
// deterministic_wall_times is on, so both columns are bit-stable run to run
// and the overhead column isolates detection cost from replan wall time.
//
// Extra knob: HETEROG_CHAOS_SEED adds a fourth, seed-generated chaos mix
// (faults::make_chaos_plan) on top of the three hand-written ones. The seed
// and the full scenario shape land in the HETEROG_BENCH_JSON "config" block
// so any perf trajectory is attributable to a reproducible schedule.
#include "bench_util.h"

#include "core/heterog.h"
#include "faults/chaos.h"
#include "faults/faults.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

constexpr int kSteps = 24;

faults::FaultEvent device_failure(cluster::DeviceId device, int onset) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kDeviceFailure;
  e.device = device;
  e.onset_step = onset;
  return e;
}

faults::FaultEvent straggler(cluster::DeviceId device, double slowdown, int onset,
                             int recovery = -1) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kStraggler;
  e.device = device;
  e.slowdown = slowdown;
  e.onset_step = onset;
  e.recovery_step = recovery;
  return e;
}

faults::FaultEvent transient(cluster::DeviceId device, int onset, int failed_attempts) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kTransient;
  e.device = device;
  e.onset_step = onset;
  e.failed_attempts = failed_attempts;
  return e;
}

faults::FaultEvent link_degradation(cluster::DeviceId a, cluster::DeviceId b,
                                    double factor, int onset, int recovery) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kLinkDegradation;
  e.device_a = a;
  e.device_b = b;
  e.bandwidth_factor = factor;
  e.onset_step = onset;
  e.recovery_step = recovery;
  return e;
}

HeteroGConfig recovery_config(bool online) {
  HeteroGConfig config;
  config.search_with_rl = false;
  config.train.episodes = 0;
  config.agent.max_groups = max_groups();
  config.fault_handling.deterministic_wall_times = true;
  config.health.enabled = online;
  return config;
}

RunStats run_mix(const faults::FaultPlan& plan, bool online) {
  const DistRunner runner = get_runner(
      [] { return models::build_forward(models::ModelKind::kMobileNetV2, 0, 96); },
      cluster::make_fig3_testbed(), recovery_config(online));
  return runner.run(kSteps, plan);
}

}  // namespace

int main() {
  print_header(
      "Recovery bench: oracle-free detection latency and overhead",
      "DESIGN.md \"Online health & degraded modes\" — the online monitor "
      "must reach the oracle's verdicts from measurements alone, paying "
      "only heartbeat-timeout wall time for the privilege");

  struct Mix {
    std::string label;
    faults::FaultPlan plan;
  };
  std::vector<Mix> mixes(3);
  mixes[0].label = "fail-stop";
  mixes[0].plan.events = {device_failure(1, 6)};
  mixes[1].label = "stragglers";
  mixes[1].plan.events = {straggler(0, 3.0, 5, 14), straggler(2, 2.5, 16)};
  mixes[2].label = "mixed";
  mixes[2].plan.events = {transient(2, 3, 2), straggler(0, 3.0, 8, 18),
                          link_degradation(0, 3, 0.5, 4, 12),
                          device_failure(1, 15)};

  // HETEROG_CHAOS_SEED adds a seed-generated schedule as a fourth mix; the
  // same seed always reproduces the same schedule (chaos.h pins this).
  const int chaos_seed = env_int("HETEROG_CHAOS_SEED", -1);
  if (chaos_seed >= 0) {
    faults::ChaosOptions chaos;
    chaos.seed = static_cast<uint64_t>(chaos_seed);
    chaos.steps = kSteps;
    chaos.device_count = cluster::make_fig3_testbed().device_count();
    Mix chaos_mix;
    chaos_mix.label = "chaos(seed=" + std::to_string(chaos_seed) + ")";
    chaos_mix.plan = faults::make_chaos_plan(chaos);
    mixes.push_back(std::move(chaos_mix));
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  TextTable table({"Mix", "Oracle (ms)", "Online (ms)", "Overhead (ms / %)",
                   "Detect (steps)", "Detections", "Quarantines"});
  for (const Mix& mix : mixes) {
    const RunStats oracle = run_mix(mix.plan, /*online=*/false);
    const RunStats online = run_mix(mix.plan, /*online=*/true);

    // Detection latency: steps from the first anomalous observation to the
    // monitor's verdict, averaged over every detection of the mix.
    double latency_sum = 0.0;
    for (const auto& d : online.health.detections) {
      latency_sum += static_cast<double>(d.confirmed_step - d.onset_step);
    }
    const size_t detections = online.health.detections.size();
    const double latency_mean =
        detections == 0 ? 0.0 : latency_sum / static_cast<double>(detections);

    const double overhead_ms = online.total_ms - oracle.total_ms;
    const double overhead_pct =
        oracle.total_ms <= 0.0 ? 0.0 : 100.0 * overhead_ms / oracle.total_ms;

    const std::string prefix = std::string("bench.recovery.") + mix.label;
    metrics.set(prefix + ".oracle_total.ms", oracle.total_ms);
    metrics.set(prefix + ".online_total.ms", online.total_ms);
    metrics.set(prefix + ".overhead.ms", overhead_ms);
    metrics.set(prefix + ".detection_overhead.ms", online.detection_overhead_ms);
    metrics.set(prefix + ".detection_latency_mean.steps", latency_mean);
    metrics.set(prefix + ".detections.count",
                static_cast<double>(detections));
    metrics.set(prefix + ".quarantines.count",
                static_cast<double>(online.health.quarantines));
    metrics.set(prefix + ".retries_charged.count",
                static_cast<double>(online.health.retries_charged));

    table.add_row({mix.label, fmt_double(oracle.total_ms, 2),
                   fmt_double(online.total_ms, 2),
                   fmt_double(overhead_ms, 2) + " / " +
                       fmt_double(overhead_pct, 2) + "%",
                   fmt_double(latency_mean, 1),
                   std::to_string(detections),
                   std::to_string(online.health.quarantines)});
  }
  std::printf("%s\n", table.render().c_str());

  BenchConfig config;
  config.emplace_back("steps", std::to_string(kSteps));
  config.emplace_back("max_groups", std::to_string(max_groups()));
  config.emplace_back("deterministic_wall_times", "true");
  config.emplace_back("chaos_seed", chaos_seed >= 0 ? std::to_string(chaos_seed)
                                                    : std::string("null"));
  std::string scenario = "[";
  for (size_t i = 0; i < mixes.size(); ++i) {
    if (i != 0) scenario += ",";
    scenario += config_str(mixes[i].label + ":" +
                           std::to_string(mixes[i].plan.events.size()) +
                           " events");
  }
  scenario += "]";
  config.emplace_back("scenarios", scenario);
  write_bench_json("recovery", config);
  return 0;
}
