// Shared plumbing for the reproduction benches (one binary per paper table /
// figure).
//
// Knobs (environment variables):
//   HETEROG_EPISODES       RL episodes per HeteroG search (default 150)
//   HETEROG_MAX_GROUPS     grouping size (default 48)
//   HETEROG_BENCH_FAST     =1 shrinks searches for smoke runs
//   HETEROG_PLAN_CACHE     directory for cached plans (default ./bench_cache)
//
// HeteroG searches are cached on disk keyed by (model, batch, cluster) so
// benches that share plans (Table 1 <-> Tables 2/3, Fig. 8) do not repeat
// the RL search.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "agent/policy.h"
#include "baselines/baselines.h"
#include "common/table.h"
#include "models/models.h"
#include "profiler/profiler.h"
#include "rl/trainer.h"
#include "sim/plan_eval.h"
#include "strategy/serialize.h"

namespace heterog::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool fast_mode() { return env_int("HETEROG_BENCH_FAST", 0) != 0; }

inline int episodes() {
  return env_int("HETEROG_EPISODES", fast_mode() ? 20 : 150);
}

inline int max_groups() { return env_int("HETEROG_MAX_GROUPS", 48); }

inline std::string plan_cache_dir() {
  const char* dir = std::getenv("HETEROG_PLAN_CACHE");
  return dir != nullptr ? dir : "bench_cache";
}

/// Cluster + ground-truth cost oracle + evaluation harness.
struct BenchRig {
  cluster::ClusterSpec cluster;
  std::unique_ptr<profiler::HardwareModel> hardware;
  std::unique_ptr<profiler::GroundTruthCosts> costs;
  std::unique_ptr<baselines::Evaluator> evaluator;

  explicit BenchRig(cluster::ClusterSpec spec) : cluster(std::move(spec)) {
    hardware = std::make_unique<profiler::HardwareModel>(cluster);
    costs = std::make_unique<profiler::GroundTruthCosts>(*hardware);
    evaluator = std::make_unique<baselines::Evaluator>(*costs);
  }
};

struct HeteroGPlan {
  strategy::StrategyMap map;
  strategy::Grouping grouping;
  double per_iteration_ms = 0.0;
  bool feasible = false;
  bool from_cache = false;
};

/// Runs (or loads) the HeteroG search for one benchmark configuration.
inline HeteroGPlan heterog_plan(const BenchRig& rig, const models::Benchmark& bench,
                                double batch, const std::string& cache_tag,
                                compile::CompilerOptions compiler_options =
                                    compile::CompilerOptions()) {
  const auto graph = models::build_training(bench.kind, bench.layers, batch);
  HeteroGPlan plan;
  plan.grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());

  const std::string cache_path =
      plan_cache_dir() + "/" + cache_tag + ".plan";
  std::filesystem::create_directories(plan_cache_dir());
  if (std::filesystem::exists(cache_path)) {
    // Checked load: the v2 fingerprint refuses a cache entry written for a
    // different cluster even when the device count matches. A corrupt or
    // stale entry is simply re-searched, not an error.
    try {
      auto cached = strategy::load_plan_checked(cache_path, rig.cluster);
      if (static_cast<int>(cached.group_actions.size()) == plan.grouping.group_count()) {
        plan.map = std::move(cached);
        plan.from_cache = true;
      }
    } catch (const strategy::PlanFormatError&) {
    }
  }
  if (plan.map.group_actions.empty()) {
    rl::TrainConfig config;
    config.compiler = compiler_options;
    config.episodes = episodes();
    agent::AgentConfig agent_config;
    agent_config.max_groups = max_groups();
    agent::PolicyNetwork policy(rig.cluster.device_count(), agent_config);
    const auto encoded = agent::encode_graph(graph, *rig.costs, max_groups());
    rl::Trainer trainer(*rig.costs, config);
    const auto result = trainer.search(policy, encoded);
    plan.map = result.best_strategy;
    strategy::save_plan(cache_path, plan.map, rig.cluster);
  }

  sim::PlanEvalOptions eval_options;
  eval_options.compiler = compiler_options;
  const auto eval =
      sim::evaluate_plan(*rig.costs, graph, plan.grouping, plan.map, eval_options);
  plan.per_iteration_ms = eval.per_iteration_ms;
  plan.feasible = !eval.oom;
  return plan;
}

/// Formats "our / speed-up" cells in Table 1/4 style: baseline time with the
/// speed-up of HeteroG over it.
inline std::string baseline_cell(double baseline_ms, double heterog_ms, bool oom) {
  if (oom) return "OOM / -";
  const double speedup = 100.0 * (baseline_ms - heterog_ms) / heterog_ms;
  return fmt_double(baseline_ms / 1000.0) + " / " + fmt_double(speedup, 1) + "%";
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("episodes=%d max_groups=%d fast=%d\n", episodes(), max_groups(),
              fast_mode() ? 1 : 0);
  std::printf("==============================================================\n");
}

}  // namespace heterog::bench
