// Shared plumbing for the reproduction benches (one binary per paper table /
// figure).
//
// Knobs (environment variables):
//   HETEROG_EPISODES       RL episodes per HeteroG search (default 150)
//   HETEROG_MAX_GROUPS     grouping size (default 48)
//   HETEROG_BENCH_FAST     =1 shrinks searches for smoke runs
//   HETEROG_PLAN_CACHE     directory for cached plans (default ./bench_cache)
//   HETEROG_BENCH_JSON     path: dump the metrics-registry snapshot (search
//                          convergence, plan-cache traffic, utilization) as
//                          one JSON object at write_bench_json()
//
// HeteroG searches are cached on disk keyed by (model, batch, cluster) so
// benches that share plans (Table 1 <-> Tables 2/3, Fig. 8) do not repeat
// the RL search.
//
// Every bench records into obs::MetricsRegistry::global() via heterog_plan:
// `rl.*` convergence gauges, `bench.plan_cache_*` counters and `sim.*`
// utilization ratios (naming convention in docs/observability.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agent/policy.h"
#include "baselines/baselines.h"
#include "common/table.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "profiler/profiler.h"
#include "rl/trainer.h"
#include "sim/plan_eval.h"
#include "strategy/serialize.h"

namespace heterog::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool fast_mode() { return env_int("HETEROG_BENCH_FAST", 0) != 0; }

inline int episodes() {
  return env_int("HETEROG_EPISODES", fast_mode() ? 20 : 150);
}

inline int max_groups() { return env_int("HETEROG_MAX_GROUPS", 48); }

inline std::string plan_cache_dir() {
  const char* dir = std::getenv("HETEROG_PLAN_CACHE");
  return dir != nullptr ? dir : "bench_cache";
}

/// Cluster + ground-truth cost oracle + evaluation harness.
struct BenchRig {
  cluster::ClusterSpec cluster;
  std::unique_ptr<profiler::HardwareModel> hardware;
  std::unique_ptr<profiler::GroundTruthCosts> costs;
  std::unique_ptr<baselines::Evaluator> evaluator;

  explicit BenchRig(cluster::ClusterSpec spec) : cluster(std::move(spec)) {
    hardware = std::make_unique<profiler::HardwareModel>(cluster);
    costs = std::make_unique<profiler::GroundTruthCosts>(*hardware);
    evaluator = std::make_unique<baselines::Evaluator>(*costs);
  }
};

struct HeteroGPlan {
  strategy::StrategyMap map;
  strategy::Grouping grouping;
  double per_iteration_ms = 0.0;
  bool feasible = false;
  bool from_cache = false;
  /// Full search telemetry (episode trace, cache traffic); empty when the
  /// plan came from the on-disk cache and no search ran.
  rl::SearchResult search;
  /// Ground-truth evaluation with utilization collected (device/link busy
  /// times, critical path).
  sim::PlanEvaluation eval;
};

/// Runs (or loads) the HeteroG search for one benchmark configuration.
inline HeteroGPlan heterog_plan(const BenchRig& rig, const models::Benchmark& bench,
                                double batch, const std::string& cache_tag,
                                compile::CompilerOptions compiler_options =
                                    compile::CompilerOptions()) {
  const auto graph = models::build_training(bench.kind, bench.layers, batch);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  HeteroGPlan plan;
  plan.grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());

  const std::string cache_path =
      plan_cache_dir() + "/" + cache_tag + ".plan";
  std::filesystem::create_directories(plan_cache_dir());
  if (std::filesystem::exists(cache_path)) {
    // Checked load: the v2 fingerprint refuses a cache entry written for a
    // different cluster even when the device count matches. A corrupt or
    // stale entry is simply re-searched, not an error.
    try {
      auto cached = strategy::load_plan_checked(cache_path, rig.cluster);
      if (static_cast<int>(cached.group_actions.size()) == plan.grouping.group_count()) {
        plan.map = std::move(cached);
        plan.from_cache = true;
      }
    } catch (const strategy::PlanFormatError&) {
    }
  }
  metrics.add("bench.plans.count");
  if (plan.from_cache) {
    metrics.add("bench.plan_cache_hits.count");
  } else {
    metrics.add("bench.plan_cache_misses.count");
  }
  if (plan.map.group_actions.empty()) {
    rl::TrainConfig config;
    config.compiler = compiler_options;
    config.episodes = episodes();
    agent::AgentConfig agent_config;
    agent_config.max_groups = max_groups();
    agent::PolicyNetwork policy(rig.cluster.device_count(), agent_config);
    const auto encoded = agent::encode_graph(graph, *rig.costs, max_groups());
    rl::Trainer trainer(*rig.costs, config);
    obs::ScopedTimer search_timer(metrics, "rl.search_wall.ms");
    plan.search = trainer.search(policy, encoded);
    search_timer.stop();
    plan.map = plan.search.best_strategy;
    // Convergence columns: last search wins the gauges, the eval-cache
    // counters accumulate across every search of the bench.
    metrics.set("rl.search_episodes.count", plan.search.episodes_run);
    metrics.set("rl.episode_of_best.count", plan.search.episode_of_best);
    metrics.set("rl.best_time.ms", plan.search.best_time_ms);
    metrics.set("rl.best_reward.none", plan.search.best_reward);
    metrics.add("rl.eval_cache_hits.count", plan.search.eval_cache_hits);
    metrics.add("rl.eval_cache_misses.count", plan.search.eval_cache_misses);
  }

  sim::PlanEvalOptions eval_options;
  eval_options.compiler = compiler_options;
  eval_options.collect_utilization = true;
  obs::ScopedTimer eval_timer(metrics, "sim.plan_eval.ms");
  plan.eval =
      sim::evaluate_plan(*rig.costs, graph, plan.grouping, plan.map, eval_options);
  eval_timer.stop();
  plan.per_iteration_ms = plan.eval.per_iteration_ms;
  plan.feasible = !plan.eval.oom;
  if (plan.eval.cold_iteration_ms > 0.0 && !plan.eval.device_busy_ms.empty()) {
    double busy_sum = 0.0;
    for (const double b : plan.eval.device_busy_ms) busy_sum += b;
    const double denom =
        plan.eval.cold_iteration_ms * static_cast<double>(plan.eval.device_busy_ms.size());
    metrics.set("sim.device_util_mean.ratio", busy_sum / denom);
    metrics.set("sim.device_util_max.ratio",
                *std::max_element(plan.eval.device_busy_ms.begin(),
                                  plan.eval.device_busy_ms.end()) /
                    plan.eval.cold_iteration_ms);
    metrics.set("sim.critical_path_share.ratio",
                plan.eval.critical_path_ms / plan.eval.cold_iteration_ms);
  }
  return plan;
}

/// Reproducibility knobs of one bench invocation, written verbatim into the
/// JSON dump as `"config":{...}`. Values are raw JSON fragments: numbers via
/// std::to_string, strings via config_str. Order is preserved.
using BenchConfig = std::vector<std::pair<std::string, std::string>>;

/// Quotes (and escapes) a string for use as a BenchConfig value.
inline std::string config_str(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Dumps the global metrics registry as one JSON object
/// ({"bench":NAME,"config":{...},"metrics":{counters,gauges,histograms}}) to
/// the path in HETEROG_BENCH_JSON; no-op when the variable is unset. Call at
/// the end of each bench main so the BENCH output carries utilization and
/// convergence columns machine-readably, and pass the scenario knobs (chaos
/// seed, cache/store configuration) so a perf trajectory is attributable to
/// a reproducible configuration.
inline void write_bench_json(const char* bench_name,
                             const BenchConfig& config = {}) {
  const char* path = std::getenv("HETEROG_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  std::string json = std::string("{\"bench\":\"") + bench_name + "\"";
  json += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) json += ",";
    first = false;
    json += config_str(key) + ":" + value;
  }
  json += "}";
  json += ",\"metrics\":" + obs::MetricsRegistry::global().snapshot().to_json() + "}\n";
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("bench metrics json written to %s\n", path);
}

/// Formats "our / speed-up" cells in Table 1/4 style: baseline time with the
/// speed-up of HeteroG over it.
inline std::string baseline_cell(double baseline_ms, double heterog_ms, bool oom) {
  if (oom) return "OOM / -";
  const double speedup = 100.0 * (baseline_ms - heterog_ms) / heterog_ms;
  return fmt_double(baseline_ms / 1000.0) + " / " + fmt_double(speedup, 1) + "%";
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("episodes=%d max_groups=%d fast=%d\n", episodes(), max_groups(),
              fast_mode() ? 1 : 0);
  std::printf("==============================================================\n");
}

}  // namespace heterog::bench
