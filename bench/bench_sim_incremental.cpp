// Incremental re-simulation: full-run vs delta-replay wall clock.
//
// The plan is split across two model-parallel islands (first half of the
// groups on GPU 0, second half on GPU 7), so fault deltas fall into the three
// regimes the incremental API distinguishes:
//
//   * untouched device — the scaling hits a GPU the plan never uses. The
//     affected frontier is empty, so resimulate() answers from the baseline
//     verbatim: no snapshot build, no simulation. This is the common case of
//     fault_sim's sweeps (a cluster has more devices than a plan touches).
//   * scaled island (FIFO) — GPU 7 slows down. FIFO priorities are all zero
//     and unaffected by scaled durations, so the first island's schedule
//     prefix replays from the log and the event loop resumes at the frontier.
//     The data-oriented event loop is already lean, so replay is roughly
//     break-even — reported honestly, not asserted.
//   * scaled island (rank) — rank priorities are recomputed globally from
//     the scaled durations, which moves the frontier to the first event;
//     resimulate() degrades to a full run plus the diff.
//
// Smoke mode (HETEROG_BENCH_FAST=1, the CI configuration) shrinks the
// scenario and asserts bit-identical results everywhere plus speedup >= 1.0
// on the untouched-device row; exit code is nonzero on any violation.
// HETEROG_BENCH_JSON carries the machine-readable gauges.
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "faults/faults.h"
#include "sched/scheduler.h"
#include "sim/fault_sim.h"
#include "sim/sim_core.h"
#include "sim/simulator.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool identical(const sim::SimResult& a, const sim::SimResult& b) {
  auto eq = [](const std::vector<double>& x, const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() || std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  return a.makespan_ms == b.makespan_ms && eq(a.resource_busy_ms, b.resource_busy_ms) &&
         eq(a.start_ms, b.start_ms) && eq(a.finish_ms, b.finish_ms) &&
         a.peak_memory_bytes == b.peak_memory_bytes;
}

struct Row {
  const char* label;
  const char* gauge;       // metrics-registry gauge for the speedup
  sched::OrderPolicy policy;
  int scaled_device;       // receives the compute slowdown
};

}  // namespace

int main() {
  print_header("Incremental re-simulation: full run vs delta replay",
               "data-oriented simulator core (DESIGN.md §5i)");

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  const double batch = fast_mode() ? 16.0 : 64.0;
  const auto graph =
      models::build_training(models::ModelKind::kMobileNetV2, 0, batch);
  const auto grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());

  // Two MP islands on GPUs 0 and 7; GPUs 1-6 stay idle so a delta can land
  // on a device the plan never touches.
  strategy::StrategyMap map;
  for (int g = 0; g < grouping.group_count(); ++g) {
    map.group_actions.push_back(
        strategy::Action::mp(g < grouping.group_count() / 2 ? 0 : 7));
  }
  compile::GraphCompiler compiler(*rig.costs, {});
  const auto compiled = compiler.compile(graph, grouping, map);
  std::printf("compiled nodes: %d\n\n", compiled.graph.node_count());

  const int deltas = fast_mode() ? 4 : 16;
  const int repetitions = fast_mode() ? 50 : 200;

  const Row rows[] = {
      {"untouched device (empty frontier)", "sim_incremental.untouched_speedup",
       sched::OrderPolicy::kFifo, 3},
      {"scaled island (FIFO prefix reuse)", "sim_incremental.scaled_fifo_speedup",
       sched::OrderPolicy::kFifo, 7},
      {"scaled island (rank, global frontier)", "sim_incremental.scaled_rank_speedup",
       sched::OrderPolicy::kRankPriority, 7},
  };

  TextTable table({"delta", "full (ms)", "delta (ms)", "speedup", "identical"});
  double untouched_speedup = 0.0;
  bool all_identical = true;

  for (const Row& row : rows) {
    sim::SimOptions options;
    options.policy = row.policy;
    options.track_memory = false;
    const sim::Simulator simulator(options);
    auto priorities_for = [&](const compile::DistGraph& g) {
      return row.policy == sched::OrderPolicy::kRankPriority
                 ? sched::rank_priorities(g)
                 : std::vector<double>(static_cast<size_t>(g.node_count()), 0.0);
    };

    // Pre-scale the graphs and priorities once; only simulation is timed
    // (the full path needs the scaled graph exactly as the delta path does).
    std::vector<compile::DistGraph> scaled_graphs;
    std::vector<std::vector<double>> scaled_priorities;
    for (int d = 0; d < deltas; ++d) {
      faults::FaultScaling scaling;
      scaling.compute_slowdown.assign(8, 1.0);
      scaling.compute_slowdown[static_cast<size_t>(row.scaled_device)] =
          1.1 + 0.1 * static_cast<double>(d);
      scaled_graphs.push_back(
          sim::apply_fault_scaling(compiled.graph, rig.cluster, scaling));
      scaled_priorities.push_back(priorities_for(scaled_graphs.back()));
    }

    sim::SimBaseline baseline;
    simulator.run_baseline(compiled.graph, priorities_for(compiled.graph), baseline);

    // Correctness gate before timing: every delta bit-identical to scratch.
    for (size_t d = 0; d < scaled_graphs.size(); ++d) {
      const auto scratch =
          simulator.run_with_priorities(scaled_graphs[d], scaled_priorities[d]);
      const auto incremental =
          simulator.resimulate(scaled_graphs[d], scaled_priorities[d], baseline);
      if (!identical(scratch, incremental)) {
        all_identical = false;
        std::fprintf(stderr, "MISMATCH: %s delta %zu\n", row.label, d);
      }
    }

    const auto t_full = std::chrono::steady_clock::now();
    for (int rep = 0; rep < repetitions; ++rep) {
      for (size_t d = 0; d < scaled_graphs.size(); ++d) {
        (void)simulator.run_with_priorities(scaled_graphs[d], scaled_priorities[d]);
      }
    }
    const double full_ms =
        wall_ms_since(t_full) / static_cast<double>(repetitions * deltas);

    const auto t_delta = std::chrono::steady_clock::now();
    for (int rep = 0; rep < repetitions; ++rep) {
      for (size_t d = 0; d < scaled_graphs.size(); ++d) {
        (void)simulator.resimulate(scaled_graphs[d], scaled_priorities[d], baseline);
      }
    }
    const double delta_ms =
        wall_ms_since(t_delta) / static_cast<double>(repetitions * deltas);

    const double speedup = full_ms / delta_ms;
    if (row.scaled_device == 3) untouched_speedup = speedup;
    obs::MetricsRegistry::global().set(row.gauge, speedup);
    table.add_row({row.label, fmt_double(full_ms, 4), fmt_double(delta_ms, 4),
                   fmt_double(speedup, 2) + "x", all_identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Empty-frontier deltas answer from the baseline log with no snapshot\n"
      "build and no event loop; frontier deltas replay the unaffected prefix\n"
      "and pay the event loop only past it.\n");

  obs::MetricsRegistry::global().set("sim_incremental.identical",
                                     all_identical ? 1.0 : 0.0);
  BenchConfig config;
  config.emplace_back("model", config_str("MobileNet-v2"));
  config.emplace_back("batch", fmt_double(batch, 0));
  config.emplace_back("deltas", std::to_string(deltas));
  config.emplace_back("repetitions", std::to_string(repetitions));
  config.emplace_back("compiled_nodes", std::to_string(compiled.graph.node_count()));
  write_bench_json("sim_incremental", config);

  if (!all_identical) return 1;
  if (fast_mode() && untouched_speedup < 1.0) {
    std::fprintf(stderr, "smoke FAILED: empty-frontier speedup %.2fx < 1.0x\n",
                 untouched_speedup);
    return 1;
  }
  return 0;
}
