// Table 6: time for the GNN agent to find its best strategy on an unseen
// graph — training from scratch vs fine-tuning a policy pre-trained on the
// other benchmark graphs (paper Sec. 6.5).
//
// We report wall-clock seconds and the episode at which the incumbent best
// plan was found; the paper reports minutes at its (much larger) network
// sizes. The expected shape — fine-tuning reaches the best plan in a
// fraction of the from-scratch effort — is scale-independent.
#include <chrono>

#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

int main() {
  print_header(
      "Table 6: strategy-search effort on unseen graphs (pre-trained vs scratch)",
      "Fine-tuning a pre-trained GNN takes ~15-26% of the from-scratch time");

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  const int groups = 32;
  const int pretrain_rounds = fast_mode() ? 10 : 60;

  struct Spec {
    const char* label;
    models::ModelKind kind;
    int layers;
    double batch;
  };
  const Spec specs[] = {
      {"VGG-19", models::ModelKind::kVgg19, 0, 96},
      {"ResNet200", models::ModelKind::kResNet200, 0, 96},
      {"Inception_v3", models::ModelKind::kInceptionV3, 0, 96},
      {"MobileNet_v2", models::ModelKind::kMobileNetV2, 0, 96},
      {"Transformer", models::ModelKind::kTransformer, 6, 256},
  };
  const int n = static_cast<int>(std::size(specs));

  // Encode all graphs once.
  std::vector<graph::GraphDef> graphs;
  std::vector<agent::EncodedGraph> encoded;
  for (const auto& spec : specs) {
    graphs.push_back(models::build_training(spec.kind, spec.layers, spec.batch));
  }
  for (const auto& g : graphs) {
    encoded.push_back(agent::encode_graph(g, *rig.costs, groups));
  }

  agent::AgentConfig agent_config;
  agent_config.max_groups = groups;
  rl::TrainConfig train_config;
  train_config.episodes = episodes();
  train_config.patience = 0;
  // The paper's metric is about the *policy network* converging, so the
  // heuristic warm starts are disabled here: the RL has to learn the plan.
  train_config.seed_heuristics = false;

  TextTable table({"Unseen model", "scratch: best ms (converged @ ep, wall s)",
                   "fine-tune: reach-scratch @ ep (wall s)", "effort ratio"});

  // Leave-one-out: pre-train on the other graphs, fine-tune on the held-out.
  for (int held_out = 0; held_out < n; ++held_out) {
    std::vector<const agent::EncodedGraph*> pretrain_set;
    for (int i = 0; i < n; ++i) {
      if (i != held_out) pretrain_set.push_back(&encoded[static_cast<size_t>(i)]);
    }

    agent::PolicyNetwork pretrained(rig.cluster.device_count(), agent_config);
    {
      rl::Trainer pretrainer(*rig.costs, train_config);
      for (int round = 0; round < pretrain_rounds; ++round) {
        pretrainer.pretrain_round(pretrained, pretrain_set);
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    rl::Trainer finetuner(*rig.costs, train_config);
    const auto finetuned =
        finetuner.search(pretrained, encoded[static_cast<size_t>(held_out)]);
    const double finetune_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    agent::PolicyNetwork fresh(rig.cluster.device_count(), agent_config);
    const auto t1 = std::chrono::steady_clock::now();
    rl::Trainer scratcher(*rig.costs, train_config);
    const auto scratch = scratcher.search(fresh, encoded[static_cast<size_t>(held_out)]);
    const double scratch_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

    // Paper Sec. 6.5: episodes until the fine-tuned policy reaches the
    // quality of the best plan found from scratch (within 5%).
    const double target = scratch.best_time_ms * 1.05;
    auto episodes_to_reach = [&](const rl::SearchResult& run) {
      for (size_t e = 0; e < run.episode_best_ms.size(); ++e) {
        if (run.episode_best_ms[e] > 0.0 && run.episode_best_ms[e] <= target) {
          return static_cast<int>(e) + 1;
        }
      }
      return run.episodes_run;  // never reached: full budget
    };
    const int scratch_ep = scratch.episode_of_best + 1;
    const int finetune_ep = episodes_to_reach(finetuned);
    const double scratch_effort =
        scratch_s * scratch_ep / std::max(scratch.episodes_run, 1);
    const double finetune_effort =
        finetune_s * finetune_ep / std::max(finetuned.episodes_run, 1);

    table.add_row(
        {specs[held_out].label,
         fmt_double(scratch.best_time_ms, 1) + " (@" + std::to_string(scratch_ep) +
             ", " + fmt_double(scratch_s, 1) + "s)",
         fmt_double(finetuned.best_time_ms, 1) + " (@" + std::to_string(finetune_ep) +
             ", " + fmt_double(finetune_s, 1) + "s)",
         fmt_percent(finetune_effort / std::max(scratch_effort, 1e-9))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: fine-tuning the pre-trained policy reaches an equally good\n"
      "plan with a fraction of the from-scratch effort (paper: 15-26%%).\n");
  write_bench_json("table6");
  return 0;
}
