// Plan-server load/chaos bench (PR 7 robustness tentpole; docs/server.md).
//
// A server child is forked onto a Unix socket backed by a persistent plan
// store, then hammered by N concurrent client threads with a seeded request
// mix: valid plans (cold and warm repeats), deadline-degraded searches,
// malformed frames, oversized frame headers, and mid-frame disconnects.
// Reported: request latency percentiles (p50/p95/p99) over the valid
// exchanges plus ok/error/reject/degrade/disconnect counts.
//
// The chaos acceptance criterion rides along: after the load phase the
// server is killed with SIGKILL and a fresh server is started on the same
// store; the canonical request's reply must be bit-identical (canonical
// re-encoding compared byte-for-byte) across crash and restart, and any
// mismatch makes the bench exit nonzero.
//
// Extra knobs on top of bench_util.h's:
//   HETEROG_SERVER_CLIENTS   concurrent client threads (default 4)
//   HETEROG_SERVER_REQUESTS  requests per client (default 25; fast mode 8)
//   HETEROG_CHAOS_SEED       seed for the request mix (default 7)
//
// HETEROG_BENCH_JSON gains bench.server.* metrics: a latency histogram plus
// outcome counters and percentile gauges.
#include "bench_util.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/stats.h"
#include "server/plan_client.h"
#include "server/plan_server.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

namespace fs = std::filesystem;

/// Forks a server child on `socket_path` backed by `store_dir`; the child
/// never returns. The parent gets the child's pid.
pid_t fork_server(const std::string& socket_path, const std::string& store_dir) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  try {
    server::ServerOptions options;
    options.unix_path = socket_path;
    options.store_dir = store_dir;
    options.threads = 4;
    options.queue_capacity = 16;
    options.read_timeout_ms = 2000;
    server::PlanServer daemon(std::move(options));
    daemon.run();  // runs until SIGKILL'd by the parent
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server child: %s\n", e.what());
    ::_exit(2);
  }
  ::_exit(0);
}

bool wait_for_socket(const std::string& path) {
  for (int i = 0; i < 200; ++i) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

server::PlanRequest canonical_request() {
  server::PlanRequest request;
  request.model = "mobilenet_v2";
  request.batch = 32.0;
  return request;
}

/// Canonical reply bytes for the bit-identity check: encode(decode(wire)) is
/// the identity on server-produced payloads, so comparing re-encodings
/// compares the wire bytes.
bool canonical_reply_bytes(const server::ClientOptions& copts,
                           const server::PlanRequest& request, std::string* bytes) {
  server::PlanClient client(copts);
  server::PlanReply reply;
  std::string transport_error;
  if (!client.exchange(request, &reply, &transport_error)) {
    std::fprintf(stderr, "canonical exchange failed: %s\n", transport_error.c_str());
    return false;
  }
  if (reply.status != server::PlanReply::Status::kOk) {
    std::fprintf(stderr, "canonical request not served ok\n");
    return false;
  }
  *bytes = server::encode_reply(reply);
  return true;
}

/// common/stats percentile with an empty-input guard (an all-chaos mix can
/// leave zero valid exchanges in a tiny fast-mode run).
double pct(const std::vector<double>& values, double p) {
  return values.empty() ? 0.0 : percentile(values, p);
}

struct MixCounts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> error{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> disconnect_injected{0};
  std::atomic<uint64_t> transport_errors{0};
};

/// One client thread's worth of the seeded chaos mix.
void client_mix(const server::ClientOptions& copts, uint64_t seed, int requests,
                MixCounts* counts, std::vector<double>* latencies_ms) {
  Rng rng(seed);
  const char* kModels[] = {"mobilenet_v2", "vgg19"};
  const double kBatches[] = {16.0, 32.0, 64.0};
  server::PlanClient client(copts);
  for (int i = 0; i < requests; ++i) {
    const int roll = rng.uniform_int(0, 9);
    if (roll < 6) {  // valid plan request (repeats hit the store warm)
      server::PlanRequest request;
      request.model = kModels[rng.uniform_int(0, 1)];
      request.batch = kBatches[rng.uniform_int(0, 2)];
      server::PlanReply reply;
      std::string transport_error;
      const auto start = std::chrono::steady_clock::now();
      if (!client.exchange(request, &reply, &transport_error)) {
        counts->transport_errors.fetch_add(1);
        continue;
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      latencies_ms->push_back(ms);
      obs::MetricsRegistry::global().observe("bench.server.latency.ms", ms);
      if (reply.status == server::PlanReply::Status::kOk) {
        counts->ok.fetch_add(1);
      } else {
        counts->error.fetch_add(1);
      }
    } else if (roll < 7) {  // deadline-degraded search
      server::PlanRequest request;
      request.model = "mobilenet_v2";
      request.batch = 32.0;
      request.episodes = 10;
      request.deadline_ms = 1.0;  // modelled cost blows this budget
      server::PlanReply reply;
      std::string transport_error;
      if (!client.exchange(request, &reply, &transport_error)) {
        counts->transport_errors.fetch_add(1);
      } else if (reply.status == server::PlanReply::Status::kOk && reply.degraded) {
        counts->degraded.fetch_add(1);
      } else {
        counts->error.fetch_add(1);
      }
    } else if (roll < 8) {  // malformed frame
      server::PlanReply reply;
      std::string transport_error;
      if (client.raw_exchange("definitely not a frame\n", &reply, &transport_error) &&
          reply.status == server::PlanReply::Status::kRejected) {
        counts->rejected.fetch_add(1);
      } else {
        counts->transport_errors.fetch_add(1);
      }
    } else if (roll < 9) {  // oversized declared length
      server::PlanReply reply;
      std::string transport_error;
      if (client.raw_exchange("rec 999999999 deadbeef\n", &reply, &transport_error) &&
          reply.status == server::PlanReply::Status::kRejected) {
        counts->rejected.fetch_add(1);
      } else {
        counts->transport_errors.fetch_add(1);
      }
    } else {  // half a frame, then hang up
      (void)client.fire_and_close("rec 100 deadbeef\npartial");
      counts->disconnect_injected.fetch_add(1);
    }
  }
}

}  // namespace

int main() {
  print_header("Plan server load/chaos bench (latency + crash bit-identity)",
               "PR 7 robustness tentpole; docs/server.md");

  const int clients = env_int("HETEROG_SERVER_CLIENTS", 4);
  const int requests = env_int("HETEROG_SERVER_REQUESTS", fast_mode() ? 8 : 25);
  const uint64_t seed = static_cast<uint64_t>(env_int("HETEROG_CHAOS_SEED", 7));

  const fs::path dir =
      fs::temp_directory_path() / ("hg_bench_srv_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string store_dir = (dir / "store").string();

  // Phase 1: serve the seeded load mix.
  const std::string socket_a = (dir / "a.sock").string();
  const pid_t server_a = fork_server(socket_a, store_dir);
  if (server_a < 0 || !wait_for_socket(socket_a)) {
    std::fprintf(stderr, "bench: server A did not come up\n");
    return 1;
  }
  server::ClientOptions copts;
  copts.unix_path = socket_a;

  std::string before_bytes;
  if (!canonical_reply_bytes(copts, canonical_request(), &before_bytes)) return 1;

  MixCounts counts;
  std::vector<std::vector<double>> per_thread(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const auto load_start = std::chrono::steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back(client_mix, copts, seed * 1000 + static_cast<uint64_t>(t),
                         requests, &counts, &per_thread[static_cast<size_t>(t)]);
  }
  for (auto& thread : threads) thread.join();
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - load_start)
                             .count();

  // The same request after the load must still decode to the same reply.
  std::string after_load_bytes;
  if (!canonical_reply_bytes(copts, canonical_request(), &after_load_bytes)) return 1;

  // Phase 2: SIGKILL, restart on the same store, repeat the request.
  ::kill(server_a, SIGKILL);
  int wstatus = 0;
  ::waitpid(server_a, &wstatus, 0);

  const std::string socket_b = (dir / "b.sock").string();
  const pid_t server_b = fork_server(socket_b, store_dir);
  if (server_b < 0 || !wait_for_socket(socket_b)) {
    std::fprintf(stderr, "bench: server B did not come up after SIGKILL\n");
    return 1;
  }
  copts.unix_path = socket_b;
  std::string after_crash_bytes;
  const bool restarted_ok =
      canonical_reply_bytes(copts, canonical_request(), &after_crash_bytes);
  ::kill(server_b, SIGKILL);
  ::waitpid(server_b, &wstatus, 0);
  if (!restarted_ok) return 1;

  std::vector<double> latencies;
  for (const auto& chunk : per_thread) {
    latencies.insert(latencies.end(), chunk.begin(), chunk.end());
  }
  const double p50 = pct(latencies, 50.0);
  const double p95 = pct(latencies, 95.0);
  const double p99 = pct(latencies, 99.0);

  TextTable table({"metric", "value"});
  table.add_row({"clients x requests",
                 std::to_string(clients) + " x " + std::to_string(requests)});
  table.add_row({"valid exchanges", std::to_string(latencies.size())});
  table.add_row({"latency p50 (ms)", fmt_double(p50)});
  table.add_row({"latency p95 (ms)", fmt_double(p95)});
  table.add_row({"latency p99 (ms)", fmt_double(p99)});
  table.add_row({"ok replies", std::to_string(counts.ok.load())});
  table.add_row({"degraded plans", std::to_string(counts.degraded.load())});
  table.add_row({"error replies", std::to_string(counts.error.load())});
  table.add_row({"typed rejections", std::to_string(counts.rejected.load())});
  table.add_row({"disconnects injected",
                 std::to_string(counts.disconnect_injected.load())});
  table.add_row({"transport errors", std::to_string(counts.transport_errors.load())});
  table.add_row({"load wall (ms)", fmt_double(load_ms)});
  std::printf("%s", table.render().c_str());

  auto& registry = obs::MetricsRegistry::global();
  registry.add("bench.server.ok.count", counts.ok.load());
  registry.add("bench.server.degraded.count", counts.degraded.load());
  registry.add("bench.server.error.count", counts.error.load());
  registry.add("bench.server.rejects.count", counts.rejected.load());
  registry.add("bench.server.disconnects.count", counts.disconnect_injected.load());
  registry.add("bench.server.transport_errors.count", counts.transport_errors.load());
  registry.set("bench.server.latency_p50.ms", p50);
  registry.set("bench.server.latency_p95.ms", p95);
  registry.set("bench.server.latency_p99.ms", p99);
  write_bench_json("plan_server",
                   {{"chaos_seed", std::to_string(seed)},
                    {"clients", std::to_string(clients)},
                    {"requests_per_client", std::to_string(requests)}});

  int rc = 0;
  if (after_load_bytes != before_bytes) {
    std::fprintf(stderr, "FAIL: reply changed across warm repeat (store served "
                         "different bytes)\n");
    rc = 1;
  }
  if (after_crash_bytes != before_bytes) {
    std::fprintf(stderr, "FAIL: reply changed across SIGKILL + restart — the "
                         "store did not self-heal to the same answer\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("crash bit-identity: ok (reply stable across warm repeat and "
                "SIGKILL restart)\n");
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  return rc;
}
