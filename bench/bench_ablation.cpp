// Ablations of HeteroG's design choices (DESIGN.md §5):
//   1. Hybrid PS+AllReduce vs forcing a single sync method.
//   2. NCCL serialisation: why hybrid plans help (single channel idle time).
//   3. Gradient-fusion bucket size sweep.
//   4. Grouping size N sweep (action space vs plan quality).
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

int main() {
  print_header("Ablations: hybrid sync, fusion bucket size, grouping size",
               "Sec. 6.2 (hybrid of PS and AllReduce), Sec. 4.1.1 (grouping)");

  BenchRig rig(cluster::make_paper_testbed_8gpu());

  // 1. Hybrid vs forced single sync method, on the Bert plan (where the
  //    hybrid matters most: AllReduce serialises, PS floods NICs).
  {
    models::Benchmark bench = models::standard_benchmarks()[6];  // Bert-large
    const auto graph = models::build_training(bench.kind, bench.layers, bench.batch_8gpu);
    const auto plan = heterog_plan(rig, bench, bench.batch_8gpu, "t1_6_24_48_8gpu");

    auto force = [&](strategy::CommMethod comm) {
      strategy::StrategyMap forced = plan.map;
      for (auto& a : forced.group_actions) {
        if (!a.is_mp) a.comm = comm;
      }
      return sim::evaluate_plan(*rig.costs, graph, plan.grouping, forced)
          .per_iteration_ms;
    };
    TextTable table({"Variant", "per-iteration (ms)"});
    table.add_row({"HeteroG plan (hybrid PS+AR as searched)",
                   fmt_double(plan.per_iteration_ms, 1)});
    table.add_row({"same plan, all gradient sync forced to PS",
                   fmt_double(force(strategy::CommMethod::kPS), 1)});
    table.add_row({"same plan, all gradient sync forced to AllReduce",
                   fmt_double(force(strategy::CommMethod::kAllReduce), 1)});
    std::printf("Ablation 1: hybrid vs single sync method (Bert-large)\n%s\n",
                table.render().c_str());
  }

  // 2. Fusion bucket size sweep on ResNet EV-AR.
  {
    const auto graph = models::build_training(models::ModelKind::kResNet200, 0, 192);
    const auto grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());
    const auto map = strategy::StrategyMap::uniform(
        grouping.group_count(), strategy::Action::dp(strategy::ReplicationMode::kEven,
                                                     strategy::CommMethod::kAllReduce));
    TextTable table({"fusion bucket", "collectives", "per-iteration (ms)"});
    for (int64_t bucket : {int64_t{0}, int64_t{1} << 20, int64_t{8} << 20,
                           int64_t{64} << 20, int64_t{512} << 20}) {
      compile::CompilerOptions options;
      options.allreduce_fusion_bytes = bucket;
      const compile::GraphCompiler compiler(*rig.costs, options);
      const auto compiled = compiler.compile(graph, grouping, map);
      const auto result = sim::evaluate(compiled.graph, rig.cluster);
      table.add_row({bucket == 0 ? "off" : fmt_bytes(bucket),
                     std::to_string(compiled.stats.collectives),
                     fmt_double(result.makespan_ms, 1)});
    }
    std::printf(
        "Ablation 2: AllReduce fusion bucket size (ResNet200 EV-AR; launch overhead\n"
        "dominates without fusion)\n%s\n",
        table.render().c_str());
  }

  // 3. Bandwidth sensitivity (paper Sec. 4.1 footnote: "If the bandwidth
  //    changes, the input to the GNN changes and the output strategy changes
  //    correspondingly"): the best sync scheme flips as the network scales.
  {
    const auto graph = models::build_training(models::ModelKind::kBertLarge, 24, 48);
    TextTable table({"network scale", "EV-PS (ms)", "EV-AR (ms)", "winner"});
    for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto scaled = cluster::scale_network_bandwidth(rig.cluster, factor);
      profiler::HardwareModel hw(scaled);
      profiler::GroundTruthCosts scaled_costs(hw);
      const auto grouping = strategy::Grouping::build(graph, scaled_costs, max_groups());
      auto eval = [&](strategy::CommMethod comm) {
        const auto map = strategy::StrategyMap::uniform(
            grouping.group_count(),
            strategy::Action::dp(strategy::ReplicationMode::kEven, comm));
        return sim::evaluate_plan(scaled_costs, graph, grouping, map).per_iteration_ms;
      };
      const double ps = eval(strategy::CommMethod::kPS);
      const double ar = eval(strategy::CommMethod::kAllReduce);
      table.add_row({fmt_double(factor, 2) + "x", fmt_double(ps, 1), fmt_double(ar, 1),
                     ps < ar ? "PS" : "AllReduce"});
    }
    std::printf(
        "Ablation 3: inter-host bandwidth sensitivity (Bert-large, EV sync schemes)\n"
        "%s\n",
        table.render().c_str());
  }

  // 4. Grouping size sweep: plan quality of the heuristic+repair search as
  //    the action space grows.
  {
    const auto graph = models::build_training(models::ModelKind::kVgg19, 0, 192);
    TextTable table({"max groups", "actual groups", "best heuristic plan (ms)"});
    for (int n : {4, 12, 24, 48, 96}) {
      const auto grouping = strategy::Grouping::build(graph, *rig.costs, n);
      rl::TrainConfig config;
      rl::Trainer trainer(*rig.costs, config);
      double best = 1e300;
      for (const auto& candidate : trainer.heuristic_candidates(graph, grouping)) {
        const auto eval = trainer.evaluate(graph, grouping, candidate);
        if (!eval.oom) best = std::min(best, eval.time_ms);
      }
      table.add_row({std::to_string(n), std::to_string(grouping.group_count()),
                     fmt_double(best, 1)});
    }
    std::printf("Ablation 4: grouping size N (VGG-19, heuristic candidates)\n%s\n",
                table.render().c_str());
  }
  write_bench_json("ablation");
  return 0;
}
