// Figure 8: per-iteration computation and communication time — VGG-19
// (CP-AR vs HeteroG) and BERT-large (CP-PS vs HeteroG), 8 GPUs.
//
// With computation/communication overlap, the sum of the two components
// exceeds the per-iteration time; HeteroG achieves a higher overlap ratio.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

void report(const char* model_label, const BenchRig& rig, const graph::GraphDef& graph,
            const strategy::Grouping& grouping, const strategy::StrategyMap& dp_map,
            const char* dp_label, const strategy::StrategyMap& hg_map) {
  TextTable table({"Scheme", "per-iteration (s)", "computation (s)", "communication (s)",
                   "(comp+comm)/iter"});
  for (const auto& [label, map] :
       {std::pair<const char*, const strategy::StrategyMap*>{dp_label, &dp_map},
        std::pair<const char*, const strategy::StrategyMap*>{"HeteroG", &hg_map}}) {
    const auto eval = sim::evaluate_plan(*rig.costs, graph, grouping, *map);
    const double overlap =
        (eval.computation_ms + eval.communication_ms) / eval.cold_iteration_ms;
    table.add_row({label, fmt_double(eval.per_iteration_ms / 1000.0),
                   fmt_double(eval.computation_ms / 1000.0),
                   fmt_double(eval.communication_ms / 1000.0), fmt_double(overlap, 2)});
  }
  std::printf("%s\n%s\n", model_label, table.render().c_str());
}

}  // namespace

int main() {
  print_header(
      "Figure 8: computation / communication breakdown (8 GPUs)",
      "HeteroG reduces both components and overlaps them better: the paper's "
      "(comp+comm)/iter ratio rises from 1.31 to 1.47 (VGG) and 1.21 to 1.56 "
      "(BERT) under HeteroG");

  BenchRig rig(cluster::make_paper_testbed_8gpu());

  {
    models::Benchmark bench = models::standard_benchmarks()[0];  // VGG-19
    const auto graph = models::build_training(bench.kind, bench.layers, bench.batch_8gpu);
    const auto plan = heterog_plan(rig, bench, bench.batch_8gpu, "t1_0_0_192_8gpu");
    const auto cp_ar = strategy::StrategyMap::uniform(
        plan.grouping.group_count(),
        strategy::Action::dp(strategy::ReplicationMode::kProportional,
                             strategy::CommMethod::kAllReduce));
    report("VGG-19 (192): CP-AR vs HeteroG", rig, graph, plan.grouping, cp_ar, "CP-AR",
           plan.map);
  }
  {
    models::Benchmark bench = models::standard_benchmarks()[6];  // Bert-large
    const auto graph = models::build_training(bench.kind, bench.layers, bench.batch_8gpu);
    const auto plan = heterog_plan(rig, bench, bench.batch_8gpu, "t1_6_24_48_8gpu");
    const auto cp_ps = strategy::StrategyMap::uniform(
        plan.grouping.group_count(),
        strategy::Action::dp(strategy::ReplicationMode::kProportional,
                             strategy::CommMethod::kPS));
    report("Bert-large (48): CP-PS vs HeteroG", rig, graph, plan.grouping, cp_ps, "CP-PS",
           plan.map);
  }
  std::printf(
      "Expected shape: HeteroG's per-iteration time is smaller while its\n"
      "(comp+comm)/iter overlap ratio is larger than the DP baseline's.\n");
  write_bench_json("fig8");
  return 0;
}
