// Serial vs parallel strategy search: wall-clock speedup of the memoized
// EvalEngine at 1/2/4 worker threads, plus cache traffic. The plans are
// bit-identical across thread counts (tests/eval_engine_test.cpp pins it);
// this bench reports the identical best time once and the wall clock per
// thread count. Knobs: HETEROG_EPISODES (default 30 here — the search cost
// is what's measured, not plan quality), HETEROG_BENCH_FAST, and
// HETEROG_PLAN_STORE=DIR which adds two serial rows backed by the durable
// plan store (cold: populates DIR; warm: re-runs the same search answered
// from disk — the "store hits" column shows the cross-run traffic).
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "store/plan_store.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

struct BenchCase {
  const char* name;
  models::ModelKind kind;
  int layers;
  double batch;
};

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  print_header("Parallel, memoized plan evaluation: search speedup by thread count",
               "EvalEngine (DESIGN.md \"Parallel evaluation & memoization\")");

  const BenchCase cases[] = {
      {"MobileNet-v2 (b64)", models::ModelKind::kMobileNetV2, 0, 64.0},
      {"Inception-v3 (b32)", models::ModelKind::kInceptionV3, 0, 32.0},
      {"Bert-large 48L (b24)", models::ModelKind::kBertLarge, 48, 24.0},
  };
  const int search_episodes = env_int("HETEROG_EPISODES", fast_mode() ? 8 : 30);
  const int thread_counts[] = {1, 2, 4};
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u%s\nsearch episodes: %d\n\n", cores,
              cores < 4 ? "  (speedup is core-bound: >1x needs >1 core; "
                          "the plans stay identical regardless)"
                        : "",
              search_episodes);

  // HETEROG_PLAN_STORE=DIR adds store-backed serial rows (cold then warm).
  const char* store_dir = std::getenv("HETEROG_PLAN_STORE");
  std::unique_ptr<store::PlanStore> plan_store;
  if (store_dir != nullptr && *store_dir != '\0') {
    store::PlanStoreOptions store_options;
    store_options.dir = store_dir;
    store_options.metrics = &obs::MetricsRegistry::global();
    plan_store = std::make_unique<store::PlanStore>(store_options);
  }
  constexpr size_t kCacheCapacity = 4096;

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  TextTable table({"model", "threads", "search wall (ms)", "speedup vs serial/uncached",
                   "cache hits", "cache misses", "store hits", "best (ms)"});

  for (const auto& c : cases) {
    const auto graph = models::build_training(c.kind, c.layers, c.batch);
    const auto encoded = agent::encode_graph(graph, *rig.costs, max_groups());
    double serial_ms = 0.0;
    bool first_row = true;
    auto time_search = [&](int threads, size_t cache_capacity, const char* label,
                           store::PlanStore* store) {
      rl::TrainConfig config;
      config.episodes = search_episodes;
      config.patience = 0;
      config.threads = threads;
      config.eval_cache_capacity = cache_capacity;
      config.plan_store = store;

      agent::AgentConfig agent_config;
      agent_config.max_groups = max_groups();
      agent::PolicyNetwork policy(rig.cluster.device_count(), agent_config);
      rl::Trainer trainer(*rig.costs, config);

      const auto t0 = std::chrono::steady_clock::now();
      const auto result = trainer.search(policy, encoded);
      const double wall = wall_ms_since(t0);
      if (serial_ms == 0.0) serial_ms = wall;  // first row = the baseline

      table.add_row({first_row ? c.name : "", label, fmt_double(wall, 0),
                     fmt_double(serial_ms / wall, 2) + "x",
                     std::to_string(result.eval_cache_hits),
                     std::to_string(result.eval_cache_misses),
                     store != nullptr ? std::to_string(result.eval_store_hits) : "-",
                     fmt_double(result.best_time_ms, 1)});
      first_row = false;
    };
    time_search(1, 0, "1 (no cache)", nullptr);
    for (const int threads : thread_counts) {
      time_search(threads, kCacheCapacity, std::to_string(threads).c_str(), nullptr);
    }
    if (plan_store != nullptr) {
      time_search(1, kCacheCapacity, "1 +store (cold)", plan_store.get());
      time_search(1, kCacheCapacity, "1 +store (warm)", plan_store.get());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Same seed => same plan at every thread count; speedup is wall clock only.\n"
      "Cache hits are evaluations answered without compile+simulate.\n\n");

  // ---- Episode throughput: seed-era engine vs the full current stack. ----
  // Seed-era = reference heap simulator, no evaluation cache, no unroll
  // scratch (the engine as it stood before the data-oriented core). Full
  // stack = data-oriented SoA core + reusable workspaces + unroll scratch +
  // LRU memoization. Same seed, so both sides run the identical episode
  // stream and MUST land on the identical plan — checked per cell.
  TextTable grid({"model", "cluster", "seed-era (ms)", "full stack (ms)",
                  "speedup", "same plan"});
  const std::pair<const char*, cluster::ClusterSpec> clusters[] = {
      {"testbed-8", cluster::make_paper_testbed_8gpu()},
      {"fig3", cluster::make_fig3_testbed()},
  };
  double seed_total_ms = 0.0, stack_total_ms = 0.0;
  bool plans_match = true;
  for (const auto& [cluster_name, cluster_spec] : clusters) {
    BenchRig grid_rig(cluster_spec);
    for (const auto& c : cases) {
      const auto graph = models::build_training(c.kind, c.layers, c.batch);
      const auto encoded = agent::encode_graph(graph, *grid_rig.costs, max_groups());
      auto run_search = [&](bool seed_era, double* wall_out) {
        rl::TrainConfig config;
        config.episodes = search_episodes;
        config.patience = 0;
        config.threads = 1;
        if (seed_era) {
          config.eval_cache_capacity = 0;
          config.sim_impl = sim::SimImpl::kReference;
          config.eval_scratch = false;
        }
        agent::AgentConfig agent_config;
        agent_config.max_groups = max_groups();
        agent::PolicyNetwork policy(grid_rig.cluster.device_count(), agent_config);
        rl::Trainer trainer(*grid_rig.costs, config);
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = trainer.search(policy, encoded);
        *wall_out = wall_ms_since(t0);
        return result;
      };
      double seed_ms = 0.0, stack_ms = 0.0;
      const auto seed_result = run_search(true, &seed_ms);
      const auto stack_result = run_search(false, &stack_ms);
      const bool same =
          seed_result.best_time_ms == stack_result.best_time_ms &&
          seed_result.best_strategy.group_actions ==
              stack_result.best_strategy.group_actions;
      plans_match = plans_match && same;
      seed_total_ms += seed_ms;
      stack_total_ms += stack_ms;
      grid.add_row({c.name, cluster_name, fmt_double(seed_ms, 0),
                    fmt_double(stack_ms, 0), fmt_double(seed_ms / stack_ms, 2) + "x",
                    same ? "yes" : "NO"});
    }
  }
  const double grid_speedup = seed_total_ms / stack_total_ms;
  grid.add_row({"TOTAL", "", fmt_double(seed_total_ms, 0),
                fmt_double(stack_total_ms, 0), fmt_double(grid_speedup, 2) + "x",
                plans_match ? "yes" : "NO"});
  std::printf("%s\n", grid.render().c_str());
  std::printf(
      "Episode throughput over the %d-search grid: %.2fx (%.1f -> %.1f episodes/s).\n"
      "Seed-era = reference simulator, no cache, no scratch.\n",
      static_cast<int>(std::size(clusters)) * static_cast<int>(std::size(cases)),
      grid_speedup,
      1000.0 * search_episodes * std::size(clusters) * std::size(cases) / seed_total_ms,
      1000.0 * search_episodes * std::size(clusters) * std::size(cases) / stack_total_ms);
  obs::MetricsRegistry::global().set("rl.episode_throughput_speedup.ratio",
                                     grid_speedup);
  obs::MetricsRegistry::global().set("rl.episode_throughput_identical.ratio",
                                     plans_match ? 1.0 : 0.0);
  if (plan_store != nullptr) {
    plan_store->flush();
    const store::PlanStoreStats store_stats = plan_store->stats();
    std::printf(
        "Plan store %s: %llu cross-run hit(s), %llu record(s), generation %llu.\n",
        store_dir, static_cast<unsigned long long>(store_stats.hits),
        static_cast<unsigned long long>(plan_store->size()),
        static_cast<unsigned long long>(store_stats.generation));
  }

  BenchConfig config;
  config.emplace_back("episodes", std::to_string(search_episodes));
  config.emplace_back("max_groups", std::to_string(max_groups()));
  config.emplace_back("eval_cache_capacity", std::to_string(kCacheCapacity));
  config.emplace_back("threads", "[1,2,4]");
  config.emplace_back("plan_store",
                      plan_store != nullptr ? config_str(store_dir)
                                            : std::string("null"));
  write_bench_json("eval_engine", config);
  return 0;
}
