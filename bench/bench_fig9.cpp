// Figure 9: training speed (samples/s) normalised to Horovod — HeteroG vs
// HetPipe, FlexFlow, Horovod and Post on 12 GPUs, for ResNet, Inception-v3,
// Transformer and BERT-large.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

int main() {
  print_header(
      "Figure 9: normalised training speed vs existing schemes (12 GPUs)",
      "HeteroG is fastest, outperforming the others by 16.4%-391.8%; Post "
      "(placement-only) trails, FlexFlow/HetPipe sit in between. All systems "
      "run on the same fused-collective backend (a level playing field: "
      "Horovod fuses in reality, so per-tensor collectives would handicap "
      "the others in simulation only)");

  BenchRig rig(cluster::make_paper_testbed_12gpu());
  compile::CompilerOptions fused;
  fused.allreduce_fusion_bytes = 64LL << 20;

  struct Spec {
    const char* label;
    models::ModelKind kind;
    int layers;
    double batch;
  };
  const Spec specs[] = {
      {"ResNet", models::ModelKind::kResNet200, 0, 288},
      {"InceptionV3", models::ModelKind::kInceptionV3, 0, 288},
      {"Transformer", models::ModelKind::kTransformer, 6, 1080},
      {"Bert-Large", models::ModelKind::kBertLarge, 24, 72},
  };

  TextTable table({"Model", "HeteroG", "HetPipe", "FlexFlow", "Horovod", "Post"});
  for (const auto& spec : specs) {
    const auto graph = models::build_training(spec.kind, spec.layers, spec.batch);
    const auto grouping = strategy::Grouping::build(graph, *rig.costs, max_groups());

    const auto horovod = baselines::run_horovod(*rig.evaluator, graph, grouping);

    baselines::FlexFlowOptions ff_options;
    ff_options.compiler = fused;
    ff_options.iterations = fast_mode() ? 60 : 300;
    const auto flexflow = baselines::run_flexflow(*rig.evaluator, graph, grouping,
                                                  ff_options);

    baselines::PostOptions post_options;
    post_options.compiler = fused;
    if (fast_mode()) {
      post_options.rounds = 4;
      post_options.samples_per_round = 8;
    }
    const auto post = baselines::run_post(*rig.evaluator, graph, grouping, post_options);

    baselines::HetPipeOptions hetpipe_options;
    hetpipe_options.compiler = fused;
    const auto hetpipe = baselines::run_hetpipe(
        *rig.costs,
        [&spec](double batch) {
          return models::build_training(spec.kind, spec.layers, batch);
        },
        spec.batch, hetpipe_options);

    models::Benchmark bench;
    bench.kind = spec.kind;
    bench.layers = spec.layers;
    bench.label = spec.label;
    const auto plan = heterog_plan(rig, bench, spec.batch,
                                   std::string("fig9_") +
                                       std::to_string(static_cast<int>(spec.kind)) + "_" +
                                       std::to_string(spec.layers) + "_" +
                                       std::to_string(static_cast<int>(spec.batch)) +
                                       "_12gpu",
                                   fused);
    const double heterog_sps = spec.batch / (plan.per_iteration_ms / 1000.0);

    auto norm = [&](double sps) {
      return fmt_double(sps / horovod.samples_per_second, 2);
    };
    table.add_row({spec.label, norm(heterog_sps), norm(hetpipe.samples_per_second),
                   norm(flexflow.samples_per_second), "1.00",
                   norm(post.samples_per_second)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: HeteroG highest for every model; Post (placement only)\n"
      "lowest or near-lowest; FlexFlow and HetPipe between Horovod and HeteroG\n"
      "for most models.\n");
  write_bench_json("fig9");
  return 0;
}
