// Tables 2 and 3: the fraction of operations assigned to each strategy by
// HeteroG's plans — MP per device (Gx columns) and the four DP schemes — for
// the standard benchmarks (Table 2) and the large models (Table 3).
//
// Re-uses the plans cached by bench_table1 when available.
#include "bench_util.h"

using namespace heterog;
using namespace heterog::bench;

namespace {

void render(const char* title, const std::vector<models::Benchmark>& benches,
            const BenchRig& rig) {
  TextTable table({"Model (batch)", "MP total", "top MP devices", "EV-PS", "EV-AR",
                   "CP-PS", "CP-AR"});
  for (const auto& bench : benches) {
    const double batch = bench.batch_8gpu;
    const auto graph = models::build_training(bench.kind, bench.layers, batch);
    const auto plan = heterog_plan(rig, bench, batch,
                                   "t1_" + std::to_string(static_cast<int>(bench.kind)) +
                                       "_" + std::to_string(bench.layers) + "_" +
                                       std::to_string(static_cast<int>(batch)) + "_8gpu");
    const auto bd = strategy::summarize_strategy(graph, plan.grouping, plan.map,
                                                 rig.cluster.device_count());
    double mp_total = 0.0;
    std::vector<std::pair<double, int>> devices;
    for (size_t d = 0; d < bd.mp_fraction.size(); ++d) {
      mp_total += bd.mp_fraction[d];
      if (bd.mp_fraction[d] > 0.0) {
        devices.emplace_back(bd.mp_fraction[d], static_cast<int>(d));
      }
    }
    std::sort(devices.rbegin(), devices.rend());
    std::string top;
    for (size_t i = 0; i < devices.size() && i < 3; ++i) {
      if (!top.empty()) top += " ";
      top += "G" + std::to_string(devices[i].second) + "=" +
             fmt_percent(devices[i].first);
    }
    if (top.empty()) top = "-";
    table.add_row({bench.label + " (" + std::to_string(static_cast<int>(batch)) + ")",
                   fmt_percent(mp_total), top, fmt_percent(bd.ev_ps),
                   fmt_percent(bd.ev_ar), fmt_percent(bd.cp_ps), fmt_percent(bd.cp_ar)});
  }
  std::printf("%s\n%s\n", title, table.render().c_str());
}

}  // namespace

int main() {
  print_header(
      "Tables 2 / 3: operation fractions per strategy in HeteroG's plans (8 GPUs)",
      "Table 2: small models mostly DP with a small MP share pinned to the fast "
      "GPUs (parameter-heavy ops); a hybrid of PS and AllReduce and of even and "
      "proportional replication. Table 3: large models mostly MP spread across "
      "devices, with a small DP remainder");

  BenchRig rig(cluster::make_paper_testbed_8gpu());
  render("Table 2 (standard benchmarks):", models::standard_benchmarks(), rig);
  render("Table 3 (large models):", models::large_benchmarks(), rig);
  write_bench_json("table2_3");
  return 0;
}
