// Topology generator + cluster/comm model tests (ctest -L topo):
//   - generator determinism (byte-identical cluster JSON, equal fingerprints)
//     and the options JSON round trip;
//   - typed TopoSpecError rejection of malformed options and spec files;
//   - docs/topology.md <-> topo_json_fields() schema cross-check and the
//     doc's worked 2-rack AllReduce example pinned against the cost model;
//   - property: estimate_allreduce never beats the serialized flat ring on
//     any generated preset;
//   - scheduler invariants swept on a generated 256-GPU cluster;
//   - fault-plan remap / degraded-cluster carry-through on generated
//     multi-rack clusters (non-contiguous failures re-densify device ids).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "compile/collective.h"
#include "compile/compiler.h"
#include "faults/faults.h"
#include "models/models.h"
#include "profiler/cost_provider.h"
#include "profiler/hardware_model.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"

namespace heterog {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Generator determinism

TEST(TopoGen, SameOptionsByteIdenticalCluster) {
  for (const std::string& name : cluster::topo_preset_names()) {
    const auto options = cluster::topo_preset(name);
    ASSERT_TRUE(options.has_value()) << name;
    const cluster::ClusterSpec a = cluster::generate_cluster(*options);
    const cluster::ClusterSpec b = cluster::generate_cluster(*options);
    EXPECT_EQ(cluster::cluster_to_json(a), cluster::cluster_to_json(b)) << name;
    EXPECT_EQ(cluster::cluster_fingerprint(a), cluster::cluster_fingerprint(b)) << name;
  }
}

TEST(TopoGen, SeedChangesDrawsButNotShape) {
  auto options = *cluster::topo_preset("pod64");
  const cluster::ClusterSpec a = cluster::generate_cluster(options);
  options.seed = 99;
  const cluster::ClusterSpec b = cluster::generate_cluster(options);
  EXPECT_EQ(a.device_count(), b.device_count());
  EXPECT_EQ(a.host_count(), b.host_count());
  ASSERT_TRUE(a.has_topology());
  ASSERT_TRUE(b.has_topology());
  EXPECT_EQ(a.topology().rack_of_host, b.topology().rack_of_host);
  // pod64 mixes three SKUs over 16 hosts; a different seed changing no draw
  // at all would be astronomically unlikely (and would regress the wall that
  // the seed actually reaches the Rng).
  EXPECT_NE(cluster::cluster_to_json(a), cluster::cluster_to_json(b));
}

TEST(TopoGen, OptionsJsonRoundTripIsByteIdentical) {
  std::vector<cluster::TopoGenOptions> specs = {cluster::TopoGenOptions{}};
  for (const std::string& name : cluster::topo_preset_names()) {
    specs.push_back(*cluster::topo_preset(name));
  }
  for (const auto& options : specs) {
    const std::string json = cluster::topo_gen_to_json(options);
    const cluster::TopoGenOptions parsed = cluster::parse_topo_gen_json(json);
    EXPECT_EQ(cluster::topo_gen_to_json(parsed), json);
    // The round-tripped options describe the same cluster, not just the same
    // bytes.
    EXPECT_EQ(cluster::cluster_to_json(cluster::generate_cluster(parsed)),
              cluster::cluster_to_json(cluster::generate_cluster(options)));
  }
}

TEST(TopoGen, LoadsOptionsFromFileAndAppliesDefaults) {
  const fs::path path = fs::temp_directory_path() / "hg_topo_gen_spec.json";
  {
    std::ofstream out(path);
    out << "{\"racks\": 3, \"gpu_mix\": {\"a100\": 1}}";
  }
  const cluster::TopoGenOptions o = cluster::load_topo_gen_options(path.string());
  fs::remove(path);
  EXPECT_EQ(o.racks, 3);
  EXPECT_EQ(o.hosts_per_rack, cluster::TopoGenOptions{}.hosts_per_rack);
  ASSERT_EQ(o.gpu_mix.size(), 1u);
  EXPECT_EQ(o.gpu_mix.count("a100"), 1u);
  EXPECT_THROW(cluster::load_topo_gen_options("/nonexistent/topo.json"),
               cluster::TopoSpecError);
}

TEST(TopoGen, PresetsCoverTheDocumentedScales) {
  EXPECT_EQ(cluster::topo_preset_names().size(), 4u);
  EXPECT_FALSE(cluster::topo_preset("warehouse9000").has_value());

  const cluster::ClusterSpec dc =
      cluster::generate_cluster(*cluster::topo_preset("dc1000"));
  EXPECT_EQ(dc.device_count(), 1000);
  EXPECT_EQ(dc.host_count(), 100);
  ASSERT_TRUE(dc.has_topology());
  EXPECT_EQ(dc.topology().rack_count(), 10);

  const cluster::ClusterSpec rack =
      cluster::generate_cluster(*cluster::topo_preset("rack16"));
  EXPECT_EQ(rack.device_count(), 16);
  ASSERT_TRUE(rack.has_topology());
  EXPECT_EQ(rack.topology().rack_count(), 2);
}

// ---------------------------------------------------------------------------
// Typed rejections

TEST(TopoGen, ValidateRejectsOutOfRangeOptions) {
  auto expect_invalid = [](auto mutate) {
    cluster::TopoGenOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), cluster::TopoSpecError);
    EXPECT_THROW(cluster::generate_cluster(o), cluster::TopoSpecError);
  };
  expect_invalid([](auto& o) { o.racks = 0; });
  expect_invalid([](auto& o) { o.hosts_per_rack = -1; });
  expect_invalid([](auto& o) { o.gpus_per_host = 0; });
  expect_invalid([](auto& o) { o.tor_gbps = 0.0; });
  expect_invalid([](auto& o) { o.oversubscription = 0.5; });
  expect_invalid([](auto& o) { o.racks_per_pod = -1; });
  expect_invalid([](auto& o) { o.gpu_mix = {{"tpu", 1.0}}; });
  expect_invalid([](auto& o) { o.gpu_mix = {{"v100", -1.0}}; });
  expect_invalid([](auto& o) { o.gpu_mix = {{"v100", 0.0}}; });
  expect_invalid([](auto& o) { o.link_classes = {{"infiniband", 1.0}}; });
  expect_invalid([](auto& o) { o.nic_classes = {{"roce100", 0.0}, {"roce50", 0.0}}; });
}

TEST(TopoGen, ParserRejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                                   // no value at all
      "[1, 2]",                             // top level must be an object
      "{\"racks\": 2} trailing",            // trailing bytes
      "{\"rakcs\": 2}",                     // unknown field
      "{\"racks\": \"two\"}",               // wrong type
      "{\"racks\": 2.5}",                   // non-integer count
      "{\"seed\": -1}",                     // seed out of range
      "{\"seed\": 1e300}",                  // seed above 2^53
      "{\"gpu_mix\": [\"v100\"]}",          // mix must be an object
      "{\"gpu_mix\": {\"v100\": \"x\"}}",   // weight must be a number
      "{\"racks\": 2",                      // unterminated object
  };
  for (const std::string& text : bad) {
    EXPECT_THROW(cluster::parse_topo_gen_json(text), cluster::TopoSpecError) << text;
  }
}

// ---------------------------------------------------------------------------
// Docs <-> code schema sync (same pattern as docs/observability.md in
// tests/obs_test.cpp)

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// docs/topology.md must document every JSON field the parser accepts (one
// "### `field`" heading each) and no field it does not — the doc and
// topo_json_fields() are the same schema.
TEST(Docs, TopologyDocCoversExactlyTheSchemaFields) {
  const fs::path doc_path = fs::path(HETEROG_SOURCE_DIR) / "docs/topology.md";
  const std::string doc = read_file(doc_path);
  ASSERT_FALSE(doc.empty());

  const std::vector<std::string>& fields = cluster::topo_json_fields();
  for (const std::string& field : fields) {
    EXPECT_NE(doc.find("### `" + field + "`"), std::string::npos)
        << "docs/topology.md lacks a section for field `" << field << "`";
  }

  size_t pos = 0;
  int documented = 0;
  while ((pos = doc.find("### `", pos)) != std::string::npos) {
    pos += 5;
    const size_t end = doc.find('`', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string name = doc.substr(pos, end - pos);
    ++documented;
    EXPECT_NE(std::find(fields.begin(), fields.end(), name), fields.end())
        << "docs/topology.md documents `" << name
        << "`, which topo_json_fields() does not know";
  }
  EXPECT_EQ(documented, static_cast<int>(fields.size()));

  // Every preset the code knows is named in the doc's preset table.
  for (const std::string& preset : cluster::topo_preset_names()) {
    EXPECT_NE(doc.find("`" + preset + "`"), std::string::npos)
        << "docs/topology.md does not mention preset `" << preset << "`";
  }
}

/// The doc's worked example: 2 racks x 2 hosts x 4 GPUs, 100 GbE ToR, 10:1
/// oversubscribed core, all-NVLink hosts, all-roce100 NICs.
cluster::ClusterSpec worked_example_cluster() {
  cluster::TopoGenOptions o;
  o.racks = 2;
  o.hosts_per_rack = 2;
  o.gpus_per_host = 4;
  o.tor_gbps = 100.0;
  o.oversubscription = 10.0;
  o.gpu_mix = {{"v100", 1.0}};
  o.link_classes = {{"nvlink", 1.0}};
  o.nic_classes = {{"roce100", 1.0}};
  return cluster::generate_cluster(o);
}

// Pins the arithmetic of docs/topology.md's "Worked example" section against
// the cost model, so the doc's numbers cannot drift from the code.
TEST(Docs, TopologyWorkedExampleMatchesCostModel) {
  const cluster::ClusterSpec cluster = worked_example_cluster();
  const profiler::HardwareModel hw(cluster);
  const profiler::GroundTruthCosts costs(hw);
  constexpr int64_t kBytes = 64 * 1000 * 1000;  // 6.4e7, the doc's B

  std::vector<cluster::DeviceId> all(16);
  for (int i = 0; i < 16; ++i) all[static_cast<size_t>(i)] = i;

  // Per-path full-payload transfers from the doc's table.
  EXPECT_NEAR(costs.transfer_time_ms(kBytes, 0, 1), 1.61, 1e-9);    // intra-host
  EXPECT_NEAR(costs.transfer_time_ms(kBytes, 0, 4), 5.17, 1e-9);    // same rack
  EXPECT_NEAR(costs.transfer_time_ms(kBytes, 0, 8), 51.25, 1e-9);   // cross rack

  EXPECT_NEAR(compile::ring_allreduce_ms(kBytes, all, costs), 97.5, 1e-6);
  EXPECT_NEAR(compile::hierarchical_allreduce_ms(kBytes, all, costs), 80.32, 1e-6);
  EXPECT_NEAR(compile::rack_hierarchical_allreduce_ms(kBytes, all, costs), 64.86, 1e-6);

  const compile::AllReduceEstimate est = compile::estimate_allreduce(kBytes, all, costs);
  EXPECT_EQ(est.structure, compile::AllReduceStructure::kRackHierarchical);
  EXPECT_NEAR(est.time_ms, 64.86 + compile::kCollectiveLaunchOverheadMs, 1e-6);
}

// ---------------------------------------------------------------------------
// Property: the chosen AllReduce structure never loses to the flat ring

TEST(Collective, EstimateNeverWorseThanSerializedRingOnAnyPreset) {
  for (const std::string& name : cluster::topo_preset_names()) {
    for (const uint64_t seed : {1ull, 42ull}) {
      auto options = *cluster::topo_preset(name);
      options.seed = seed;
      const cluster::ClusterSpec cluster = cluster::generate_cluster(options);
      const profiler::HardwareModel hw(cluster);
      const profiler::GroundTruthCosts costs(hw);

      std::vector<cluster::DeviceId> all(static_cast<size_t>(cluster.device_count()));
      for (int i = 0; i < cluster.device_count(); ++i) all[static_cast<size_t>(i)] = i;

      for (const int64_t bytes : {int64_t{1} << 20, int64_t{64} << 20}) {
        const double ring = compile::ring_allreduce_ms(bytes, all, costs);
        const compile::AllReduceEstimate est =
            compile::estimate_allreduce(bytes, all, costs);
        EXPECT_LE(est.time_ms, ring + compile::kCollectiveLaunchOverheadMs + 1e-9)
            << name << " seed " << seed << " bytes " << bytes;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler invariants on a generated 256-GPU cluster

TEST(TopoSched, InvariantSweepAt256Gpus) {
  const cluster::ClusterSpec cluster =
      cluster::generate_cluster(*cluster::topo_preset("pod256"));
  ASSERT_EQ(cluster.device_count(), 256);
  const profiler::HardwareModel hw(cluster);
  const profiler::GroundTruthCosts costs(hw);

  const auto graph =
      models::build_training(models::ModelKind::kVgg19, 0, 2.0 * cluster.device_count());
  const auto grouping = strategy::Grouping::build(graph, costs, 48);
  compile::GraphCompiler compiler(costs);

  // The four uniform DP strategies (EV/CP x PS/AR) plus an MP placement —
  // the heuristic seeds, at 256-way replication.
  for (const int dp_index : {0, 1, 2, 3}) {
    const auto map = strategy::StrategyMap::uniform(
        grouping.group_count(),
        strategy::Action::from_index(cluster.device_count() + dp_index,
                                     cluster.device_count()));
    const auto compiled = compiler.compile(graph, grouping, map);

    std::string error;
    ASSERT_TRUE(compiled.graph.validate(&error)) << error;

    const auto result = sim::Simulator().run(compiled.graph);
    EXPECT_GT(result.makespan_ms, 0.0);
    // No resource overcommitted; makespan covers the critical path.
    for (double busy : result.resource_busy_ms) {
      EXPECT_GE(result.makespan_ms + 1e-9, busy);
    }
    const auto ranks = sched::compute_ranks(compiled.graph);
    double critical_path = 0.0;
    for (double r : ranks) critical_path = std::max(critical_path, r);
    EXPECT_GE(result.makespan_ms + 1e-6, critical_path);
    // Every node runs inside [0, makespan] for exactly its duration.
    for (compile::DistNodeId id = 0; id < compiled.graph.node_count(); ++id) {
      EXPECT_GE(result.start_ms[static_cast<size_t>(id)], -1e-9);
      EXPECT_LE(result.finish_ms[static_cast<size_t>(id)], result.makespan_ms + 1e-9);
      EXPECT_NEAR(result.finish_ms[static_cast<size_t>(id)] -
                      result.start_ms[static_cast<size_t>(id)],
                  compiled.graph.node(id).duration_ms, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Faults on generated clusters: id re-densification and carry-through

// Removing devices leaves non-contiguous original ids; remap_plan must
// follow the re-densification (and drop events on removed devices) so a
// fault plan written against the base cluster stays valid on the survivor.
TEST(TopoFaults, RemapPlanFollowsRemoveDeviceRedensification) {
  const cluster::ClusterSpec base =
      cluster::generate_cluster(*cluster::topo_preset("rack16"));

  // Remove G5 then (original) G12 — after the first removal G12 has become
  // G11, exactly the bookkeeping remap_plan exists to hide.
  std::vector<int> new_id_of(static_cast<size_t>(base.device_count()));
  for (size_t i = 0; i < new_id_of.size(); ++i) new_id_of[i] = static_cast<int>(i);
  auto remove = [&](int original_id) {
    const int current = new_id_of[static_cast<size_t>(original_id)];
    for (auto& id : new_id_of) {
      if (id == current) id = -1;
      else if (id > current) --id;
    }
    return current;
  };
  cluster::ClusterSpec survivor = base.remove_device(remove(5));
  survivor = survivor.remove_device(remove(12));
  ASSERT_EQ(survivor.device_count(), 14);

  faults::FaultPlan plan;
  auto add = [&](int device) {
    faults::FaultEvent e;
    e.kind = faults::FaultKind::kStraggler;
    e.onset_step = 1;
    e.device = device;
    e.slowdown = 2.0;
    plan.events.push_back(e);
  };
  add(4);    // survives, id unchanged
  add(5);    // removed -> dropped
  add(6);    // survives as G5
  add(12);   // removed -> dropped
  add(15);   // survives as G13
  {
    faults::FaultEvent e;
    e.kind = faults::FaultKind::kLinkDegradation;
    e.onset_step = 1;
    e.device_a = 6;
    e.device_b = 12;  // one endpoint removed -> whole event dropped
    e.bandwidth_factor = 0.5;
    plan.events.push_back(e);
  }

  const faults::FaultPlan remapped = faults::remap_plan(plan, new_id_of);
  ASSERT_EQ(remapped.events.size(), 3u);
  EXPECT_EQ(remapped.events[0].device, 4);
  EXPECT_EQ(remapped.events[1].device, 5);
  EXPECT_EQ(remapped.events[2].device, 13);
  // Remapped ids are valid on the survivor: applying the plan must not throw.
  for (const auto& e : remapped.events) {
    EXPECT_LT(e.device, survivor.device_count());
  }
}

// degraded_cluster and remove_device must carry the switch topology and the
// accumulated link degradations into the surviving cluster — dropping either
// silently un-degrades links or flattens the multi-rack fabric.
TEST(TopoFaults, DegradedClusterKeepsTopologyAndLinkScales) {
  const cluster::ClusterSpec base =
      cluster::generate_cluster(*cluster::topo_preset("rack16"));
  ASSERT_TRUE(base.has_topology());

  // Degrade the G0 <-> G8 (cross-rack) path, then fail G5 via a scaling.
  const cluster::ClusterSpec degraded_links = base.degrade_link(0, 8, 0.5);
  faults::FaultScaling scaling;
  scaling.step = 1;
  scaling.failed = {5};
  scaling.compute_slowdown.assign(static_cast<size_t>(base.device_count()), 1.0);
  const cluster::ClusterSpec survivor =
      faults::degraded_cluster(degraded_links, scaling);

  ASSERT_EQ(survivor.device_count(), base.device_count() - 1);
  ASSERT_TRUE(survivor.has_topology());
  EXPECT_EQ(survivor.topology().rack_count(), base.topology().rack_count());
  EXPECT_EQ(survivor.topology().tor_gbps, base.topology().tor_gbps);

  // The host-pair degradation survives the rebuild: G0 -> G8 was cross-rack
  // at 50 Gbps (roce50 NICs); scaled by 0.5 it moves bytes half as fast as
  // in the pristine cluster. G5's removal does not renumber hosts 0 or 2.
  const double base_ms = base.link_bandwidth_bytes_per_ms(0, 8);
  EXPECT_NEAR(survivor.link_bandwidth_bytes_per_ms(0, 8), 0.5 * base_ms, 1e-9);
  // And the cross-rack path is still distinguishable from the in-rack one —
  // i.e. the topology really is attached, not defaulted.
  EXPECT_NEAR(degraded_links.link_bandwidth_bytes_per_ms(0, 8), 0.5 * base_ms, 1e-9);
}

}  // namespace
}  // namespace heterog
